"""Tests for the key-value (TCP text protocol) communication function."""

import json

import pytest

from repro.data import DataItem, DataSet
from repro.engines import CommunicationEngine, Task
from repro.net import (
    KeyValueStoreService,
    LatencyModel,
    SanitizationError,
    SimulatedNetwork,
    format_kv_request,
    parse_kv_request_item,
    parse_kv_response_item,
    sanitize_kv_request,
)
from repro.functions import compute_function, read_items, write_item
from repro.sim import Environment, Store
from repro.worker import WorkerConfig, WorkerNode


# -- envelope + sanitizer ----------------------------------------------------


def test_envelope_roundtrip():
    raw = format_kv_request("set", "cache.internal", "user:1", b"\x00\x01")
    envelope = parse_kv_request_item(raw)
    assert envelope["op"] == "set"
    assert envelope["host"] == "cache.internal"
    assert envelope["key"] == "user:1"
    assert envelope["value"] == b"\x00\x01"


def test_envelope_missing_fields_rejected():
    with pytest.raises(ValueError, match="missing"):
        parse_kv_request_item(b'{"op": "get"}')


def test_sanitizer_accepts_valid():
    envelope = parse_kv_request_item(format_kv_request("get", "cache.internal", "k"))
    assert sanitize_kv_request(envelope) is envelope


@pytest.mark.parametrize("op", ["flush_all", "stats", "GET", ""])
def test_sanitizer_rejects_bad_ops(op):
    envelope = {"op": op, "host": "cache.internal", "key": "k", "value": b""}
    with pytest.raises(SanitizationError, match="operation"):
        sanitize_kv_request(envelope)


def test_sanitizer_rejects_bad_keys():
    base = {"op": "get", "host": "cache.internal", "value": b""}
    with pytest.raises(SanitizationError, match="empty"):
        sanitize_kv_request({**base, "key": ""})
    with pytest.raises(SanitizationError, match="250"):
        sanitize_kv_request({**base, "key": "x" * 251})
    with pytest.raises(SanitizationError, match="whitespace"):
        sanitize_kv_request({**base, "key": "has space"})
    with pytest.raises(SanitizationError, match="whitespace"):
        sanitize_kv_request({**base, "key": "ctrl\x01char"})


def test_sanitizer_rejects_bad_host_and_huge_value():
    with pytest.raises(SanitizationError, match="host"):
        sanitize_kv_request({"op": "get", "host": "bad host", "key": "k", "value": b""})
    with pytest.raises(SanitizationError, match="1 MiB"):
        sanitize_kv_request({
            "op": "set", "host": "cache.internal", "key": "k",
            "value": b"x" * ((1 << 20) + 1),
        })


# -- service semantics ---------------------------------------------------------


def test_service_get_set_delete_incr():
    service = KeyValueStoreService()
    assert service.handle_kv("get", "missing", b"")[0] == 404
    assert service.handle_kv("set", "k", b"v")[0] == 200
    status, value, reason = service.handle_kv("get", "k", b"")
    assert (status, value, reason) == (200, b"v", "hit")
    assert service.handle_kv("delete", "k", b"")[0] == 200
    assert service.handle_kv("delete", "k", b"")[0] == 404
    assert service.handle_kv("incr", "n", b"5") == (200, b"5", "incremented")
    assert service.handle_kv("incr", "n", b"")[1] == b"6"
    assert service.handle_kv("incr", "n", b"nan")[0] == 400


def test_service_fast():
    service = KeyValueStoreService()
    assert service.service_seconds(100) < 1e-3


# -- engine-level exchange -----------------------------------------------------


def kv_task(env, queue, items):
    task = Task(
        kind="communication",
        input_sets=[DataSet("request", items)],
        output_set_names=["response"],
        completion=env.event(),
        protocol="kv",
    )
    queue.put(task)
    return task


def setup_engine():
    env = Environment()
    network = SimulatedNetwork(env, LatencyModel())
    store = KeyValueStoreService()
    network.register(store)
    queue = Store(env)
    CommunicationEngine(env, queue, network)
    return env, network, store, queue


def test_engine_kv_set_then_get():
    env, _network, store, queue = setup_engine()
    set_task = kv_task(env, queue, [
        DataItem("w", format_kv_request("set", "cache.internal", "greeting", b"hello"))
    ])
    env.run(until=set_task.completion)
    assert store.get("greeting") == b"hello"
    get_task = kv_task(env, queue, [
        DataItem("r", format_kv_request("get", "cache.internal", "greeting"))
    ])
    outcome = env.run(until=get_task.completion)
    envelope = parse_kv_response_item(outcome.outputs[0].item("r").data)
    assert envelope["status"] == 200
    assert envelope["value"] == b"hello"


def test_engine_kv_sanitization_blocks_before_network():
    env, network, _store, queue = setup_engine()
    task = kv_task(env, queue, [
        DataItem("bad", format_kv_request("get", "cache.internal", "has space"))
    ])
    outcome = env.run(until=task.completion)
    assert json.loads(outcome.outputs[0].item("bad").data)["status"] == 400
    assert network.requests_sent == 0


def test_engine_kv_unknown_host_502():
    env, _network, _store, queue = setup_engine()
    task = kv_task(env, queue, [
        DataItem("g", format_kv_request("get", "ghost.internal", "k"))
    ])
    outcome = env.run(until=task.completion)
    assert parse_kv_response_item(outcome.outputs[0].item("g").data)["status"] == 502


def test_engine_unknown_protocol_rejected():
    env, _network, _store, queue = setup_engine()
    task = Task(
        kind="communication",
        input_sets=[DataSet("request", [DataItem("x", b"whatever")])],
        output_set_names=["response"],
        completion=env.event(),
        protocol="smtp",
    )
    queue.put(task)
    outcome = env.run(until=task.completion)
    assert json.loads(outcome.outputs[0].item("x").data)["status"] == 400


def test_kv_faster_than_http_exchange():
    # The in-memory store answers in tens of µs vs ms-scale HTTP services.
    env, _network, _store, queue = setup_engine()
    task = kv_task(env, queue, [DataItem("r", format_kv_request("get", "cache.internal", "k"))])
    env.run(until=task.completion)
    assert env.now < 1e-3


# -- full composition with a kv comm node ----------------------------------------


def test_kv_protocol_in_composition():
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    store = KeyValueStoreService()
    store.put("counter", b"41")
    worker.network.register(store)

    @compute_function(compute_cost=1e-5)
    def gen(vfs):
        write_item(vfs, "request", "r", format_kv_request("incr", "cache.internal", "counter"))

    @compute_function(compute_cost=1e-5)
    def unwrap(vfs):
        envelope = parse_kv_response_item(read_items(vfs, "response")[0].data)
        write_item(vfs, "out", "value", envelope["value"])

    worker.frontend.register_function(gen)
    worker.frontend.register_function(unwrap)
    worker.frontend.register_composition("""
        composition bump {
            compute g uses gen in(seed) out(request);
            comm cache protocol kv;
            compute u uses unwrap in(response) out(out);
            input seed -> g.seed;
            g.request -> cache.request [all];
            cache.response -> u.response [all];
            output u.out -> result;
        }
    """)
    result = worker.invoke_and_run("bump", {"seed": b""})
    assert result.ok
    assert result.output("result").item("value").data == b"42"
    assert store.get("counter") == b"42"
