"""Tests for the simulated network and the remote services."""

import json

import pytest

from repro.net import (
    AuthService,
    EchoService,
    HttpRequest,
    LatencyModel,
    LlmService,
    LogShardService,
    ObjectStoreService,
    SimulatedNetwork,
    SqlDatabaseService,
)
from repro.sim import Environment


def run_request(network, request):
    env = network.env

    def proc():
        response = yield from network.perform(request)
        return response

    p = env.process(proc())
    return env.run(until=p)


def make_network():
    env = Environment()
    return SimulatedNetwork(env)


def test_echo_roundtrip_and_time_advances():
    network = make_network()
    network.register(EchoService())
    response = run_request(
        network, HttpRequest("POST", "http://echo.internal/", body=b"ping")
    )
    assert response.ok
    assert response.body == b"ping"
    assert network.env.now > 0


def test_unknown_host_returns_502_after_rtt():
    network = make_network()
    response = run_request(network, HttpRequest("GET", "http://ghost.internal/"))
    assert response.status == 502
    assert network.env.now == pytest.approx(network.latency.round_trip_seconds)


def test_duplicate_host_rejected():
    network = make_network()
    network.register(EchoService())
    with pytest.raises(ValueError, match="already registered"):
        network.register(EchoService())


def test_latency_scales_with_payload():
    model = LatencyModel(round_trip_seconds=0.0, bytes_per_second=1e6)
    small = HttpRequest("POST", "http://h.internal/", body=b"x")
    large = HttpRequest("POST", "http://h.internal/", body=b"x" * 100000)
    assert model.request_seconds(large) > model.request_seconds(small)


def test_network_counters():
    network = make_network()
    network.register(EchoService())
    run_request(network, HttpRequest("POST", "http://echo.internal/", body=b"abc"))
    assert network.requests_sent == 1
    assert network.bytes_sent > 0
    assert network.bytes_received > 0


def test_object_store_get_put_delete():
    network = make_network()
    store = ObjectStoreService()
    network.register(store)
    put = HttpRequest("PUT", "http://storage.internal/bucket/key", body=b"data")
    assert run_request(network, put).ok
    assert store.get_object("bucket", "key") == b"data"
    get = HttpRequest("GET", "http://storage.internal/bucket/key")
    assert run_request(network, get).body == b"data"
    delete = HttpRequest("DELETE", "http://storage.internal/bucket/key")
    assert run_request(network, delete).status == 204
    assert run_request(network, get).status == 404


def test_object_store_preload_helper():
    store = ObjectStoreService()
    store.put_object("b", "k", b"v")
    assert store.object_count() == 1
    assert store.get_object("b", "k") == b"v"


def test_object_store_method_not_allowed():
    network = make_network()
    network.register(ObjectStoreService())
    response = run_request(network, HttpRequest("PATCH", "http://storage.internal/b/k"))
    assert response.status == 405


def test_auth_service_grants_and_denies():
    network = make_network()
    auth = AuthService()
    auth.grant("tok123", ["http://logs0.internal/logs", "http://logs1.internal/logs"])
    network.register(auth)
    ok = run_request(
        network,
        HttpRequest("POST", "http://auth.internal/authorize", body=b"tok123"),
    )
    assert ok.ok
    assert json.loads(ok.text()) == [
        "http://logs0.internal/logs",
        "http://logs1.internal/logs",
    ]
    denied = run_request(
        network, HttpRequest("POST", "http://auth.internal/authorize", body=b"bad")
    )
    assert denied.status == 403


def test_auth_service_unknown_path():
    network = make_network()
    network.register(AuthService())
    response = run_request(network, HttpRequest("POST", "http://auth.internal/other"))
    assert response.status == 404


def test_log_shard_serves_lines():
    network = make_network()
    shard = LogShardService("logs0.internal", ["line one", "line two"])
    network.register(shard)
    response = run_request(network, HttpRequest("GET", "http://logs0.internal/logs"))
    assert response.text().splitlines() == ["line one", "line two"]
    assert shard.line_count == 2


def test_llm_service_latency_dominates():
    network = make_network()
    llm = LlmService(latency_seconds=1.238)
    network.register(llm)
    body = json.dumps({"prompt": "How many movies have rating above 8?"}).encode()
    response = run_request(network, HttpRequest("POST", "http://llm.internal/v1", body=body))
    assert response.ok
    completion = json.loads(response.text())["completion"]
    assert "SELECT COUNT(*)" in completion
    assert "movies" in completion
    # The 1238 ms inference time dominates the exchange.
    assert network.env.now == pytest.approx(1.238, rel=0.05)


def test_llm_service_rejects_bad_payload():
    network = make_network()
    network.register(LlmService())
    response = run_request(network, HttpRequest("POST", "http://llm.internal/v1", body=b"not json"))
    assert response.status == 400


def test_llm_templates_cover_query_shapes():
    llm = LlmService()
    cases = {
        "What is the average rating of movies?": "AVG",
        "Show the top rated movies": "ORDER BY rating DESC",
        "List some customers": "SELECT * FROM customers",
    }
    for prompt, fragment in cases.items():
        body = json.dumps({"prompt": prompt}).encode()
        response = llm.handle(HttpRequest("POST", "http://llm.internal/v1", body=body))
        assert fragment in json.loads(response.text())["completion"]


def test_sql_database_service_delegates_to_executor():
    def executor(sql):
        assert sql == "SELECT 1"
        return [{"one": 1}]

    network = make_network()
    network.register(SqlDatabaseService(executor=executor))
    response = run_request(network, HttpRequest("POST", "http://db.internal/query", body=b"SELECT 1"))
    assert json.loads(response.text()) == [{"one": 1}]


def test_sql_database_service_surfaces_errors_as_400():
    def executor(sql):
        raise ValueError("syntax error")

    network = make_network()
    network.register(SqlDatabaseService(executor=executor))
    response = run_request(network, HttpRequest("POST", "http://db.internal/query", body=b"garbage"))
    assert response.status == 400
    assert "syntax error" in response.reason


def test_sql_database_requires_executor():
    with pytest.raises(ValueError):
        SqlDatabaseService()


def test_service_request_counting():
    network = make_network()
    echo = EchoService()
    network.register(echo)
    for _ in range(3):
        run_request(network, HttpRequest("GET", "http://echo.internal/"))
    assert echo.requests_served == 3
