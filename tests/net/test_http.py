"""Tests for the HTTP model and §6.3 input sanitization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    HttpRequest,
    HttpResponse,
    SanitizationError,
    sanitize_request,
)


def request(method="GET", url="http://storage.internal/bucket/key", **kwargs):
    return HttpRequest(method=method, url=url, **kwargs)


def test_request_host_and_path():
    r = request(url="http://storage.internal/bucket/key?v=1")
    assert r.host == "storage.internal"
    assert r.path == "/bucket/key?v=1"


def test_request_path_defaults_to_root():
    assert request(url="http://host.internal").path == "/"


def test_request_size_includes_body_and_headers():
    small = request()
    big = request(body=b"x" * 1000, headers={"a": "b"})
    assert big.size > small.size + 1000


def test_first_line_format():
    assert request().first_line() == "GET http://storage.internal/bucket/key HTTP/1.1"


def test_response_ok_range():
    assert HttpResponse(200).ok
    assert HttpResponse(204).ok
    assert not HttpResponse(404).ok
    assert not HttpResponse(502).ok


def test_response_text():
    assert HttpResponse(200, body="héllo".encode()).text() == "héllo"


def test_sanitize_accepts_valid_request():
    r = request()
    assert sanitize_request(r) is r


def test_sanitize_accepts_ip_host():
    sanitize_request(request(url="http://10.0.0.1/path"))
    sanitize_request(request(url="http://[::1]/path"))


@pytest.mark.parametrize("method", ["TRACE", "CONNECT", "get", "FOO"])
def test_sanitize_rejects_bad_method(method):
    with pytest.raises(SanitizationError, match="method"):
        sanitize_request(request(method=method))


@pytest.mark.parametrize("version", ["HTTP/0.9", "HTTP/2", "SPDY/3", ""])
def test_sanitize_rejects_bad_version(version):
    with pytest.raises(SanitizationError, match="version"):
        sanitize_request(request(version=version))


def test_sanitize_rejects_bad_scheme():
    with pytest.raises(SanitizationError, match="scheme"):
        sanitize_request(request(url="ftp://host/path"))
    with pytest.raises(SanitizationError, match="scheme"):
        sanitize_request(request(url="file:///etc/passwd"))


@pytest.mark.parametrize(
    "url",
    [
        "http:///nohost",
        "http://-bad.example.com/",
        "http://bad-.example.com/",
        "http://exa mple.com/",
        "http://" + "a" * 300 + ".com/",
    ],
)
def test_sanitize_rejects_invalid_host(url):
    with pytest.raises(SanitizationError):
        sanitize_request(request(url=url))


def test_sanitize_rejects_crlf_in_url():
    with pytest.raises(SanitizationError):
        sanitize_request(request(url="http://host.internal/a\r\nX-Evil: 1"))


def test_sanitize_rejects_crlf_in_headers():
    with pytest.raises(SanitizationError, match="injection"):
        sanitize_request(request(headers={"X-A": "v\r\nX-Evil: 1"}))
    with pytest.raises(SanitizationError, match="injection"):
        sanitize_request(request(headers={"X-A\r\nX-Evil": "v"}))


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=40))
def test_property_sanitizer_never_crashes(url_fragment):
    # Arbitrary attacker-controlled URL text either sanitizes cleanly or
    # raises SanitizationError — nothing else escapes.
    try:
        sanitize_request(request(url="http://" + url_fragment))
    except SanitizationError:
        pass
