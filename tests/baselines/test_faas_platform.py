"""Tests for the traditional-FaaS baseline platform model."""

import pytest

from repro.baselines import (
    FIRECRACKER,
    FIRECRACKER_SNAPSHOT,
    GVISOR,
    WASMTIME,
    FaasPlatform,
    FixedHotRatioPolicy,
    KeepAlivePolicy,
    Phase,
    compute_phase,
    io_phase,
)
from repro.sim import Environment, Rng


def make_platform(spec=FIRECRACKER_SNAPSHOT, policy=None, cores=4, seed=0):
    env = Environment()
    policy = policy or FixedHotRatioPolicy(1.0, Rng(seed))
    platform = FaasPlatform(env, spec, cores=cores, policy=policy)
    return env, platform


def test_phase_validation():
    with pytest.raises(ValueError):
        Phase("gpu", 1.0)
    with pytest.raises(ValueError):
        Phase("compute", -1.0)


def test_hot_request_latency_no_cold_start():
    env, platform = make_platform()
    platform.register_function("f", [compute_phase(0.002)])
    record = env.run(until=platform.request("f"))
    assert not record.cold
    expected = FIRECRACKER_SNAPSHOT.hot_start_seconds + 0.002 * FIRECRACKER_SNAPSHOT.compute_slowdown
    assert record.latency == pytest.approx(expected, rel=1e-6)


def test_cold_request_pays_boot():
    env, platform = make_platform(policy=FixedHotRatioPolicy(0.0, Rng(0)))
    platform.register_function("f", [compute_phase(0.002)])
    record = env.run(until=platform.request("f"))
    assert record.cold
    assert record.latency > FIRECRACKER_SNAPSHOT.cold_start_seconds


def test_fresh_boot_much_slower_than_snapshot():
    _env1, fresh = make_platform(spec=FIRECRACKER, policy=FixedHotRatioPolicy(0.0, Rng(0)))
    fresh.register_function("f", [compute_phase(0.001)])
    record_fresh = fresh.env.run(until=fresh.request("f"))
    _env2, snap = make_platform(spec=FIRECRACKER_SNAPSHOT, policy=FixedHotRatioPolicy(0.0, Rng(0)))
    snap.register_function("f", [compute_phase(0.001)])
    record_snap = snap.env.run(until=snap.request("f"))
    # Fresh boot ~150 ms vs restore (~12 ms + demand paging).
    assert record_fresh.latency > 4 * record_snap.latency


def test_hot_ratio_statistics():
    env, platform = make_platform(policy=FixedHotRatioPolicy(0.97, Rng(5)))
    platform.register_function("f", [compute_phase(1e-4)])

    def run_many():
        for _ in range(1000):
            yield platform.request("f")

    env.run(until=env.process(run_many()))
    assert 0.01 < platform.cold_fraction() < 0.06


def test_hot_ratio_bounds_validated():
    with pytest.raises(ValueError):
        FixedHotRatioPolicy(1.5, Rng(0))


def test_io_phase_does_not_consume_cpu():
    env, platform = make_platform(cores=1)
    platform.register_function("io_heavy", [io_phase(0.05)])
    first = platform.request("io_heavy")
    second = platform.request("io_heavy")
    env.run(until=env.all_of([first, second]))
    # Two 50ms IO tasks overlap on one core.
    assert env.now < 0.08


def test_compute_contention_on_shared_cores():
    env, platform = make_platform(cores=1)
    platform.register_function("f", [compute_phase(0.01)])
    requests = [platform.request("f") for _ in range(4)]
    env.run(until=env.all_of(requests))
    # 4x10ms on one core (plus slowdown): strictly serialized-ish.
    assert env.now >= 0.04


def test_compute_slowdown_applied():
    env, platform = make_platform(spec=WASMTIME)
    platform.register_function("f", [compute_phase(0.01)])
    record = env.run(until=platform.request("f"))
    assert record.latency >= 0.01 * WASMTIME.compute_slowdown


def test_gvisor_slower_than_snapshot_cold():
    assert GVISOR.cold_start_seconds > FIRECRACKER_SNAPSHOT.cold_start_seconds


def test_keep_alive_makes_second_request_warm():
    env, platform = make_platform(policy=KeepAlivePolicy(keep_alive_seconds=60))
    platform.register_function("f", [compute_phase(0.001)])
    first = env.run(until=platform.request("f"))
    second = env.run(until=platform.request("f"))
    assert first.cold
    assert not second.cold


def test_keep_alive_expires_sandbox():
    env, platform = make_platform(policy=KeepAlivePolicy(keep_alive_seconds=1.0))
    platform.register_function("f", [compute_phase(0.001)])
    env.run(until=platform.request("f"))

    def later():
        yield env.timeout(5.0)
        record = yield platform.request("f")
        return record

    record = env.run(until=env.process(later()))
    assert record.cold
    assert platform.warm_sandbox_count() <= 1


def test_keep_alive_memory_committed_while_idle():
    env, platform = make_platform(policy=KeepAlivePolicy(keep_alive_seconds=10.0))
    platform.register_function("f", [compute_phase(0.001)])
    env.run(until=platform.request("f"))
    # Request done, but the sandbox memory is still committed.
    assert platform.committed_bytes == FIRECRACKER_SNAPSHOT.sandbox_memory_bytes
    env.run(until=env.timeout(20.0))
    assert platform.committed_bytes == 0


def test_memory_released_immediately_without_keepalive():
    env, platform = make_platform(policy=KeepAlivePolicy(keep_alive_seconds=0.0))
    platform.register_function("f", [compute_phase(0.001)])
    env.run(until=platform.request("f"))
    assert platform.committed_bytes == 0


def test_standing_pool_memory_for_hot_ratio_policy():
    env, platform = make_platform(policy=FixedHotRatioPolicy(0.97, Rng(0), hot_pool_size=4))
    platform.register_function("f", [compute_phase(0.001)])
    assert platform.committed_bytes == 4 * FIRECRACKER_SNAPSHOT.sandbox_memory_bytes


def test_active_memory_tracks_running_requests():
    env, platform = make_platform(policy=KeepAlivePolicy(keep_alive_seconds=0.0))
    platform.register_function("f", [compute_phase(0.01)])
    platform.request("f")
    env.run(until=env.timeout(0.005))
    assert platform.active_bytes == FIRECRACKER_SNAPSHOT.sandbox_memory_bytes
    env.run()
    assert platform.active_bytes == 0


def test_per_function_latencies_tracked():
    env, platform = make_platform()
    platform.register_function("a", [compute_phase(0.001)])
    platform.register_function("b", [compute_phase(0.002)])
    env.run(until=env.all_of([platform.request("a"), platform.request("b")]))
    assert platform.per_function_latencies["a"].count == 1
    assert platform.per_function_latencies["b"].count == 1


def test_duplicate_function_rejected():
    _env, platform = make_platform()
    platform.register_function("f", [compute_phase(0.001)])
    with pytest.raises(ValueError):
        platform.register_function("f", [compute_phase(0.001)])


def test_unknown_function_rejected():
    _env, platform = make_platform()
    with pytest.raises(KeyError):
        platform.request("ghost")


def test_function_model_aggregates():
    from repro.baselines import FunctionModel
    model = FunctionModel("f", (compute_phase(1.0), io_phase(2.0), compute_phase(0.5)))
    assert model.compute_seconds == 1.5
    assert model.io_seconds == 2.0
