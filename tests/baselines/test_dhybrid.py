"""Tests for the D-hybrid ablation platform (§7.5)."""

import pytest

from repro.baselines import DHybridPlatform, compute_phase, io_phase
from repro.sim import Environment


def test_config_validation():
    env = Environment()
    with pytest.raises(ValueError):
        DHybridPlatform(env, cores=0)
    with pytest.raises(ValueError):
        DHybridPlatform(env, cores=2, threads_per_core=0)
    with pytest.raises(ValueError):
        DHybridPlatform(env, cores=2, threads_per_core=2, pinned=True)


def test_pinned_compute_runs_at_native_speed():
    env = Environment()
    platform = DHybridPlatform(env, cores=2, threads_per_core=1, pinned=True)
    platform.register_function("matmul", [compute_phase(0.01)])
    record = env.run(until=platform.request("matmul"))
    assert record.latency == pytest.approx(0.01, abs=0.001)


def test_pinned_io_holds_core_idle():
    env = Environment()
    platform = DHybridPlatform(env, cores=1, threads_per_core=1, pinned=True)
    platform.register_function("fetch", [io_phase(0.05)])
    first = platform.request("fetch")
    second = platform.request("fetch")
    env.run(until=env.all_of([first, second]))
    # Pinned: the io wait holds the only core, so requests serialize.
    assert env.now >= 0.10


def test_unpinned_io_overlaps():
    env = Environment()
    platform = DHybridPlatform(env, cores=1, threads_per_core=4, pinned=False)
    platform.register_function("fetch", [io_phase(0.05)])
    requests = [platform.request("fetch") for _ in range(4)]
    env.run(until=env.all_of(requests))
    # 4 threads per core: all four io waits overlap.
    assert env.now < 0.08


def test_unpinned_compute_contends():
    env = Environment()
    pinned_env = Environment()
    unpinned = DHybridPlatform(env, cores=2, threads_per_core=4, pinned=False)
    pinned = DHybridPlatform(pinned_env, cores=2, threads_per_core=1, pinned=True)
    for platform in (unpinned, pinned):
        platform.register_function("matmul", [compute_phase(0.01)])
    # 8 concurrent compute tasks.
    env.run(until=env.all_of([unpinned.request("matmul") for _ in range(8)]))
    unpinned_makespan = env.now
    pinned_env.run(until=pinned_env.all_of([pinned.request("matmul") for _ in range(8)]))
    pinned_makespan = pinned_env.now
    # Same total work, but unpinned pays context switches under
    # oversubscription.
    assert unpinned_makespan >= pinned_makespan


def test_every_request_is_cold_start():
    env = Environment()
    platform = DHybridPlatform(env, cores=2)
    platform.register_function("f", [compute_phase(0.001)])
    record = env.run(until=platform.request("f"))
    assert record.cold
    # Dandelion-class creation cost: sub-millisecond, not Firecracker's.
    assert record.latency < 0.005


def test_admission_limits_concurrency():
    env = Environment()
    platform = DHybridPlatform(env, cores=1, threads_per_core=2, pinned=False)
    platform.register_function("fetch", [io_phase(0.05)])
    requests = [platform.request("fetch") for _ in range(4)]
    env.run(until=env.all_of(requests))
    # Only 2 threads admitted at a time: two waves of 50ms io.
    assert env.now >= 0.10


def test_unknown_function_rejected():
    env = Environment()
    platform = DHybridPlatform(env, cores=1)
    with pytest.raises(KeyError):
        platform.request("ghost")


def test_duplicate_function_rejected():
    env = Environment()
    platform = DHybridPlatform(env, cores=1)
    platform.register_function("f", [compute_phase(0.001)])
    with pytest.raises(ValueError):
        platform.register_function("f", [compute_phase(0.001)])
