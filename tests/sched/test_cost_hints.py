"""CostAware routing: static width hints drive pack-vs-spread placement."""

import pytest

from repro.analysis.dataflow import CompositionCostSummary
from repro.sched import ROUTING_POLICIES, CostAware, StaticHints, make_routing_policy
from repro.sched.snapshots import ClusterSnapshot


def summary(name, width, bounded=True):
    return CompositionCostSummary(
        composition=name,
        node_count=width,
        edge_count=max(width - 1, 0),
        critical_path_depth=1,
        critical_path_seconds=0.001 * width,
        total_compute_seconds=0.001 * width,
        max_parallel_width=width,
        peak_inflight_bytes=1,
        statically_bounded=bounded,
    )


def snap(composition, loads, healthy=None):
    indices = tuple(range(len(loads))) if healthy is None else healthy
    return ClusterSnapshot(
        indices,
        len(loads),
        [True] * len(loads),
        list(loads),
        composition,
        (),
        lambda index: (),
    )


@pytest.fixture
def policy():
    p = CostAware()
    p.ingest_summary(summary("chain", 1))
    p.ingest_summary(summary("fan", 8))
    p.ingest_summary(summary("dynamic", 1, bounded=False))
    return p


def test_registered_by_name():
    assert ROUTING_POLICIES["cost"] is CostAware
    assert isinstance(make_routing_policy("cost", None), CostAware)


def test_narrow_packs_onto_most_loaded(policy):
    assert policy.decide(snap("chain", [3, 1, 0])) == 0


def test_narrow_tie_breaks_by_index(policy):
    assert policy.decide(snap("chain", [2, 2, 0])) == 0


def test_narrow_respects_pack_limit(policy):
    # Workers 0 and 1 are at the default pack_limit of 8: degrade to
    # least-outstanding instead of overloading them further.
    assert policy.decide(snap("chain", [8, 9, 2])) == 2


def test_all_full_degrades_to_least_outstanding(policy):
    assert policy.decide(snap("chain", [9, 8, 10])) == 1


def test_wide_spreads_least_outstanding(policy):
    assert policy.decide(snap("fan", [3, 1, 0])) == 2


def test_unbounded_spreads(policy):
    assert policy.decide(snap("dynamic", [3, 1, 0])) == 2


def test_unknown_composition_spreads(policy):
    assert policy.decide(snap("mystery", [3, 1, 0])) == 2


def test_no_healthy_returns_none(policy):
    assert policy.decide(snap("chain", [0, 0], healthy=())) is None


def test_width_threshold_boundary():
    policy = CostAware(wide_width=4)
    policy.ingest_summary(summary("w3", 3))
    policy.ingest_summary(summary("w4", 4))
    assert policy.decide(snap("w3", [2, 0])) == 0  # narrow: pack
    assert policy.decide(snap("w4", [2, 0])) == 1  # wide: spread


def test_decisions_are_deterministic(policy):
    loads_sequence = [[3, 1, 0], [0, 0, 0], [5, 5, 5], [2, 7, 1]]
    first = [policy.decide(snap("chain", loads)) for loads in loads_sequence]
    second = [policy.decide(snap("chain", loads)) for loads in loads_sequence]
    assert first == second


def test_constructor_validation():
    with pytest.raises(ValueError):
        CostAware(wide_width=0)
    with pytest.raises(ValueError):
        CostAware(pack_limit=0)


def test_static_hints_store():
    hints = StaticHints()
    assert len(hints) == 0 and "x" not in hints
    hints.ingest(summary("x", 2))
    assert len(hints) == 1 and "x" in hints
    assert hints.get("x").max_parallel_width == 2
    assert hints.get("absent") is None


def test_cluster_manager_ingests_on_registration():
    from repro.analysis.runner import demo_registry
    from repro.cluster.manager import ClusterManager
    from repro.composition.printer import composition_to_dsl

    registry = demo_registry()
    manager = ClusterManager(worker_count=3, seed=7, policy="cost")
    for name in registry.function_names:
        manager.register_function(registry.function(name))
    for name in registry.composition_names:
        manager.register_composition(composition_to_dsl(registry.composition(name)))
    hints = manager.routing_policy.hints
    assert set(registry.composition_names) <= {
        name for name in registry.composition_names if name in hints
    }
    assert len(hints) == len(registry.composition_names)


def test_other_policies_skip_ingestion():
    from repro.cluster.manager import ClusterManager

    manager = ClusterManager(worker_count=2, seed=7, policy="least_loaded")
    assert not hasattr(manager.routing_policy, "ingest_summary")
