"""Unit tests for the sandbox, pod-scaling, and core-scheduling policies."""

import math

import pytest

from repro.cluster.autoscaler import KnativeConfig
from repro.controlplane import PiConfig
from repro.sched.cores import PiCorePolicy, StaticCorePolicy
from repro.sched.sandbox import FixedHotRatioPolicy, KeepAlivePolicy
from repro.sched.scaling import KpaScalingPolicy
from repro.sched.snapshots import CoreSnapshot, PoolSnapshot, SandboxSnapshot
from repro.sim.distributions import Rng


def sandbox_view(idle_count=0):
    return SandboxSnapshot(now=1.0, function="f", idle_count=idle_count)


# -- sandbox policies ---------------------------------------------------------


def test_fixed_hot_ratio_extremes():
    always_hot = FixedHotRatioPolicy(1.0, Rng(0))
    always_cold = FixedHotRatioPolicy(0.0, Rng(0))
    for _ in range(20):
        assert always_hot.decide(sandbox_view()).kind == "hot"
        assert always_cold.decide(sandbox_view()).kind == "cold"


def test_fixed_hot_ratio_decisions_are_seeded():
    first = [FixedHotRatioPolicy(0.6, Rng(4)).decide(sandbox_view()).kind
             for _ in range(1)]
    # Same seed, same stream of decisions.
    a = FixedHotRatioPolicy(0.6, Rng(4))
    b = FixedHotRatioPolicy(0.6, Rng(4))
    kinds_a = [a.decide(sandbox_view()).kind for _ in range(100)]
    kinds_b = [b.decide(sandbox_view()).kind for _ in range(100)]
    assert kinds_a == kinds_b
    assert {"hot", "cold"} >= set(kinds_a + first)


def test_fixed_hot_ratio_standing_pool_and_teardown():
    policy = FixedHotRatioPolicy(0.97, Rng(0), hot_pool_size=8)
    assert policy.standing_sandboxes("f") == 8
    assert FixedHotRatioPolicy(0.0, Rng(0)).standing_sandboxes("f") == 0
    assert not policy.keep_after_use()


def test_fixed_hot_ratio_validates_ratio():
    with pytest.raises(ValueError):
        FixedHotRatioPolicy(1.5, Rng(0))


def test_keep_alive_decides_reuse_with_window():
    policy = KeepAlivePolicy(30.0)
    choice = policy.decide(sandbox_view(idle_count=2))
    assert choice.kind == "reuse"
    assert choice.keep_alive_seconds == 30.0
    assert policy.keep_after_use()


def test_keep_alive_zero_window_drops_sandboxes():
    assert not KeepAlivePolicy(0.0).keep_after_use()
    with pytest.raises(ValueError):
        KeepAlivePolicy(-1.0)


# -- KPA scaling policy -------------------------------------------------------


def pool_view(stable, panic, provisioned, ready=0, busy=0):
    return PoolSnapshot("f", 10.0, ready, busy, provisioned, stable, panic)


def test_kpa_desired_is_ceil_of_concurrency_over_target():
    policy = KpaScalingPolicy(KnativeConfig(target_concurrency=2.0))
    choice = policy.decide(pool_view(stable=5.0, panic=0.0, provisioned=3))
    assert choice.desired_pods == math.ceil(5.0 / 2.0)
    assert not choice.in_panic


def test_kpa_panic_entry_boundary_is_inclusive():
    # Panic triggers at panic_concurrency >= threshold * capacity;
    # capacity = provisioned * target = 2 pods * 1.0 = 2, threshold 2.0.
    policy = KpaScalingPolicy(KnativeConfig(target_concurrency=1.0, panic_threshold=2.0))
    at_boundary = policy.decide(pool_view(stable=1.0, panic=4.0, provisioned=2))
    assert at_boundary.in_panic
    below = policy.decide(pool_view(stable=1.0, panic=4.0 - 1e-9, provisioned=2))
    assert not below.in_panic


def test_kpa_panic_uses_max_of_windows():
    policy = KpaScalingPolicy(KnativeConfig(target_concurrency=1.0, panic_threshold=2.0))
    # In panic the burstier window drives desired pods upward...
    choice = policy.decide(pool_view(stable=3.0, panic=8.0, provisioned=1))
    assert choice.in_panic
    assert choice.desired_pods == 8
    # ...but a stale high stable average still wins if it is larger.
    choice = policy.decide(pool_view(stable=9.0, panic=8.0, provisioned=1))
    assert choice.desired_pods == 9


def test_kpa_panic_exit_when_capacity_catches_up():
    # Same panic concurrency, more provisioned pods: capacity doubled,
    # so the 2x threshold is no longer crossed and panic exits.
    policy = KpaScalingPolicy(KnativeConfig(target_concurrency=1.0, panic_threshold=2.0))
    assert policy.decide(pool_view(stable=4.0, panic=4.0, provisioned=2)).in_panic
    assert not policy.decide(pool_view(stable=4.0, panic=4.0, provisioned=4)).in_panic


def test_kpa_zero_provisioned_counts_as_one_pod_capacity():
    # Scale-to-zero pools must still be able to panic on the first burst.
    policy = KpaScalingPolicy(KnativeConfig(target_concurrency=1.0, panic_threshold=2.0))
    assert policy.decide(pool_view(stable=0.0, panic=2.0, provisioned=0)).in_panic


def test_kpa_caps_at_max_pods():
    policy = KpaScalingPolicy(
        KnativeConfig(target_concurrency=1.0, max_pods_per_function=5)
    )
    choice = policy.decide(pool_view(stable=40.0, panic=0.0, provisioned=1))
    assert choice.desired_pods == 5


def test_kpa_acquire_warm_takes_ready_pods():
    policy = KpaScalingPolicy(KnativeConfig())
    assert policy.acquire_warm(sandbox_view(idle_count=1))
    assert not policy.acquire_warm(sandbox_view(idle_count=0))


# -- core policies ------------------------------------------------------------


def core_view(compute_growth, comm_growth):
    return CoreSnapshot(
        now=0.03,
        compute_queue=10,
        comm_queue=10,
        compute_growth=compute_growth,
        comm_growth=comm_growth,
        compute_cores=2,
        comm_cores=2,
        min_cores=1,
    )


def test_pi_core_policy_follows_queue_growth():
    policy = PiCorePolicy(PiConfig())
    assert policy.decide(core_view(10.0, 0.0)) == +1
    assert PiCorePolicy(PiConfig()).decide(core_view(0.0, 10.0)) == -1
    assert PiCorePolicy(PiConfig()).decide(core_view(5.0, 5.0)) == 0


def test_pi_core_policy_reset_clears_controller_state():
    policy = PiCorePolicy(PiConfig())
    policy.decide(core_view(10.0, 0.0))
    assert policy.controller.integral != 0.0
    policy.reset()
    assert policy.controller.integral == 0.0
    assert policy.controller.last_signal == 0.0


def test_pi_core_policy_wraps_supplied_controller():
    from repro.controlplane import PiController

    controller = PiController(PiConfig(deadband=100.0))
    policy = PiCorePolicy(controller=controller)
    assert policy.controller is controller
    assert policy.decide(core_view(50.0, 0.0)) == 0  # inside the wide deadband


def test_static_core_policy_never_moves():
    policy = StaticCorePolicy()
    for growths in [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)]:
        assert policy.decide(core_view(*growths)) == 0
