"""Unit tests for the repro.sched routing policies over synthetic snapshots."""

import pytest

from repro.sched.routing import (
    JSQ,
    ROUTING_POLICIES,
    LeastOutstanding,
    LocalityAware,
    RandomRouting,
    RoundRobin,
    RoutingPolicy,
    make_routing_policy,
)
from repro.sched.snapshots import ClusterSnapshot
from repro.sim.distributions import Rng


def snap(in_flight, healthy=None, warm=None, functions=()):
    """Build a ClusterSnapshot from per-worker in-flight counts."""
    count = len(in_flight)
    healthy_set = set(range(count) if healthy is None else healthy)
    warm = warm or {}
    return ClusterSnapshot(
        tuple(sorted(healthy_set)),
        count,
        {index: index in healthy_set for index in range(count)},
        dict(enumerate(in_flight)),
        "comp" if functions else None,
        tuple(functions),
        lambda index: warm.get(index, frozenset()),
    )


# -- round robin --------------------------------------------------------------


def test_round_robin_rotates_over_all_workers():
    policy = RoundRobin()
    view = snap([0, 0, 0])
    assert [policy.decide(view) for _ in range(6)] == [0, 1, 2, 0, 1, 2]


def test_round_robin_skips_unhealthy():
    policy = RoundRobin()
    view = snap([0, 0, 0], healthy={0, 2})
    assert [policy.decide(view) for _ in range(4)] == [0, 2, 0, 2]


def test_round_robin_phase_survives_membership_change():
    # The legacy implementation advanced one shared counter modulo the
    # *current healthy count*, so a failure shifted every later turn.
    # The cursor now walks the stable index ring: surviving workers
    # keep exactly their position in the rotation.
    policy = RoundRobin()
    all_up = snap([0, 0, 0, 0])
    assert [policy.decide(all_up) for _ in range(2)] == [0, 1]
    one_down = snap([0, 0, 0, 0], healthy={0, 1, 2})
    assert [policy.decide(one_down) for _ in range(4)] == [2, 0, 1, 2]
    # Worker 3 rejoins at its old index position: the cursor was parked
    # on its slot, so it is next in line, then the ring continues.
    assert [policy.decide(all_up) for _ in range(4)] == [3, 0, 1, 2]


def test_round_robin_empty_fleet():
    policy = RoundRobin()
    assert policy.decide(snap([0, 0], healthy=set())) is None


# -- least outstanding --------------------------------------------------------


def test_least_outstanding_picks_min_in_flight():
    assert LeastOutstanding().decide(snap([3, 1, 2])) == 1


def test_least_outstanding_breaks_ties_by_index():
    assert LeastOutstanding().decide(snap([2, 1, 1])) == 1


def test_least_outstanding_ignores_unhealthy():
    assert LeastOutstanding().decide(snap([0, 5, 3], healthy={1, 2})) == 2


# -- random -------------------------------------------------------------------


def test_random_only_picks_healthy():
    policy = RandomRouting(Rng(3))
    view = snap([0, 0, 0, 0], healthy={1, 3})
    for _ in range(50):
        assert policy.decide(view) in (1, 3)


def test_random_requires_rng():
    with pytest.raises(ValueError):
        RandomRouting(None)


# -- JSQ ----------------------------------------------------------------------


def test_jsq_validates_d():
    with pytest.raises(ValueError):
        JSQ(Rng(0), d=0)


def test_jsq_picks_least_loaded_of_sample():
    # Fixed seed: the sampled pair is deterministic, and the decision
    # must be the less-loaded member of that pair.
    rng = Rng(11)
    policy = JSQ(Rng(11), d=2)
    view = snap([4, 3, 2, 1, 0, 5])
    for _ in range(20):
        expected_pair = rng.sample(tuple(range(6)), 2)
        expected = min(expected_pair, key=lambda i: (view.in_flight(i), i))
        assert policy.decide(view) == expected


def test_jsq_with_d_at_fleet_size_consumes_no_rng():
    rng = Rng(5)
    policy = JSQ(rng, d=4)
    assert policy.decide(snap([2, 0, 1, 3])) == 1
    # No draw happened: the stream is still at its origin.
    assert rng.uniform() == Rng(5).uniform()


# -- locality -----------------------------------------------------------------


def test_locality_validates_margin():
    with pytest.raises(ValueError):
        LocalityAware(spill_margin=0)


def test_locality_prefers_warm_worker():
    view = snap(
        [0, 1, 0],
        warm={1: {"f1"}},
        functions=("f1",),
    )
    # Worker 1 is warmer despite carrying one more in-flight request.
    assert LocalityAware().decide(view) == 1


def test_locality_ranks_by_warm_count():
    view = snap(
        [0, 0, 0],
        warm={0: {"f1"}, 2: {"f1", "f2"}},
        functions=("f1", "f2"),
    )
    assert LocalityAware().decide(view) == 2


def test_locality_without_composition_falls_back_to_least_outstanding():
    assert LocalityAware().decide(snap([2, 0, 1])) == 1


def test_locality_without_warm_worker_falls_back_to_least_outstanding():
    view = snap([2, 0, 1], functions=("f1",))
    assert LocalityAware().decide(view) == 1


def test_locality_spills_when_warm_worker_is_overloaded():
    policy = LocalityAware(spill_margin=3)
    # Below the margin the warm worker holds the traffic...
    held = snap([0, 2, 0], warm={1: {"f1"}}, functions=("f1",))
    assert policy.decide(held) == 1
    # ...at the margin it spills to plain least-outstanding.
    spilled = snap([0, 3, 0], warm={1: {"f1"}}, functions=("f1",))
    assert policy.decide(spilled) == 0


def test_locality_spill_ignores_unhealthy_baseline():
    # The spill comparison is against the least-loaded *healthy* worker.
    policy = LocalityAware(spill_margin=3)
    view = snap(
        [0, 2, 2],
        healthy={1, 2},
        warm={1: {"f1"}},
        functions=("f1",),
    )
    # Worker 0 (in_flight 0) is down, so the lightest healthy load is 2
    # and the warm worker is not considered overloaded.
    assert policy.decide(view) == 1


# -- registry / factory -------------------------------------------------------


def test_registry_maps_names_to_classes():
    assert set(ROUTING_POLICIES) == {
        "round_robin",
        "least_loaded",
        "random",
        "jsq",
        "locality",
        "gray",
        "cost",
    }
    for name, cls in ROUTING_POLICIES.items():
        assert issubclass(cls, RoutingPolicy)
        assert cls.name == name


def test_make_routing_policy_resolves_names():
    for name in ROUTING_POLICIES:
        policy = make_routing_policy(name, Rng(0))
        assert isinstance(policy, ROUTING_POLICIES[name])


def test_make_routing_policy_passes_instances_through():
    policy = RoundRobin()
    assert make_routing_policy(policy, Rng(0)) is policy


def test_make_routing_policy_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown policy"):
        make_routing_policy("fifo", Rng(0))


def test_make_routing_policy_rejects_wrong_type():
    with pytest.raises(TypeError):
        make_routing_policy(42, Rng(0))
