"""Property tests: the determinism contract every routing policy signs.

docs/scheduling.md: a policy's decisions must be a pure function of
(its constructor arguments, the sequence of snapshots it has seen).
These tests feed every registered policy a seeded, varied snapshot
stream twice and require identical decision sequences — and pin the
JSQ(d >= fleet) == LeastOutstanding degeneration decision-for-decision.
"""

import pytest

from repro.sched.routing import JSQ, ROUTING_POLICIES, LeastOutstanding
from repro.sched.snapshots import ClusterSnapshot
from repro.sim.distributions import Rng

WORKERS = 8
STEPS = 300


def snapshot_stream(seed: int, workers: int = WORKERS, steps: int = STEPS):
    """Deterministic sequence of varied cluster views: shifting load,
    occasional failures, growing warm caches."""
    rng = Rng(seed)
    warm = {index: set() for index in range(workers)}
    for step in range(steps):
        in_flight = {index: rng.randint(0, 6) for index in range(workers)}
        healthy_set = set(range(workers))
        if rng.bernoulli(0.2):
            healthy_set.discard(rng.randint(0, workers - 1))
        if rng.bernoulli(0.3):
            warm[rng.randint(0, workers - 1)].add("f1")
        yield ClusterSnapshot(
            tuple(sorted(healthy_set)),
            workers,
            {index: index in healthy_set for index in range(workers)},
            in_flight,
            "comp",
            ("f1", "f2"),
            lambda index: warm[index],
        )


def decisions_of(policy, seed: int) -> list:
    return [policy.decide(view) for view in snapshot_stream(seed)]


@pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
def test_policy_reproducible_run_to_run(name):
    cls = ROUTING_POLICIES[name]
    first = decisions_of(cls.build(Rng(42)), seed=7)
    second = decisions_of(cls.build(Rng(42)), seed=7)
    assert first == second
    # The stream routed somewhere, and only to healthy workers.
    assert all(choice is not None for choice in first)


@pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
def test_policy_decisions_respect_health(name):
    cls = ROUTING_POLICIES[name]
    policy = cls.build(Rng(9))
    for view in snapshot_stream(seed=21):
        choice = policy.decide(view)
        assert view.is_healthy(choice)


@pytest.mark.parametrize("d", [WORKERS, WORKERS + 1, WORKERS * 3])
def test_jsq_with_d_at_or_above_fleet_matches_least_outstanding(d):
    jsq = JSQ(Rng(3), d=d)
    reference = LeastOutstanding()
    jsq_choices = decisions_of(jsq, seed=13)
    reference_choices = decisions_of(reference, seed=13)
    assert jsq_choices == reference_choices
