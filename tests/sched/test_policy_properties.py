"""Property tests: the determinism contract every routing policy signs.

docs/scheduling.md: a policy's decisions must be a pure function of
(its constructor arguments, the sequence of snapshots it has seen).
These tests feed every registered policy a seeded, varied snapshot
stream twice and require identical decision sequences — and pin the
JSQ(d >= fleet) == LeastOutstanding degeneration decision-for-decision.
"""

import pytest

from repro.sched.routing import JSQ, ROUTING_POLICIES, LeastOutstanding
from repro.sched.snapshots import ClusterSnapshot
from repro.sim.distributions import Rng

WORKERS = 8
STEPS = 300


def snapshot_stream(seed: int, workers: int = WORKERS, steps: int = STEPS):
    """Deterministic sequence of varied cluster views: shifting load,
    occasional failures, growing warm caches."""
    rng = Rng(seed)
    warm = {index: set() for index in range(workers)}
    for step in range(steps):
        in_flight = {index: rng.randint(0, 6) for index in range(workers)}
        healthy_set = set(range(workers))
        if rng.bernoulli(0.2):
            healthy_set.discard(rng.randint(0, workers - 1))
        if rng.bernoulli(0.3):
            warm[rng.randint(0, workers - 1)].add("f1")
        yield ClusterSnapshot(
            tuple(sorted(healthy_set)),
            workers,
            {index: index in healthy_set for index in range(workers)},
            in_flight,
            "comp",
            ("f1", "f2"),
            lambda index: warm[index],
        )


def decisions_of(policy, seed: int) -> list:
    return [policy.decide(view) for view in snapshot_stream(seed)]


@pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
def test_policy_reproducible_run_to_run(name):
    cls = ROUTING_POLICIES[name]
    first = decisions_of(cls.build(Rng(42)), seed=7)
    second = decisions_of(cls.build(Rng(42)), seed=7)
    assert first == second
    # The stream routed somewhere, and only to healthy workers.
    assert all(choice is not None for choice in first)


@pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
def test_policy_decisions_respect_health(name):
    cls = ROUTING_POLICIES[name]
    policy = cls.build(Rng(9))
    for view in snapshot_stream(seed=21):
        choice = policy.decide(view)
        assert view.is_healthy(choice)


@pytest.mark.parametrize("d", [WORKERS, WORKERS + 1, WORKERS * 3])
def test_jsq_with_d_at_or_above_fleet_matches_least_outstanding(d):
    jsq = JSQ(Rng(3), d=d)
    reference = LeastOutstanding()
    jsq_choices = decisions_of(jsq, seed=13)
    reference_choices = decisions_of(reference, seed=13)
    assert jsq_choices == reference_choices


# -- gray-failure (degraded fleet) contract --------------------------------
#
# When the cluster manager runs a latency health tracker, snapshots carry
# a preferred ring (healthy minus quarantined), per-worker EWMA scores and
# quarantine flags.  Every registered policy must (a) keep its traffic off
# quarantined workers while a non-quarantined one exists, (b) still route
# somewhere when the whole fleet is quarantined, and (c) stay a pure
# function of (ctor args, snapshot stream) with the health fields present.


def degraded_snapshot_stream(
    seed: int,
    workers: int = WORKERS,
    steps: int = STEPS,
    all_quarantined: bool = False,
):
    """Seeded snapshots with latency health populated.

    In-flight counts are kept within [0, 2] so the load spread stays
    below every spill margin (default 3): the bounded spill-back in
    gray/locality is deliberately allowed to touch quarantined workers
    under imbalance, so the no-quarantine property is asserted in the
    balanced regime where it is unconditional.
    """
    rng = Rng(seed)
    for _ in range(steps):
        in_flight = {index: rng.randint(0, 2) for index in range(workers)}
        healthy_set = set(range(workers))
        if rng.bernoulli(0.2):
            healthy_set.discard(rng.randint(0, workers - 1))
        if all_quarantined:
            quarantined_set = set(healthy_set)
        else:
            quarantined_set = set()
            for index in sorted(healthy_set):
                if rng.bernoulli(0.3):
                    quarantined_set.add(index)
            # Keep at least one non-quarantined healthy worker so the
            # "never pick quarantined" property is well-defined.
            if quarantined_set == healthy_set and quarantined_set:
                quarantined_set.discard(min(quarantined_set))
        healthy = tuple(sorted(healthy_set))
        preferred = tuple(
            index for index in healthy if index not in quarantined_set
        )
        scores = {
            index: 10.0 if index in quarantined_set else 1.0 + 0.01 * index
            for index in range(workers)
        }
        yield ClusterSnapshot(
            healthy,
            workers,
            {index: index in healthy_set for index in range(workers)},
            in_flight,
            "comp",
            ("f1", "f2"),
            None,
            preferred,
            scores,
            {index: index in quarantined_set for index in range(workers)},
        )


@pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
def test_policy_avoids_quarantined_while_alternatives_exist(name):
    policy = ROUTING_POLICIES[name].build(Rng(5))
    routed = 0
    for view in degraded_snapshot_stream(seed=31):
        choice = policy.decide(view)
        if not view.healthy:
            assert choice is None
            continue
        routed += 1
        assert view.is_healthy(choice)
        assert not view.is_quarantined(choice), (name, choice)
    assert routed > 0


@pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
def test_policy_still_routes_when_all_quarantined(name):
    policy = ROUTING_POLICIES[name].build(Rng(6))
    routed = 0
    for view in degraded_snapshot_stream(seed=47, all_quarantined=True):
        choice = policy.decide(view)
        if not view.healthy:
            assert choice is None
            continue
        routed += 1
        # Degraded-fleet liveness: some healthy worker, quarantined or
        # not, must take the invocation.
        assert view.is_healthy(choice)
    assert routed > 0


@pytest.mark.parametrize("name", sorted(ROUTING_POLICIES))
def test_policy_reproducible_with_health_scores(name):
    cls = ROUTING_POLICIES[name]

    def run():
        policy = cls.build(Rng(42))
        return [policy.decide(view) for view in degraded_snapshot_stream(seed=7)]

    assert run() == run()
