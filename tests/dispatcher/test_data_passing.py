"""Tests for copy vs remap (zero-copy) data passing (§6.1)."""

import pytest

from repro.functions import compute_function, read_all_bytes, write_item
from repro.worker import WorkerConfig, WorkerNode


@compute_function(compute_cost=1e-4, memory_limit=64 << 20)
def produce_large(vfs):
    write_item(vfs, "payload", "blob", b"z" * 300_000)


@compute_function(compute_cost=1e-4, memory_limit=64 << 20)
def consume_large(vfs):
    data = read_all_bytes(vfs, "payload")
    write_item(vfs, "result", "size", str(len(data)).encode())


PIPELINE = """
composition big_pipe {
    compute prod uses produce_large in(seed) out(payload);
    compute cons uses consume_large in(payload) out(result);
    input seed -> prod.seed;
    prod.payload -> cons.payload;
    output cons.result -> result;
}
"""


def run_pipeline(data_passing):
    worker = WorkerNode(
        WorkerConfig(total_cores=4, control_plane_enabled=False, data_passing=data_passing)
    )
    worker.frontend.register_function(produce_large)
    worker.frontend.register_function(consume_large)
    worker.frontend.register_composition(PIPELINE)
    result = worker.invoke_and_run("big_pipe", {"seed": b""})
    assert result.ok
    assert result.output("result").item("size").data == b"300000"
    return worker, result


def test_both_modes_produce_identical_results():
    _w1, copy_result = run_pipeline("copy")
    _w2, remap_result = run_pipeline("remap")
    assert (
        copy_result.output("result").item("size").data
        == remap_result.output("result").item("size").data
    )


def test_remap_is_faster_for_large_payloads():
    _w1, copy_result = run_pipeline("copy")
    _w2, remap_result = run_pipeline("remap")
    # The consumer skips the per-byte input copy into its sandbox.
    assert remap_result.latency < copy_result.latency


def test_remap_commits_less_memory():
    copy_worker, _r1 = run_pipeline("copy")
    remap_worker, _r2 = run_pipeline("remap")
    # Copy mode duplicates the 300 kB payload into the consumer's
    # context while the producer's context still holds it.
    assert remap_worker.memory.peak_bytes < copy_worker.memory.peak_bytes


def test_invalid_mode_rejected():
    from repro.composition import Registry
    from repro.dispatcher import Dispatcher
    from repro.sim import Environment

    with pytest.raises(ValueError, match="data_passing"):
        worker = WorkerNode(WorkerConfig(total_cores=4))
        Dispatcher(
            worker.env, Registry(), worker.compute_group, worker.comm_group,
            data_passing="teleport",
        )
