"""Tests for all/each/key instance expansion and output merging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.composition import Distribution
from repro.data import DataItem, DataSet
from repro.dispatcher import expand_instances, merge_instance_outputs
from repro.errors import InvocationError

ALL = Distribution.ALL
EACH = Distribution.EACH
KEY = Distribution.KEY


def items(*specs):
    return [DataItem(ident, data, key=key) for ident, data, key in specs]


def test_all_single_instance():
    data = DataSet("src", items(("a", b"1", None), ("b", b"2", None)))
    plans = expand_instances("n", [("in", ALL, data)])
    assert len(plans) == 1
    assert plans[0].input_sets[0].ident == "in"
    assert len(plans[0].input_sets[0]) == 2


def test_no_deliveries_single_empty_instance():
    plans = expand_instances("n", [])
    assert len(plans) == 1
    assert plans[0].input_sets == []


def test_each_one_instance_per_item():
    data = DataSet("src", items(("a", b"1", None), ("b", b"2", None), ("c", b"3", None)))
    plans = expand_instances("n", [("in", EACH, data)])
    assert len(plans) == 3
    assert [p.input_sets[0][0].data for p in plans] == [b"1", b"2", b"3"]
    assert all(len(p.input_sets[0]) == 1 for p in plans)


def test_each_plus_broadcast():
    each_data = DataSet("s1", items(("a", b"1", None), ("b", b"2", None)))
    all_data = DataSet("s2", items(("cfg", b"shared", None)))
    plans = expand_instances("n", [("part", EACH, each_data), ("config", ALL, all_data)])
    assert len(plans) == 2
    for plan in plans:
        names = {s.ident for s in plan.input_sets}
        assert names == {"part", "config"}
        config = [s for s in plan.input_sets if s.ident == "config"][0]
        assert config.item("cfg").data == b"shared"


def test_two_each_edges_zipped():
    left = DataSet("l", items(("a", b"1", None), ("b", b"2", None)))
    right = DataSet("r", items(("x", b"9", None), ("y", b"8", None)))
    plans = expand_instances("n", [("left", EACH, left), ("right", EACH, right)])
    assert len(plans) == 2
    assert plans[0].input_sets[0][0].data == b"1"
    assert plans[0].input_sets[1][0].data == b"9"
    assert plans[1].input_sets[0][0].data == b"2"
    assert plans[1].input_sets[1][0].data == b"8"


def test_each_count_mismatch_rejected():
    left = DataSet("l", items(("a", b"1", None)))
    right = DataSet("r", items(("x", b"9", None), ("y", b"8", None)))
    with pytest.raises(InvocationError, match="mismatched item counts"):
        expand_instances("n", [("left", EACH, left), ("right", EACH, right)])


def test_key_groups_items():
    data = DataSet("src", items(
        ("a", b"1", "k1"), ("b", b"2", "k2"), ("c", b"3", "k1"),
    ))
    plans = expand_instances("n", [("in", KEY, data)])
    assert len(plans) == 2
    assert plans[0].key == "k1"
    assert [i.ident for i in plans[0].input_sets[0]] == ["a", "c"]
    assert plans[1].key == "k2"
    assert [i.ident for i in plans[1].input_sets[0]] == ["b"]


def test_key_none_key_is_its_own_group():
    data = DataSet("src", items(("a", b"1", "k"), ("b", b"2", None)))
    plans = expand_instances("n", [("in", KEY, data)])
    assert len(plans) == 2


def test_two_key_edges_matched_by_key():
    left = DataSet("l", items(("a", b"1", "k1"), ("b", b"2", "k2")))
    right = DataSet("r", items(("x", b"9", "k2"), ("y", b"8", "k1")))
    plans = expand_instances("n", [("left", KEY, left), ("right", KEY, right)])
    assert len(plans) == 2
    first = plans[0]
    assert first.key == "k1"
    assert first.input_sets[0].item("a").data == b"1"
    assert first.input_sets[1].item("y").data == b"8"


def test_key_mismatch_rejected():
    left = DataSet("l", items(("a", b"1", "k1")))
    right = DataSet("r", items(("x", b"9", "other")))
    with pytest.raises(InvocationError, match="mismatched key sets"):
        expand_instances("n", [("left", KEY, left), ("right", KEY, right)])


def test_each_key_mix_rejected():
    left = DataSet("l", items(("a", b"1", None)))
    right = DataSet("r", items(("x", b"9", "k")))
    with pytest.raises(InvocationError, match="mixing"):
        expand_instances("n", [("left", EACH, left), ("right", KEY, right)])


def test_merge_outputs_simple_union():
    merged = merge_instance_outputs(
        ["out"],
        [
            [DataSet("out", items(("a", b"1", None)))],
            [DataSet("out", items(("b", b"2", None)))],
        ],
    )
    assert {i.ident for i in merged["out"]} == {"a", "b"}


def test_merge_outputs_collision_renamed():
    merged = merge_instance_outputs(
        ["out"],
        [
            [DataSet("out", items(("result", b"1", None)))],
            [DataSet("out", items(("result", b"2", None)))],
        ],
    )
    idents = sorted(i.ident for i in merged["out"])
    assert idents == ["i1.result", "result"]
    assert merged["out"].item("i1.result").data == b"2"


def test_merge_outputs_many_same_named_items_linear():
    # Every instance emits the same item ident: the merge must stay
    # linear in the total item count (the collision check is an O(1)
    # index lookup, not a scan) and disambiguate all-but-one.
    instances = 200
    merged = merge_instance_outputs(
        ["out"],
        [
            [DataSet("out", items(("result", bytes([index % 256]), None)))]
            for index in range(instances)
        ],
    )
    assert len(merged["out"]) == instances
    assert merged["out"].item("result").data == b"\x00"
    for index in range(1, instances):
        assert merged["out"].item(f"i{index}.result").data == bytes([index % 256])


def test_merge_outputs_single_instance_reuses_sets():
    produced = DataSet("out", items(("a", b"1", None)))
    merged = merge_instance_outputs(["out", "empty"], [[produced]])
    assert merged["out"] is produced
    assert len(merged["empty"]) == 0


def test_merge_preserves_keys_and_ignores_undeclared_sets():
    merged = merge_instance_outputs(
        ["declared"],
        [[DataSet("declared", items(("a", b"1", "k"))), DataSet("stray", items(("s", b"9", None)))]],
    )
    assert list(merged) == ["declared"]
    assert merged["declared"].item("a").key == "k"


@settings(max_examples=60, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=12))
def test_property_each_preserves_all_items(payloads):
    data = DataSet("s", [DataItem(f"i{n}", p) for n, p in enumerate(payloads)])
    plans = expand_instances("n", [("in", EACH, data)])
    assert len(plans) == len(payloads)
    recovered = [plan.input_sets[0][0].data for plan in plans]
    assert recovered == payloads


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["k1", "k2", "k3"]), min_size=1, max_size=12))
def test_property_key_partition_is_complete_and_disjoint(keys):
    data = DataSet("s", [DataItem(f"i{n}", b"x", key=k) for n, k in enumerate(keys)])
    plans = expand_instances("n", [("in", KEY, data)])
    seen = [item.ident for plan in plans for item in plan.input_sets[0]]
    assert sorted(seen) == sorted(f"i{n}" for n in range(len(keys)))
    assert len(plans) == len(set(keys))
    for plan in plans:
        assert all(item.key == plan.key for item in plan.input_sets[0])
