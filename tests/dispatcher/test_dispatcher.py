"""Integration tests for the dispatcher over a full worker node."""

import pytest

from repro.data import DataItem, DataSet
from repro.errors import InvocationError
from repro.functions import (
    compute_function,
    format_http_request,
    parse_http_response_item,
    read_all_bytes,
    read_items,
    write_item,
)
from repro.net import EchoService
from repro.worker import WorkerConfig, WorkerNode


def make_worker(**config_kwargs):
    config_kwargs.setdefault("total_cores", 4)
    config_kwargs.setdefault("control_plane_enabled", False)
    worker = WorkerNode(WorkerConfig(**config_kwargs))
    worker.network.register(EchoService())
    return worker


@compute_function(compute_cost=1e-4)
def upper(vfs):
    text = vfs.read_text("/in/text/text")
    vfs.write_text("/out/result/text", text.upper())


@compute_function(compute_cost=1e-4)
def exclaim(vfs):
    text = vfs.read_text("/in/text/text")
    vfs.write_text("/out/result/text", text + "!")


UPPER_PIPELINE = """
composition upper_exclaim {
    compute up uses upper in(text) out(result);
    compute ex uses exclaim in(text) out(result);
    input text -> up.text;
    up.result -> ex.text;
    output ex.result -> result;
}
"""


def test_linear_pipeline_end_to_end():
    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    result = worker.invoke_and_run("upper_exclaim", {"text": b"hello"})
    assert result.ok
    assert result.output("result").item("text").data == b"HELLO!"
    assert result.latency > 0


def test_missing_input_rejected():
    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    result = worker.invoke_and_run("upper_exclaim", {})
    assert not result.ok
    assert "expects inputs" in str(result.error)


def test_extra_input_rejected():
    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    result = worker.invoke_and_run(
        "upper_exclaim", {"text": b"x", "bogus": b"y"}
    )
    assert not result.ok


def test_user_failure_propagates_to_invocation():
    @compute_function()
    def broken(vfs):
        raise RuntimeError("deliberate")

    worker = make_worker()
    worker.frontend.register_function(broken)
    worker.frontend.register_composition(
        """
        composition failing {
            compute f uses broken in(x) out(y);
            input x -> f.x;
            output f.y -> y;
        }
        """
    )
    result = worker.invoke_and_run("failing", {"x": b""})
    assert not result.ok
    assert "deliberate" in str(result.error)
    with pytest.raises(InvocationError):
        result.output("y")


def test_failure_in_middle_of_dag_propagates_past_downstream_nodes():
    @compute_function()
    def broken(vfs):
        raise RuntimeError("mid-dag failure")

    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(broken)
    worker.frontend.register_composition(
        """
        composition mid_fail {
            compute a uses upper in(text) out(result);
            compute b uses broken in(x) out(y);
            compute c uses upper in(text) out(result);
            input text -> a.text;
            a.result -> b.x;
            b.y -> c.text;
            output c.result -> result;
        }
        """
    )
    result = worker.invoke_and_run("mid_fail", {"text": b"hi"})
    assert not result.ok
    assert "mid-dag failure" in str(result.error)


def test_each_fanout_runs_parallel_instances():
    @compute_function(compute_cost=1e-4)
    def splitter(vfs):
        for index in range(4):
            write_item(vfs, "parts", f"p{index}", str(index).encode())

    @compute_function(compute_cost=5e-3)
    def worker_fn(vfs):
        data = read_all_bytes(vfs, "part")
        write_item(vfs, "result", "r", data * 2)

    @compute_function(compute_cost=1e-4)
    def gather(vfs):
        values = sorted(item.data for item in read_items(vfs, "parts"))
        write_item(vfs, "result", "all", b"".join(values))

    worker = make_worker(total_cores=6)
    for binary in (splitter, worker_fn, gather):
        worker.frontend.register_function(binary)
    worker.frontend.register_composition(
        """
        composition fan {
            compute split uses splitter in(seed) out(parts);
            compute work uses worker_fn in(part) out(result);
            compute agg uses gather in(parts) out(result);
            input seed -> split.seed;
            split.parts -> work.part [each];
            work.result -> agg.parts [all];
            output agg.result -> final;
        }
        """
    )
    result = worker.invoke_and_run("fan", {"seed": b""})
    assert result.ok
    assert result.output("final").item("all").data == b"00112233"
    # 4 instances of a 5ms function on 5 compute cores: parallel, so
    # well under the 20ms a serial execution would take.
    assert result.latency < 0.015


def test_key_distribution_groups_items():
    @compute_function(compute_cost=1e-4)
    def shard_writer(vfs):
        for index in range(6):
            write_item(vfs, "records", f"rec{index}", str(index).encode(), key=f"shard{index % 2}")

    @compute_function(compute_cost=1e-4)
    def shard_reducer(vfs):
        values = b"+".join(item.data for item in read_items(vfs, "records"))
        write_item(vfs, "result", "sum", values)

    @compute_function(compute_cost=1e-4)
    def collect(vfs):
        values = sorted(item.data for item in read_items(vfs, "sums"))
        write_item(vfs, "result", "out", b"|".join(values))

    worker = make_worker()
    for binary in (shard_writer, shard_reducer, collect):
        worker.frontend.register_function(binary)
    worker.frontend.register_composition(
        """
        composition grouped {
            compute gen uses shard_writer in(seed) out(records);
            compute red uses shard_reducer in(records) out(result);
            compute col uses collect in(sums) out(result);
            input seed -> gen.seed;
            gen.records -> red.records [key];
            red.result -> col.sums [all];
            output col.result -> final;
        }
        """
    )
    result = worker.invoke_and_run("grouped", {"seed": b""})
    assert result.ok
    assert result.output("final").item("out").data == b"0+2+4|1+3+5"


def test_comm_node_roundtrip_inside_composition():
    @compute_function(compute_cost=1e-4)
    def prepare(vfs):
        body = vfs.read_bytes("/in/payload/payload")
        write_item(vfs, "requests", "r", format_http_request("POST", "http://echo.internal/", body=body))

    @compute_function(compute_cost=1e-4)
    def extract(vfs):
        envelope = parse_http_response_item(read_items(vfs, "responses")[0].data)
        write_item(vfs, "result", "body", envelope["body"])

    worker = make_worker()
    worker.frontend.register_function(prepare)
    worker.frontend.register_function(extract)
    worker.frontend.register_composition(
        """
        composition echo_trip {
            compute prep uses prepare in(payload) out(requests);
            comm http;
            compute ext uses extract in(responses) out(result);
            input payload -> prep.payload;
            prep.requests -> http.request [all];
            http.response -> ext.responses [all];
            output ext.result -> result;
        }
        """
    )
    result = worker.invoke_and_run("echo_trip", {"payload": b"networked"})
    assert result.ok
    assert result.output("result").item("body").data == b"networked"


def test_nested_composition_executes():
    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(
        """
        composition inner {
            compute up uses upper in(text) out(result);
            input text -> up.text;
            output up.result -> shouted;
        }
        """
    )
    worker.frontend.register_composition(
        """
        composition outer {
            compose sub uses inner;
            compute ex uses exclaim in(text) out(result);
            input text -> sub.text;
            sub.shouted -> ex.text;
            output ex.result -> result;
        }
        """
    )
    result = worker.invoke_and_run("outer", {"text": b"nested"})
    assert result.ok
    assert result.output("result").item("text").data == b"NESTED!"


def test_transient_failures_retried_until_success():
    # Rate 0.5 with max_retries=5: overwhelmingly likely to succeed.
    worker = make_worker(transient_failure_rate=0.5, max_retries=5, seed=3)
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    result = worker.invoke_and_run("upper_exclaim", {"text": b"retry"})
    assert result.ok
    assert result.output("result").item("text").data == b"RETRY!"


def test_always_transient_failure_exhausts_retries():
    worker = make_worker(transient_failure_rate=1.0, max_retries=2)
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    result = worker.invoke_and_run("upper_exclaim", {"text": b"x"})
    assert not result.ok
    assert "transient" in str(result.error)


def test_memory_contexts_freed_after_invocation():
    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    result = worker.invoke_and_run("upper_exclaim", {"text": b"mem"})
    assert result.ok
    assert worker.memory.peak_bytes > 0
    assert worker.memory.current_bytes == 0
    assert worker.memory.live_context_count == 0


def test_concurrent_invocations_isolated():
    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    processes = [
        worker.frontend.invoke("upper_exclaim", {"text": f"msg{i}".encode()})
        for i in range(5)
    ]
    worker.env.run(until=worker.env.all_of(processes))
    for index, process in enumerate(processes):
        result = process.value
        assert result.ok
        assert result.output("result").item("text").data == f"MSG{index}!".upper().encode()


def test_invocation_counters():
    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    worker.invoke_and_run("upper_exclaim", {"text": b"a"})
    worker.invoke_and_run("upper_exclaim", {})
    assert worker.dispatcher.invocations_started == 2
    assert worker.dispatcher.invocations_completed == 1
    assert worker.dispatcher.invocations_failed == 1


def test_dataset_inputs_accepted_directly():
    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    data = DataSet("text", [DataItem("text", b"direct")])
    result = worker.invoke_and_run("upper_exclaim", {"text": data})
    assert result.ok
    assert result.output("result").item("text").data == b"DIRECT!"


def test_default_timeout_preempts_runaway_functions():
    # §5 footnote 2: tasks exceeding the user-specified timeout are
    # preempted to prevent resource hogging.
    @compute_function(name="runaway", compute_cost=10.0)
    def runaway(vfs):
        pass

    worker = make_worker(default_timeout=0.5)
    worker.frontend.register_function(runaway)
    worker.frontend.register_composition(
        """
        composition hog {
            compute h uses runaway in(x) out(y);
            input x -> h.x;
            output h.y -> y;
        }
        """
    )
    result = worker.invoke_and_run("hog", {"x": b""})
    assert not result.ok
    assert "timeout" in str(result.error).lower()


def test_fast_function_unaffected_by_timeout():
    worker = make_worker(default_timeout=0.5)
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    result = worker.invoke_and_run("upper_exclaim", {"text": b"quick"})
    assert result.ok


def _broken_store(exc_type):
    """store_sets that fails only for the post-run output store.

    In copy mode inputs are stored at offset 0 and outputs at the
    committed watermark, so ``offset > 0`` singles out the output path.
    """
    from repro.data import MemoryContext

    original = MemoryContext.store_sets

    def store(self, sets, offset=0):
        if offset:
            raise exc_type("injected store failure")
        return original(self, sets, offset)

    return store


def test_output_store_capacity_overflow_tolerated(monkeypatch):
    # A ContextError from the output store only affects accounting
    # granularity (the declared reservation was too tight); the data
    # itself already lives in the outcome, so the invocation succeeds.
    from repro.data import MemoryContext
    from repro.data.context import ContextError

    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    monkeypatch.setattr(MemoryContext, "store_sets", _broken_store(ContextError))
    result = worker.invoke_and_run("upper_exclaim", {"text": b"hello"})
    assert result.ok
    assert result.output("result").item("text").data == b"HELLO!"


def test_output_store_programming_error_propagates(monkeypatch):
    # Regression: the output store used to sit under a bare
    # ``except Exception: pass``, so a genuine serialization bug (e.g.
    # a TypeError from a malformed item) vanished silently.  Only
    # ContextError is tolerated now; anything else must surface.
    from repro.data import MemoryContext

    worker = make_worker()
    worker.frontend.register_function(upper)
    worker.frontend.register_function(exclaim)
    worker.frontend.register_composition(UPPER_PIPELINE)
    monkeypatch.setattr(MemoryContext, "store_sets", _broken_store(TypeError))
    with pytest.raises(TypeError, match="injected store failure"):
        worker.invoke_and_run("upper_exclaim", {"text": b"hello"})
