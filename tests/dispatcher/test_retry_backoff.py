"""Retry backoff and deadline enforcement in the dispatcher.

Covers the §6.1 retry path: transient sandbox faults are retried with
exponential backoff (inter-attempt gaps strictly increase in virtual
time), fault-free runs take the no-retry fast path, and per-invocation
deadlines convert stuck tasks into non-retryable failures instead of
hangs.
"""

from repro.errors import DeadlineExceeded
from repro.functions import compute_function
from repro.net import EchoService
from repro.worker import WorkerConfig, WorkerNode


def make_worker(**config_kwargs):
    config_kwargs.setdefault("total_cores", 4)
    config_kwargs.setdefault("control_plane_enabled", False)
    worker = WorkerNode(WorkerConfig(**config_kwargs))
    worker.network.register(EchoService())
    return worker


@compute_function(name="bk_upper", compute_cost=1e-4)
def bk_upper(vfs):
    vfs.write_text("/out/result/text", vfs.read_text("/in/text/text").upper())


SINGLE_NODE = """
composition bk_single {
    compute up uses bk_upper in(text) out(result);
    input text -> up.text;
    output up.result -> result;
}
"""


def prepare(worker):
    worker.frontend.register_function(bk_upper)
    worker.frontend.register_composition(SINGLE_NODE)


def spy_on_submissions(worker):
    """Record the virtual time of every compute-task submission."""
    times = []
    original = worker.compute_group.submit

    def recording_submit(task):
        times.append(worker.env.now)
        return original(task)

    worker.compute_group.submit = recording_submit
    return times


def test_exhausted_retries_use_strictly_increasing_backoff():
    worker = make_worker(transient_failure_rate=1.0, max_retries=4)
    prepare(worker)
    times = spy_on_submissions(worker)
    result = worker.invoke_and_run("bk_single", {"text": b"x"})
    assert not result.ok
    # One initial attempt plus max_retries re-submissions.
    assert len(times) == 5
    assert worker.dispatcher.retries_performed == 4
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(gap > 0 for gap in gaps), gaps
    # Exponential backoff: each wait strictly dominates the previous
    # one even after jitter (10% max) and the constant service time.
    assert all(later > earlier for earlier, later in zip(gaps, gaps[1:])), gaps


def test_backoff_jitter_is_deterministic_per_seed():
    def run(seed):
        worker = make_worker(transient_failure_rate=1.0, max_retries=3, seed=seed)
        prepare(worker)
        times = spy_on_submissions(worker)
        worker.invoke_and_run("bk_single", {"text": b"x"})
        return times

    assert run(7) == run(7)
    assert run(7) != run(8)  # jitter actually depends on the seed


def test_zero_fault_run_takes_no_retry_fast_path():
    worker = make_worker(transient_failure_rate=0.0)
    prepare(worker)
    times = spy_on_submissions(worker)
    result = worker.invoke_and_run("bk_single", {"text": b"fast"})
    assert result.ok
    assert len(times) == 1  # exactly one submission, no retry machinery
    assert worker.dispatcher.retries_performed == 0
    assert worker.stats()["retries_performed"] == 0
    assert worker.stats()["deadline_expirations"] == 0


def test_transient_faults_eventually_succeed_and_count_retries():
    worker = make_worker(transient_failure_rate=0.5, max_retries=8, seed=3)
    prepare(worker)
    for _ in range(10):
        result = worker.invoke_and_run("bk_single", {"text": b"r"})
        assert result.ok
    assert worker.dispatcher.retries_performed > 0


def test_backoff_never_sleeps_past_the_deadline():
    # Regression: each backoff sleep used to be taken unconditionally,
    # so a transient-fault retry chain could keep sleeping long after
    # the invocation's deadline — the caller had already been promised a
    # DeadlineExceeded but the dispatcher burned virtual time (and
    # retries) on a corpse.  Every inter-attempt gap must now fit inside
    # the remaining deadline budget, and the chain must surface
    # DeadlineExceeded the moment the next backoff alone would overrun.
    deadline = 0.004
    worker = make_worker(
        transient_failure_rate=1.0, max_retries=20, default_timeout=deadline
    )
    prepare(worker)
    times = spy_on_submissions(worker)
    started = worker.env.now
    result = worker.invoke_and_run("bk_single", {"text": b"x"})
    assert not result.ok
    assert "deadline" in str(result.error)
    # Every attempt was submitted inside the deadline window: the chain
    # stopped instead of sleeping past it.
    assert times, "at least the initial attempt must submit"
    assert all(t - started <= deadline for t in times), times
    # The retry budget was NOT exhausted — the deadline cut the chain.
    assert worker.dispatcher.retries_performed < 20
    assert worker.dispatcher.deadline_expirations >= 1
    # And the dispatcher gave up no later than the deadline itself.
    assert worker.env.now - started <= deadline + 1e-9


def test_deadline_cut_releases_memory_context():
    # The early DeadlineExceeded return path must release the node's
    # memory context like every other exit path does.
    worker = make_worker(
        transient_failure_rate=1.0, max_retries=20, default_timeout=0.004
    )
    prepare(worker)
    worker.invoke_and_run("bk_single", {"text": b"x"})
    assert worker.memory.current_bytes == 0
    assert worker.memory.live_context_count == 0


def _register_slow_fetch(worker, host="slowecho"):
    from repro.functions import (
        format_http_request,
        parse_http_response_item,
        read_items,
        write_item,
    )

    @compute_function(name="bk_gen", compute_cost=1e-5)
    def gen(vfs):
        write_item(vfs, "request", "r", format_http_request("GET", f"http://{host}/"))

    @compute_function(name="bk_check", compute_cost=1e-5)
    def check(vfs):
        envelope = parse_http_response_item(read_items(vfs, "response")[0].data)
        write_item(vfs, "out", "status", str(envelope["status"]).encode())

    worker.frontend.register_function(gen)
    worker.frontend.register_function(check)
    worker.frontend.register_composition(
        """
        composition bk_fetch {
            compute g uses bk_gen in(seed) out(request);
            comm c;
            compute k uses bk_check in(response) out(out);
            input seed -> g.seed;
            g.request -> c.request [all];
            c.response -> k.response [all];
            output k.out -> out;
        }
        """
    )


def test_deadline_expiration_is_not_retried():
    # A communication node against a slow backend: the exchange cannot
    # finish inside the deadline, so the dispatcher must fail the task
    # with DeadlineExceeded and must NOT burn retries on it.
    worker = make_worker(default_timeout=0.005, max_retries=3)
    worker.network.register(EchoService(host="slowecho", extra_seconds=1.0))
    _register_slow_fetch(worker)
    result = worker.invoke_and_run("bk_fetch", {"seed": b""})
    assert not result.ok
    assert "deadline" in str(result.error)
    assert worker.dispatcher.deadline_expirations >= 1
    assert worker.dispatcher.retries_performed == 0


def test_deadline_failure_carries_deadline_exceeded_cause():
    # Drive the dispatcher's _await_task directly on a comm task to
    # observe the structured outcome (success=False, non-transient).
    from repro.data import DataItem, DataSet
    from repro.engines.task import COMMUNICATION, Task
    from repro.functions import format_http_request

    worker = make_worker(max_retries=2)
    worker.network.register(EchoService(host="slowecho", extra_seconds=1.0))
    dispatcher = worker.dispatcher
    env = worker.env

    request = format_http_request("GET", "http://slowecho/")
    task = Task(
        kind=COMMUNICATION,
        input_sets=[DataSet("request", [DataItem("r", request)])],
        output_set_names=["response"],
        completion=env.event(),
        protocol="http",
        timeout=0.005,
        node_name="probe",
    )
    worker.comm_group.submit(task)

    outcome_box = []

    def waiter():
        outcome = yield from dispatcher._await_task(task)
        outcome_box.append(outcome)

    env.run(until=env.process(waiter()))
    outcome = outcome_box[0]
    assert not outcome.success
    assert isinstance(outcome.error, DeadlineExceeded)
    assert not outcome.transient
    assert dispatcher.deadline_expirations == 1
