"""Tests for committed-memory accounting."""

from repro.data import MemoryContext, PAGE_SIZE
from repro.dispatcher import MemoryTracker
from repro.sim import Environment


def test_tracker_starts_at_zero():
    tracker = MemoryTracker(Environment())
    assert tracker.current_bytes == 0
    assert tracker.peak_bytes == 0
    assert tracker.live_context_count == 0


def test_observe_counts_committed_pages():
    env = Environment()
    tracker = MemoryTracker(env)
    context = MemoryContext(10 * PAGE_SIZE)
    context.write(0, b"data")
    tracker.observe(context)
    assert tracker.current_bytes == PAGE_SIZE
    assert tracker.live_context_count == 1


def test_observe_updates_incrementally():
    env = Environment()
    tracker = MemoryTracker(env)
    context = MemoryContext(10 * PAGE_SIZE)
    context.write(0, b"x")
    tracker.observe(context)
    context.write(3 * PAGE_SIZE, b"y")
    tracker.observe(context)
    assert tracker.current_bytes == 4 * PAGE_SIZE


def test_observe_same_size_no_new_sample():
    env = Environment()
    tracker = MemoryTracker(env)
    context = MemoryContext(PAGE_SIZE)
    context.write(0, b"x")
    tracker.observe(context)
    samples_before = len(tracker.series)
    tracker.observe(context)
    assert len(tracker.series) == samples_before


def test_release_drops_contribution():
    env = Environment()
    tracker = MemoryTracker(env)
    context = MemoryContext(PAGE_SIZE)
    context.write(0, b"x")
    tracker.observe(context)
    tracker.release(context)
    assert tracker.current_bytes == 0
    assert tracker.live_context_count == 0
    assert tracker.peak_bytes == PAGE_SIZE


def test_release_untracked_is_noop():
    env = Environment()
    tracker = MemoryTracker(env)
    tracker.release(MemoryContext(PAGE_SIZE))
    assert tracker.current_bytes == 0


def test_average_committed_time_weighted():
    env = Environment()
    tracker = MemoryTracker(env)
    context = MemoryContext(PAGE_SIZE)

    def scenario():
        yield env.timeout(10)   # 10s at 0 bytes
        context.write(0, b"x")
        tracker.observe(context)
        yield env.timeout(10)   # 10s at PAGE_SIZE
        tracker.release(context)
        yield env.timeout(0)

    env.process(scenario())
    env.run()
    average = tracker.average_committed(0, 20)
    assert average == PAGE_SIZE / 2


def test_multiple_contexts_sum():
    env = Environment()
    tracker = MemoryTracker(env)
    contexts = [MemoryContext(PAGE_SIZE) for _ in range(3)]
    for context in contexts:
        context.write(0, b"x")
        tracker.observe(context)
    assert tracker.current_bytes == 3 * PAGE_SIZE
    assert tracker.peak_bytes == 3 * PAGE_SIZE
