"""Static deadline admission in the dispatcher (dataflow cost hints)."""

from repro.functions import compute_function, read_items
from repro.worker import WorkerConfig, WorkerNode


def make_worker(static_admission=True):
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    worker.dispatcher.static_admission = static_admission
    return worker


@compute_function(compute_cost=0.1)
def slow_step(vfs):
    items = read_items(vfs, "src")
    vfs.write_bytes("/out/dst/item", items[0].data)


SLOW_CHAIN = """
composition slow_chain {
    %s
    compute s1 uses slow_step in(src) out(dst);
    compute s2 uses slow_step in(src) out(dst);
    compute s3 uses slow_step in(src) out(dst);
    input start -> s1.src;
    s1.dst -> s2.src;
    s2.dst -> s3.src;
    output s3.dst -> result;
}
"""


def _register(worker, deadline_clause):
    worker.frontend.register_function(slow_step)
    worker.frontend.register_composition(SLOW_CHAIN % deadline_clause)


def test_infeasible_deadline_rejected_before_scheduling():
    worker = make_worker()
    _register(worker, "deadline 50ms;")  # critical path is 300ms
    result = worker.invoke_and_run("slow_chain", {"start": b"x"})
    assert not result.ok
    assert "statically rejected" in str(result.error)
    assert worker.dispatcher.admission_rejections == 1
    assert worker.dispatcher.invocations_failed == 1


def test_feasible_deadline_admitted():
    worker = make_worker()
    _register(worker, "deadline 1s;")
    result = worker.invoke_and_run("slow_chain", {"start": b"x"})
    assert result.ok
    assert result.output("result").item("item").data == b"x"
    assert worker.dispatcher.admission_rejections == 0


def test_no_deadline_never_rejected():
    worker = make_worker()
    _register(worker, "")
    result = worker.invoke_and_run("slow_chain", {"start": b"x"})
    assert result.ok
    assert worker.dispatcher.admission_rejections == 0


def test_admission_off_by_default():
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    assert worker.dispatcher.static_admission is False
    _register(worker, "deadline 50ms;")
    # With admission off the infeasible invocation runs (and blows its
    # deadline at runtime or succeeds late) instead of fast-failing.
    result = worker.invoke_and_run("slow_chain", {"start": b"x"})
    assert worker.dispatcher.admission_rejections == 0
    assert result.ok


def test_rejection_is_instant_in_virtual_time():
    worker = make_worker()
    _register(worker, "deadline 50ms;")
    before = worker.env.now
    result = worker.invoke_and_run("slow_chain", {"start": b"x"})
    assert not result.ok
    # Only the fixed frontend overhead elapses — no vertex (each worth
    # 0.1s of virtual compute) was ever scheduled.
    assert worker.env.now - before < 0.001


def test_cost_summary_memoized():
    worker = make_worker()
    _register(worker, "deadline 50ms;")
    first = worker.dispatcher.cost_summary("slow_chain")
    assert worker.dispatcher.cost_summary("slow_chain") is first
    assert first.deadline_feasible is False
