"""Window-batched router: fast-path parity, estimates, wire payloads."""

import pytest

from repro.cluster.sharding import INVOCATION, ShardPlan
from repro.dispatcher.windowed import WindowedRouter
from repro.sched import ClusterSnapshot, make_routing_policy
from repro.sim.distributions import Rng


def test_least_loaded_fast_path_matches_policy_decide():
    # The router's C-level argmin (estimates.index(min(...))) must make
    # exactly the decisions the generic LeastOutstanding policy makes
    # against the same evolving estimate vector.
    workers = 7
    router = WindowedRouter(ShardPlan(workers, 3))
    assert router._fast_least

    policy = make_routing_policy("least_loaded", Rng(0))
    estimates = [0] * workers
    snapshot = ClusterSnapshot(
        healthy=tuple(range(workers)),
        worker_count=workers,
        health=[True] * workers,
        in_flight=estimates,
    )

    arrivals = [(0.01 * i, i % 5, 0.25) for i in range(200)]
    payloads = router.route_window(arrivals, dispatch_delay=0.0005)
    expected = []
    for _ in arrivals:
        worker = policy.decide(snapshot)
        estimates[worker] += 1
        expected.append(worker)
    assert router._estimates == estimates

    routed = sorted(
        (record for payload in payloads for record in INVOCATION.iter_unpack(bytes(payload))),
        key=lambda record: record[4],
    )
    assert [record[1] for record in routed] == expected


def test_route_window_packs_wire_records():
    router = WindowedRouter(ShardPlan(4, 2))
    arrivals = [(1.0, 9, 0.5), (1.1, 3, 0.25)]
    payloads = router.route_window(arrivals, dispatch_delay=0.001)
    assert len(payloads) == 2
    records = [
        record
        for payload in payloads
        for record in INVOCATION.iter_unpack(bytes(payload))
    ]
    assert len(records) == 2
    for (delivery, worker, fn_index, duration, arrival), (t, fn, d) in zip(
        sorted(records, key=lambda r: r[4]), arrivals
    ):
        assert delivery == t + 0.001
        assert arrival == t
        assert fn_index == fn
        assert duration == d
        assert ShardPlan(4, 2).shard_of(worker) in (0, 1)


def test_routed_worker_lands_in_its_shard_payload():
    plan = ShardPlan(6, 3)
    router = WindowedRouter(plan)
    payloads = router.route_window([(0.1 * i, 0, 0.1) for i in range(30)], 0.0)
    for shard, payload in enumerate(payloads):
        for record in INVOCATION.iter_unpack(bytes(payload)):
            assert plan.shard_of(record[1]) == shard


def test_refresh_replaces_estimates_in_global_order():
    plan = ShardPlan(5, 2)
    router = WindowedRouter(plan)
    router.route_window([(0.0, 0, 1.0)] * 5, 0.0)
    assert router.outstanding_total() == 5
    # Shard 0 owns workers 0,2,4; shard 1 owns 1,3.
    router.refresh([[7, 8, 9], [1, 2]])
    assert router._estimates == [7, 1, 8, 2, 9]


def test_non_default_policy_takes_generic_path():
    router = WindowedRouter(ShardPlan(4, 2), policy="round_robin")
    assert not router._fast_least
    payloads = router.route_window([(0.0, 0, 0.1)] * 8, 0.0)
    workers = [
        record[1]
        for payload in payloads
        for record in INVOCATION.iter_unpack(bytes(payload))
    ]
    assert sorted(workers) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_ties_break_by_lowest_worker_index():
    router = WindowedRouter(ShardPlan(3, 1))
    payloads = router.route_window([(0.0, 0, 0.1)] * 3, 0.0)
    workers = [r[1] for r in INVOCATION.iter_unpack(bytes(payloads[0]))]
    assert workers == [0, 1, 2]
