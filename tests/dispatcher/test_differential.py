"""Differential testing of the dispatcher on randomized DAGs.

Strategy: build random processing chains whose node transformation is
*per-item* (append the node's name to each item's payload).  For such
pipelines the final result is independent of how the dispatcher splits
work across instances — ``all``, ``each`` and ``key`` distributions,
instance merging, and scheduling order must all preserve the same item
multiset.  The expected output is computed by a three-line reference
loop that shares no code with the dispatcher.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.composition import Distribution
from repro.data import DataItem, DataSet
from repro.functions import compute_function, read_items, write_item
from repro.worker import WorkerConfig, WorkerNode

_DISTRIBUTIONS = [Distribution.ALL, Distribution.EACH, Distribution.KEY]


def _node_binary(node_name: str):
    @compute_function(name=f"fn_{node_name}", compute_cost=1e-5)
    def transform(vfs):
        for item in read_items(vfs, "data"):
            # Keys are not visible through read_items; re-derive them
            # from the ident suffix so grouping survives each hop.
            key = item.ident.split("@")[1] if "@" in item.ident else None
            write_item(
                vfs, "data", item.ident,
                item.data + b"|" + node_name.encode(), key=key,
            )

    return transform


def _build_chain(worker, node_names, distributions):
    lines = []
    edges = []
    previous = None
    for name in node_names:
        worker.frontend.register_function(_node_binary(name))
        lines.append(f"compute {name} uses fn_{name} in(data) out(data);")
        if previous is None:
            edges.append(f"input data -> {name}.data;")
        else:
            dist = distributions[len(edges) - 1]
            edges.append(f"{previous}.data -> {name}.data [{dist.value}];")
        previous = name
    source = (
        "composition chain {\n" + "\n".join(lines) + "\n" + "\n".join(edges)
        + f"\noutput {previous}.data -> result;\n}}"
    )
    worker.frontend.register_composition(source)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 4),                                  # chain length
    st.integers(1, 6),                                  # item count
    st.lists(st.sampled_from(_DISTRIBUTIONS), min_size=4, max_size=4),
    st.integers(1, 3),                                  # distinct key count
)
def test_property_chain_result_independent_of_distribution(
    length, item_count, distributions, key_count
):
    node_names = [f"n{i}" for i in range(length)]
    worker = WorkerNode(WorkerConfig(total_cores=6, control_plane_enabled=False))
    _build_chain(worker, node_names, distributions)
    items = [
        DataItem(f"item{i}@k{i % key_count}", f"seed{i}".encode(), key=f"k{i % key_count}")
        for i in range(item_count)
    ]
    result = worker.invoke_and_run("chain", {"data": DataSet("data", items)})
    assert result.ok

    # Independent reference: every item passes through every node once.
    suffix = b"".join(b"|" + name.encode() for name in node_names)
    expected = {item.ident: item.data + suffix for item in items}

    output = result.output("result")
    assert {i.ident: i.data for i in output} == expected


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.sampled_from([Distribution.EACH, Distribution.KEY]))
def test_property_fan_out_instance_count(item_count, distribution):
    # A two-node chain where the edge fans out: the number of executed
    # compute tasks must equal 1 (source) + the expansion width.
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))

    @compute_function(name="src_fn", compute_cost=1e-5)
    def src(vfs):
        for i in range(item_count):
            write_item(vfs, "data", f"i{i}", b"x", key=f"k{i % 2}")

    @compute_function(name="sink_fn", compute_cost=1e-5)
    def sink(vfs):
        for item in read_items(vfs, "data"):
            write_item(vfs, "data", item.ident, item.data)

    worker.frontend.register_function(src)
    worker.frontend.register_function(sink)
    worker.frontend.register_composition(f"""
        composition fan {{
            compute s uses src_fn in(seed) out(data);
            compute t uses sink_fn in(data) out(data);
            input seed -> s.seed;
            s.data -> t.data [{distribution.value}];
            output t.data -> result;
        }}
    """)
    result = worker.invoke_and_run("fan", {"seed": b""})
    assert result.ok
    assert len(result.output("result")) == item_count
    expected_instances = item_count if distribution is Distribution.EACH else min(2, item_count)
    assert worker.compute_group.tasks_executed == 1 + expected_instances
