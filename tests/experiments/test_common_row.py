"""ExperimentResult.row() matching semantics (float-tolerant lookup)."""

import math

import pytest

from repro.experiments.common import ExperimentResult


def _result(rows) -> ExperimentResult:
    result = ExperimentResult(name="t", description="", headers=list(rows[0]))
    for row in rows:
        result.add_row(**row)
    return result


def test_exact_integer_axes_still_match_exactly():
    result = _result([{"workers": 4, "policy": "jsq"},
                      {"workers": 8, "policy": "jsq"}])
    assert result.row(workers=4, policy="jsq")["workers"] == 4
    with pytest.raises(KeyError):
        result.row(workers=5, policy="jsq")
    with pytest.raises(KeyError):
        result.row(workers=4, policy="random")


def test_float_axes_match_with_isclose():
    # The historical bug: a swept axis computed as 0.1 + 0.2 was
    # unfindable via row(rate=0.3) under exact equality.
    swept = 0.1 + 0.2
    assert swept != 0.3
    result = _result([{"rate": swept, "goodput": 10.0}])
    assert result.row(rate=0.3)["goodput"] == 10.0
    assert result.row(rate=swept)["goodput"] == 10.0


def test_int_float_cross_type_matching():
    result = _result([{"severity": 4.0}])
    assert result.row(severity=4)["severity"] == 4.0
    result = _result([{"severity": 4}])
    assert result.row(severity=4.0)["severity"] == 4


def test_nan_matches_nan_only():
    result = _result([{"p99": float("nan"), "arm": "empty"},
                      {"p99": 5.0, "arm": "loaded"}])
    assert result.row(p99=float("nan"))["arm"] == "empty"
    assert result.row(p99=5.0)["arm"] == "loaded"
    with pytest.raises(KeyError):
        result.row(p99=6.0)


def test_close_but_distinct_floats_do_not_collide():
    result = _result([{"rate": 0.3}, {"rate": 0.30001}])
    assert result.row(rate=0.30001)["rate"] == 0.30001
    assert math.isclose(result.row(rate=0.3)["rate"], 0.3)


def test_missing_column_does_not_match():
    result = _result([{"a": 1}])
    with pytest.raises(KeyError):
        result.row(b=1)
