"""Tests for the experiment harnesses (small configurations).

The benchmarks exercise paper-scale parameters; these tests verify the
harness plumbing — row/column shapes, notes, determinism — quickly.
"""

import pytest

from repro.experiments import (
    DandelionLoadModel,
    default_trace,
    matmul_1x1_binary,
    matmul_128_binary,
    run_fig01,
    run_fig02,
    run_fig05,
    run_fig06,
    run_fig08,
    run_fig09,
    run_fig10,
    run_sec61,
    run_sec74,
    run_sec77,
    run_sec8_enforcement,
    run_sec8_tcb,
    run_table1,
)
from repro.experiments.common import ExperimentResult, render_table
from repro.sim import Environment


def test_experiment_result_helpers():
    result = ExperimentResult("X", "desc", headers=["a", "b"])
    result.add_row(a=1, b=2.5)
    result.add_row(a=2, b=3.5)
    result.note("hello")
    assert result.row(a=2)["b"] == 3.5
    with pytest.raises(KeyError):
        result.row(a=99)
    assert result.column("a") == [1, 2]
    rendered = result.render()
    assert "X: desc" in rendered
    assert "note: hello" in rendered


def test_render_table_alignment():
    text = render_table(["name", "value"], [{"name": "x", "value": 1.0}])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert len(lines) == 3


def test_table1_runs_both_machines():
    for machine in ("morello", "linux"):
        result = run_table1(machine)
        assert len(result.rows) == 7  # 6 stages + total
        assert result.row(stage="total")["kvm"] > 0


def test_fig02_small():
    result = run_fig02(hot_ratios=(1.0, 0.97), rate_rps=100, duration_seconds=2.0)
    assert len(result.rows) == 2
    assert result.rows[1]["p999_ms"] >= result.rows[0]["p999_ms"]


def test_fig05_subset():
    result = run_fig05(
        systems=("dandelion-cheri", "firecracker-snapshot"),
        rates=(25, 100),
        duration_seconds=0.3,
    )
    systems = set(result.column("system"))
    assert systems == {"dandelion-cheri", "firecracker-snapshot"}


def test_fig06_subset():
    result = run_fig06(
        systems=("dandelion-kvm", "wasmtime"), rates=(100, 500), duration_seconds=0.3
    )
    dandelion = [r for r in result.rows if r["system"] == "dandelion-kvm"][0]
    wasmtime = [r for r in result.rows if r["system"] == "wasmtime"][0]
    assert dandelion["p50_ms"] < wasmtime["p50_ms"]


def test_matmul_binaries_compute_correctly():
    import struct
    import numpy as np
    from repro.backends import create_backend
    from repro.data import DataItem, DataSet

    backend = create_backend("kvm", "linux")
    b1 = matmul_1x1_binary()
    execution = backend.execute(
        b1,
        [DataSet("a", [DataItem("value", struct.pack("<q", 6))]),
         DataSet("b", [DataItem("value", struct.pack("<q", 9))])],
        ["c"],
    )
    assert struct.unpack("<q", execution.outputs[0].item("value").data)[0] == 54

    b128 = matmul_128_binary()
    eye = np.eye(128, dtype=np.int64)
    m = np.arange(128 * 128, dtype=np.int64).reshape(128, 128)
    execution = backend.execute(
        b128,
        [DataSet("a", [DataItem("matrix", eye.tobytes())]),
         DataSet("b", [DataItem("matrix", m.tobytes())])],
        ["c"],
    )
    out = np.frombuffer(execution.outputs[0].item("matrix").data, dtype=np.int64)
    assert np.array_equal(out.reshape(128, 128), m)


def test_dandelion_load_model_cached_faster():
    env = Environment()
    import struct
    from repro.data import DataItem, DataSet

    model = DandelionLoadModel(
        env,
        matmul_1x1_binary(),
        [DataSet("a", [DataItem("value", struct.pack("<q", 1))]),
         DataSet("b", [DataItem("value", struct.pack("<q", 1))])],
        ["c"],
        cold_load_fraction=0.0,
    )
    assert model.cached_seconds < model.uncached_seconds
    process = model.request()
    env.run(until=process)
    assert model.requests_served == 1
    assert model.latencies.count == 1


def test_sec74_small():
    result = run_sec74(depths=(2, 4), cores=8)
    assert result.row(phases=4)["dandelion_uncached_ms"] > result.row(phases=2)["dandelion_uncached_ms"]


def _sec61_small():
    return run_sec61(
        rps=120.0,
        duration_seconds=0.5,
        workers=2,
        transient_rates=(0.0, 0.2),
        mttf_sweep=(0.2,),
        mttr_seconds=0.05,
    )


def test_sec61_small():
    result = _sec61_small()
    assert len(result.rows) == 3  # 2 transient rates + 1 MTTF point
    baseline = result.rows[0]
    assert baseline["retries"] == 0  # fault-free run takes the fast path
    assert baseline["crashes"] == 0
    for row in result.rows:
        assert row["goodput_rps"] > 0
    faulty = result.rows[1]
    assert faulty["retries"] > 0
    failstop = result.rows[2]
    assert failstop["crashes"] > 0


def test_sec61_deterministic():
    assert _sec61_small().render() == _sec61_small().render()


def test_fig08_runs():
    schedule = {
        "logproc": [(0.5, 30.0)],
        "compress": [(0.5, 30.0)],
    }
    result = run_fig08(schedule=schedule, cores=8)
    assert len(result.rows) == 6  # 3 systems x 2 apps


def test_fig09_two_queries():
    result = run_fig09(scale_factor=0.002, partitions=4, cores=8, queries=["Q1.1", "Q3.2"])
    assert len(result.rows) == 2
    for row in result.rows:
        assert row["dandelion_s"] < row["athena_s"]


def test_sec77_breakdown_sums():
    result = run_sec77()
    total = result.row(step="end_to_end_measured")["seconds"]
    assert total == pytest.approx(2.015, rel=0.1)


def test_fig01_and_fig10_consistency():
    trace = default_trace(duration_seconds=300.0)
    fig01 = run_fig01(trace)
    fig10 = run_fig10(trace)
    # The same Firecracker replay underlies both figures.
    assert fig01.rows[-1]["committed_mib"] == pytest.approx(
        fig10.rows[-1]["firecracker_mib"]
    )
    assert fig10.rows[-1]["dandelion_mib"] <= fig10.rows[-1]["firecracker_mib"]


def test_sec8_tables():
    tcb = run_sec8_tcb()
    assert {row["system"] for row in tcb.rows} == {
        "dandelion", "firecracker", "spin/wasmtime", "gvisor",
    }
    enforcement = run_sec8_enforcement()
    for row in enforcement.rows:
        assert row["blocked"] == row["attempts"]


def test_sec8_static_catches_dynamic_corpus():
    # Acceptance bar: the static verifier rejects >= 90% of what the
    # dynamic guard catches, at registration time.
    from repro.experiments.sec8_security import run_sec8_static

    result = run_sec8_static()
    dynamic = [row["operation"] for row in result.rows if row["dynamic"]]
    static = [row["operation"] for row in result.rows if row["static"]]
    assert len(dynamic) == len(result.rows)  # guard catches the whole corpus
    caught = sum(1 for op in dynamic if op in static)
    assert caught / len(dynamic) >= 0.9


def test_fig09_scaling_model():
    from repro.experiments import dandelion_query_seconds, run_fig09_scaling

    result = run_fig09_scaling()
    assert len(result.rows) == 9
    # Latency decreases with node count at every input size.
    for gigabytes in (0.7, 2.0, 7.0):
        latencies = [
            row["dandelion_s"] for row in result.rows if row["input_gb"] == gigabytes
        ]
        assert latencies == sorted(latencies, reverse=True)
    # The model itself validates its arguments.
    with pytest.raises(ValueError):
        dandelion_query_seconds(-1)
    with pytest.raises(ValueError):
        dandelion_query_seconds(1e9, nodes=0)


def test_ascii_chart():
    from repro.experiments import ascii_chart

    chart = ascii_chart([0, 1, 2, 4], width=8, height=4, label="demo")
    lines = chart.splitlines()
    assert len(lines) == 6  # 4 levels + axis + label
    assert "demo" in lines[-1]
    assert "█" in chart
    # The peak row only marks the tail of the series.
    assert lines[0].count("█") < lines[3].count("█")
    with pytest.raises(ValueError):
        ascii_chart([])


def test_fig05_hyperlight_unloaded_matches_paper():
    from repro.experiments import run_fig05

    result = run_fig05(systems=("hyperlight",), rates=(25,), duration_seconds=0.4)
    row = result.rows[0]
    assert row["p50_ms"] == pytest.approx(9.1, rel=0.02)  # §7.2: 9.1 ms


def test_fig07_small_config():
    from repro.experiments import run_fig07

    result = run_fig07(
        configs=(("dandelion", None, None), ("dhybrid", 1, True)),
        rates=(200, 400),
        duration_seconds=0.2,
        cores=4,
    )
    systems = set(result.column("system"))
    assert systems == {"dandelion", "dhybrid-tpc1-pinned"}
    assert {"matmul", "fetch_and_compute"} == set(result.column("workload"))
