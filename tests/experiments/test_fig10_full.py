"""fig10_full: reduced-scale correctness and shard invariance."""

import pytest

from repro.experiments import run_fig10_full
from repro.experiments.fig10_full import _fleet_for, full_trace


@pytest.fixture(scope="module")
def result():
    return run_fig10_full(scale=1.0, shards=2, executor="serial")


def test_rows_cover_both_platforms(result):
    platforms = result.column("platform")
    assert platforms == ["dandelion", "faas"]
    dandelion = result.row(platform="dandelion")
    faas = result.row(platform="faas")
    assert dandelion["invocations"] == faas["invocations"] > 0
    # The paper's qualitative claims at any scale: Dandelion commits
    # far less memory and keeps a lower tail than FC+Knative.
    assert dandelion["committed_mean_mib"] < faas["committed_mean_mib"]
    assert dandelion["p99_ms"] < faas["p99_ms"]
    assert dandelion["cold_fraction"] == 1.0
    assert 0.0 < faas["cold_fraction"] < 1.0


def test_render_is_shard_count_invariant(result):
    other = run_fig10_full(scale=1.0, shards=1, executor="serial")
    assert other.render() == result.render()


def test_meta_carries_observability_not_rendered(result):
    meta = result.meta
    assert meta["shards"] == 2
    for platform in ("dandelion", "faas"):
        stats = meta["platforms"][platform]
        assert stats["wall_seconds"] > 0
        assert stats["events"] > 0
        assert stats["windows"] > 0
        assert len(stats["shard_stats"]) == 2
    rendered = result.render()
    assert "wall_seconds" not in rendered
    assert "shard_stats" not in rendered


def test_full_trace_scales_population():
    trace = full_trace(scale=2.0)
    assert trace.function_count == 200
    assert trace.duration_seconds == 1200.0


def test_fleet_sizing():
    assert _fleet_for(100.0) == (25, 64)
    assert _fleet_for(10.0) == (4, 64)  # never below a real 4-way split
