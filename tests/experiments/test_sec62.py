"""Reduced §6.2 scheduling-sweep smoke test: shape, ordering, determinism."""

from repro.experiments import run_sec62


def _sec62_small():
    return run_sec62(
        fleet_sizes=(4,),
        rps_per_worker=150.0,
        duration_seconds=1.5,
        apps=8,
        seed=0,
    )


def test_sec62_shape_and_goodput():
    result = _sec62_small()
    policies = [row["policy"] for row in result.rows]
    assert policies == ["round_robin", "least_loaded", "random", "jsq", "locality"]
    for row in result.rows:
        assert row["goodput_rps"] > 0
        assert row["success_pct"] == 100.0
        assert row["p99_ms"] >= row["p50_ms"]
        assert row["imbalance"] >= 1.0
    # Every policy saw the identical offered stream.
    assert len({row["offered_rps"] for row in result.rows}) == 1


def test_sec62_locality_cuts_tail_versus_random():
    result = _sec62_small()
    random_p99 = result.row(policy="random")["p99_ms"]
    locality_p99 = result.row(policy="locality")["p99_ms"]
    # Warm-binary affinity removes repeat load-from-disk stalls, the
    # experiment's headline effect; leave jsq-vs-random to the full-size
    # run (sampling gains need a larger fleet to rise above noise).
    assert locality_p99 < random_p99


def test_sec62_deterministic():
    assert _sec62_small().render() == _sec62_small().render()
