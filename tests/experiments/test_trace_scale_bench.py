"""Trace-scale benchmark plumbing: groups, filter, and the gated record."""

import json
from pathlib import Path

import pytest

from repro.experiments.bench_kernel import BENCH_GROUPS, run_bench
from repro.experiments.bench_trace_scale import (
    FLOORS,
    REFERENCE_100X,
    trace_scale_matrix,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_acceptance_record_meets_floor():
    # The committed 100x record is the acceptance criterion: >=3x at 4
    # shards vs the single-shard kernel at equal scale.
    assert (
        REFERENCE_100X["speedup_4_shards_vs_baseline"]
        >= FLOORS["speedup_4_shards_min_100x"]
        == 3.0
    )
    assert REFERENCE_100X["invocations"] >= 500_000
    assert REFERENCE_100X["scale"] == 100


def test_committed_bench_report_is_consistent():
    path = REPO_ROOT / "BENCH_trace_scale.json"
    report = json.loads(path.read_text())
    assert report["schema"] == "repro-bench-trace-scale/v1"
    assert report["floors"] == FLOORS
    assert report["reference_100x"] == REFERENCE_100X
    matrix = report["measured"]["scale_10x"]
    assert matrix["speedup_lean_1_vs_baseline"] >= FLOORS["speedup_lean_1_min_10x"]
    assert matrix["speedup_4_shards_vs_baseline"] >= FLOORS["speedup_4_shards_min_10x"]
    engines = [row["engine"] for row in matrix["rows"]]
    assert engines[0] == "baseline_single_kernel"
    assert engines.count("lean") >= 3


def test_matrix_smoke_without_baseline():
    # A tiny matrix run: rows present, events/sec recorded, no speedups
    # when the baseline is skipped.
    matrix = trace_scale_matrix(scale=0.5, include_baseline=False)
    assert "speedup_4_shards_vs_baseline" not in matrix
    assert len(matrix["rows"]) == 5
    for row in matrix["rows"]:
        assert row["invocations"] > 0
        assert row["events_per_second"] > 0
        assert row["wall_seconds"] >= 0
    lean_rows = [r for r in matrix["rows"] if r["engine"] == "lean"]
    assert {r["invocations"] for r in matrix["rows"]} == {
        lean_rows[0]["invocations"]
    }, "all rows must replay the same stream"


def test_bench_only_filter_selects_groups():
    report = run_bench(output=None, only=["timeout_churn_200k"])
    assert list(report["benchmarks"]) == ["timeout_churn_200k"]
    assert report["benchmarks"]["timeout_churn_200k"]["operations"] == 200_000


def test_bench_only_rejects_unknown_group():
    with pytest.raises(KeyError, match="unknown bench groups"):
        run_bench(output=None, only=["no_such_group"])


def test_trace_scale_is_a_registered_group():
    assert "trace_scale" in BENCH_GROUPS
