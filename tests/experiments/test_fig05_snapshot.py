"""Deterministic snapshot of a reduced Fig 5 sweep.

The expected values below were captured from the pre-optimization
simulator (the O(n)-rescan ``ProcessorSharingCpu`` and the
generator-based completion timers) on the exact reduced sweep run here:
3 systems × 3 rates, 0.2 s duration.  The virtual-time rewrite must
reproduce them — the optimization is allowed to change wall-clock time
only, never virtual-time results.  Agreement is required to 1e-9
relative (the two algorithms accumulate float rounding in a different
order, so the last couple of ulps may differ; anything larger is a
semantic regression).

The test also pins bit-exact determinism of the current implementation:
two runs with the same seed must agree exactly.
"""

import math

import pytest

from repro.experiments.fig05_creation_throughput import run_fig05

_SYSTEMS = ("dandelion-kvm", "wasmtime", "firecracker-snapshot")
_RATES = (200, 1000, 4000)
_DURATION = 0.2

# Captured from the pre-optimization implementation (commit 0248ada).
# The sweep stops early for a system once it saturates, hence only one
# firecracker-snapshot row.
_EXPECTED_ROWS = [
    {"system": "dandelion-kvm", "offered_rps": 200,
     "achieved_rps": 204.1962325795088,
     "p50_ms": 0.8900000000000019, "p99_ms": 0.8900000000000019,
     "saturated": False},
    {"system": "dandelion-kvm", "offered_rps": 1000,
     "achieved_rps": 1000.5503026664658,
     "p50_ms": 0.8900000000000019, "p99_ms": 0.8900000000000019,
     "saturated": False},
    {"system": "dandelion-kvm", "offered_rps": 4000,
     "achieved_rps": 3987.2408293460894,
     "p50_ms": 0.8900000000000019, "p99_ms": 0.8900000000000019,
     "saturated": False},
    {"system": "wasmtime", "offered_rps": 200,
     "achieved_rps": 204.65398511193413,
     "p50_ms": 0.45185000000000364, "p99_ms": 0.45185000000000364,
     "saturated": False},
    {"system": "wasmtime", "offered_rps": 1000,
     "achieved_rps": 1002.7482823548634,
     "p50_ms": 0.45185000000000364, "p99_ms": 0.45185000000000364,
     "saturated": False},
    {"system": "wasmtime", "offered_rps": 4000,
     "achieved_rps": 3995.967070234363,
     "p50_ms": 0.45185000000000364, "p99_ms": 0.45185000000000364,
     "saturated": False},
    {"system": "firecracker-snapshot", "offered_rps": 200,
     "achieved_rps": 141.53601778658333,
     "p50_ms": 101.57358295902841, "p99_ms": 125.6374508168408,
     "saturated": True},
]


def _run_reduced():
    return run_fig05(systems=_SYSTEMS, rates=_RATES, duration_seconds=_DURATION)


def test_fig05_reduced_sweep_matches_pre_optimization_snapshot():
    result = _run_reduced()
    assert len(result.rows) == len(_EXPECTED_ROWS)
    for row, expected in zip(result.rows, _EXPECTED_ROWS):
        assert row["system"] == expected["system"]
        assert row["offered_rps"] == expected["offered_rps"]
        assert row["saturated"] == expected["saturated"]
        for key in ("achieved_rps", "p50_ms", "p99_ms"):
            assert not math.isnan(row[key])
            assert row[key] == pytest.approx(expected[key], rel=1e-9), (
                f"{row['system']}@{row['offered_rps']}rps {key}: "
                f"{row[key]!r} != snapshot {expected[key]!r}"
            )


def test_fig05_reduced_sweep_is_bit_deterministic():
    first = _run_reduced()
    second = _run_reduced()
    assert first.rows == second.rows
