"""Soak and structural integration tests across the whole worker.

These stress the system end to end and assert global invariants: no
leaked memory contexts, conserved engine cores, all invocations
accounted for, deterministic reruns.
"""

import pytest

from repro.functions import (
    compute_function,
    format_http_request,
    parse_http_response_item,
    read_items,
    write_item,
)
from repro.net import EchoService
from repro.sim import Rng
from repro.worker import WorkerConfig, WorkerNode


@compute_function(name="soak_gen", compute_cost=5e-5)
def soak_gen(vfs):
    count = int(vfs.read_text("/in/seed/seed"))
    for index in range(count):
        write_item(
            vfs, "requests", f"r{index}",
            format_http_request("POST", "http://echo.internal/", body=str(index).encode()),
        )


@compute_function(name="soak_agg", compute_cost=5e-5)
def soak_agg(vfs):
    values = []
    for item in read_items(vfs, "pages"):
        envelope = parse_http_response_item(item.data)
        values.append(int(envelope["body"]))
    write_item(vfs, "out", "sum", str(sum(values)).encode())


SOAK_DSL = """
composition soak {
    compute g uses soak_gen in(seed) out(requests);
    comm fetch;
    compute a uses soak_agg in(pages) out(out);
    input seed -> g.seed;
    g.requests -> fetch.request [each];
    fetch.response -> a.pages [all];
    output a.out -> result;
}
"""


def build_worker(seed=0):
    worker = WorkerNode(
        WorkerConfig(total_cores=8, control_plane_enabled=True, seed=seed)
    )
    worker.network.register(EchoService())
    worker.frontend.register_function(soak_gen)
    worker.frontend.register_function(soak_agg)
    worker.frontend.register_composition(SOAK_DSL)
    return worker


def run_soak(worker, invocations=120, seed=7):
    rng = Rng(seed)
    arrivals = rng.poisson_arrivals(rate=300, duration=invocations / 300)
    env = worker.env

    def one(at, fan):
        delay = at - env.now
        if delay > 0:
            yield env.timeout(delay)
        result = yield worker.frontend.invoke("soak", {"seed": str(fan).encode()})
        return result

    processes = [
        env.process(one(at, 1 + index % 5))
        for index, at in enumerate(arrivals)
    ]
    env.run(until=env.all_of(processes))
    return [process.value for process in processes]


def test_soak_all_invocations_correct():
    worker = build_worker()
    results = run_soak(worker)
    assert results
    for index, result in enumerate(results):
        assert result.ok, result.error
        fan = 1 + index % 5
        expected = sum(range(fan))
        assert result.output("result").item("sum").data == str(expected).encode()


def test_soak_no_leaked_contexts_or_memory():
    worker = build_worker()
    run_soak(worker)
    assert worker.memory.current_bytes == 0
    assert worker.memory.live_context_count == 0
    assert worker.memory.peak_bytes > 0


def test_soak_cores_conserved_under_control_plane():
    worker = build_worker()
    run_soak(worker)
    # The PI controller may have moved cores, but never created or lost
    # any.
    assert worker.total_engine_cores == worker.config.total_cores
    assert worker.compute_group.engine_count >= 1
    assert worker.comm_group.engine_count >= 1


def test_soak_counters_consistent():
    worker = build_worker()
    results = run_soak(worker)
    assert worker.dispatcher.invocations_started == len(results)
    assert worker.dispatcher.invocations_completed == len(results)
    assert worker.dispatcher.invocations_failed == 0
    # 2 compute nodes per invocation; comm tasks = one per 'each' item.
    assert worker.compute_group.tasks_executed == 2 * len(results)
    assert worker.comm_group.tasks_executed >= len(results)


def test_soak_deterministic_across_reruns():
    first = build_worker(seed=3)
    second = build_worker(seed=3)
    latencies_a = [r.latency for r in run_soak(first, seed=9)]
    latencies_b = [r.latency for r in run_soak(second, seed=9)]
    assert latencies_a == latencies_b


def test_one_output_set_feeds_two_consumers():
    # A producer's output set fans to two different consumer nodes;
    # both receive the full set and the producer's context is freed
    # only after both have consumed it.
    @compute_function(name="dual_src", compute_cost=1e-5)
    def src(vfs):
        write_item(vfs, "data", "x", b"shared")

    @compute_function(name="dual_left", compute_cost=1e-5)
    def left(vfs):
        write_item(vfs, "out", "l", read_items(vfs, "data")[0].data + b"-L")

    @compute_function(name="dual_right", compute_cost=1e-5)
    def right(vfs):
        write_item(vfs, "out", "r", read_items(vfs, "data")[0].data + b"-R")

    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    for binary in (src, left, right):
        worker.frontend.register_function(binary)
    worker.frontend.register_composition("""
        composition dual {
            compute s uses dual_src in(seed) out(data);
            compute l uses dual_left in(data) out(out);
            compute r uses dual_right in(data) out(out);
            input seed -> s.seed;
            s.data -> l.data;
            s.data -> r.data;
            output l.out -> left;
            output r.out -> right;
        }
    """)
    result = worker.invoke_and_run("dual", {"seed": b""})
    assert result.ok
    assert result.output("left").item("l").data == b"shared-L"
    assert result.output("right").item("r").data == b"shared-R"
    assert worker.memory.live_context_count == 0
