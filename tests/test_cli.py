"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1 (morello)" in out
    assert "Table 1 (linux)" in out
    assert "kvm" in out


def test_run_sec8(capsys):
    assert main(["run", "sec8"]) == 0
    out = capsys.readouterr().out
    assert "TCB" in out
    assert "all enforcement checks passed" in out


def test_run_sec77(capsys):
    assert main(["run", "sec77"]) == 0
    out = capsys.readouterr().out
    assert "llm_request" in out


def test_run_multiple(capsys):
    assert main(["run", "table1", "sec8"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "TCB" in out


def test_unknown_experiment(capsys):
    assert main(["run", "nonexistent"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiments" in err


def test_fig9_scale_factor_flag(capsys):
    assert main(["run", "fig9", "--scale-factor", "0.002"]) == 0
    out = capsys.readouterr().out
    assert "Q1.1" in out and "athena" in out.lower()


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


# -- lint command -----------------------------------------------------------


def test_lint_self_strict_is_clean(capsys):
    # The checked-in baseline grandfathers the bench/CLI wall clocks;
    # anything new fails CI.
    assert main(["lint", "--self", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "suppressed by baseline" in out


def test_lint_functions_and_compositions(capsys):
    assert main(["lint", "--functions", "--compositions", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "error(s)" in out


def test_lint_json_format(capsys):
    import json

    assert main(["lint", "--self", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-lint/v1"


def test_lint_write_and_use_baseline(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", "--self", "--baseline", baseline, "--write-baseline"]) == 0
    capsys.readouterr()
    assert main(["lint", "--self", "--baseline", baseline, "--strict"]) == 0


def test_lint_scans_paths_for_dsl_blocks(tmp_path, capsys):
    script = tmp_path / "example.py"
    script.write_text(
        'DSL = """\n'
        "composition broken {\n"
        "    compute a uses f in(x) out(y);\n"
        "    input x -> a.x;\n"
        "}\n"
        '"""\n'
    )
    code = main(["lint", "--compositions", str(script)])
    out = capsys.readouterr().out
    assert code == 1  # CMP000: no outputs declared
    assert "CMP000" in out


def test_lint_reports_sec8_static_table(capsys):
    assert main(["run", "sec8"]) == 0
    out = capsys.readouterr().out
    assert "static verifier rejected" in out
