"""Tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1 (morello)" in out
    assert "Table 1 (linux)" in out
    assert "kvm" in out


def test_run_sec8(capsys):
    assert main(["run", "sec8"]) == 0
    out = capsys.readouterr().out
    assert "TCB" in out
    assert "all enforcement checks passed" in out


def test_run_sec77(capsys):
    assert main(["run", "sec77"]) == 0
    out = capsys.readouterr().out
    assert "llm_request" in out


def test_run_multiple(capsys):
    assert main(["run", "table1", "sec8"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "TCB" in out


def test_unknown_experiment(capsys):
    assert main(["run", "nonexistent"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiments" in err


def test_fig9_scale_factor_flag(capsys):
    assert main(["run", "fig9", "--scale-factor", "0.002"]) == 0
    out = capsys.readouterr().out
    assert "Q1.1" in out and "athena" in out.lower()


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
