"""Streamed trace generation and the stratified sampler at scale."""

import itertools
import tracemalloc

import pytest

from repro.sim.distributions import Rng
from repro.trace.azure import _DURATION_MAX, _DURATION_MIN, generate_functions
from repro.trace.sampler import sample_functions
from repro.trace.stream import StreamedTrace, streamed_trace


def test_stream_is_time_ordered_and_bounded():
    trace = streamed_trace(function_count=300, duration_seconds=120.0, total_rps=60.0)
    last = 0.0
    count = 0
    for t, index, duration in trace.iter_invocations():
        assert t >= last
        assert 0.0 <= t < trace.duration_seconds
        assert 0 <= index < trace.function_count
        assert _DURATION_MIN <= duration <= _DURATION_MAX
        last = t
        count += 1
    assert count > 1000


def test_stream_is_replayable_byte_identical():
    trace = streamed_trace(function_count=200, duration_seconds=60.0, total_rps=40.0)
    first = list(trace.iter_invocations())
    second = list(trace.iter_invocations())
    assert first == second


def test_per_function_streams_independent_of_consumption():
    # The invariance argument leans on this: a function's invocation
    # sequence must not depend on how the other functions are consumed.
    trace = streamed_trace(function_count=50, duration_seconds=60.0, total_rps=20.0)
    full = [inv for inv in trace.iter_invocations() if inv[1] == 7]
    partial = [
        inv
        for inv in itertools.islice(trace.iter_invocations(), 200)
        if inv[1] == 7
    ]
    assert full[: len(partial)] == partial


def test_materialize_matches_stream():
    trace = streamed_trace(function_count=40, duration_seconds=30.0, total_rps=10.0)
    eager = trace.materialize()
    streamed = list(trace.iter_invocations())
    assert len(eager.invocations) == len(streamed)
    for invocation, (t, index, duration) in zip(eager.invocations, streamed):
        assert invocation.time == t
        assert invocation.function_name == trace.functions[index].name
        assert invocation.duration_seconds == duration


def test_seed_changes_stream():
    a = streamed_trace(function_count=50, duration_seconds=30.0, total_rps=10.0, seed=1)
    b = streamed_trace(function_count=50, duration_seconds=30.0, total_rps=10.0, seed=2)
    assert list(a.iter_invocations()) != list(b.iter_invocations())


class TestSamplerAtScale:
    """Stratified sampling over >=10k-function populations (satellite)."""

    @pytest.fixture(scope="class")
    def population(self):
        return generate_functions(10_000, 1200.0, Rng(42))

    def test_strata_proportions_preserved(self, population):
        sample = sample_functions(population, 500, Rng(7), strata=5)
        assert len(sample) == 500
        assert len({f.name for f in sample}) == 500
        # Quantile strata by rate: each stratum of the population must
        # contribute ~proportionally (equal-sized strata -> ~100 each).
        ordered = sorted(population, key=lambda f: f.mean_rate_rps)
        rank = {f.name: i for i, f in enumerate(ordered)}
        per_stratum = [0] * 5
        for f in sample:
            per_stratum[rank[f.name] * 5 // len(ordered)] += 1
        for share in per_stratum:
            assert 80 <= share <= 120, per_stratum

    def test_hot_tail_survives_sampling(self, population):
        # Uniform sampling would likely miss the few hottest functions;
        # the stratified sampler must keep the top stratum represented.
        sample = sample_functions(population, 100, Rng(7), strata=5)
        hottest_cut = sorted(
            (f.mean_rate_rps for f in population), reverse=True
        )[len(population) // 5]
        assert any(f.mean_rate_rps >= hottest_cut for f in sample)

    def test_seed_stability(self, population):
        first = sample_functions(population, 300, Rng(11))
        second = sample_functions(population, 300, Rng(11))
        assert [f.name for f in first] == [f.name for f in second]
        different = sample_functions(population, 300, Rng(12))
        assert [f.name for f in first] != [f.name for f in different]

    def test_sampled_streamed_trace_carries_sample_share(self):
        trace = streamed_trace(
            function_count=10_000,
            duration_seconds=5.0,
            total_rps=1200.0,
            sample_size=100,
        )
        assert trace.function_count == 100
        sampled_rps = sum(f.mean_rate_rps for f in trace.functions)
        assert 0 < sampled_rps < 1200.0

    def test_streamed_generation_memory_bound(self):
        # Once the per-function machinery is set up (generators + RNG
        # streams, O(functions)), draining the whole stream must not
        # grow memory with the invocation count — there is never a
        # materialized arrival list.  An eager list of this stream
        # would allocate several MB; the drain stays under 512 KiB.
        trace = streamed_trace(
            function_count=10_000, duration_seconds=200.0, total_rps=600.0
        )
        stream = trace.iter_invocations()
        next(stream)  # pay the O(functions) setup before measuring
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        count = sum(1 for _ in stream)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count > 50_000
        assert peak - baseline < 512 * 1024, (count, peak - baseline)


def test_streamed_trace_slots_and_fields():
    trace = StreamedTrace([], 10.0, 3)
    assert trace.duration_seconds == 10.0
    assert trace.function_count == 0
    assert trace.memory_bytes() == []
