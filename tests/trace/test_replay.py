"""Tests for trace replay on Dandelion and Firecracker+Knative."""

import pytest

from repro.trace import (
    generate_trace,
    replay_on_dandelion,
    replay_on_faas,
)

MiB = 1 << 20


@pytest.fixture(scope="module")
def small_trace():
    # Dense enough that keep-alive actually produces warm hits: 10
    # functions sharing ~8 rps over four minutes.
    return generate_trace(function_count=10, duration_seconds=240, total_rps=8, seed=21)


@pytest.fixture(scope="module")
def dandelion_report(small_trace):
    return replay_on_dandelion(small_trace)


@pytest.fixture(scope="module")
def faas_report(small_trace):
    return replay_on_faas(small_trace)


def test_all_invocations_served(small_trace, dandelion_report, faas_report):
    assert dandelion_report.total_requests == small_trace.total_invocations
    assert faas_report.total_requests == small_trace.total_invocations


def test_dandelion_every_request_cold(dandelion_report):
    assert dandelion_report.cold_fraction == 1.0


def test_faas_mostly_warm(faas_report):
    assert faas_report.cold_fraction < 0.35


def test_dandelion_commits_far_less_memory(dandelion_report, faas_report):
    dandelion = dandelion_report.average_committed_bytes()
    faas = faas_report.average_committed_bytes()
    assert dandelion < faas / 5


def test_faas_overprovisions_vs_active(faas_report):
    committed = faas_report.average_committed_bytes()
    active = faas_report.average_active_bytes()
    assert committed > 3 * active


def test_dandelion_committed_equals_active(dandelion_report):
    assert dandelion_report.average_committed_bytes() == pytest.approx(
        dandelion_report.average_active_bytes()
    )


def test_dandelion_memory_returns_to_zero(dandelion_report):
    assert dandelion_report.committed_series.values[-1] == 0


def test_latency_dominated_by_execution(dandelion_report):
    # Sandbox creation is sub-ms; latencies track the trace durations.
    assert dandelion_report.latencies.percentile(50) >= 0.01


def test_summary_fields(dandelion_report):
    summary = dandelion_report.summary()
    assert {"platform", "avg_committed_mib", "p99_latency", "cold_fraction"} <= set(summary)
    assert summary["platform"] == "dandelion"


def test_replay_deterministic(small_trace):
    first = replay_on_dandelion(small_trace)
    second = replay_on_dandelion(small_trace)
    assert first.latencies.percentile(99) == second.latencies.percentile(99)
    assert first.average_committed_bytes() == second.average_committed_bytes()


def test_keep_alive_zero_removes_overprovisioning(small_trace):
    report = replay_on_faas(small_trace, keep_alive_seconds=0.0)
    assert report.cold_fraction == 1.0
    committed = report.average_committed_bytes()
    active = report.average_active_bytes()
    assert committed == pytest.approx(active, rel=0.05)


def test_longer_keepalive_more_memory_fewer_colds(small_trace):
    short = replay_on_faas(small_trace, keep_alive_seconds=10.0)
    long = replay_on_faas(small_trace, keep_alive_seconds=300.0)
    assert long.average_committed_bytes() > short.average_committed_bytes()
    assert long.cold_fraction <= short.cold_fraction
