"""Tests for synthetic Azure-trace generation and sampling."""

import pytest

from repro.sim import Rng
from repro.trace import (
    generate_functions,
    generate_trace,
    sample_functions,
    sample_trace,
)


def test_trace_determinism():
    a = generate_trace(function_count=20, duration_seconds=100, total_rps=2, seed=7)
    b = generate_trace(function_count=20, duration_seconds=100, total_rps=2, seed=7)
    assert a.total_invocations == b.total_invocations
    assert [i.time for i in a.invocations[:20]] == [i.time for i in b.invocations[:20]]


def test_different_seed_different_trace():
    a = generate_trace(function_count=20, duration_seconds=100, total_rps=2, seed=1)
    b = generate_trace(function_count=20, duration_seconds=100, total_rps=2, seed=2)
    assert [i.time for i in a.invocations[:10]] != [i.time for i in b.invocations[:10]]


def test_invocations_sorted_and_in_window():
    trace = generate_trace(function_count=50, duration_seconds=300, total_rps=5, seed=3)
    times = [inv.time for inv in trace.invocations]
    assert times == sorted(times)
    assert all(0 <= t < 300 for t in times)


def test_total_rate_roughly_requested():
    trace = generate_trace(function_count=100, duration_seconds=1200, total_rps=5, seed=4)
    # Rare-pattern clamping may trim a little; stay within a factor.
    assert 2.0 < trace.average_rps < 8.0


def test_rate_skew_matches_azure_characterisation():
    functions = generate_functions(200, total_rps=10, rng=Rng(5))
    rates = sorted(f.mean_rate_rps for f in functions)
    rare = sum(1 for r in rates if r <= 1 / 60)
    # Most functions average less than one invocation per minute.
    assert rare / len(rates) > 0.6
    # And the hottest function carries far more than the median.
    assert rates[-1] > 50 * rates[len(rates) // 2]


def test_durations_heavy_tailed_but_bounded():
    trace = generate_trace(function_count=100, duration_seconds=600, total_rps=10, seed=6)
    durations = [inv.duration_seconds for inv in trace.invocations]
    assert all(0.01 <= d <= 30.0 for d in durations)
    durations.sort()
    median = durations[len(durations) // 2]
    assert 0.02 < median < 2.0
    assert durations[-1] > 3 * median


def test_memory_bounds():
    functions = generate_functions(100, total_rps=5, rng=Rng(8))
    MiB = 1 << 20
    assert all(16 * MiB <= f.memory_bytes <= 512 * MiB for f in functions)


def test_pattern_mix_present():
    functions = generate_functions(200, total_rps=10, rng=Rng(9))
    patterns = {f.pattern for f in functions}
    assert patterns == {"steady", "periodic", "rare"}


def test_periodic_functions_have_period_and_bounded_burst():
    functions = generate_functions(200, total_rps=10, rng=Rng(10))
    for f in functions:
        if f.pattern == "periodic":
            assert f.period_seconds > 0
            assert 1 <= f.burst_size <= 4


def test_generate_functions_validation():
    with pytest.raises(ValueError):
        generate_functions(0, total_rps=1, rng=Rng(0))
    with pytest.raises(ValueError):
        generate_functions(10, total_rps=0, rng=Rng(0))


def test_trace_lookup_helpers():
    trace = generate_trace(function_count=10, duration_seconds=200, total_rps=3, seed=11)
    name = trace.functions[0].name
    assert trace.function(name).name == name
    with pytest.raises(KeyError):
        trace.function("ghost")
    for inv in trace.invocations_of(name):
        assert inv.function_name == name


def test_sample_functions_size_and_membership():
    functions = generate_functions(200, total_rps=10, rng=Rng(12))
    picked = sample_functions(functions, 50, Rng(13))
    assert len(picked) == 50
    assert len({f.name for f in picked}) == 50
    names = {f.name for f in functions}
    assert all(f.name in names for f in picked)


def test_sample_preserves_rate_spread():
    functions = generate_functions(300, total_rps=20, rng=Rng(14))
    picked = sample_functions(functions, 60, Rng(15))
    all_rates = sorted(f.mean_rate_rps for f in functions)
    picked_rates = sorted(f.mean_rate_rps for f in picked)
    # The sample must include both tails, which uniform sampling of so
    # few functions would likely miss at the top.
    assert picked_rates[0] <= all_rates[len(all_rates) // 4]
    assert picked_rates[-1] >= all_rates[-len(all_rates) // 10]


def test_sample_validation():
    functions = generate_functions(10, total_rps=1, rng=Rng(0))
    with pytest.raises(ValueError):
        sample_functions(functions, 0, Rng(0))
    with pytest.raises(ValueError):
        sample_functions(functions, 11, Rng(0))


def test_sample_trace_restricts_invocations():
    trace = generate_trace(function_count=50, duration_seconds=300, total_rps=5, seed=16)
    sampled = sample_trace(trace, 10, Rng(17))
    assert len(sampled.functions) == 10
    names = {f.name for f in sampled.functions}
    assert all(inv.function_name in names for inv in sampled.invocations)
    assert sampled.duration_seconds == trace.duration_seconds
