"""Unit and property tests for MemoryContext and the set wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    PAGE_SIZE,
    ContextError,
    DataItem,
    DataSet,
    MemoryContext,
    parse_sets,
    serialize_sets,
    serialized_size,
)


def test_write_then_read_roundtrip():
    ctx = MemoryContext(1024)
    ctx.write(10, b"hello")
    assert ctx.read(10, 5) == b"hello"


def test_unwritten_memory_reads_zero():
    ctx = MemoryContext(64)
    ctx.write(0, b"x")
    assert ctx.read(1, 3) == b"\x00\x00\x00"


def test_capacity_enforced_on_write():
    ctx = MemoryContext(16)
    with pytest.raises(ContextError):
        ctx.write(10, b"0123456789")


def test_capacity_enforced_on_read():
    ctx = MemoryContext(16)
    with pytest.raises(ContextError):
        ctx.read(10, 10)


def test_negative_offset_rejected():
    ctx = MemoryContext(16)
    with pytest.raises(ContextError):
        ctx.write(-1, b"x")
    with pytest.raises(ContextError):
        ctx.read(-1, 1)


def test_invalid_capacity_rejected():
    with pytest.raises(ContextError):
        MemoryContext(0)


def test_committed_grows_with_pages():
    ctx = MemoryContext(10 * PAGE_SIZE)
    assert ctx.committed == 0
    ctx.write(0, b"x")
    assert ctx.committed == PAGE_SIZE
    ctx.write(PAGE_SIZE + 1, b"y")
    assert ctx.committed == 2 * PAGE_SIZE


def test_committed_never_exceeds_reserved_pages():
    capacity = 3 * PAGE_SIZE
    ctx = MemoryContext(capacity)
    ctx.write(capacity - 1, b"z")
    assert ctx.committed == capacity


def test_free_releases_and_blocks_access():
    ctx = MemoryContext(64)
    ctx.write(0, b"data")
    ctx.free()
    assert ctx.freed
    assert ctx.committed == 0
    with pytest.raises(ContextError):
        ctx.read(0, 1)
    with pytest.raises(ContextError):
        ctx.write(0, b"x")


def test_transfer_between_contexts():
    src = MemoryContext(64)
    dst = MemoryContext(64)
    src.write(0, b"payload")
    src.transfer_to(dst, src_offset=0, dst_offset=8, length=7)
    assert dst.read(8, 7) == b"payload"


def test_transfer_respects_destination_capacity():
    src = MemoryContext(64)
    dst = MemoryContext(4)
    src.write(0, b"toolong")
    with pytest.raises(ContextError):
        src.transfer_to(dst, 0, 0, 7)


def _sample_sets():
    return [
        DataSet("alpha", [DataItem("x", b"123", key="k"), DataItem("y", b"")]),
        DataSet("beta", []),
        DataSet("gamma", [DataItem("z", bytes(range(256)))]),
    ]


def test_store_and_load_sets_roundtrip():
    ctx = MemoryContext(1 << 16)
    written = ctx.store_sets(_sample_sets())
    assert written > 0
    loaded = ctx.load_sets()
    assert [s.ident for s in loaded] == ["alpha", "beta", "gamma"]
    assert loaded[0].item("x").data == b"123"
    assert loaded[0].item("x").key == "k"
    assert loaded[0].item("y").key is None
    assert len(loaded[1]) == 0
    assert loaded[2].item("z").data == bytes(range(256))


def test_parser_rejects_bad_magic():
    with pytest.raises(ContextError):
        parse_sets(b"XXXX" + b"\x00" * 16)


def test_parser_rejects_truncated_blob():
    blob = serialize_sets(_sample_sets())
    with pytest.raises(ContextError):
        parse_sets(blob[: len(blob) // 2])


def test_parser_rejects_huge_set_count():
    import struct
    blob = struct.pack("<4sI", b"DNDL", 1 << 30)
    with pytest.raises(ContextError):
        parse_sets(blob)


def test_parser_rejects_empty_set_name():
    import struct
    blob = struct.pack("<4sI", b"DNDL", 1) + struct.pack("<I", 0) + struct.pack("<I", 0)
    with pytest.raises(ContextError):
        parse_sets(blob)


def test_parser_rejects_invalid_utf8_name():
    import struct
    blob = (
        struct.pack("<4sI", b"DNDL", 1)
        + struct.pack("<I", 2) + b"\xff\xfe"
        + struct.pack("<I", 0)
    )
    with pytest.raises(ContextError):
        parse_sets(blob)


_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
)


@st.composite
def _sets_strategy(draw):
    count = draw(st.integers(0, 4))
    sets = []
    used_set_names = set()
    for _ in range(count):
        name = draw(_names.filter(lambda n: n not in used_set_names))
        used_set_names.add(name)
        items = []
        used = set()
        for _ in range(draw(st.integers(0, 4))):
            ident = draw(_names.filter(lambda n: n not in used))
            used.add(ident)
            data = draw(st.binary(max_size=64))
            key = draw(st.one_of(st.none(), _names))
            items.append(DataItem(ident, data, key=key))
        sets.append(DataSet(name, items))
    return sets


@settings(max_examples=120, deadline=None)
@given(_sets_strategy())
def test_property_serialize_parse_roundtrip(sets):
    loaded = parse_sets(serialize_sets(sets))
    assert len(loaded) == len(sets)
    for original, parsed in zip(sets, loaded):
        assert parsed.ident == original.ident
        assert len(parsed) == len(original)
        for item_in, item_out in zip(original, parsed):
            assert item_out.ident == item_in.ident
            assert item_out.data == item_in.data
            assert item_out.key == item_in.key


@settings(max_examples=80, deadline=None)
@given(st.binary(max_size=256))
def test_property_parser_never_crashes_on_garbage(blob):
    # Strictness property: arbitrary bytes either parse or raise
    # ContextError — never any other exception, never a hang.
    try:
        parse_sets(blob)
    except ContextError:
        pass


_unicode_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=0x2FFF),
    min_size=1,
    max_size=24,
).filter(lambda n: len(n.encode("utf-8")) <= 4096)


@st.composite
def _sets_any_names(draw):
    """Sets with non-ASCII names, empty sets, empty payloads."""
    sets = []
    for _ in range(draw(st.integers(0, 4))):
        items = []
        used = set()
        for _ in range(draw(st.integers(0, 4))):
            ident = draw(_unicode_names.filter(lambda n: n not in used))
            used.add(ident)
            items.append(
                DataItem(
                    ident,
                    draw(st.binary(max_size=128)),
                    key=draw(st.one_of(st.none(), _unicode_names)),
                )
            )
        sets.append(DataSet(draw(_unicode_names), items))
    return sets


@settings(max_examples=150, deadline=None)
@given(_sets_any_names())
def test_property_serialized_size_matches_encoder(sets):
    # The accounting half of the data plane must agree byte-for-byte
    # with the eager encoder, including empty sets and non-ASCII names.
    assert serialized_size(sets) == len(serialize_sets(sets))
    # A second call hits the per-set wire cache; it must not drift.
    assert serialized_size(sets) == len(serialize_sets(sets))


def test_serialized_size_empty():
    assert serialized_size([]) == len(serialize_sets([]))


def test_serialized_size_max_length_name():
    name = "n" * 4096
    sets = [DataSet(name, [DataItem(name, b"x", key=name)])]
    assert serialized_size(sets) == len(serialize_sets(sets))


def test_serialized_size_rejects_overlong_name_like_encoder():
    sets = [DataSet("s", [DataItem("i" * 4097, b"")])]
    with pytest.raises(ContextError):
        serialize_sets(sets)
    with pytest.raises(ContextError):
        serialized_size(sets)


def test_serialized_size_cache_invalidated_by_add():
    data_set = DataSet("s", [DataItem("a", b"123")])
    first = serialized_size([data_set])
    data_set.add(DataItem("b", b"4567"))
    assert serialized_size([data_set]) == len(serialize_sets([data_set])) > first


def test_store_sets_is_lazy_until_read():
    # Accounting happens immediately; bytes appear only when read.
    ctx = MemoryContext(1 << 16)
    sets = _sample_sets()
    size = ctx.store_sets(sets)
    assert size == len(serialize_sets(sets))
    assert ctx.committed >= size  # pages charged without materializing
    assert len(ctx._buffer) == 0  # nothing copied yet
    loaded = ctx.load_sets()
    assert [s.ident for s in loaded] == ["alpha", "beta", "gamma"]


def test_lazy_store_then_raw_write_keeps_order():
    # A raw write after a lazy store must win over the store's bytes.
    ctx = MemoryContext(1 << 16)
    ctx.store_sets(_sample_sets())
    ctx.write(4, b"\x63")  # clobber one byte of the (lazy) header area
    blob = ctx.read(0, 8)
    assert blob[4] == 0x63


def test_read_view_is_zero_copy_alias():
    ctx = MemoryContext(64)
    ctx.write(0, b"abcdef")
    view = ctx.read_view(1, 3)
    assert isinstance(view, memoryview)
    assert bytes(view) == b"bcd"


def test_store_sets_overflow_fails_without_materializing():
    ctx = MemoryContext(16)
    with pytest.raises(ContextError):
        ctx.store_sets(_sample_sets())
    assert len(ctx._buffer) == 0
    assert ctx.committed == 0


def test_wire_version_default_is_v2():
    from repro.data import WIRE_VERSION

    assert WIRE_VERSION == 2
    blob = serialize_sets(_sample_sets())
    assert blob[:4] == b"DND2"


def test_v1_serialize_parse_roundtrip():
    sets = _sample_sets()
    blob = serialize_sets(sets, version=1)
    assert blob[:4] == b"DNDL"
    parsed = parse_sets(blob)
    assert [s.ident for s in parsed] == [s.ident for s in sets]
    assert parsed[0].item("x").data == b"123"


def test_unknown_wire_version_rejected():
    with pytest.raises(ValueError):
        serialize_sets(_sample_sets(), version=3)
    with pytest.raises(ValueError):
        serialized_size(_sample_sets(), version=3)


def test_serialized_size_matches_both_versions():
    sets = _sample_sets()
    assert serialized_size(sets, version=1) == len(serialize_sets(sets, version=1))
    assert serialized_size(sets, version=2) == len(serialize_sets(sets, version=2))
    # v2 costs exactly the footer on top of v1: 8 bytes of extra
    # header, 28 per set, 8 per item.
    items = sum(len(s) for s in sets)
    assert serialized_size(sets, version=2) - serialized_size(sets, version=1) == (
        8 + 28 * len(sets) + 8 * items
    )


def test_strict_parse_rejects_tampered_footer():
    import struct

    blob = bytearray(serialize_sets(_sample_sets()))
    _, set_count, footer_offset = struct.unpack_from("<4sIQ", blob, 0)
    # Point the first set entry's offset one byte off: the footer no
    # longer agrees with the body scan.
    set_offset = struct.unpack_from("<Q", blob, footer_offset)[0]
    struct.pack_into("<Q", blob, footer_offset, set_offset + 1)
    with pytest.raises(ContextError):
        parse_sets(bytes(blob))


def test_strict_parse_rejects_body_not_ending_at_footer():
    import struct

    blob = bytearray(serialize_sets(_sample_sets()))
    # Claim the footer starts one byte later than the body really ends.
    footer_offset = struct.unpack_from("<Q", blob, 8)[0]
    grown = blob[: footer_offset] + b"\x00" + blob[footer_offset:]
    struct.pack_into("<Q", grown, 8, footer_offset + 1)
    with pytest.raises(ContextError):
        parse_sets(bytes(grown))


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 1 << 16), st.binary(min_size=1, max_size=512))
def test_property_write_read_identity(capacity, data):
    ctx = MemoryContext(capacity)
    if len(data) > capacity:
        with pytest.raises(ContextError):
            ctx.write(0, data)
    else:
        ctx.write(0, data)
        assert ctx.read(0, len(data)) == data
        assert ctx.committed <= ((capacity + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE
