"""Zero-copy re-encode of unmodified lazy set views (store-back path)."""

from repro.data.context import MemoryContext, serialize_sets, serialized_size
from repro.data.items import DataItem, DataSet
from repro.data.lazy import LazyDataSet, parse_sets_lazy


def sample_sets():
    return [
        DataSet("request", [DataItem("body", b"p" * 300, key="k0"), DataItem("hdr", b"h" * 40)]),
        DataSet("config", [DataItem(f"opt{i}", bytes([i]) * (i + 1)) for i in range(6)]),
    ]


def test_passthrough_is_byte_identical():
    blob = serialize_sets(sample_sets())
    assert serialize_sets(parse_sets_lazy(blob)) == blob


def test_passthrough_never_materializes_payloads():
    blob = serialize_sets(sample_sets())
    views = parse_sets_lazy(blob)
    serialize_sets(views)
    for view in views:
        assert isinstance(view, LazyDataSet)
        entries = view._body.entries
        # No item header was even parsed, let alone a payload copied.
        assert entries is None or all(
            entry is None or entry._data is None for entry in entries
        )


def test_passthrough_after_ident_touch_still_splices():
    blob = serialize_sets(sample_sets())
    views = parse_sets_lazy(blob)
    for view in views:
        view.ident  # decode (but do not change) the name
    assert serialize_sets(views) == blob


def test_renamed_view_reencodes_correctly():
    blob = serialize_sets(sample_sets())
    renamed = parse_sets_lazy(blob)[0].renamed("response")
    reencoded = parse_sets_lazy(serialize_sets([renamed]))
    assert reencoded[0].ident == "response"
    assert reencoded[0].item("body").data == b"p" * 300
    assert reencoded[0].item("body").key == "k0"


def test_mixed_lazy_and_eager_sets():
    blob = serialize_sets(sample_sets())
    views = parse_sets_lazy(blob)
    mixed = [views[1], DataSet("fresh", [DataItem("x", b"z" * 9)]), views[0]]
    out = parse_sets_lazy(serialize_sets(mixed))
    assert [s.ident for s in out] == ["config", "fresh", "request"]
    assert out[2].item("hdr").data == b"h" * 40
    assert out[0].item("opt5").data == bytes([5]) * 6
    assert out[1].item("x").data == b"z" * 9


def test_serialized_size_matches_spliced_encoding():
    blob = serialize_sets(sample_sets())
    views = parse_sets_lazy(blob)
    assert serialized_size(views) == len(serialize_sets(views))


def test_context_store_back_loaded_sets():
    # The dispatcher pattern: load sets from one context, store them
    # into another untouched; materialization must reproduce the bytes.
    source = MemoryContext(capacity=1 << 16)
    size = source.store_sets(sample_sets())
    views = source.load_sets()
    destination = MemoryContext(capacity=1 << 16)
    assert destination.store_sets(views) == size
    assert destination.read(0, size) == source.read(0, size)


def test_lazy_views_from_memoryview_blob_splice():
    blob = serialize_sets(sample_sets())
    views = parse_sets_lazy(memoryview(blob))
    assert serialize_sets(views) == blob
