"""Unit tests for the hlibc-style in-memory virtual filesystem."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DataItem, DataSet, VfsError, VirtualFileSystem


def make_vfs():
    inputs = [
        DataSet("req", [DataItem("token", b"secret"), DataItem("body", b"hello world")]),
        DataSet("config", [DataItem("mode", b"fast")]),
    ]
    return VirtualFileSystem(inputs, ["resp", "logs"])


def test_read_input_binary():
    vfs = make_vfs()
    with vfs.open("/in/req/token", "rb") as handle:
        assert handle.read() == b"secret"


def test_read_input_text():
    vfs = make_vfs()
    with vfs.open("/in/req/body", "r") as handle:
        assert handle.read() == "hello world"


def test_read_missing_file_raises():
    vfs = make_vfs()
    with pytest.raises(VfsError):
        vfs.read_bytes("/in/req/missing")
    with pytest.raises(VfsError):
        vfs.read_bytes("/in/nope/x")


def test_relative_path_rejected():
    vfs = make_vfs()
    with pytest.raises(VfsError):
        vfs.open("in/req/token", "rb")


def test_path_escape_rejected():
    vfs = make_vfs()
    with pytest.raises(VfsError):
        vfs.read_bytes("/in/../../etc/passwd")


def test_write_to_input_rejected():
    vfs = make_vfs()
    with pytest.raises(VfsError):
        vfs.open("/in/req/token", "wb")


def test_write_to_undeclared_output_set_rejected():
    vfs = make_vfs()
    with pytest.raises(VfsError):
        vfs.open("/out/unknown/file", "wb")


def test_write_and_collect_outputs():
    vfs = make_vfs()
    with vfs.open("/out/resp/result", "wb") as handle:
        handle.write(b"answer")
    vfs.write_text("/out/logs/log1", "line", key="shard0")
    outputs = vfs.collect_outputs()
    by_name = {s.ident: s for s in outputs}
    assert set(by_name) == {"resp", "logs"}
    assert by_name["resp"].item("result").data == b"answer"
    assert by_name["logs"].item("log1").key == "shard0"


def test_declared_empty_output_set_present():
    vfs = make_vfs()
    outputs = vfs.collect_outputs()
    assert [s.ident for s in outputs] == ["resp", "logs"]
    assert all(len(s) == 0 for s in outputs)


def test_written_output_readable_back():
    vfs = make_vfs()
    vfs.write_bytes("/out/resp/a", b"1")
    assert vfs.read_bytes("/out/resp/a") == b"1"


def test_append_mode_extends():
    vfs = make_vfs()
    vfs.write_text("/out/logs/l", "one")
    with vfs.open("/out/logs/l", "a") as handle:
        handle.write(" two")
    assert vfs.read_text("/out/logs/l") == "one two"


def test_overwrite_replaces():
    vfs = make_vfs()
    vfs.write_bytes("/out/resp/r", b"old")
    vfs.write_bytes("/out/resp/r", b"new")
    assert vfs.read_bytes("/out/resp/r") == b"new"
    assert len(vfs.collect_outputs()[0]) == 1


def test_listdir_roots_and_sets():
    vfs = make_vfs()
    assert vfs.listdir("/") == ["in", "out"]
    assert vfs.listdir("/in") == ["config", "req"]
    assert vfs.listdir("/out") == ["logs", "resp"]
    assert vfs.listdir("/in/req") == ["body", "token"]


def test_listdir_outputs_reflect_writes():
    vfs = make_vfs()
    assert vfs.listdir("/out/resp") == []
    vfs.write_bytes("/out/resp/b", b"")
    vfs.write_bytes("/out/resp/a", b"")
    assert vfs.listdir("/out/resp") == ["a", "b"]


def test_listdir_missing_raises():
    vfs = make_vfs()
    with pytest.raises(VfsError):
        vfs.listdir("/in/ghost")


def test_exists():
    vfs = make_vfs()
    assert vfs.exists("/in/req/token")
    assert vfs.exists("/in/req")
    assert not vfs.exists("/in/req/ghost")
    assert not vfs.exists("/elsewhere")


def test_duplicate_input_set_rejected():
    sets = [DataSet("a"), DataSet("a")]
    with pytest.raises(VfsError):
        VirtualFileSystem(sets, [])


def test_duplicate_output_name_rejected():
    with pytest.raises(VfsError):
        VirtualFileSystem([], ["x", "x"])


def test_unsupported_mode_rejected():
    vfs = make_vfs()
    with pytest.raises(VfsError):
        vfs.open("/in/req/token", "r+")


_safe_names = st.text(
    alphabet=st.characters(min_codepoint=48, max_codepoint=122, exclude_characters="/\\"),
    min_size=1,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(_safe_names, st.binary(max_size=64), min_size=0, max_size=6))
def test_property_outputs_roundtrip_through_collection(files):
    # Everything written under a declared output folder comes back as
    # exactly one output item with identical bytes.
    vfs = VirtualFileSystem([], ["out"])
    for name, data in files.items():
        vfs.write_bytes(f"/out/out/{name}", data)
    (collected,) = vfs.collect_outputs()
    assert {item.ident: item.data for item in collected} == files
