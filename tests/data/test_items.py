"""Unit tests for DataItem and DataSet."""

import pytest

from repro.data import DataItem, DataSet, total_size


def test_item_holds_bytes():
    item = DataItem("a", b"hello")
    assert item.data == b"hello"
    assert item.size == 5
    assert item.key is None


def test_item_accepts_bytearray_and_freezes():
    source = bytearray(b"xy")
    item = DataItem("a", source)
    source[0] = 0
    assert item.data == b"xy"


def test_item_rejects_str_payload():
    with pytest.raises(TypeError):
        DataItem("a", "not bytes")


def test_item_rejects_empty_ident():
    with pytest.raises(ValueError):
        DataItem("", b"")


def test_item_text_decodes():
    assert DataItem("a", "héllo".encode()).text() == "héllo"


def test_item_is_immutable():
    item = DataItem("a", b"x")
    with pytest.raises(AttributeError):
        item.data = b"y"


def test_set_ordering_preserved():
    data_set = DataSet("s", [DataItem("b", b"1"), DataItem("a", b"2")])
    assert [i.ident for i in data_set] == ["b", "a"]
    assert data_set[0].ident == "b"


def test_set_duplicate_item_rejected():
    data_set = DataSet("s", [DataItem("a", b"")])
    with pytest.raises(ValueError):
        data_set.add(DataItem("a", b""))


def test_set_rejects_non_item():
    data_set = DataSet("s")
    with pytest.raises(TypeError):
        data_set.add(b"raw")


def test_set_empty_ident_rejected():
    with pytest.raises(ValueError):
        DataSet("")


def test_set_lookup_by_ident():
    data_set = DataSet("s", [DataItem("a", b"1"), DataItem("b", b"2")])
    assert data_set.item("b").data == b"2"
    with pytest.raises(KeyError):
        data_set.item("c")


def test_set_size_sums_items():
    data_set = DataSet("s", [DataItem("a", b"12"), DataItem("b", b"345")])
    assert data_set.size == 5
    assert len(data_set) == 2


def test_set_keys_first_appearance_order():
    data_set = DataSet("s", [
        DataItem("a", b"", key="k2"),
        DataItem("b", b"", key="k1"),
        DataItem("c", b"", key="k2"),
        DataItem("d", b""),
    ])
    assert data_set.keys() == ["k2", "k1", None]


def test_grouped_by_key_partitions_items():
    data_set = DataSet("s", [
        DataItem("a", b"1", key="x"),
        DataItem("b", b"2", key="y"),
        DataItem("c", b"3", key="x"),
    ])
    groups = data_set.grouped_by_key()
    assert len(groups) == 2
    by_key = {group[0].key: [i.ident for i in group] for group in groups}
    assert by_key == {"x": ["a", "c"], "y": ["b"]}
    assert all(group.ident == "s" for group in groups)


def test_total_size():
    sets = [DataSet("a", [DataItem("i", b"123")]), DataSet("b", [DataItem("j", b"4567")])]
    assert total_size(sets) == 7


def test_keys_and_grouping_with_many_distinct_keys():
    # Regression for the O(items x keys) scans: every item carries its
    # own key, which made keys()/grouped_by_key() quadratic before the
    # single-pass rewrite.  2000 distinct keys finishes instantly now;
    # the old implementation did 4M membership probes over a list.
    count = 2000
    data_set = DataSet(
        "s", [DataItem(f"i{n}", b"x", key=f"k{n}") for n in range(count)]
    )
    data_set.add(DataItem("tail", b"y", key="k0"))  # repeat of the first key
    assert data_set.keys() == [f"k{n}" for n in range(count)]
    groups = data_set.grouped_by_key()
    assert len(groups) == count
    assert [item.ident for item in groups[0]] == ["i0", "tail"]
    assert all(group.ident == "s" for group in groups)


def test_group_items_by_key_single_pass_engine():
    from repro.data import group_items_by_key

    items = [
        DataItem("a", b"", key="x"),
        DataItem("b", b""),
        DataItem("c", b"", key="x"),
        DataItem("d", b"", key="y"),
    ]
    groups = group_items_by_key(items)
    assert list(groups) == ["x", None, "y"]
    assert [i.ident for i in groups["x"]] == ["a", "c"]
    assert [i.ident for i in groups[None]] == ["b"]
