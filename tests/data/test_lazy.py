"""Lazy wire-format views: equivalence, strictness parity, laziness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ContextError,
    DataItem,
    DataSet,
    LazyDataItem,
    LazyDataSet,
    MemoryContext,
    parse_sets,
    parse_sets_lazy,
    serialize_sets,
    serialized_size,
)
from repro.data.corpus import CORPUS, touch_all, verify_corpus_rejections


def _sample_sets():
    return [
        DataSet("alpha", [DataItem("x", b"123", key="k"), DataItem("y", b"")]),
        DataSet("beta", []),
        DataSet("gamma", [DataItem("z", bytes(range(256)))]),
    ]


def _assert_equivalent(lazy_sets, strict_sets):
    assert len(lazy_sets) == len(strict_sets)
    for lazy, strict in zip(lazy_sets, strict_sets):
        assert lazy.ident == strict.ident
        assert len(lazy) == len(strict)
        assert lazy.size == strict.size
        assert lazy.keys() == strict.keys()
        for item_lazy, item_strict in zip(lazy, strict):
            assert item_lazy.ident == item_strict.ident
            assert item_lazy.key == item_strict.key
            assert item_lazy.size == item_strict.size
            assert item_lazy.data == item_strict.data


# -- equivalence with the strict codec ----------------------------------------


def test_lazy_matches_strict_on_sample():
    blob = serialize_sets(_sample_sets())
    _assert_equivalent(parse_sets_lazy(blob), parse_sets(blob))


_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=0x2FFF),
    min_size=1,
    max_size=16,
).filter(lambda n: len(n.encode("utf-8")) <= 4096)


@st.composite
def _sets_strategy(draw):
    sets = []
    used_set_names = set()
    for _ in range(draw(st.integers(0, 4))):
        name = draw(_names.filter(lambda n: n not in used_set_names))
        used_set_names.add(name)
        items = []
        used = set()
        for _ in range(draw(st.integers(0, 5))):
            ident = draw(_names.filter(lambda n: n not in used))
            used.add(ident)
            items.append(
                DataItem(
                    ident,
                    draw(st.binary(max_size=96)),
                    key=draw(st.one_of(st.none(), _names)),
                )
            )
        sets.append(DataSet(name, items))
    return sets


@settings(max_examples=120, deadline=None)
@given(_sets_strategy())
def test_property_lazy_equivalent_to_strict(sets):
    blob = serialize_sets(sets)
    _assert_equivalent(parse_sets_lazy(blob), parse_sets(blob))


@settings(max_examples=120, deadline=None)
@given(_sets_strategy())
def test_property_lazy_restore_accounting_is_exact(sets):
    # Re-storing lazy views must charge exactly what re-encoding them
    # produces — the O(1) footer-carried wire size cannot drift.
    blob = serialize_sets(sets)
    lazy = parse_sets_lazy(blob)
    assert serialized_size(lazy) == len(serialize_sets(lazy)) == len(blob)


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=256))
def test_property_lazy_never_crashes_on_garbage(blob):
    # Same strictness property as the eager parser: arbitrary bytes
    # either index+touch cleanly or raise ContextError — nothing else.
    try:
        touch_all(parse_sets_lazy(blob))
    except ContextError:
        pass


# -- malformed-blob corpus parity ---------------------------------------------


def test_corpus_parity():
    assert verify_corpus_rejections() == []


@pytest.mark.parametrize("entry", CORPUS, ids=[entry.name for entry in CORPUS])
def test_corpus_entry_rejected_by_both_codecs(entry):
    with pytest.raises(ContextError):
        parse_sets(entry.blob)
    if entry.lazy_stage == "index":
        with pytest.raises(ContextError):
            parse_sets_lazy(entry.blob)
    else:
        sets = parse_sets_lazy(entry.blob)  # indexing succeeds...
        with pytest.raises(ContextError):
            touch_all(sets)  # ...the poisoned record raises on touch


# -- laziness -----------------------------------------------------------------


def test_index_is_zero_touch():
    blob = serialize_sets(_sample_sets())
    lazy = parse_sets_lazy(blob)
    for view in lazy:
        # Routing-level operations never allocate per-item state.
        view.size, len(view), view.renamed("elsewhere")
        assert view._body.entries is None
    # serialized_size (re-store accounting) only decodes the set name.
    serialized_size(lazy)
    assert all(view._body.entries is None for view in lazy)


def test_payload_copied_once_on_first_data_access():
    blob = serialize_sets(_sample_sets())
    item = parse_sets_lazy(blob)[0].item("x")
    assert item._data is None  # header decoded, payload untouched
    first = item.data
    assert item._data is first and item._blob is None  # cached, alias dropped
    assert item.data is first  # second read returns the same object


def test_renamed_views_share_material():
    blob = serialize_sets(_sample_sets())
    original = parse_sets_lazy(blob)[0]
    alias = original.renamed("other")
    assert alias.ident == "other" and original.ident == "alpha"
    assert alias.renamed("alpha") is not original  # distinct view objects
    materialized = alias.item("x").data
    assert original.item("x").data is materialized  # shared entry cache


def test_dataset_renamed_dispatches_to_lazy():
    blob = serialize_sets(_sample_sets())
    lazy = parse_sets_lazy(blob)[0]
    renamed = DataSet.renamed(lazy, "routed")
    assert isinstance(renamed, LazyDataSet)
    assert renamed.ident == "routed"
    assert DataSet.renamed(lazy, "alpha") is lazy


def test_lazy_set_surface():
    blob = serialize_sets(_sample_sets())
    view = parse_sets_lazy(blob)[0]
    assert [item.ident for item in view] == ["x", "y"]
    assert view[0].ident == "x" and view[-1].ident == "y"
    assert [item.ident for item in view[0:2]] == ["x", "y"]
    with pytest.raises(IndexError):
        view[2]
    assert "x" in view and "missing" not in view
    with pytest.raises(KeyError):
        view.item("missing")
    assert view.items[0].data == b"123"
    assert "LazyDataSet" in repr(view) and "LazyDataItem" in repr(view[0])
    assert view[0].text() == "123"


def test_lazy_set_is_read_only():
    blob = serialize_sets(_sample_sets())
    view = parse_sets_lazy(blob)[0]
    with pytest.raises(TypeError):
        view.add(DataItem("new", b""))


def test_grouped_by_key_keeps_items_lazy():
    sets = [
        DataSet(
            "s",
            [DataItem(f"i{n}", b"payload", key=f"k{n % 3}") for n in range(9)],
        )
    ]
    view = parse_sets_lazy(serialize_sets(sets))[0]
    groups = view.grouped_by_key()
    assert [group.keys() for group in groups] == [["k0"], ["k1"], ["k2"]]
    for group in groups:
        assert isinstance(group, DataSet)
        for item in group:
            assert isinstance(item, LazyDataItem)
            assert item._data is None  # grouping never copied payloads


def test_eager_set_accepts_lazy_items():
    blob = serialize_sets(_sample_sets())
    view = parse_sets_lazy(blob)[0]
    mixed = DataSet("mixed", list(view) + [DataItem("extra", b"zz")])
    assert [item.ident for item in mixed] == ["x", "y", "extra"]
    assert serialized_size([mixed]) == len(serialize_sets([mixed]))


def test_duplicate_lazy_item_names_rejected_on_lookup():
    import struct

    blob = bytearray(serialize_sets([DataSet("s", [DataItem("a", b"1"), DataItem("b", b"2")])]))
    footer_end = struct.unpack_from("<Q", blob, 8)[0] + 28
    offsets = struct.unpack_from("<2Q", blob, footer_end)
    # Rewrite item 'b''s name record to 'a' (same length).
    blob[offsets[1] + 4 : offsets[1] + 5] = b"a"
    view = parse_sets_lazy(bytes(blob))[0]
    with pytest.raises(ContextError):
        view.item("a")


def test_v1_blob_falls_back_to_eager():
    blob = serialize_sets(_sample_sets(), version=1)
    sets = parse_sets_lazy(blob)
    assert all(isinstance(s, DataSet) for s in sets)
    _assert_equivalent(sets, parse_sets(blob))


# -- context integration ------------------------------------------------------


def test_load_sets_returns_lazy_views():
    ctx = MemoryContext(1 << 16)
    ctx.store_sets(_sample_sets())
    loaded = ctx.load_sets()
    assert all(isinstance(s, LazyDataSet) for s in loaded)
    _assert_equivalent(loaded, parse_sets(serialize_sets(_sample_sets())))


def test_load_sets_roundtrips_through_restore():
    # load -> store into a second context -> load again, all lazy.
    ctx = MemoryContext(1 << 16)
    ctx.store_sets(_sample_sets())
    loaded = ctx.load_sets()
    other = MemoryContext(1 << 16)
    size = other.store_sets(loaded)
    assert size == serialized_size(_sample_sets())
    _assert_equivalent(other.load_sets(), _sample_sets())
