"""Lazy wire-format views flowing through every parsed-set consumer.

The data-layer tests pin lazy ≡ strict; these tests pin that the
*consumers* of parsed sets — dispatcher expansion, the vfs view, the
communication engine, the HTTP frontend, and the application workloads
— accept lazy views interchangeably with eager sets, and that the
routing-only paths never materialize payload bytes.
"""

import json

import pytest

from repro.composition import Distribution
from repro.data import (
    DataItem,
    DataSet,
    LazyDataItem,
    LazyDataSet,
    VirtualFileSystem,
    parse_sets_lazy,
    serialize_sets,
)
from repro.dispatcher import expand_instances
from repro.dispatcher.dispatcher import InvocationResult
from repro.engines import CommunicationEngine, Task
from repro.functions import compute_function, format_http_request, parse_http_response_item
from repro.net import EchoService, LatencyModel, SimulatedNetwork
from repro.sim import Environment, Store
from repro.worker import WorkerConfig, WorkerNode

ALL = Distribution.ALL
EACH = Distribution.EACH
KEY = Distribution.KEY


def lazy_set(ident, items):
    """One LazyDataSet round-tripped through the wire format."""
    (view,) = parse_sets_lazy(serialize_sets([DataSet(ident, items)]))
    assert isinstance(view, LazyDataSet)
    return view


# -- dispatcher expansion -----------------------------------------------------


def test_expansion_all_routes_lazy_set_without_touching_items():
    view = lazy_set("src", [DataItem(f"i{n}", b"payload", key=None) for n in range(8)])
    plans = expand_instances("n", [("in", ALL, view)])
    assert len(plans) == 1
    routed = plans[0].input_sets[0]
    assert isinstance(routed, LazyDataSet) and routed.ident == "in"
    assert routed._body.entries is None  # broadcast never decoded an item


def test_expansion_each_over_lazy_items():
    view = lazy_set("src", [DataItem(f"i{n}", bytes([n])) for n in range(3)])
    plans = expand_instances("n", [("in", EACH, view)])
    assert len(plans) == 3
    for index, plan in enumerate(plans):
        (item,) = list(plan.input_sets[0])
        assert isinstance(item, LazyDataItem)
        assert item.data == bytes([index])


def test_expansion_key_groups_lazy_items_without_payload_copies():
    view = lazy_set(
        "src", [DataItem(f"i{n}", b"data", key=f"k{n % 3}") for n in range(9)]
    )
    plans = expand_instances("n", [("in", KEY, view)])
    assert [plan.key for plan in plans] == ["k0", "k1", "k2"]
    for plan in plans:
        for item in plan.input_sets[0]:
            assert isinstance(item, LazyDataItem)
            assert item._data is None  # grouped by key header only


def test_expansion_mixed_lazy_and_eager_key_edges():
    view = lazy_set("a", [DataItem("x", b"1", key="k"), DataItem("y", b"2", key="j")])
    eager = DataSet("b", [DataItem("p", b"3", key="j"), DataItem("q", b"4", key="k")])
    plans = expand_instances("n", [("lhs", KEY, view), ("rhs", KEY, eager)])
    assert [plan.key for plan in plans] == ["k", "j"]
    assert [item.ident for item in plans[0].input_sets[1]] == ["q"]


# -- vfs ----------------------------------------------------------------------


def test_vfs_serves_lazy_input_sets():
    view = lazy_set("config", [DataItem("a.txt", b"alpha"), DataItem("b.txt", b"beta")])
    vfs = VirtualFileSystem([view], ["out"])
    assert vfs.read_bytes("/in/config/a.txt") == b"alpha"
    assert vfs.read_text("/in/config/b.txt") == "beta"
    assert vfs.listdir("/in/config") == ["a.txt", "b.txt"]
    assert vfs.exists("/in/config/a.txt")


# -- communication engine -----------------------------------------------------


def test_comm_engine_exchanges_lazy_request_items():
    env = Environment()
    network = SimulatedNetwork(env, LatencyModel())
    network.register(EchoService())
    queue = Store(env)
    CommunicationEngine(env, queue, network)
    request = format_http_request("POST", "http://echo.internal/", body=b"lazy ping")
    view = lazy_set("request", [DataItem("r0", request)])
    task = Task(
        kind="communication",
        input_sets=[view],
        output_set_names=["response"],
        completion=env.event(),
    )
    queue.put(task)
    outcome = env.run(until=task.completion)
    assert outcome.success
    envelope = parse_http_response_item(outcome.outputs[0].item("r0").data)
    assert envelope["status"] == 200
    assert envelope["body"] == b"lazy ping"


# -- HTTP frontend ------------------------------------------------------------


@compute_function(compute_cost=1e-4)
def shout_lazy(vfs):
    text = vfs.read_text("/in/text/text")
    vfs.write_text("/out/result/text", text.upper())


SHOUT_DSL = """
composition shout_comp {
    compute s uses shout_lazy in(text) out(result);
    input text -> s.text;
    output s.result -> result;
}
"""


def make_worker():
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    worker.frontend.register_function(shout_lazy)
    worker.frontend.register_composition(SHOUT_DSL)
    return worker


def test_frontend_accepts_lazy_input_set():
    worker = make_worker()
    view = lazy_set("text", [DataItem("text", b"whisper")])
    result = worker.invoke_and_run("shout_comp", {"text": view})
    assert result.ok
    assert result.output("result").item("text").data == b"WHISPER"


def test_frontend_serializes_lazy_outputs():
    worker = make_worker()
    view = lazy_set("result", [DataItem("text", b"done", key="k")])
    response = worker.frontend.serialize_result(
        InvocationResult(invocation_id=1, outputs={"result": view})
    )
    assert response.status == 200
    assert json.loads(response.body) == {"result": {"text": b"done".hex()}}


# -- application workloads (sec77 text2sql / fig09 SSB queries) ---------------


def test_text2sql_workflow_with_lazy_prompt():
    from repro.apps.text2sql import register_text2sql_app, setup_text2sql_services

    def run(inputs):
        worker = WorkerNode(WorkerConfig(total_cores=8, control_plane_enabled=False))
        setup_text2sql_services(worker)
        register_text2sql_app(worker)
        invocation = worker.invoke_and_run("text2sql", inputs)
        assert invocation.ok
        return invocation.output("answer").item("text").text()

    prompt = b"What are the top rated movies?"
    baseline = run({"prompt": prompt})
    lazy = run({"prompt": lazy_set("prompt", [DataItem("prompt", prompt)])})
    assert lazy == baseline


def test_ssb_query_with_lazy_input():
    from repro.experiments.fig09_ssb_athena import run_fig09

    # The fig09 workload invokes per-query compositions through the
    # same frontend path exercised above; a reduced run doubles as a
    # smoke test that its query plans tolerate the lazy data plane.
    result = run_fig09(queries=("Q1.1",), cores=4)
    assert result.rows


def test_e2e_outputs_match_between_lazy_and_eager_inputs():
    worker = make_worker()
    eager = worker.invoke_and_run("shout_comp", {"text": b"same bytes"})
    worker2 = make_worker()
    view = lazy_set("text", [DataItem("text", b"same bytes")])
    lazy = worker2.invoke_and_run("shout_comp", {"text": view})
    assert eager.output("result").item("text").data == lazy.output("result").item("text").data
