"""Tests for SSB generation/queries, the SQL engine, and the Athena model."""

import numpy as np
import pytest

from repro.query import (
    AthenaModel,
    Ec2CostModel,
    SSB_QUERY_NAMES,
    SqlDatabase,
    SqlError,
    Table,
    generate_ssb_tables,
    parse_sql,
    run_ssb_query,
)


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb_tables(scale_factor=0.002, seed=1)


def test_schema_shapes(ssb):
    assert set(ssb) == {"lineorder", "date", "customer", "supplier", "part"}
    assert ssb["lineorder"].num_rows >= 1000
    assert ssb["date"].num_rows == 7 * 365
    assert "lo_revenue" in ssb["lineorder"]
    assert "d_yearmonth" in ssb["date"]


def test_generation_deterministic():
    a = generate_ssb_tables(scale_factor=0.001, seed=9)
    b = generate_ssb_tables(scale_factor=0.001, seed=9)
    assert a["lineorder"].column("lo_revenue").tolist() == b["lineorder"].column("lo_revenue").tolist()


def test_scale_factor_scales_rows():
    small = generate_ssb_tables(scale_factor=0.001, seed=1)
    large = generate_ssb_tables(scale_factor=0.004, seed=1)
    assert large["lineorder"].num_rows > 2 * small["lineorder"].num_rows


def test_invalid_scale_factor():
    with pytest.raises(ValueError):
        generate_ssb_tables(scale_factor=0)


def test_foreign_keys_resolve(ssb):
    lineorder = ssb["lineorder"]
    assert lineorder.column("lo_custkey").max() <= ssb["customer"].num_rows
    assert lineorder.column("lo_suppkey").max() <= ssb["supplier"].num_rows
    assert lineorder.column("lo_partkey").max() <= ssb["part"].num_rows
    datekeys = set(ssb["date"].column("d_datekey").tolist())
    assert set(lineorder.column("lo_orderdate").tolist()) <= datekeys


def test_all_13_queries_run(ssb):
    assert len(SSB_QUERY_NAMES) == 13
    for name in SSB_QUERY_NAMES:
        result = run_ssb_query(name, ssb)
        assert isinstance(result, Table)


def test_q1_1_matches_manual_computation(ssb):
    lineorder, date = ssb["lineorder"], ssb["date"]
    year_1993 = set(
        date.take(date.column("d_year") == 1993).column("d_datekey").tolist()
    )
    mask = (
        np.isin(lineorder.column("lo_orderdate"), list(year_1993))
        & (lineorder.column("lo_discount") >= 1)
        & (lineorder.column("lo_discount") <= 3)
        & (lineorder.column("lo_quantity") < 25)
    )
    expected = int(
        (lineorder.column("lo_extendedprice")[mask] * lineorder.column("lo_discount")[mask]).sum()
    )
    result = run_ssb_query("Q1.1", ssb)
    assert int(result.column("revenue")[0]) == expected


def test_q2_results_sorted(ssb):
    result = run_ssb_query("Q2.1", ssb)
    years = result.column("d_year").tolist()
    assert years == sorted(years)


def test_q3_sorted_by_revenue_desc(ssb):
    result = run_ssb_query("Q3.1", ssb)
    revenue = result.column("revenue").tolist()
    assert revenue == sorted(revenue, reverse=True)


def test_q4_profit_positive(ssb):
    result = run_ssb_query("Q4.1", ssb)
    if result.num_rows:
        assert (result.column("profit") > 0).all()


def test_unknown_query_rejected(ssb):
    with pytest.raises(KeyError):
        run_ssb_query("Q9.9", ssb)


# -- SQL engine ------------------------------------------------------------


@pytest.fixture()
def movie_db():
    db = SqlDatabase()
    db.add_table(Table("movies", {
        "title": ["Alpha", "Beta", "Gamma", "Delta"],
        "rating": [8.1, 9.2, 7.0, 8.9],
        "year": [2001, 2010, 1999, 2010],
    }))
    return db


def test_sql_select_star(movie_db):
    assert len(movie_db.execute_rows("SELECT * FROM movies")) == 4


def test_sql_projection_and_alias(movie_db):
    rows = movie_db.execute_rows("SELECT title AS name FROM movies LIMIT 1")
    assert rows == [{"name": "Alpha"}]


def test_sql_where_and(movie_db):
    rows = movie_db.execute_rows("SELECT title FROM movies WHERE rating > 8 AND year = 2010")
    assert [r["title"] for r in rows] == ["Beta", "Delta"]


def test_sql_string_literal(movie_db):
    rows = movie_db.execute_rows("SELECT year FROM movies WHERE title = 'Gamma'")
    assert rows == [{"year": 1999}]


def test_sql_count_star(movie_db):
    assert movie_db.execute_rows("SELECT COUNT(*) AS n FROM movies") == [{"n": 4}]


def test_sql_avg(movie_db):
    rows = movie_db.execute_rows("SELECT AVG(rating) AS r FROM movies")
    assert rows[0]["r"] == pytest.approx(8.3)


def test_sql_group_by(movie_db):
    rows = movie_db.execute_rows(
        "SELECT year, COUNT(*) AS n FROM movies GROUP BY year ORDER BY year"
    )
    assert rows == [{"year": 1999, "n": 1}, {"year": 2001, "n": 1}, {"year": 2010, "n": 2}]


def test_sql_order_desc_limit(movie_db):
    rows = movie_db.execute_rows("SELECT title FROM movies ORDER BY rating DESC LIMIT 2")
    assert [r["title"] for r in rows] == ["Beta", "Delta"]


def test_sql_semicolon_tolerated(movie_db):
    assert movie_db.execute_rows("SELECT COUNT(*) AS n FROM movies;") == [{"n": 4}]


def test_sql_errors(movie_db):
    with pytest.raises(SqlError):
        movie_db.execute("SELECT FROM movies")
    with pytest.raises(SqlError):
        movie_db.execute("SELECT * FROM ghost")
    with pytest.raises(SqlError):
        movie_db.execute("SELECT title FROM movies WHERE rating LIKE 8")
    with pytest.raises(SqlError):
        movie_db.execute("SELECT title, COUNT(*) AS n FROM movies")  # not grouped
    with pytest.raises(SqlError):
        movie_db.execute("SELECT AVG(*) FROM movies")
    with pytest.raises(SqlError):
        movie_db.execute("")


def test_parse_sql_structure():
    query = parse_sql("SELECT a, SUM(b) AS total FROM t WHERE c >= 5 GROUP BY a ORDER BY total DESC LIMIT 3")
    assert query.table == "t"
    assert query.group_by == ["a"]
    assert query.order_by == "total"
    assert query.order_desc
    assert query.limit_count == 3
    assert query.where[0].op == ">="
    assert query.has_aggregates


# -- Athena / EC2 cost models --------------------------------------------------


def test_athena_minimum_billing():
    model = AthenaModel()
    assert model.cost_usd(0) == model.cost_usd(10e6)
    assert model.cost_usd(700e6) == pytest.approx(700e6 / 1e12 * 5.0)


def test_athena_cost_cents_for_700mb():
    # Paper Fig 9 regime: ~700 MB input -> ~0.35 cents per query.
    assert AthenaModel().cost_cents(700e6) == pytest.approx(0.35)


def test_athena_latency_startup_dominates_small_queries():
    model = AthenaModel()
    assert model.latency_seconds(10e6) >= model.startup_seconds
    assert model.latency_seconds(100e9) > model.latency_seconds(10e6)


def test_athena_validation():
    with pytest.raises(ValueError):
        AthenaModel().latency_seconds(-1)
    with pytest.raises(ValueError):
        AthenaModel().cost_usd(-1)


def test_ec2_cost_model():
    model = Ec2CostModel()
    assert model.cost_usd(3600) == pytest.approx(model.hourly_usd)
    assert model.cost_cents(0) == 0
    with pytest.raises(ValueError):
        model.cost_usd(-1)
