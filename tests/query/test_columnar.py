"""Tests for columnar tables and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import Table, TableError


def sample_table():
    return Table("t", {"id": [1, 2, 3], "name": ["a", "b", "c"], "score": [1.5, 2.5, 3.5]})


def test_basic_shape():
    table = sample_table()
    assert table.num_rows == 3
    assert table.column_names == ["id", "name", "score"]
    assert len(table) == 3
    assert "id" in table
    assert "ghost" not in table


def test_column_dtypes():
    table = sample_table()
    assert table.column("id").dtype == np.int64
    assert table.column("score").dtype == np.float64
    assert table.column("name").dtype == object


def test_unequal_columns_rejected():
    with pytest.raises(TableError):
        Table("t", {"a": [1, 2], "b": [1]})


def test_empty_name_rejected():
    with pytest.raises(TableError):
        Table("", {"a": [1]})


def test_missing_column_rejected():
    with pytest.raises(TableError):
        sample_table().column("ghost")


def test_from_rows_to_rows_roundtrip():
    rows = [{"x": 1, "y": "p"}, {"x": 2, "y": "q"}]
    table = Table.from_rows("t", rows)
    assert table.to_rows() == rows


def test_to_rows_returns_python_types():
    rows = sample_table().to_rows()
    assert isinstance(rows[0]["id"], int)
    assert isinstance(rows[0]["score"], float)


def test_take_with_indices_and_mask():
    table = sample_table()
    subset = table.take(np.array([2, 0]))
    assert subset.column("id").tolist() == [3, 1]
    masked = table.take(table.column("id") > 1)
    assert masked.num_rows == 2


def test_select_and_rename():
    table = sample_table().select(["id", "name"]).rename({"name": "label"})
    assert table.column_names == ["id", "label"]
    with pytest.raises(TableError):
        sample_table().select(["ghost"])


def test_head():
    assert sample_table().head(2).num_rows == 2
    assert sample_table().head(10).num_rows == 3


def test_concat():
    table = sample_table()
    doubled = table.concat(table)
    assert doubled.num_rows == 6
    with pytest.raises(TableError):
        table.concat(Table("u", {"other": [1]}))


def test_serialization_roundtrip():
    table = sample_table()
    restored = Table.from_bytes(table.to_bytes())
    assert restored.name == "t"
    assert restored.num_rows == 3
    assert restored.column("id").tolist() == [1, 2, 3]
    assert list(restored.column("name")) == ["a", "b", "c"]
    assert restored.column("score").tolist() == [1.5, 2.5, 3.5]


def test_serialization_empty_table():
    table = Table("empty", {"a": []})
    restored = Table.from_bytes(table.to_bytes())
    assert restored.num_rows == 0
    assert restored.column_names == ["a"]


def test_deserialize_garbage_rejected():
    with pytest.raises(TableError):
        Table.from_bytes(b"definitely not a table")
    blob = sample_table().to_bytes()
    with pytest.raises(TableError):
        Table.from_bytes(blob[: len(blob) - 10])


def test_unicode_strings_roundtrip():
    table = Table("t", {"s": ["héllo", "wörld", "日本"]})
    restored = Table.from_bytes(table.to_bytes())
    assert list(restored.column("s")) == ["héllo", "wörld", "日本"]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(-(2**40), 2**40), min_size=0, max_size=50),
    st.lists(st.text(max_size=12), min_size=0, max_size=50),
)
def test_property_roundtrip_mixed_columns(ints, strings):
    length = min(len(ints), len(strings))
    table = Table("t", {"i": ints[:length], "s": strings[:length]})
    restored = Table.from_bytes(table.to_bytes())
    assert restored.column("i").tolist() == ints[:length]
    assert list(restored.column("s")) == strings[:length]
