"""Tests for relational operators."""

import numpy as np
import pytest

from repro.query import (
    Aggregation,
    Predicate,
    Table,
    TableError,
    filter_rows,
    group_aggregate,
    hash_join,
    limit,
    project,
    sort_rows,
)


def orders():
    return Table("orders", {
        "id": [1, 2, 3, 4, 5],
        "customer": [10, 20, 10, 30, 20],
        "amount": [100, 250, 300, 50, 400],
        "region": ["east", "west", "east", "east", "west"],
    })


def customers():
    return Table("customers", {
        "custkey": [10, 20, 40],
        "cname": ["alice", "bob", "dora"],
    })


def test_predicate_single_clause():
    result = filter_rows(orders(), Predicate.where("amount", ">", 100))
    assert result.column("id").tolist() == [2, 3, 5]


def test_predicate_conjunction():
    predicate = Predicate.where("amount", ">", 100).and_where("region", "==", "east")
    assert filter_rows(orders(), predicate).column("id").tolist() == [3]


def test_predicate_between_and_isin():
    predicate = Predicate.true().between("amount", 100, 300).isin("customer", [10, 30])
    assert filter_rows(orders(), predicate).column("id").tolist() == [1, 3]


def test_predicate_true_keeps_all():
    assert filter_rows(orders(), Predicate.true()).num_rows == 5


def test_predicate_unknown_operator():
    with pytest.raises(TableError):
        Predicate.where("a", "~", 1)


def test_project():
    result = project(orders(), ["id", "amount"])
    assert result.column_names == ["id", "amount"]


def test_hash_join_inner():
    joined = hash_join(orders(), customers(), "customer", "custkey")
    # customer 30 has no match; customer 40 no orders.
    assert joined.num_rows == 4
    names = list(joined.column("cname"))
    assert set(names) == {"alice", "bob"}


def test_hash_join_preserves_left_order():
    joined = hash_join(orders(), customers(), "customer", "custkey")
    assert joined.column("id").tolist() == [1, 2, 3, 5]


def test_hash_join_duplicate_right_keys_multiply():
    right = Table("r", {"k": [10, 10], "tag": ["x", "y"]})
    joined = hash_join(orders(), right, "customer", "k")
    # Orders 1 and 3 (customer 10) each match twice.
    assert joined.num_rows == 4


def test_hash_join_empty_result():
    right = Table("r", {"k": [99], "v": [1]})
    assert hash_join(orders(), right, "customer", "k").num_rows == 0


def test_group_aggregate_sum_count():
    result = group_aggregate(
        orders(), ["region"],
        [Aggregation("total", "sum", "amount"), Aggregation("n", "count")],
    )
    rows = {row["region"]: row for row in result.to_rows()}
    assert rows["east"]["total"] == 450
    assert rows["east"]["n"] == 3
    assert rows["west"]["total"] == 650
    assert rows["west"]["n"] == 2


def test_group_aggregate_min_max_avg():
    result = group_aggregate(
        orders(), [],
        [
            Aggregation("lo", "min", "amount"),
            Aggregation("hi", "max", "amount"),
            Aggregation("mean", "avg", "amount"),
        ],
    )
    row = result.to_rows()[0]
    assert row["lo"] == 50
    assert row["hi"] == 400
    assert row["mean"] == pytest.approx(220.0)


def test_group_aggregate_global_group():
    result = group_aggregate(orders(), [], [Aggregation("total", "sum", "amount")])
    assert result.num_rows == 1
    assert result.to_rows()[0]["total"] == 1100


def test_group_aggregate_empty_input_with_groups():
    empty = orders().take(np.array([], dtype=np.int64))
    result = group_aggregate(empty, ["region"], [Aggregation("n", "count")])
    assert result.num_rows == 0


def test_aggregation_validation():
    with pytest.raises(TableError):
        Aggregation("x", "median", "a")
    with pytest.raises(TableError):
        Aggregation("x", "sum")  # needs a column
    with pytest.raises(TableError):
        group_aggregate(orders(), ["region"], [])


def test_sort_single_key():
    result = sort_rows(orders(), "amount")
    assert result.column("amount").tolist() == [50, 100, 250, 300, 400]


def test_sort_descending():
    result = sort_rows(orders(), "amount", ascending=False)
    assert result.column("amount").tolist() == [400, 300, 250, 100, 50]


def test_sort_multi_key():
    result = sort_rows(orders(), ["region", "amount"])
    assert result.column("region").tolist() == ["east", "east", "east", "west", "west"]
    assert result.column("amount").tolist() == [50, 100, 300, 250, 400]


def test_sort_string_key():
    result = sort_rows(customers(), "cname", ascending=False)
    assert list(result.column("cname")) == ["dora", "bob", "alice"]


def test_sort_requires_key():
    with pytest.raises(TableError):
        sort_rows(orders(), [])


def test_limit():
    assert limit(orders(), 2).num_rows == 2
    assert limit(orders(), 0).num_rows == 0
    with pytest.raises(TableError):
        limit(orders(), -1)
