"""Integration tests: SSB queries compiled onto Dandelion compositions."""

import numpy as np
import pytest

from repro.net.services import ObjectStoreService
from repro.query import (
    Table,
    generate_ssb_tables,
    load_ssb_to_store,
    partition_table,
    register_ssb_query,
    run_ssb_query,
)
from repro.worker import WorkerConfig, WorkerNode


@pytest.fixture(scope="module")
def ssb_tables():
    return generate_ssb_tables(scale_factor=0.002, seed=1)


def make_worker_with_store(ssb_tables, partitions=4):
    worker = WorkerNode(WorkerConfig(total_cores=8, control_plane_enabled=False))
    store = ObjectStoreService()
    worker.network.register(store)
    manifest = load_ssb_to_store(ssb_tables, store, partitions=partitions)
    return worker, store, manifest


def test_partition_table_covers_all_rows(ssb_tables):
    lineorder = ssb_tables["lineorder"]
    chunks = partition_table(lineorder, 5)
    assert len(chunks) == 5
    assert sum(c.num_rows for c in chunks) == lineorder.num_rows
    with pytest.raises(ValueError):
        partition_table(lineorder, 0)


def test_manifest_counts(ssb_tables):
    _worker, store, manifest = make_worker_with_store(ssb_tables, partitions=6)
    assert manifest["partitions"] == 6
    assert len(manifest["objects"]) == 6 + 4
    assert store.object_count() == 10
    assert manifest["total_bytes"] > 0


@pytest.mark.parametrize("query_name", ["Q1.1", "Q2.1", "Q3.1", "Q4.2"])
def test_dag_result_matches_local(ssb_tables, query_name):
    worker, _store, _manifest = make_worker_with_store(ssb_tables)
    composition = register_ssb_query(worker, query_name, partitions=4)
    result = worker.invoke_and_run(composition, {"query": query_name.encode()})
    assert result.ok
    dag_table = Table.from_bytes(result.output("result").item("table").data)
    local = run_ssb_query(query_name, ssb_tables)
    assert dag_table.num_rows == local.num_rows
    value_col = "profit" if query_name.startswith("Q4") else "revenue"
    assert np.array_equal(
        np.sort(dag_table.column(value_col)), np.sort(local.column(value_col))
    )


def test_dag_parallelism_uses_partitions(ssb_tables):
    worker, _store, _m = make_worker_with_store(ssb_tables, partitions=4)
    composition = register_ssb_query(worker, "Q1.1", partitions=4)
    result = worker.invoke_and_run(composition, {"query": b"x"})
    assert result.ok
    # gen + 4 partials + final = 6 compute tasks; 2 comm tasks.
    assert worker.compute_group.tasks_executed == 6
    assert worker.comm_group.tasks_executed == 2


def test_unknown_query_name_rejected(ssb_tables):
    worker, _store, _m = make_worker_with_store(ssb_tables)
    with pytest.raises(KeyError):
        register_ssb_query(worker, "Q7.7")


def test_rows_output_is_json(ssb_tables):
    import json
    worker, _store, _m = make_worker_with_store(ssb_tables)
    composition = register_ssb_query(worker, "Q2.1", partitions=4)
    result = worker.invoke_and_run(composition, {"query": b"x"})
    rows = json.loads(result.output("result").item("rows").data)
    assert isinstance(rows, list)
    if rows:
        assert "revenue" in rows[0]
