"""Tests for the PI controller and the core allocator."""

import pytest

from repro.controlplane import PiConfig, PiController
from repro.backends import create_backend
from repro.controlplane.allocator import CoreAllocator
from repro.engines import CommunicationEngine, ComputeEngine, EngineGroup
from repro.net import LatencyModel, SimulatedNetwork
from repro.sim import Environment


def test_balanced_growth_no_action():
    controller = PiController()
    assert controller.update(5, 5) == 0
    assert controller.last_error == 0


def test_compute_pressure_moves_core_to_compute():
    controller = PiController()
    assert controller.update(10, 0) == +1
    assert controller.last_signal > 0


def test_comm_pressure_moves_core_to_comm():
    controller = PiController()
    assert controller.update(0, 10) == -1


def test_deadband_suppresses_small_errors():
    controller = PiController(PiConfig(deadband=5.0, integral_gain=0.0))
    assert controller.update(3, 0) == 0
    assert controller.update(0, 3) == 0


def test_integral_accumulates_persistent_small_error():
    controller = PiController(PiConfig(proportional_gain=0.1, integral_gain=0.5, deadband=1.0))
    decisions = [controller.update(1, 0) for _ in range(10)]
    assert +1 in decisions  # small persistent error eventually acts


def test_integral_clamped():
    config = PiConfig(integral_limit=10.0, deadband=1e9)  # never act
    controller = PiController(config)
    for _ in range(100):
        controller.update(1000, 0)
    assert controller.integral <= 10.0


def test_acting_bleeds_integral():
    controller = PiController()
    controller.update(10, 0)
    after_first = controller.integral
    assert after_first < 10.0


def test_reset():
    controller = PiController()
    controller.update(10, 0)
    controller.reset()
    assert controller.integral == 0
    assert controller.last_signal == 0


def _make_groups(env, compute=2, comm=2):
    backend = create_backend("kvm", "linux")
    network = SimulatedNetwork(env, LatencyModel())
    compute_group = EngineGroup(
        env, "compute",
        lambda queue, name: ComputeEngine(env, queue, backend, name=name),
        initial_count=compute,
    )
    comm_group = EngineGroup(
        env, "communication",
        lambda queue, name: CommunicationEngine(env, queue, network, name=name),
        initial_count=comm,
    )
    return compute_group, comm_group


def _slow_task(env, group):
    from repro.engines import Task
    from repro.functions import compute_function

    @compute_function(name=f"slow_{id(object())}", compute_cost=0.05)
    def slow(vfs):
        pass

    task = Task(
        kind="compute",
        input_sets=[],
        output_set_names=["out"],
        completion=env.event(),
        binary=slow,
    )
    group.submit(task)
    return task


def test_allocator_moves_core_under_compute_pressure():
    env = Environment()
    compute_group, comm_group = _make_groups(env, compute=1, comm=3)
    allocator = CoreAllocator(env, compute_group, comm_group, epoch_seconds=0.01)

    # Flood the single compute engine with 50ms tasks: its queue grows
    # every epoch while the comm queue stays flat.
    def pressure():
        for _ in range(200):
            _slow_task(env, compute_group)
            yield env.timeout(0.002)

    env.process(pressure())
    env.run(until=0.5)
    moves = [direction for _t, direction in allocator.reassignments]
    assert "comm->compute" in moves
    assert compute_group.engine_count > 1


def test_allocator_respects_min_engines():
    env = Environment()
    compute_group, comm_group = _make_groups(env, compute=3, comm=1)
    allocator = CoreAllocator(
        env, compute_group, comm_group, epoch_seconds=0.01, min_engines=1
    )

    def pressure():
        for _ in range(300):
            _slow_task(env, compute_group)
            yield env.timeout(0.0005)

    env.process(pressure())
    env.run(until=0.3)
    assert comm_group.engine_count >= 1


def test_allocator_disabled_does_nothing():
    env = Environment()
    compute_group, comm_group = _make_groups(env)
    allocator = CoreAllocator(env, compute_group, comm_group, enabled=False)
    env.run(until=1.0)
    assert allocator.reassignments == []
    assert compute_group.engine_count == 2
    assert comm_group.engine_count == 2


def test_allocation_history_recorded():
    env = Environment()
    compute_group, comm_group = _make_groups(env)
    allocator = CoreAllocator(env, compute_group, comm_group, epoch_seconds=0.02)
    env.run(until=0.1)
    assert len(allocator.allocation_history) >= 4
    times = [t for t, _c, _m in allocator.allocation_history]
    assert times == sorted(times)
