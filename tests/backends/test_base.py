"""Tests for the IsolationBackend execution path."""

import pytest

from repro.backends import create_backend, default_compute_seconds
from repro.data import DataItem, DataSet
from repro.errors import FunctionFailure, FunctionTimeout
from repro.functions import compute_function


@compute_function(compute_cost=0.001)
def echo(vfs):
    data = vfs.read_bytes("/in/data/payload")
    vfs.write_bytes("/out/result/payload", data)


def payload_sets(data=b"hello"):
    return [DataSet("data", [DataItem("payload", data)])]


def test_execute_produces_real_outputs():
    backend = create_backend("kvm", machine="morello")
    execution = backend.execute(echo, payload_sets(b"abc"), ["result"])
    assert execution.outputs[0].item("payload").data == b"abc"


def test_execute_breakdown_has_all_stages():
    backend = create_backend("cheri", machine="morello")
    execution = backend.execute(echo, payload_sets(), ["result"])
    assert set(execution.breakdown) == {
        "marshal", "load", "transfer_input", "execute", "output", "other",
    }
    assert execution.total_seconds == pytest.approx(sum(execution.breakdown.values()))


def test_execute_includes_declared_compute_cost():
    backend = create_backend("process", machine="morello")
    execution = backend.execute(echo, payload_sets(), ["result"])
    assert execution.breakdown["execute"] >= 0.001


def test_semantics_identical_across_backends():
    results = {}
    for name in ("cheri", "rwasm", "process", "kvm"):
        backend = create_backend(name, machine="morello")
        execution = backend.execute(echo, payload_sets(b"same"), ["result"])
        results[name] = execution.outputs[0].item("payload").data
    assert set(results.values()) == {b"same"}


def test_timing_differs_across_backends():
    totals = {}
    for name in ("cheri", "kvm"):
        backend = create_backend(name, machine="morello")
        execution = backend.execute(echo, payload_sets(), ["result"])
        totals[name] = execution.total_seconds
    assert totals["cheri"] < totals["kvm"]


def test_cached_execution_faster():
    backend = create_backend("rwasm", machine="morello")
    uncached = backend.execute(echo, payload_sets(), ["result"], cached=False)
    cached = backend.execute(echo, payload_sets(), ["result"], cached=True)
    assert cached.total_seconds < uncached.total_seconds


def test_timeout_preempts_long_functions():
    @compute_function(compute_cost=10.0)
    def endless(vfs):
        pass

    backend = create_backend("kvm", machine="morello")
    with pytest.raises(FunctionTimeout):
        backend.execute(endless, [], ["out"], timeout=1.0)


def test_timeout_not_triggered_for_fast_functions():
    backend = create_backend("kvm", machine="morello")
    execution = backend.execute(echo, payload_sets(), ["result"], timeout=1.0)
    assert execution.outputs


def test_failure_propagates():
    @compute_function()
    def broken(vfs):
        raise KeyError("nope")

    backend = create_backend("cheri", machine="morello")
    with pytest.raises(FunctionFailure):
        backend.execute(broken, [], ["out"])


def test_default_compute_seconds_model():
    assert default_compute_seconds(0) > 0
    assert default_compute_seconds(1 << 20) > default_compute_seconds(1 << 10)


def test_creation_seconds_excludes_execution():
    backend = create_backend("kvm", machine="morello")
    creation = backend.creation_seconds(echo)
    execution = backend.execute(echo, payload_sets(), ["result"])
    assert creation < execution.total_seconds


def test_rwasm_slower_execution_than_kvm_for_compute_heavy():
    @compute_function(compute_cost=0.01)
    def heavy(vfs):
        pass

    rwasm = create_backend("rwasm", machine="morello").execute(heavy, [], ["out"])
    kvm = create_backend("kvm", machine="morello").execute(heavy, [], ["out"])
    assert rwasm.breakdown["execute"] > kvm.breakdown["execute"]
