"""Tests for backend cost models — Table 1 calibration is load-bearing."""

import pytest

from repro.backends import (
    BACKEND_NAMES,
    BACKEND_SPECS,
    MICROSECOND,
    REFERENCE_BINARY_SIZE,
    REFERENCE_PAYLOAD_SIZE,
    create_backend,
)

# Table 1 of the paper: per-stage latency in microseconds on Morello.
TABLE1_MICRO = {
    "cheri": {"marshal": 12, "load": 29, "transfer_input": 2, "execute": 5, "output": 9, "other": 32},
    "rwasm": {"marshal": 15, "load": 147, "transfer_input": 2, "execute": 20, "output": 12, "other": 45},
    "process": {"marshal": 12, "load": 54, "transfer_input": 6, "execute": 371, "output": 9, "other": 34},
    "kvm": {"marshal": 30, "load": 194, "transfer_input": 2, "execute": 536, "output": 25, "other": 102},
}
TABLE1_TOTALS_MICRO = {"cheri": 89, "rwasm": 241, "process": 486, "kvm": 889}
LINUX_TOTALS_MICRO = {"rwasm": 109, "process": 539, "kvm": 218}


def reference_breakdown(backend_name, machine="morello"):
    spec = BACKEND_SPECS[machine][backend_name]
    return spec.breakdown(
        binary_size=REFERENCE_BINARY_SIZE,
        input_bytes=REFERENCE_PAYLOAD_SIZE,
        output_bytes=REFERENCE_PAYLOAD_SIZE,
        compute_seconds=0.0,
        cached=False,
    )


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_table1_stage_values_reproduced(backend_name):
    breakdown = reference_breakdown(backend_name)
    for stage, expected_micro in TABLE1_MICRO[backend_name].items():
        assert breakdown[stage] == pytest.approx(expected_micro * MICROSECOND), stage


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
def test_table1_totals_reproduced(backend_name):
    total = sum(reference_breakdown(backend_name).values())
    assert total == pytest.approx(TABLE1_TOTALS_MICRO[backend_name] * MICROSECOND)


@pytest.mark.parametrize("backend_name", sorted(LINUX_TOTALS_MICRO))
def test_linux_kernel_totals_reproduced(backend_name):
    total = sum(reference_breakdown(backend_name, machine="linux").values())
    assert total == pytest.approx(LINUX_TOTALS_MICRO[backend_name] * MICROSECOND, rel=1e-6)


def test_backend_ordering_on_morello():
    # CHERI < rWasm < process < KVM, the paper's headline ordering.
    totals = [sum(reference_breakdown(n).values()) for n in ("cheri", "rwasm", "process", "kvm")]
    assert totals == sorted(totals)


def test_cheri_under_90_microseconds():
    # "or even under 90 µs for CHERI-based sandboxes"
    assert sum(reference_breakdown("cheri").values()) < 90 * MICROSECOND


def test_larger_binary_costs_more_to_load():
    spec = BACKEND_SPECS["morello"]["kvm"]
    small = spec.load_seconds(REFERENCE_BINARY_SIZE, cached=False)
    large = spec.load_seconds(REFERENCE_BINARY_SIZE * 100, cached=False)
    assert large > small


def test_cached_load_cheaper_than_disk():
    spec = BACKEND_SPECS["morello"]["kvm"]
    for size in (REFERENCE_BINARY_SIZE, 10 * REFERENCE_BINARY_SIZE):
        assert spec.load_seconds(size, cached=True) < spec.load_seconds(size, cached=False)


def test_payload_scaling_monotonic():
    spec = BACKEND_SPECS["morello"]["cheri"]
    assert spec.transfer_input_seconds(1 << 20) > spec.transfer_input_seconds(16)
    assert spec.output_seconds(1 << 20) > spec.output_seconds(16)


def test_rwasm_compute_slowdown_applied():
    spec = BACKEND_SPECS["morello"]["rwasm"]
    breakdown = spec.breakdown(
        REFERENCE_BINARY_SIZE, 16, 16, compute_seconds=1.0, cached=False
    )
    assert breakdown["execute"] == pytest.approx(1.0 * spec.compute_slowdown + spec.stages.execute_overhead)
    assert spec.compute_slowdown > 1.0


def test_native_backends_no_slowdown():
    for name in ("cheri", "process", "kvm"):
        assert BACKEND_SPECS["morello"][name].compute_slowdown == 1.0


def test_create_backend_factory():
    backend = create_backend("kvm", machine="morello")
    assert backend.name == "kvm"
    with pytest.raises(ValueError, match="unknown backend"):
        create_backend("firecracker")
    with pytest.raises(ValueError, match="unknown machine"):
        create_backend("kvm", machine="mars")
