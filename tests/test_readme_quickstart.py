"""The README quickstart must keep working verbatim."""

import re
import pathlib

README = pathlib.Path(__file__).resolve().parents[1] / "README.md"


def test_readme_quickstart_executes(capsys):
    source = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", source, re.DOTALL)
    assert blocks, "README lost its quickstart code block"
    namespace: dict = {}
    exec(compile(blocks[0], "<readme-quickstart>", "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    assert "DANDELION" in out
    assert "ms simulated" in out


def test_readme_mentions_all_examples():
    source = README.read_text()
    examples = pathlib.Path(__file__).resolve().parents[1] / "examples"
    for script in examples.glob("*.py"):
        assert script.name in source, f"README does not list {script.name}"


def test_readme_experiment_table_matches_cli():
    from repro.__main__ import EXPERIMENTS

    source = README.read_text()
    for harness in ("run_table1", "run_fig02", "run_fig05", "run_fig06",
                    "run_sec74", "run_fig07", "run_fig08", "run_fig09",
                    "run_fig09_scaling", "run_sec77", "run_fig01", "run_fig10"):
        assert harness in source
    assert len(EXPERIMENTS) >= 13
