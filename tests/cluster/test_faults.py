"""Tests for the fail-stop worker fault domain (§6.1 + Dirigent, §5)."""

import pytest

from repro.cluster import ClusterManager, WorkerFaultInjector
from repro.errors import WorkerCrashed
from repro.functions import compute_function
from repro.sim import Rng
from repro.worker import WorkerConfig

COMPOSITION = """
composition fault_echo {
    compute e uses fault_echo_fn in(data) out(result);
    input data -> e.data;
    output e.result -> result;
}
"""


@compute_function(name="fault_echo_fn", compute_cost=2e-3)
def echo(vfs):
    vfs.write_bytes("/out/result/data", vfs.read_bytes("/in/data/data"))


def make_cluster(workers=2, policy="least_loaded", cores=4, **kwargs):
    cluster = ClusterManager(
        worker_count=workers,
        worker_config=WorkerConfig(total_cores=cores, control_plane_enabled=False),
        policy=policy,
        **kwargs,
    )
    cluster.register_function(echo)
    cluster.register_composition(COMPOSITION)
    return cluster


def fail_at(cluster, when, index):
    def crasher():
        yield cluster.env.timeout(when)
        cluster.fail_worker(index)

    return cluster.env.process(crasher())


def test_fail_worker_validation():
    cluster = make_cluster()
    with pytest.raises(IndexError):
        cluster.fail_worker(7)
    cluster.fail_worker(0)
    with pytest.raises(ValueError):
        cluster.fail_worker(0)
    with pytest.raises(ValueError):
        cluster.restore_worker(1)  # healthy worker, nothing to restore
    with pytest.raises(IndexError):
        cluster.restore_worker(7)


def test_routing_skips_unhealthy_workers():
    cluster = make_cluster(workers=2, policy="round_robin")
    cluster.fail_worker(0)
    for _ in range(4):
        result = cluster.invoke_and_run("fault_echo", {"data": b"x"})
        assert result.ok
    assert cluster.per_worker_invocations[0] == 0
    assert cluster.per_worker_invocations[1] == 4
    assert cluster.healthy_worker_count == 1


def test_in_flight_invocation_rerouted_on_crash():
    cluster = make_cluster(workers=2)
    # least_loaded sends the first invocation to worker 0; crash it
    # mid-flight (service time is 2 ms) and expect a transparent
    # re-execution on worker 1.
    fail_at(cluster, 1e-3, 0)
    result = cluster.invoke_and_run("fault_echo", {"data": b"reroute"})
    assert result.ok
    assert result.output("result").item("data").data == b"reroute"
    assert cluster.reroutes == 1
    assert cluster.worker_crashes == 1
    assert cluster.per_worker_invocations[1] == 1


def test_reroute_exhaustion_surfaces_worker_crashed():
    cluster = make_cluster(workers=2, max_reroutes=0)
    fail_at(cluster, 1e-3, 0)
    result = cluster.invoke_and_run("fault_echo", {"data": b"x"})
    assert not result.ok
    assert isinstance(result.error, WorkerCrashed)
    assert cluster.invocations_failed == 1
    assert cluster.failed_latencies.count == 1


def test_no_healthy_workers_fails_fast():
    cluster = make_cluster(workers=2)
    cluster.fail_worker(0)
    cluster.fail_worker(1)
    result = cluster.invoke_and_run("fault_echo", {"data": b"x"})
    assert not result.ok
    assert "no healthy workers" in str(result.error)
    assert cluster.invocations_failed == 1


def test_restore_builds_fresh_worker_with_registrations():
    cluster = make_cluster(workers=2)
    crashed = cluster.workers[0]
    cluster.fail_worker(0)
    restored = cluster.restore_worker(0)
    assert restored is not crashed  # fail-stop: state was lost
    assert restored.registry.has_function("fault_echo_fn")
    assert restored.registry.has_composition("fault_echo")
    assert cluster.is_healthy(0)
    assert cluster.worker_restores == 1
    # The restored node serves traffic again.
    cluster.fail_worker(1)
    result = cluster.invoke_and_run("fault_echo", {"data": b"back"})
    assert result.ok
    assert cluster.per_worker_invocations[0] >= 1


def test_failed_invocations_are_observable():
    cluster = make_cluster()
    result = cluster.invoke_and_run("fault_echo", {})  # missing input
    assert not result.ok
    assert cluster.invocations_failed == 1
    assert cluster.per_worker_failures[0] == 1
    assert cluster.failed_latencies.count == 1
    assert cluster.latencies.count == 0  # error latency kept separate


def test_stats_failures_block():
    cluster = make_cluster(workers=2)
    fail_at(cluster, 1e-3, 0)
    cluster.invoke_and_run("fault_echo", {"data": b"x"})
    cluster.restore_worker(0)
    stats = cluster.stats()
    assert stats["healthy_workers"] == 2
    failures = stats["failures"]
    assert failures["worker_crashes"] == 1
    assert failures["worker_restores"] == 1
    assert failures["reroutes"] == 1
    assert failures["per_worker_crashes"] == {0: 1, 1: 0}
    assert failures["failed_invocations"] == 0


def _drive(cluster, count=40, rps=400.0, seed=11):
    env = cluster.env
    arrivals = Rng(seed).poisson_arrivals(rps, count / rps)
    done = [0]

    def one(at):
        delay = at - env.now
        if delay > 0:
            yield env.timeout(delay)
        result = yield cluster.invoke("fault_echo", {"data": b"x"})
        if result.ok:
            done[0] += 1

    def driver():
        processes = [env.process(one(t)) for t in arrivals]
        if processes:
            yield env.all_of(processes)

    env.run(until=env.process(driver()))
    return len(arrivals), done[0]


def test_injector_deterministic_per_seed():
    outcomes = []
    for _ in range(2):
        cluster = make_cluster(workers=3)
        injector = WorkerFaultInjector(
            cluster, mttf_seconds=0.02, mttr_seconds=0.01, seed=5
        )
        offered, completed = _drive(cluster)
        outcomes.append(
            (
                offered,
                completed,
                injector.crashes_injected,
                injector.restores_performed,
                cluster.reroutes,
                cluster.env.now,
            )
        )
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][2] > 0  # faults actually fired
    assert outcomes[0][1] > 0  # and the cluster still made progress


def test_injector_spares_last_healthy_worker():
    cluster = make_cluster(workers=1)
    injector = WorkerFaultInjector(cluster, mttf_seconds=0.005, mttr_seconds=0.005, seed=1)
    offered, completed = _drive(cluster, count=20)
    assert injector.crashes_injected == 0
    assert injector.crashes_skipped > 0
    assert completed == offered


def test_injector_validation():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        WorkerFaultInjector(cluster, mttf_seconds=0.0, mttr_seconds=1.0)
    with pytest.raises(ValueError):
        WorkerFaultInjector(cluster, mttf_seconds=1.0, mttr_seconds=-1.0)
    with pytest.raises(ValueError):
        # Limp cycles enabled without a duration.
        WorkerFaultInjector(
            cluster, mttf_seconds=1.0, mttr_seconds=1.0,
            limp_mttf_seconds=1.0, limp_severity=4.0,
        )
    with pytest.raises(ValueError):
        WorkerFaultInjector(
            cluster, mttf_seconds=1.0, mttr_seconds=1.0,
            limp_mttf_seconds=1.0, limp_duration_seconds=1.0,
            limp_severity=0.5,
        )


def test_injector_skips_restore_when_worker_restored_externally():
    # Regression: the injector used to call restore_worker unconditionally
    # after its MTTR sleep.  If an external actor (a test, an operator
    # script) restored the worker mid-sleep, that second restore raised
    # ValueError inside the injector process and killed the lifecycle
    # loop.  The injector must re-check health and skip (counted).
    cluster = make_cluster(workers=2)
    injector = WorkerFaultInjector(
        cluster, mttf_seconds=0.01, mttr_seconds=0.05, seed=3
    )
    env = cluster.env

    def external_operator():
        # Eagerly repair any downed worker long before the injector's
        # MTTR sleep (50 ms mean) elapses.
        while env.now < 0.4:
            yield env.timeout(1e-3)
            for index in range(cluster.worker_count):
                if not cluster.is_healthy(index):
                    cluster.restore_worker(index)

    env.process(external_operator())
    offered, completed = _drive(cluster, count=100, rps=250.0)
    assert injector.restores_skipped > 0  # the race actually happened
    # The lifecycle loops survived the race: later cycles kept firing
    # instead of dying on the ValueError the old code raised.
    assert injector.crashes_injected >= 2
    assert completed > 0


def test_limp_cycles_fire_and_clear():
    cluster = make_cluster(workers=2)
    injector = WorkerFaultInjector(
        cluster,
        mttf_seconds=1e9,  # crashes effectively disabled
        mttr_seconds=1.0,
        seed=5,
        limp_mttf_seconds=0.02,
        limp_duration_seconds=0.01,
        limp_severity=4.0,
    )
    offered, completed = _drive(cluster, count=100, rps=250.0)
    assert injector.crashes_injected == 0
    assert injector.limps_injected > 0
    assert injector.limps_cleared > 0
    assert completed > 0
    # Slow-but-alive: a limp never removes the worker from the ring.
    assert cluster.healthy_worker_count == 2


def test_limp_streams_leave_crash_schedule_untouched():
    # Limp RNG streams fork at a disjoint salt range, so enabling limp
    # cycles must not perturb an existing experiment's crash schedule.
    # Compared over a fixed virtual-time horizon (driving traffic would
    # finish later under limp and admit extra cycles).
    def crash_trace(with_limp):
        cluster = make_cluster(workers=3)
        kwargs = dict(mttf_seconds=0.02, mttr_seconds=0.01, seed=5)
        if with_limp:
            kwargs.update(
                limp_mttf_seconds=0.03,
                limp_duration_seconds=0.01,
                limp_severity=4.0,
            )
        injector = WorkerFaultInjector(cluster, **kwargs)
        cluster.env.run(until=0.5)
        return injector.crashes_injected, injector.restores_performed

    baseline = crash_trace(with_limp=False)
    assert baseline[0] > 0
    assert baseline == crash_trace(with_limp=True)


def test_limp_severity_one_creates_no_limp_processes():
    cluster = make_cluster(workers=2)
    injector = WorkerFaultInjector(
        cluster, mttf_seconds=1e9, mttr_seconds=1.0,
        limp_mttf_seconds=0.01, limp_duration_seconds=0.01,
        limp_severity=1.0,
    )
    _drive(cluster, count=30)
    assert injector.limps_injected == 0
    assert len(injector._processes) == cluster.worker_count
