"""Tests for the Dirigent-like cluster manager."""

import pytest

from repro.cluster import ROUTING_POLICIES, ClusterManager
from repro.functions import compute_function
from repro.worker import WorkerConfig

COMPOSITION = """
composition echo_comp {
    compute e uses cluster_echo in(data) out(result);
    input data -> e.data;
    output e.result -> result;
}
"""


@compute_function(name="cluster_echo", compute_cost=2e-3)
def echo(vfs):
    vfs.write_bytes("/out/result/data", vfs.read_bytes("/in/data/data"))


def make_cluster(workers=2, policy="least_loaded", cores=4):
    cluster = ClusterManager(
        worker_count=workers,
        worker_config=WorkerConfig(total_cores=cores, control_plane_enabled=False),
        policy=policy,
    )
    cluster.register_function(echo)
    cluster.register_composition(COMPOSITION)
    return cluster


def test_cluster_validation():
    with pytest.raises(ValueError):
        ClusterManager(worker_count=0)
    with pytest.raises(ValueError):
        ClusterManager(policy="chaotic")


def test_single_invocation_roundtrip():
    cluster = make_cluster()
    result = cluster.invoke_and_run("echo_comp", {"data": b"hello"})
    assert result.ok
    assert result.output("result").item("data").data == b"hello"
    assert cluster.invocations_routed == 1


def test_registration_fans_out_to_all_workers():
    cluster = make_cluster(workers=3)
    for worker in cluster.workers:
        assert worker.registry.has_function("cluster_echo")
        assert worker.registry.has_composition("echo_comp")


def test_round_robin_spreads_evenly():
    cluster = make_cluster(workers=3, policy="round_robin")
    processes = [
        cluster.invoke("echo_comp", {"data": f"{i}".encode()}) for i in range(9)
    ]
    cluster.env.run(until=cluster.env.all_of(processes))
    assert set(cluster.per_worker_invocations.values()) == {3}


def test_least_loaded_balances_concurrent_burst():
    cluster = make_cluster(workers=2, policy="least_loaded")
    processes = [
        cluster.invoke("echo_comp", {"data": b"x"}) for _ in range(8)
    ]
    cluster.env.run(until=cluster.env.all_of(processes))
    counts = list(cluster.per_worker_invocations.values())
    assert sum(counts) == 8
    assert min(counts) >= 3  # roughly even under simultaneous arrivals


def test_random_policy_uses_both_workers():
    cluster = make_cluster(workers=2, policy="random")
    processes = [
        cluster.invoke("echo_comp", {"data": b"x"}) for _ in range(20)
    ]
    cluster.env.run(until=cluster.env.all_of(processes))
    assert all(count > 0 for count in cluster.per_worker_invocations.values())


def test_parallelism_across_workers():
    # 8 concurrent 2ms requests on 2 workers x 3 compute cores: clearly
    # faster than serializing on one worker's cores.
    single = make_cluster(workers=1)
    duo = make_cluster(workers=2)
    for cluster in (single, duo):
        processes = [cluster.invoke("echo_comp", {"data": b"x"}) for _ in range(12)]
        cluster.env.run(until=cluster.env.all_of(processes))
    assert duo.env.now < single.env.now


def test_scale_out_replays_registrations():
    cluster = make_cluster(workers=1)
    new_worker = cluster.add_worker()
    assert new_worker.registry.has_composition("echo_comp")
    result = cluster.invoke_and_run("echo_comp", {"data": b"after-scale"})
    assert result.ok
    assert cluster.worker_count == 2


def test_failed_invocation_propagates():
    cluster = make_cluster()
    result = cluster.invoke_and_run("echo_comp", {})  # missing input
    assert not result.ok


def test_stats_shape():
    cluster = make_cluster()
    cluster.invoke_and_run("echo_comp", {"data": b"x"})
    stats = cluster.stats()
    assert stats["workers"] == 2
    assert stats["invocations_routed"] == 1
    assert stats["total_committed_bytes"] == 0
    assert stats["peak_committed_bytes"] > 0


def test_workers_share_environment_and_network():
    cluster = make_cluster(workers=3)
    assert all(worker.env is cluster.env for worker in cluster.workers)
    assert all(worker.network is cluster.network for worker in cluster.workers)
