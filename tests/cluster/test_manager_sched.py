"""Cluster manager ↔ repro.sched integration: snapshots, policy objects,
incremental healthy-ring maintenance, and locality routing end-to-end."""

import pytest

from repro.cluster import ClusterManager
from repro.functions import compute_function
from repro.sched import JSQ, RoutingPolicy
from repro.sim import Rng
from repro.worker import WorkerConfig

COMPOSITION = """
composition sched_echo_comp {
    compute e uses sched_echo in(data) out(result);
    input data -> e.data;
    output e.result -> result;
}
"""


@compute_function(name="sched_echo", compute_cost=2e-3)
def echo(vfs):
    vfs.write_bytes("/out/result/data", vfs.read_bytes("/in/data/data"))


def make_cluster(workers=2, policy="least_loaded", cores=4):
    cluster = ClusterManager(
        worker_count=workers,
        worker_config=WorkerConfig(total_cores=cores, control_plane_enabled=False),
        policy=policy,
    )
    cluster.register_function(echo)
    cluster.register_composition(COMPOSITION)
    return cluster


# -- policy objects and names -------------------------------------------------


def test_policy_object_injection():
    cluster = make_cluster(policy=JSQ(rng=Rng(3), d=2))
    assert isinstance(cluster.routing_policy, JSQ)
    assert cluster.policy == "jsq"  # the logged name follows the object
    result = cluster.invoke_and_run("sched_echo_comp", {"data": b"x"})
    assert result.ok


def test_custom_policy_subclass_routes():
    class AlwaysFirst(RoutingPolicy):
        name = "always_first"

        def decide(self, snapshot):
            return snapshot.healthy[0]

    cluster = make_cluster(workers=3, policy=AlwaysFirst())
    for _ in range(4):
        assert cluster.invoke_and_run("sched_echo_comp", {"data": b"x"}).ok
    assert cluster.per_worker_invocations[0] == 4
    assert cluster.per_worker_invocations[1] == 0


def test_string_policies_build_matching_objects():
    for name in ("round_robin", "least_loaded", "random", "jsq", "locality"):
        cluster = ClusterManager(worker_count=2, policy=name)
        assert cluster.routing_policy.name == name
        assert cluster.policy == name


# -- snapshot contract --------------------------------------------------------


def test_snapshot_reflects_fleet_state():
    cluster = make_cluster(workers=3)
    view = cluster.snapshot("sched_echo_comp")
    assert view.healthy == (0, 1, 2)
    assert view.worker_count == 3
    assert view.composition_functions == ("sched_echo",)
    assert all(view.in_flight(i) == 0 for i in range(3))


def test_snapshot_warm_functions_track_dispatcher_cache():
    cluster = make_cluster(workers=2)
    before = cluster.snapshot("sched_echo_comp")
    assert all(before.warm_count(i) == 0 for i in range(2))
    cluster.invoke_and_run("sched_echo_comp", {"data": b"x"})
    after = cluster.snapshot("sched_echo_comp")
    # Exactly the worker that served the invocation is warm now.
    assert sorted(after.warm_count(i) for i in range(2)) == [0, 1]


def test_snapshot_shares_healthy_ring_tuple():
    # O(1) construction: the fault-free fast path must hand out the
    # incrementally-maintained tuple, not rebuild it per decision.
    cluster = make_cluster(workers=3)
    assert cluster.snapshot().healthy is cluster.snapshot().healthy


# -- incremental healthy-ring maintenance -------------------------------------


def test_healthy_ring_updates_on_fail_restore_add():
    cluster = make_cluster(workers=3)
    assert cluster.snapshot().healthy == (0, 1, 2)
    cluster.fail_worker(1)
    assert cluster.snapshot().healthy == (0, 2)
    assert cluster.healthy_worker_count == 2
    cluster.restore_worker(1)
    assert cluster.snapshot().healthy == (0, 1, 2)
    cluster.add_worker()
    assert cluster.snapshot().healthy == (0, 1, 2, 3)
    assert cluster.healthy_worker_count == 4


def test_routing_skips_failed_worker():
    cluster = make_cluster(workers=2, policy="round_robin")
    cluster.fail_worker(0)
    for _ in range(3):
        assert cluster.invoke_and_run("sched_echo_comp", {"data": b"x"}).ok
    assert cluster.per_worker_invocations[0] == 0
    assert cluster.per_worker_invocations[1] == 3


# -- locality end-to-end ------------------------------------------------------


def test_locality_concentrates_traffic_on_warm_worker():
    cluster = make_cluster(workers=4, policy="locality")
    for _ in range(8):
        assert cluster.invoke_and_run("sched_echo_comp", {"data": b"x"}).ok
    counts = [cluster.per_worker_invocations[i] for i in range(4)]
    # Sequential requests: the first seeds one cache, the rest follow it.
    assert max(counts) == 8
    assert sum(counts) == 8


def test_locality_spills_off_failed_warm_worker():
    cluster = make_cluster(workers=2, policy="locality")
    assert cluster.invoke_and_run("sched_echo_comp", {"data": b"x"}).ok
    warm_index = max(range(2), key=lambda i: cluster.per_worker_invocations[i])
    cluster.fail_worker(warm_index)
    assert cluster.invoke_and_run("sched_echo_comp", {"data": b"x"}).ok
    assert cluster.per_worker_invocations[1 - warm_index] == 1
