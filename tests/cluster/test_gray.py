"""Tests for the gray-failure fault domain (§6.3).

Covers the whole chain: engine throttles (limp faults slow a worker
without killing it), the incremental latency health tracker, quarantine
with TTL probation inside the cluster manager, the ``gray`` routing
policy's traffic shift, and hedged requests with their budget and
idempotency gates.
"""

import pytest

from repro.cluster import ClusterManager
from repro.cluster.health import LatencyHealthTracker
from repro.functions import compute_function
from repro.net import EchoService
from repro.sim import Rng
from repro.worker import WorkerConfig

COMPUTE_SECONDS = 2e-3

COMPOSITION = """
composition gray_echo {
    compute e uses gray_echo_fn in(data) out(result);
    input data -> e.data;
    output e.result -> result;
}
"""

@compute_function(name="gray_echo_fn", compute_cost=COMPUTE_SECONDS)
def echo(vfs):
    vfs.write_bytes("/out/result/data", vfs.read_bytes("/in/data/data"))


def make_cluster(workers=2, **kwargs):
    kwargs.setdefault("policy", "least_loaded")
    cluster = ClusterManager(
        worker_count=workers,
        worker_config=WorkerConfig(total_cores=4, control_plane_enabled=False),
        **kwargs,
    )
    cluster.register_function(echo)
    cluster.register_composition(COMPOSITION)
    return cluster


def drive(cluster, count=60, rps=500.0, seed=11, name="gray_echo"):
    env = cluster.env
    arrivals = Rng(seed).poisson_arrivals(rps, count / rps)
    done = [0]

    def one(at):
        delay = at - env.now
        if delay > 0:
            yield env.timeout(delay)
        result = yield cluster.invoke(name, {"data": b"x"})
        if result.ok:
            done[0] += 1

    def driver():
        processes = [env.process(one(t)) for t in arrivals]
        if processes:
            yield env.all_of(processes)

    env.run(until=env.process(driver()))
    return len(arrivals), done[0]


# -- limp faults: engine throttles ----------------------------------------


def test_limp_multiplies_compute_latency_end_to_end():
    baseline = make_cluster(workers=1)
    baseline.invoke_and_run("gray_echo", {"data": b"x"})
    healthy_latency = baseline.latencies.maximum

    limped = make_cluster(workers=1)
    limped.limp_worker(0, 4.0)
    result = limped.invoke_and_run("gray_echo", {"data": b"x"})
    assert result.ok  # limplock: slow, not dead
    limp_latency = limped.latencies.maximum
    # The compute stage dominates this composition, so a 4x throttle
    # shows up as roughly 4x the end-to-end latency.
    assert limp_latency > 3.0 * healthy_latency


def test_limp_clear_restores_full_speed():
    cluster = make_cluster(workers=1)
    cluster.limp_worker(0, 8.0)
    assert cluster.limp_factor(0) == 8.0
    assert cluster.limping_worker_count == 1
    cluster.clear_limp(0)
    assert cluster.limp_factor(0) == 1.0
    assert cluster.limping_worker_count == 0
    cluster.invoke_and_run("gray_echo", {"data": b"x"})
    assert cluster.latencies.maximum < 2.0 * COMPUTE_SECONDS


def test_limp_validation():
    cluster = make_cluster(workers=2)
    with pytest.raises(IndexError):
        cluster.limp_worker(7, 2.0)
    with pytest.raises(ValueError):
        cluster.limp_worker(0, 0.5)  # multiplier must be >= 1.0
    cluster.fail_worker(0)
    with pytest.raises(ValueError):
        cluster.limp_worker(0, 2.0)  # dead workers cannot limp


# -- latency health tracker ------------------------------------------------


def test_tracker_quarantines_outlier_against_peer_baseline():
    tracker = LatencyHealthTracker(min_samples=4)
    flipped = False
    for _ in range(8):
        tracker.observe(0, 1.0)
        tracker.observe(1, 1.0)
        flipped = tracker.observe(2, 10.0) or flipped
    assert flipped
    assert tracker.is_quarantined(2)
    assert not tracker.is_quarantined(0)
    assert tracker.quarantine_entries == 1
    # Peer baseline excludes the offender's own samples.
    assert tracker.score(2) / tracker.score(0) > tracker.quarantine_factor


def test_tracker_releases_with_hysteresis():
    tracker = LatencyHealthTracker(min_samples=2)
    for _ in range(6):
        tracker.observe(0, 1.0)
        tracker.observe(1, 1.0)
        tracker.observe(2, 10.0)
    assert tracker.is_quarantined(2)
    # Recovery: fast completions pull the EWMA back under release_factor.
    released = False
    for _ in range(40):
        tracker.observe(0, 1.0)
        tracker.observe(1, 1.0)
        if tracker.observe(2, 1.0):
            released = True
    assert released
    assert not tracker.is_quarantined(2)
    assert tracker.quarantine_exits == 1


def test_tracker_reset_forgets_history_and_releases():
    tracker = LatencyHealthTracker(min_samples=2)
    for _ in range(6):
        tracker.observe(0, 1.0)
        tracker.observe(1, 10.0)
    assert tracker.is_quarantined(1)
    assert tracker.reset(1)
    assert not tracker.is_quarantined(1)
    assert tracker.sample_count(1) == 0
    assert tracker.score(1) != tracker.score(1)  # NaN
    assert tracker.quarantine_exits == 1
    # The running sum stayed consistent: only worker 0 remains.
    assert tracker.fleet_score == pytest.approx(tracker.score(0))


def test_tracker_single_worker_never_quarantined():
    tracker = LatencyHealthTracker(min_samples=1)
    for _ in range(20):
        tracker.observe(0, 100.0)
    assert not tracker.is_quarantined(0)  # no peers, no baseline


def test_tracker_validation():
    with pytest.raises(ValueError):
        LatencyHealthTracker(alpha=0.0)
    with pytest.raises(ValueError):
        LatencyHealthTracker(quarantine_factor=1.0)
    with pytest.raises(ValueError):
        LatencyHealthTracker(quarantine_factor=2.0, release_factor=2.5)
    with pytest.raises(ValueError):
        LatencyHealthTracker(min_samples=0)
    with pytest.raises(ValueError):
        LatencyHealthTracker().observe(0, -1.0)


# -- manager integration: quarantine shifts traffic ------------------------


def test_latency_health_quarantines_limping_worker_and_shifts_traffic():
    cluster = make_cluster(workers=3, policy="gray", latency_health=True)
    cluster.limp_worker(0, 10.0)
    offered, completed = drive(cluster, count=120)
    assert completed == offered
    stats = cluster.stats()["gray"]
    assert stats["quarantine_entries"] >= 1
    assert cluster.is_quarantined(0)
    # The limping worker took its share only until detection kicked in.
    share = cluster.per_worker_invocations[0] / offered
    assert share < 1 / 3 * 0.8


def test_quarantine_ttl_probation_lets_recovered_worker_rejoin():
    cluster = make_cluster(
        workers=3, policy="gray", latency_health=True,
        quarantine_ttl_seconds=0.05,
    )
    cluster.limp_worker(0, 10.0)
    drive(cluster, count=240)
    stats = cluster.stats()["gray"]
    # The TTL granted amnesty (an exit) at least once mid-drive, and the
    # still-limping worker was re-caught within min_samples completions.
    assert stats["quarantine_exits"] >= 1
    assert stats["quarantine_entries"] >= 2
    cluster.clear_limp(0)
    # After recovery the next amnesty sticks: fresh fast completions
    # keep the worker in the preferred ring and it takes traffic again.
    before = cluster.per_worker_invocations[0]
    drive(cluster, count=240, seed=12)
    assert not cluster.is_quarantined(0)
    assert cluster.per_worker_invocations[0] > before


def test_fail_worker_resets_latency_history():
    cluster = make_cluster(workers=3, policy="gray", latency_health=True)
    cluster.limp_worker(0, 10.0)
    drive(cluster, count=120)
    assert cluster.is_quarantined(0)
    cluster.fail_worker(0)
    assert not cluster.is_quarantined(0)
    cluster.restore_worker(0)
    assert cluster.health.sample_count(0) == 0  # fail-stop: fresh node


def test_latency_health_off_keeps_legacy_stats_shape():
    cluster = make_cluster(workers=2)
    cluster.invoke_and_run("gray_echo", {"data": b"x"})
    stats = cluster.stats()["gray"]
    assert stats["quarantined_workers"] == 0
    assert stats["quarantine_entries"] == 0
    assert stats["hedges_issued"] == 0


# -- hedged requests -------------------------------------------------------


def hedging_cluster(workers=3, **kwargs):
    kwargs.setdefault("hedge_min_samples", 10)
    return make_cluster(
        workers=workers,
        policy="gray",
        latency_health=True,
        hedge=True,
        hedge_percentile=95.0,
        hedge_budget_fraction=0.10,
        **kwargs,
    )


def test_hedging_respects_budget_and_wins_races():
    cluster = hedging_cluster()
    cluster.limp_worker(0, 10.0)
    offered, completed = drive(cluster, count=200)
    assert completed == offered
    assert cluster.hedges_issued >= 1
    # Budget: hedges never exceed the configured fraction of hedged
    # traffic (checked atomically at issue time).
    assert cluster.hedges_issued <= 0.10 * offered
    stats = cluster.stats()["gray"]
    assert stats["hedge_rate"] <= 0.10
    assert stats["hedges_won"] <= stats["hedges_issued"]


def test_hedging_deterministic_per_seed():
    def run():
        cluster = hedging_cluster()
        cluster.limp_worker(0, 10.0)
        offered, completed = drive(cluster, count=150)
        return (
            offered,
            completed,
            cluster.hedges_issued,
            cluster.hedges_won,
            cluster.stats()["gray"]["quarantine_entries"],
            cluster.env.now,
        )

    assert run() == run()


def test_hedging_skipped_for_non_idempotent_compositions():
    from repro.functions import format_http_request

    cluster = hedging_cluster()
    cluster.network.register(EchoService(host="echo"))

    @compute_function(name="gray_gen_fn", compute_cost=1e-5)
    def gen(vfs):
        from repro.functions import write_item

        write_item(vfs, "request", "r", format_http_request("GET", "http://echo/"))

    @compute_function(name="gray_check_fn", compute_cost=1e-5)
    def check(vfs):
        from repro.functions import read_items, write_item

        assert read_items(vfs, "response")
        write_item(vfs, "out", "ok", b"1")

    cluster.register_function(gen)
    cluster.register_function(check)
    cluster.register_composition(
        """
        composition gray_fetch {
            compute g uses gray_gen_fn in(seed) out(request);
            comm c;
            compute k uses gray_check_fn in(response) out(out);
            input seed -> g.seed;
            g.request -> c.request [all];
            c.response -> k.response [all];
            output k.out -> out;
        }
        """
    )
    cluster.limp_worker(0, 10.0)
    env = cluster.env
    done = [0]

    def one():
        result = yield cluster.invoke("gray_fetch", {"seed": b""})
        if result.ok:
            done[0] += 1

    def driver():
        yield env.all_of([env.process(one()) for _ in range(80)])

    env.run(until=env.process(driver()))
    assert done[0] == 80
    # Communication nodes have side effects: never hedged.
    assert cluster.hedges_issued == 0


def test_hedge_parameter_validation():
    with pytest.raises(ValueError):
        make_cluster(workers=2, latency_health=True, hedge=True,
                     hedge_budget_fraction=1.5)
    with pytest.raises(ValueError):
        make_cluster(workers=2, latency_health=True, hedge=True,
                     hedge_percentile=101.0)
    with pytest.raises(ValueError):
        make_cluster(workers=2, latency_health=True, hedge=True,
                     hedge_min_samples=0)
    with pytest.raises(ValueError):
        make_cluster(workers=2, latency_health=True,
                     quarantine_ttl_seconds=0.0)


def test_zero_hedge_budget_never_hedges():
    cluster = make_cluster(
        workers=3, policy="gray", latency_health=True, hedge=True,
        hedge_budget_fraction=0.0, hedge_min_samples=5,
    )
    cluster.limp_worker(0, 10.0)
    offered, completed = drive(cluster, count=80)
    assert completed == offered
    assert cluster.hedges_issued == 0
