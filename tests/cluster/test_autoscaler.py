"""Tests for the Knative-style concurrency autoscaler."""

import pytest

from repro.baselines import FIRECRACKER_SNAPSHOT, compute_phase
from repro.cluster.autoscaler import KnativeConfig, KnativeFaasPlatform
from repro.sim import Environment, Rng


def make_platform(config=None, cores=8):
    env = Environment()
    platform = KnativeFaasPlatform(
        env,
        FIRECRACKER_SNAPSHOT,
        cores=cores,
        config=config or KnativeConfig(
            stable_window_seconds=10.0,
            scale_to_zero_grace_seconds=5.0,
            evaluation_interval_seconds=1.0,
        ),
    )
    platform.register_function("f", [compute_phase(0.05)])
    return env, platform


def drive(env, platform, rate_rps, duration, start=None):
    rng = Rng(1)
    arrivals = rng.poisson_arrivals(rate_rps, duration, start=start if start is not None else env.now)

    def driver():
        processes = []
        for arrival in arrivals:
            if arrival > env.now:
                yield env.timeout(arrival - env.now)
            processes.append(platform.request("f"))
        for process in processes:
            yield process

    env.run(until=env.process(driver()))
    return len(arrivals)


def test_first_request_cold_then_warm():
    env, platform = make_platform()
    first = env.run(until=platform.request("f"))
    second = env.run(until=platform.request("f"))
    assert first.cold
    assert not second.cold
    assert platform.pods_of("f") == 1


def test_sustained_load_scales_up_pods():
    env, platform = make_platform()
    # 40 rps x 50ms service = concurrency ~2 sustained.
    drive(env, platform, rate_rps=40, duration=20)
    assert platform.pods_of("f") >= 2


def test_pre_provisioned_pods_reduce_cold_starts():
    env, platform = make_platform()
    drive(env, platform, rate_rps=40, duration=30)
    # After warmup, the vast majority of requests land on ready pods.
    assert platform.cold_fraction() < 0.1


def test_scale_down_after_stable_window():
    env, platform = make_platform()
    drive(env, platform, rate_rps=40, duration=15)
    pods_at_peak = platform.pods_of("f")
    # Silence: the stable window + grace should reclaim pods to zero.
    env.run(until=env.timeout(60.0))
    assert platform.pods_of("f") < pods_at_peak
    assert platform.pods_of("f") == 0
    assert platform.scale_downs > 0
    assert platform.committed_bytes == 0


def test_memory_tracks_pod_count():
    env, platform = make_platform()
    drive(env, platform, rate_rps=40, duration=15)
    pods = platform.pods_of("f")
    assert platform.committed_bytes == pods * FIRECRACKER_SNAPSHOT.sandbox_memory_bytes


def test_burst_triggers_panic_scaling():
    # Panic matters when pod creation is slow relative to the burst:
    # use a pod-creation-scale cold start (~2 s, like a real Knative
    # pod) so reactive cold starts cannot mask the controller.
    import dataclasses
    slow_spec = dataclasses.replace(FIRECRACKER_SNAPSHOT, cold_start_seconds=2.0)
    env = Environment()
    platform = KnativeFaasPlatform(
        env, slow_spec, cores=16,
        config=KnativeConfig(
            stable_window_seconds=30.0,
            evaluation_interval_seconds=1.0,
            scale_to_zero_grace_seconds=5.0,
        ),
    )
    platform.register_function("f", [compute_phase(0.05)])
    # Quiet start, then a hard burst: the panic window reacts within
    # seconds instead of waiting for the 30 s stable average.
    drive(env, platform, rate_rps=2, duration=10)
    pods_before = platform.pods_of("f")
    drive(env, platform, rate_rps=100, duration=8)
    assert platform.pods_of("f") > pods_before
    assert platform.panic_entries > 0
    assert platform.scale_ups > 0  # pre-provisioned, not just reactive


def test_max_pods_cap_respected():
    env, platform = make_platform(
        config=KnativeConfig(
            stable_window_seconds=5.0,
            evaluation_interval_seconds=0.5,
            scale_to_zero_grace_seconds=2.0,
            max_pods_per_function=3,
        )
    )
    drive(env, platform, rate_rps=200, duration=10)
    # Reactive cold starts may momentarily exceed the autoscaler's cap,
    # but the controller reclaims down toward it once load stops.
    env.run(until=env.timeout(30.0))
    assert platform.pods_of("f") <= 3


def test_no_scale_down_during_panic():
    config = KnativeConfig(
        stable_window_seconds=8.0,
        evaluation_interval_seconds=1.0,
        scale_to_zero_grace_seconds=4.0,
    )
    env, platform = make_platform(config=config)
    drive(env, platform, rate_rps=60, duration=20)
    pods = platform.pods_of("f")
    assert pods > 0


def test_two_functions_scale_independently():
    env = Environment()
    platform = KnativeFaasPlatform(
        env, FIRECRACKER_SNAPSHOT, cores=8,
        config=KnativeConfig(stable_window_seconds=10.0, evaluation_interval_seconds=1.0),
    )
    platform.register_function("hot", [compute_phase(0.05)])
    platform.register_function("idle", [compute_phase(0.05)])
    rng = Rng(2)
    arrivals = rng.poisson_arrivals(40, 15)

    def driver():
        processes = []
        for arrival in arrivals:
            if arrival > env.now:
                yield env.timeout(arrival - env.now)
            processes.append(platform.request("hot"))
        for process in processes:
            yield process

    env.run(until=env.process(driver()))
    assert platform.pods_of("hot") >= 1
    assert platform.pods_of("idle") == 0


# -- edge behaviour: panic boundaries, grace period, scale-from-zero ----------


def test_panic_entry_during_burst_and_exit_after_decay():
    import dataclasses
    slow_spec = dataclasses.replace(FIRECRACKER_SNAPSHOT, cold_start_seconds=2.0)
    env = Environment()
    platform = KnativeFaasPlatform(
        env, slow_spec, cores=16,
        config=KnativeConfig(
            stable_window_seconds=10.0,
            evaluation_interval_seconds=1.0,
            scale_to_zero_grace_seconds=5.0,
        ),
    )
    platform.register_function("f", [compute_phase(0.05)])
    drive(env, platform, rate_rps=2, duration=8)
    assert platform.panic_entries == 0  # steady trickle never panics
    drive(env, platform, rate_rps=120, duration=6)
    entries_after_burst = platform.panic_entries
    assert entries_after_burst > 0
    # Quiet: once both windows decay past the burst the panic
    # condition clears and the counter stops moving.
    env.run(until=env.timeout(25.0))
    settle = platform.panic_entries
    env.run(until=env.timeout(10.0))
    assert platform.panic_entries == settle


def test_scale_down_held_through_stable_window_and_grace():
    config = KnativeConfig(
        stable_window_seconds=2.0,
        evaluation_interval_seconds=0.5,
        scale_to_zero_grace_seconds=10.0,
    )
    env, platform = make_platform(config=config)
    drive(env, platform, rate_rps=40, duration=10)
    pods_at_peak = platform.pods_of("f")
    assert pods_at_peak > 0
    # Well past the stable window but inside the scale-to-zero grace:
    # the last pods must still be standing.
    env.run(until=env.timeout(4.0))
    assert platform.pods_of("f") > 0
    # Grace elapsed: reclaimed to zero, memory returned.
    env.run(until=env.timeout(20.0))
    assert platform.pods_of("f") == 0
    assert platform.committed_bytes == 0


def test_scale_to_zero_then_cold_start_reacquire():
    config = KnativeConfig(
        stable_window_seconds=2.0,
        evaluation_interval_seconds=0.5,
        scale_to_zero_grace_seconds=1.0,
    )
    env, platform = make_platform(config=config)
    drive(env, platform, rate_rps=40, duration=8)
    env.run(until=env.timeout(30.0))
    assert platform.pods_of("f") == 0
    # First request against the empty pool pays a cold start and
    # re-provisions exactly one pod...
    revival = env.run(until=platform.request("f"))
    assert revival.cold
    assert platform.pods_of("f") == 1
    # ...which the next request reuses warm.
    followup = env.run(until=platform.request("f"))
    assert not followup.cold
