"""Tests for compute engines: run-to-completion, failures, retirement."""

import pytest

from repro.backends import create_backend
from repro.engines import SHUTDOWN, ComputeEngine, Task
from repro.functions import compute_function
from repro.data import DataItem, DataSet
from repro.sim import Environment, Rng, Store


@compute_function(compute_cost=0.01)
def work(vfs):
    vfs.write_text("/out/out/r", "done")


@compute_function()
def buggy(vfs):
    raise ValueError("user bug")


def make_engine(env, queue, **kwargs):
    return ComputeEngine(env, queue, create_backend("kvm", "linux"), **kwargs)


def submit(env, queue, binary, inputs=None):
    task = Task(
        kind="compute",
        input_sets=inputs or [],
        output_set_names=["out"],
        completion=env.event(),
        binary=binary,
    )
    queue.put(task)
    return task


def test_engine_executes_task_and_charges_time():
    env = Environment()
    queue = Store(env)
    engine = make_engine(env, queue)
    task = submit(env, queue, work)
    outcome = env.run(until=task.completion)
    assert outcome.success
    assert outcome.outputs[0].item("r").data == b"done"
    assert env.now >= 0.01  # compute cost charged as virtual time
    assert engine.tasks_executed == 1
    assert engine.busy_seconds >= 0.01


def test_run_to_completion_serializes_tasks():
    env = Environment()
    queue = Store(env)
    make_engine(env, queue)
    first = submit(env, queue, work)
    second = submit(env, queue, work)
    env.run(until=second.completion)
    # One engine, two 10ms tasks: strictly sequential.
    assert env.now >= 0.02


def test_two_engines_parallelize():
    env = Environment()
    queue = Store(env)
    make_engine(env, queue)
    make_engine(env, queue)
    tasks = [submit(env, queue, work) for _ in range(2)]
    env.run(until=env.all_of([t.completion for t in tasks]))
    assert env.now < 0.015  # ran in parallel


def test_user_failure_reported_not_raised():
    env = Environment()
    queue = Store(env)
    make_engine(env, queue)
    task = submit(env, queue, buggy)
    outcome = env.run(until=task.completion)
    assert not outcome.success
    assert not outcome.transient
    assert "user bug" in str(outcome.error)


def test_transient_fault_injection():
    env = Environment()
    queue = Store(env)
    ComputeEngine(
        env,
        queue,
        create_backend("kvm", "linux"),
        failure_rng=Rng(7),
        transient_failure_rate=1.0,
    )
    task = submit(env, queue, work)
    outcome = env.run(until=task.completion)
    assert not outcome.success
    assert outcome.transient


def test_shutdown_sentinel_stops_engine():
    env = Environment()
    queue = Store(env)
    engine = make_engine(env, queue)
    task = submit(env, queue, work)
    queue.put(SHUTDOWN)
    env.run(until=engine.stopped)
    # The task ahead of the sentinel was completed first.
    assert task.completion.triggered
    assert engine.tasks_executed == 1


def test_task_requires_binary():
    env = Environment()
    with pytest.raises(ValueError, match="binary"):
        Task(kind="compute", input_sets=[], output_set_names=[], completion=env.event())


def test_task_rejects_unknown_kind():
    env = Environment()
    with pytest.raises(ValueError, match="kind"):
        Task(kind="gpu", input_sets=[], output_set_names=[], completion=env.event())


def test_task_input_bytes():
    env = Environment()
    task = Task(
        kind="compute",
        input_sets=[DataSet("a", [DataItem("x", b"1234")])],
        output_set_names=[],
        completion=env.event(),
        binary=work,
    )
    assert task.input_bytes == 4


@compute_function()
def sneaky(vfs):
    open("/etc/passwd")


def test_batch_guard_executes_and_restores_on_shutdown():
    # Engine-scoped purity guard: one outer guard for the engine's
    # lifetime, restored when the engine retires.
    import builtins

    original = builtins.open
    env = Environment()
    queue = Store(env)
    engine = make_engine(env, queue, batch_guard=True)
    task = submit(env, queue, work)
    outcome = env.run(until=task.completion)
    assert outcome.success
    queue.put(SHUTDOWN)
    env.run(until=engine.stopped)
    assert builtins.open is original


def test_batch_guard_still_blocks_syscalls():
    env = Environment()
    queue = Store(env)
    engine = make_engine(env, queue, batch_guard=True)
    task = submit(env, queue, sneaky)
    outcome = env.run(until=task.completion)
    assert not outcome.success
    assert "cannot use open" in str(outcome.error)
    queue.put(SHUTDOWN)
    env.run(until=engine.stopped)
