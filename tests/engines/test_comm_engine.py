"""Tests for communication engines: sanitization, overlap, green threads."""

import json

import pytest

from repro.data import DataItem, DataSet
from repro.engines import CommunicationEngine, Task
from repro.functions import format_http_request, parse_http_response_item
from repro.net import EchoService, LatencyModel, SimulatedNetwork
from repro.sim import Environment, Store


def setup(extra_service_seconds=0.0):
    env = Environment()
    network = SimulatedNetwork(env, LatencyModel())
    network.register(EchoService(extra_seconds=extra_service_seconds))
    queue = Store(env)
    engine = CommunicationEngine(env, queue, network)
    return env, network, queue, engine


def comm_task(env, queue, request_items):
    task = Task(
        kind="communication",
        input_sets=[DataSet("request", request_items)],
        output_set_names=["response"],
        completion=env.event(),
    )
    queue.put(task)
    return task


def echo_request(i=0, body=b"ping"):
    return DataItem(f"r{i}", format_http_request("POST", "http://echo.internal/", body=body))


def test_single_exchange_roundtrip():
    env, _network, queue, _engine = setup()
    task = comm_task(env, queue, [echo_request(body=b"hello")])
    outcome = env.run(until=task.completion)
    assert outcome.success
    envelope = parse_http_response_item(outcome.outputs[0].item("r0").data)
    assert envelope["status"] == 200
    assert envelope["body"] == b"hello"


def test_multiple_items_fan_out_in_parallel():
    env, _network, queue, _engine = setup(extra_service_seconds=0.01)
    task = comm_task(env, queue, [echo_request(i) for i in range(8)])
    outcome = env.run(until=task.completion)
    assert outcome.success
    assert len(outcome.outputs[0]) == 8
    # 8 exchanges at 10ms service each, overlapped: far below 80ms.
    assert env.now < 0.04


def test_io_overlaps_across_tasks():
    env, _network, queue, engine = setup(extra_service_seconds=0.02)
    first = comm_task(env, queue, [echo_request(0)])
    second = comm_task(env, queue, [echo_request(1)])
    env.run(until=env.all_of([first.completion, second.completion]))
    # Cooperative I/O: both 20ms exchanges overlap on one engine core.
    assert env.now < 0.035
    assert engine.tasks_executed == 2


def test_invalid_envelope_yields_error_item():
    env, _network, queue, _engine = setup()
    bad = DataItem("bad", b"this is not json")
    task = comm_task(env, queue, [bad])
    outcome = env.run(until=task.completion)
    assert outcome.success  # the task succeeds; the item carries the error
    envelope = json.loads(outcome.outputs[0].item("bad").data)
    assert envelope["status"] == 400


def test_unsanitary_request_rejected_without_network_call():
    env, network, queue, _engine = setup()
    evil = DataItem(
        "evil",
        format_http_request("GET", "http://echo.internal/a b", body=b""),
    )
    task = comm_task(env, queue, [evil])
    outcome = env.run(until=task.completion)
    envelope = json.loads(outcome.outputs[0].item("evil").data)
    assert envelope["status"] == 400
    assert network.requests_sent == 0  # never reached the network


def test_disallowed_method_rejected():
    env, network, queue, _engine = setup()
    evil = DataItem("t", format_http_request("TRACE", "http://echo.internal/"))
    task = comm_task(env, queue, [evil])
    outcome = env.run(until=task.completion)
    assert json.loads(outcome.outputs[0].item("t").data)["status"] == 400
    assert network.requests_sent == 0


def test_unknown_host_becomes_502_response_item():
    env, _network, queue, _engine = setup()
    request = DataItem("g", format_http_request("GET", "http://ghost.internal/"))
    task = comm_task(env, queue, [request])
    outcome = env.run(until=task.completion)
    envelope = parse_http_response_item(outcome.outputs[0].item("g").data)
    assert envelope["status"] == 502


def test_keys_preserved_on_responses():
    env, _network, queue, _engine = setup()
    keyed = DataItem("k", format_http_request("GET", "http://echo.internal/"), key="shard3")
    task = comm_task(env, queue, [keyed])
    outcome = env.run(until=task.completion)
    assert outcome.outputs[0].item("k").key == "shard3"


def test_engine_counts_busy_cpu_not_network_wait():
    env, _network, queue, engine = setup(extra_service_seconds=0.05)
    task = comm_task(env, queue, [echo_request()])
    env.run(until=task.completion)
    # Busy time is microseconds of CPU, not the 50ms network wait.
    assert engine.busy_seconds < 0.001
    assert env.now > 0.05
