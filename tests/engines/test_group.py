"""Tests for engine groups: grow/shrink semantics and accounting."""

import pytest

from repro.backends import create_backend
from repro.engines import ComputeEngine, EngineGroup, Task
from repro.functions import compute_function
from repro.sim import Environment


@compute_function(compute_cost=0.01)
def slow(vfs):
    vfs.write_text("/out/out/r", "x")


def make_group(env, initial=1):
    backend = create_backend("kvm", "linux")
    return EngineGroup(
        env,
        kind="compute",
        engine_factory=lambda queue, name: ComputeEngine(env, queue, backend, name=name),
        initial_count=initial,
    )


def submit(env, group, binary=slow):
    task = Task(
        kind="compute",
        input_sets=[],
        output_set_names=["out"],
        completion=env.event(),
        binary=binary,
    )
    group.submit(task)
    return task


def test_initial_engine_count():
    env = Environment()
    group = make_group(env, initial=3)
    assert group.engine_count == 3
    assert len(group.engines) == 3


def test_grow_adds_capacity():
    env = Environment()
    group = make_group(env, initial=1)
    group.grow()
    tasks = [submit(env, group) for _ in range(2)]
    env.run(until=env.all_of([t.completion for t in tasks]))
    assert env.now < 0.015  # both ran in parallel
    assert group.engine_count == 2


def test_shrink_retires_exactly_one_engine():
    env = Environment()
    group = make_group(env, initial=2)
    done = group.shrink()
    env.run(until=done)
    assert group.engine_count == 1
    assert len(group.engines) == 1


def test_shrink_drains_queued_tasks_first():
    env = Environment()
    group = make_group(env, initial=1)
    task = submit(env, group)
    done = group.shrink()
    env.run(until=done)
    assert task.completion.triggered  # task ahead of sentinel completed
    assert group.engine_count == 0


def test_shrink_below_zero_rejected():
    env = Environment()
    group = make_group(env, initial=1)
    done = group.shrink()
    env.run(until=done)
    with pytest.raises(ValueError):
        group.shrink()


def test_tasks_executed_survives_retirement():
    env = Environment()
    group = make_group(env, initial=1)
    task = submit(env, group)
    env.run(until=task.completion)
    done = group.shrink()
    env.run(until=done)
    assert group.tasks_executed == 1
    assert group.busy_seconds >= 0.01


def test_enqueued_timestamp_recorded():
    env = Environment()
    group = make_group(env, initial=1)

    def later():
        yield env.timeout(5.0)
        return submit(env, group)

    process = env.process(later())
    task = env.run(until=process)
    assert task.enqueued_at == 5.0


def test_queue_sampling():
    env = Environment()
    group = make_group(env, initial=1)
    assert group.sample_queue() == 0
    assert group.queue_samples == [(0.0, 0)]


def test_grow_after_shrink_recovers():
    env = Environment()
    group = make_group(env, initial=1)
    done = group.shrink()
    env.run(until=done)
    group.grow()
    task = submit(env, group)
    outcome = env.run(until=task.completion)
    assert outcome.success
    assert group.engine_count == 1
