"""Tests for §6.1 communication-function fault tolerance.

Idempotent HTTP methods (GET/HEAD/PUT/DELETE) are transparently retried
after transient network failures; non-idempotent methods (POST) surface
the failure to the user instead of risking duplicated side effects.
"""

import json

from repro.data import DataItem, DataSet
from repro.engines import CommunicationEngine, Task
from repro.engines.comm_engine import IDEMPOTENT_METHODS
from repro.functions import format_http_request, parse_http_response_item
from repro.net import EchoService, LatencyModel, SimulatedNetwork
from repro.sim import Environment, Rng, Store


def setup(failure_rate, seed=1, max_retries=2):
    env = Environment()
    network = SimulatedNetwork(env, LatencyModel())
    network.register(EchoService())
    queue = Store(env)
    engine = CommunicationEngine(
        env,
        queue,
        network,
        failure_rng=Rng(seed),
        transient_failure_rate=failure_rate,
        max_retries=max_retries,
    )
    return env, network, queue, engine


def run_one(env, queue, method="GET", body=b""):
    task = Task(
        kind="communication",
        input_sets=[DataSet("request", [
            DataItem("r", format_http_request(method, "http://echo.internal/", body=body))
        ])],
        output_set_names=["response"],
        completion=env.event(),
    )
    queue.put(task)
    outcome = env.run(until=task.completion)
    return parse_http_response_item(outcome.outputs[0].item("r").data)


def test_idempotent_methods_set():
    assert "GET" in IDEMPOTENT_METHODS
    assert "PUT" in IDEMPOTENT_METHODS
    assert "POST" not in IDEMPOTENT_METHODS


def test_no_failures_no_retries():
    env, _network, queue, engine = setup(failure_rate=0.0)
    envelope = run_one(env, queue)
    assert envelope["status"] == 200
    assert engine.retries_performed == 0


def test_get_retried_through_transient_failures():
    # Failure rate 0.5 with 2 retries: some exchanges need retries yet
    # ultimately succeed for most requests.
    env, _network, queue, engine = setup(failure_rate=0.5, seed=3)
    statuses = [run_one(env, queue)["status"] for _ in range(30)]
    assert engine.retries_performed > 0
    assert statuses.count(200) > 20


def test_post_never_retried():
    env, network, queue, engine = setup(failure_rate=1.0)
    envelope = run_one(env, queue, method="POST", body=b"side-effect")
    assert envelope["status"] == 503
    assert envelope["idempotent"] is False
    assert envelope["retried"] == 0
    assert engine.retries_performed == 0
    # The failed exchange never reached the service.
    assert network.requests_sent == 0


def test_get_gives_up_after_max_retries():
    env, _network, queue, engine = setup(failure_rate=1.0, max_retries=3)
    envelope = run_one(env, queue)
    assert envelope["status"] == 503
    assert envelope["idempotent"] is True
    assert envelope["retried"] == 3
    assert engine.retries_performed == 3


def test_retries_cost_time():
    env_clean, _n1, queue_clean, _e1 = setup(failure_rate=0.0)
    run_one(env_clean, queue_clean)
    clean_time = env_clean.now
    env_flaky, _n2, queue_flaky, _e2 = setup(failure_rate=1.0, max_retries=3)
    run_one(env_flaky, queue_flaky)
    # Four failed connection attempts each cost a round trip.
    assert env_flaky.now > clean_time


def test_worker_level_comm_failure_knob():
    from repro.functions import compute_function, read_items, write_item
    from repro.worker import WorkerConfig, WorkerNode

    worker = WorkerNode(
        WorkerConfig(total_cores=4, control_plane_enabled=False, comm_failure_rate=0.4, seed=9)
    )
    worker.network.register(EchoService())

    @compute_function(compute_cost=1e-5)
    def gen(vfs):
        write_item(vfs, "request", "r", format_http_request("GET", "http://echo.internal/"))

    @compute_function(compute_cost=1e-5)
    def check(vfs):
        envelope = parse_http_response_item(read_items(vfs, "response")[0].data)
        write_item(vfs, "out", "status", str(envelope["status"]).encode())

    worker.frontend.register_function(gen)
    worker.frontend.register_function(check)
    worker.frontend.register_composition("""
        composition flaky_fetch {
            compute g uses gen in(seed) out(request);
            comm c;
            compute k uses check in(response) out(out);
            input seed -> g.seed;
            g.request -> c.request [all];
            c.response -> k.response [all];
            output k.out -> out;
        }
    """)
    successes = 0
    for _ in range(10):
        result = worker.invoke_and_run("flaky_fetch", {"seed": b""})
        assert result.ok
        if result.output("out").item("status").data == b"200":
            successes += 1
    # Retries push the success rate far above the raw 60% per attempt.
    assert successes >= 8
