"""Exchange deadlines, idempotent-only retries, and handler-fault containment."""

import json

import pytest

from repro.data import DataItem, DataSet
from repro.engines import CommunicationEngine, Task
from repro.engines.comm_engine import IDEMPOTENT_KV_OPS, IDEMPOTENT_METHODS
from repro.functions import format_http_request, parse_http_response_item
from repro.net import EchoService, LatencyModel, SimulatedNetwork
from repro.sim import Environment, Store


def setup(extra_service_seconds=0.0, max_retries=3):
    env = Environment()
    network = SimulatedNetwork(env, LatencyModel())
    network.register(EchoService(extra_seconds=extra_service_seconds))
    queue = Store(env)
    engine = CommunicationEngine(env, queue, network, max_retries=max_retries)
    return env, network, queue, engine


def comm_task(env, queue, request_items, timeout=None, protocol="http"):
    task = Task(
        kind="communication",
        input_sets=[DataSet("request", request_items)],
        output_set_names=["response"],
        completion=env.event(),
        protocol=protocol,
        timeout=timeout,
    )
    queue.put(task)
    return task


def request_item(method="GET", body=b""):
    return DataItem("r0", format_http_request(method, "http://echo.internal/", body=body))


def test_idempotency_tables():
    assert "GET" in IDEMPOTENT_METHODS
    assert "POST" not in IDEMPOTENT_METHODS
    assert "get" in IDEMPOTENT_KV_OPS
    assert "incr" not in IDEMPOTENT_KV_OPS


def test_fast_exchange_unaffected_by_timeout():
    env, _network, queue, engine = setup()
    task = comm_task(env, queue, [request_item(body=b"hi")], timeout=1.0)
    outcome = env.run(until=task.completion)
    assert outcome.success
    envelope = parse_http_response_item(outcome.outputs[0].item("r0").data)
    assert envelope["status"] == 200
    assert engine.exchange_timeouts == 0


def test_idempotent_exchange_retried_on_timeout_then_504():
    # 50 ms of service time against a 5 ms deadline: every attempt
    # times out, GET is idempotent, so the engine retries max_retries
    # times before reporting a gateway-timeout error item.
    env, _network, queue, engine = setup(extra_service_seconds=0.05, max_retries=2)
    task = comm_task(env, queue, [request_item("GET")], timeout=0.005)
    outcome = env.run(until=task.completion)
    assert outcome.success  # the task completes; the *item* carries the error
    envelope = json.loads(outcome.outputs[0].item("r0").data)
    assert envelope["status"] == 504
    assert envelope["retried"] == 2
    assert envelope["idempotent"] is True
    assert engine.exchange_timeouts == 3  # initial attempt + 2 retries


def test_non_idempotent_exchange_not_retried_on_timeout():
    env, _network, queue, engine = setup(extra_service_seconds=0.05, max_retries=3)
    task = comm_task(env, queue, [request_item("POST", body=b"pay")], timeout=0.005)
    outcome = env.run(until=task.completion)
    assert outcome.success
    envelope = json.loads(outcome.outputs[0].item("r0").data)
    assert envelope["status"] == 504
    assert envelope["retried"] == 0  # POST must never be re-sent
    assert envelope["idempotent"] is False
    assert engine.exchange_timeouts == 1


def test_timed_out_exchange_does_not_block_later_tasks():
    env, _network, queue, engine = setup(extra_service_seconds=0.05)
    slow = comm_task(env, queue, [request_item("POST")], timeout=0.005)
    fast = comm_task(env, queue, [request_item("GET", body=b"ok")])
    env.run(until=slow.completion)
    outcome = env.run(until=fast.completion)
    assert outcome.success
    envelope = parse_http_response_item(outcome.outputs[0].item("r0").data)
    assert envelope["status"] == 200


def _broken_handler(engine, item, protocol, timeout=None):
    yield engine.env.timeout(0.0)
    raise RuntimeError("handler bug")


def test_raising_handler_fails_completion_instead_of_hanging(monkeypatch):
    # Regression: a protocol handler that raises used to leave
    # task.completion pending forever, deadlocking the dispatcher.
    monkeypatch.setitem(CommunicationEngine._PROTOCOL_HANDLERS, "http", _broken_handler)
    env, _network, queue, engine = setup()
    task = comm_task(env, queue, [request_item()])
    outcome = env.run(until=task.completion)  # returns => no hang
    assert not outcome.success
    assert isinstance(outcome.error, RuntimeError)
    assert "handler bug" in str(outcome.error)
    assert not outcome.transient
    assert engine.handler_faults == 1
    assert engine.active_green_threads == 0


def test_raising_handler_surfaces_as_node_failure_at_invocation_level(monkeypatch):
    from repro.functions import compute_function, write_item
    from repro.worker import WorkerConfig, WorkerNode

    monkeypatch.setitem(CommunicationEngine._PROTOCOL_HANDLERS, "http", _broken_handler)
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    worker.network.register(EchoService())

    @compute_function(name="cd_gen", compute_cost=1e-5)
    def gen(vfs):
        write_item(vfs, "request", "r", format_http_request("GET", "http://echo.internal/"))

    worker.frontend.register_function(gen)
    worker.frontend.register_composition(
        """
        composition cd_fetch {
            compute g uses cd_gen in(seed) out(request);
            comm c;
            input seed -> g.seed;
            g.request -> c.request [all];
            output c.response -> response;
        }
        """
    )
    result = worker.invoke_and_run("cd_fetch", {"seed": b""})
    assert not result.ok  # NodeFailure propagated, simulation terminated
    assert "handler bug" in str(result.error)
    assert worker.dispatcher.retries_performed == 0  # handler bugs are not transient
