"""Axis parsing and cross-product sweeps."""

import pytest

from repro.scenario import load_spec, run_sweep
from repro.scenario.kpis import MATRIX_SCHEMA
from repro.scenario.spec import SpecError
from repro.scenario.sweep import parse_axis_argument, parse_axis_value


def test_axis_values_are_typed():
    assert parse_axis_value("true") is True
    assert parse_axis_value("false") is False
    assert parse_axis_value("4") == 4 and isinstance(parse_axis_value("4"), int)
    assert parse_axis_value("0.5") == 0.5
    assert parse_axis_value("jsq") == "jsq"


def test_axis_argument_parsing_and_aliases():
    assert parse_axis_argument("policy=random,jsq") == (
        "sched.routing", ["random", "jsq"])
    assert parse_axis_argument("fleet=4,8,16") == ("fleet.workers", [4, 8, 16])
    assert parse_axis_argument("faults.mttf_seconds=0.5") == (
        "faults.mttf_seconds", [0.5])
    with pytest.raises(SpecError, match="expected NAME=VALUE"):
        parse_axis_argument("policy")
    with pytest.raises(SpecError, match="no values"):
        parse_axis_argument("policy=,")


def _fast_spec():
    return load_spec("mini").with_overrides({"trace.duration_seconds": 0.25})


def test_sweep_cross_product_first_axis_outermost():
    ran = []

    def fake_runner(spec, **_kwargs):
        ran.append((spec.sched.routing, spec.fleet.workers))

        class _Run:
            class kpis:
                @staticmethod
                def to_dict():
                    return {"goodput_rps": 1.0}
        return _Run()

    matrix = run_sweep(
        _fast_spec(),
        [("sched.routing", ["jsq", "random"]), ("fleet.workers", [2, 3])],
        runner=fake_runner,
    )
    assert ran == [("jsq", 2), ("jsq", 3), ("random", 2), ("random", 3)]
    assert matrix["schema"] == MATRIX_SCHEMA
    assert [entry["axis"] for entry in matrix["axes"]] == [
        "sched.routing", "fleet.workers"]
    assert matrix["records"][0]["arm"] == {
        "sched.routing": "jsq", "fleet.workers": 2}


def test_sweep_validates_every_arm_before_running_any():
    ran = []

    def counting_runner(spec, **_kwargs):
        ran.append(spec)
        raise AssertionError("must not run")

    with pytest.raises(SpecError, match="unknown field"):
        run_sweep(
            _fast_spec(),
            [("sched.routing", ["jsq"]), ("fleet.wrokers", [2])],
            runner=counting_runner,
        )
    assert ran == []


def test_sweep_requires_an_axis():
    with pytest.raises(SpecError, match="at least one --axis"):
        run_sweep(_fast_spec(), [])


def test_sweep_records_carry_kpis():
    matrix = run_sweep(
        _fast_spec(), [("sched.routing", ["least_loaded", "random"])]
    )
    assert len(matrix["records"]) == 2
    for record in matrix["records"]:
        assert record["kpis"]["schema"] == "repro-kpi/v1"
        assert record["kpis"]["offered"] > 0
    # Same base spec digest in both arms' records.
    digests = {record["kpis"]["spec_digest"] for record in matrix["records"]}
    assert len(digests) == 2  # each arm digests its own overridden spec
