"""CLI surface of the scenario harness (`python -m repro scenario ...`)."""

import json

import pytest

from repro.__main__ import main
from repro.scenario import KpiRecord


def test_scenario_list_names_bundled_specs(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("mini", "sec61", "sec62", "sec63", "fig10_full"):
        assert name in out


def test_scenario_run_emits_kpi_record(tmp_path, capsys):
    output = tmp_path / "kpis.json"
    assert main([
        "scenario", "run", "mini",
        "--set", "trace.duration_seconds=0.25",
        "--output", str(output),
    ]) == 0
    stdout_record = KpiRecord.from_json(
        capsys.readouterr().out.split("\n", 1)[1]  # first line: written-to note
    )
    file_record = KpiRecord.from_json(output.read_text())
    assert stdout_record == file_record
    assert file_record.scenario == "mini"
    assert file_record.offered > 0


def test_scenario_run_rejects_bad_spec_and_override(capsys):
    assert main(["scenario", "run", "no_such_spec"]) == 2
    assert "no bundled scenario" in capsys.readouterr().err
    assert main(["scenario", "run", "mini", "--set", "fleet.wrokers=8"]) == 2
    assert "unknown field" in capsys.readouterr().err


def test_scenario_sweep_writes_matrix(tmp_path, capsys):
    output = tmp_path / "matrix.json"
    assert main([
        "scenario", "sweep", "mini",
        "--set", "trace.duration_seconds=0.25",
        "--axis", "policy=least_loaded,random",
        "--output", str(output),
    ]) == 0
    out = capsys.readouterr().out
    assert "2 arms" in out
    matrix = json.loads(output.read_text())
    assert matrix["schema"] == "repro-kpi-matrix/v1"
    assert len(matrix["records"]) == 2


def test_scenario_diff_exit_codes(tmp_path, capsys):
    base = tmp_path / "a.json"
    main(["scenario", "run", "mini", "--set", "trace.duration_seconds=0.25",
          "--output", str(base)])
    other = tmp_path / "b.json"
    main(["scenario", "run", "mini", "--set", "trace.duration_seconds=0.25",
          "--set", "trace.rps=400", "--output", str(other)])
    capsys.readouterr()
    assert main(["scenario", "diff", str(base), str(base)]) == 0
    assert "diff: OK" in capsys.readouterr().out
    assert main(["scenario", "diff", str(base), str(other)]) == 1
    assert "diff: FAILED" in capsys.readouterr().out
    # A wide-open tolerance band turns the same comparison green.
    assert main([
        "scenario", "diff", str(base), str(other),
        "--tolerance", "offered=1.0", "--tolerance", "completed=1.0",
        "--tolerance", "goodput_rps=1.0", "--tolerance", "p50_ms=1.0",
        "--tolerance", "p95_ms=1.0", "--tolerance", "p99_ms=1.0",
        "--tolerance", "utilization=1.0", "--tolerance", "imbalance=1.0",
        "--tolerance", "retries=1.0",
    ]) == 0


def test_experiment_list_uses_module_docstrings(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fault tolerance" in out       # sec61 module docstring
    assert "gray failures" in out         # sec63 module docstring
    assert "sharded replay" in out        # fig10_full module docstring
