"""ScenarioSpec schema: round-trips, validation, overrides."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario.spec import (
    ScenarioSpec,
    SpecError,
    bundled_specs,
    load_spec,
    parse_toml_subset,
    scenario_from_dict,
    scenario_from_toml,
)

_identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,11}", fullmatch=True)
_printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=24
)
_rates = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False,
                   allow_infinity=False)
_durations = st.floats(min_value=1e-2, max_value=100.0, allow_nan=False,
                       allow_infinity=False)


@st.composite
def _spec_dicts(draw):
    """Valid spec payloads across both trace kinds."""
    kind = draw(st.sampled_from(["synthetic", "streamed"]))
    trace = {"kind": kind, "duration_seconds": draw(_durations),
             "seed_offset": draw(st.integers(0, 100))}
    faults = {}
    if kind == "synthetic":
        if draw(st.booleans()):
            trace["rps"] = draw(_rates)
        else:
            trace["rps_per_worker"] = draw(_rates)
        trace["apps"] = draw(st.integers(1, 8))
        trace["zipf_skew"] = draw(st.floats(0.0, 3.0))
        trace["reseed_per_fleet"] = draw(st.booleans())
        faults = {
            "transient_rate": draw(st.floats(0.0, 0.5)),
            "max_retries": draw(st.integers(0, 5)),
            "mttf_seconds": draw(st.one_of(st.just(0.0), _durations)),
            "mttr_seconds": draw(_durations),
            "limp_severity": draw(st.floats(1.0, 16.0)),
        }
        if draw(st.booleans()):
            faults["deadline_seconds"] = draw(_durations)
    else:
        trace["apps"] = 1
        trace["scale"] = draw(st.floats(0.1, 100.0))
        trace["functions_base"] = draw(st.integers(1, 500))
        trace["rps_base"] = draw(_rates)
        trace["window_seconds"] = draw(st.floats(0.05, 5.0))
    return {
        "name": draw(_identifiers),
        "description": draw(_printable),
        "seed": draw(st.integers(0, 2**31 - 1)),
        "trace": trace,
        "workload": {
            "name": draw(_identifiers),
            "compute_seconds": draw(st.floats(1e-4, 1.0)),
            "binary_mib": draw(st.floats(0.0, 256.0)),
            "payload": draw(_printable),
        },
        "fleet": {
            "workers": draw(st.integers(1, 64)),
            "cores": draw(st.integers(1, 64)),
            "backend": draw(_identifiers),
            "machine": draw(_identifiers),
            "platform": draw(st.sampled_from(["dandelion", "faas"])),
        },
        "faults": faults,
        "sched": {
            "routing": draw(_identifiers),
            "latency_health": draw(st.booleans()),
            "hedge": draw(st.booleans()),
            "hedge_percentile": draw(st.floats(1.0, 99.0)),
            "hedge_budget_fraction": draw(st.floats(0.0, 1.0)),
        },
    }


@settings(max_examples=80, deadline=None)
@given(_spec_dicts())
def test_property_parse_serialize_parse_is_identity(payload):
    spec = scenario_from_dict(payload)
    # Canonical dict round-trip.
    assert scenario_from_dict(spec.to_dict()) == spec
    # TOML round-trip through whichever parser the platform uses...
    assert scenario_from_toml(spec.to_toml()) == spec
    # ...and explicitly through the py3.10 subset fallback parser.
    assert scenario_from_dict(parse_toml_subset(spec.to_toml())) == spec
    # The digest is a function of the canonical form alone.
    assert scenario_from_toml(spec.to_toml()).digest() == spec.digest()


def test_defaults_give_a_valid_spec():
    spec = scenario_from_dict({"trace": {"rps": 100.0}})
    assert spec.name == "scenario"
    assert spec.seed == 0
    assert spec.offered_rps() == 100.0


def test_unknown_top_level_key_rejected():
    with pytest.raises(SpecError, match="unknown key 'sedd'"):
        scenario_from_dict({"sedd": 1, "trace": {"rps": 1.0}})


def test_unknown_section_key_rejected():
    with pytest.raises(SpecError, match=r"trace: unknown key\(s\) rsp"):
        scenario_from_dict({"trace": {"rsp": 1.0}})


def test_schema_mismatch_rejected():
    with pytest.raises(SpecError, match="expected 'repro-scenario/v1'"):
        scenario_from_dict({"schema": "repro-scenario/v2"})


def test_type_errors_rejected():
    with pytest.raises(SpecError, match="fleet.workers: expected an integer"):
        scenario_from_dict({"trace": {"rps": 1.0},
                            "fleet": {"workers": 2.5}})
    with pytest.raises(SpecError, match="must be finite"):
        scenario_from_dict({"trace": {"rps": math.inf}})


def test_synthetic_requires_exactly_one_rate():
    with pytest.raises(SpecError, match="exactly one of rps"):
        scenario_from_dict({"trace": {"rps": 1.0, "rps_per_worker": 1.0}})
    with pytest.raises(SpecError, match="exactly one of rps"):
        scenario_from_dict({"trace": {}})


def test_streamed_rejects_fault_injection():
    with pytest.raises(SpecError, match="not supported on the streamed"):
        scenario_from_dict({
            "trace": {"kind": "streamed"},
            "faults": {"mttf_seconds": 10.0},
        })


def test_overrides_apply_and_recheck():
    spec = scenario_from_dict({"trace": {"rps": 10.0}})
    bumped = spec.with_overrides({"fleet.workers": 8, "seed": 3})
    assert bumped.fleet.workers == 8 and bumped.seed == 3
    assert spec.fleet.workers == 4  # frozen original untouched
    with pytest.raises(SpecError, match="unknown field 'wrokers'"):
        spec.with_overrides({"fleet.wrokers": 8})
    with pytest.raises(SpecError, match="unknown section"):
        spec.with_overrides({"flete.workers": 8})
    with pytest.raises(SpecError, match="expected an integer"):
        spec.with_overrides({"fleet.workers": "many"})
    with pytest.raises(SpecError, match="must be > 0"):
        spec.with_overrides({"trace.duration_seconds": -1.0})


def test_trace_and_fault_seed_conventions():
    spec = scenario_from_dict({"seed": 5, "trace": {"rps": 1.0}})
    assert spec.trace_seed() == 5 + 17
    assert spec.fault_seed() == 5 + 29
    reseeded = spec.with_overrides({"trace.reseed_per_fleet": True,
                                    "fleet.workers": 16})
    assert reseeded.trace_seed() == 5 + 16


def test_canonical_dict_omits_unset_deadline():
    spec = scenario_from_dict({"trace": {"rps": 1.0}})
    assert "deadline_seconds" not in spec.to_dict()["faults"]
    with_deadline = spec.with_overrides({"faults.deadline_seconds": 0.5})
    assert with_deadline.to_dict()["faults"]["deadline_seconds"] == 0.5


def test_bundled_specs_all_load():
    names = bundled_specs()
    assert {"sec61", "sec62", "sec63", "fig10_full", "mini"} <= set(names)
    for name in names:
        spec = load_spec(name)
        assert isinstance(spec, ScenarioSpec)
        assert spec.name == name


def test_load_spec_unknown_ref():
    with pytest.raises(SpecError, match="no bundled scenario"):
        load_spec("no_such_scenario")


def test_subset_parser_grammar():
    parsed = parse_toml_subset(
        '# header comment\n'
        'name = "a\\"b\\\\c"  # trailing comment\n'
        'seed = 12\n'
        '\n'
        '[trace]\n'
        'rps = 1.5\n'
        'reseed_per_fleet = false\n'
    )
    assert parsed == {
        "name": 'a"b\\c', "seed": 12,
        "trace": {"rps": 1.5, "reseed_per_fleet": False},
    }
    with pytest.raises(SpecError, match="duplicate key"):
        parse_toml_subset("a = 1\na = 2\n")
    with pytest.raises(SpecError, match="malformed table header"):
        parse_toml_subset("[trace\n")
    with pytest.raises(SpecError, match="unterminated string"):
        parse_toml_subset('name = "open\n')
    with pytest.raises(SpecError, match="cannot parse value"):
        parse_toml_subset("x = nope\n")
