"""KpiRecord serialization and tolerance-band diffing."""

import dataclasses
import math

import pytest

from repro.scenario.kpis import (
    KpiRecord,
    MATRIX_SCHEMA,
    diff_matrices,
    diff_records,
)

_NAN = float("nan")


def _record(**overrides) -> KpiRecord:
    base = KpiRecord(
        scenario="t", seed=1, spec_digest="d", offered=100, completed=100,
        duration_seconds=2.0, goodput_rps=50.0, success_pct=100.0,
        p50_ms=3.0, p95_ms=4.0, p99_ms=5.0, utilization=0.5, imbalance=1.1,
        cost_usd=0.01, counters={"retries": 4}, extras={},
    )
    return dataclasses.replace(base, **overrides)


def test_json_round_trip_preserves_nan():
    record = _record(p50_ms=_NAN, p95_ms=_NAN, p99_ms=_NAN)
    loaded = KpiRecord.from_json(record.to_json())
    assert math.isnan(loaded.p50_ms) and math.isnan(loaded.p99_ms)
    assert loaded.goodput_rps == record.goodput_rps
    assert loaded.to_json() == record.to_json()


def test_from_dict_rejects_unknown_keys_and_schema():
    with pytest.raises(ValueError, match="unknown key"):
        KpiRecord.from_dict({"schema": "repro-kpi/v1", "goodput": 1.0})
    with pytest.raises(ValueError, match="expected schema"):
        KpiRecord.from_dict({"schema": "repro-kpi/v0"})


def test_identical_records_diff_equal():
    diff = diff_records(_record(), _record())
    assert diff.ok
    assert all(delta.status == "equal" for delta in diff.deltas)


def test_nan_vs_nan_is_equal_not_regression():
    # Two zero-completion arms: every percentile is NaN on both sides.
    old = _record(completed=0, goodput_rps=0.0, p50_ms=_NAN, p95_ms=_NAN,
                  p99_ms=_NAN, utilization=_NAN, imbalance=_NAN)
    new = _record(completed=0, goodput_rps=0.0, p50_ms=_NAN, p95_ms=_NAN,
                  p99_ms=_NAN, utilization=_NAN, imbalance=_NAN)
    diff = diff_records(old, new)
    assert diff.ok
    assert not diff.regressions


def test_one_sided_nan_is_a_change():
    diff = diff_records(_record(), _record(p99_ms=_NAN))
    assert not diff.ok
    assert [d.metric for d in diff.changes] == ["p99_ms"]
    assert not diff.regressions  # changed, not classified as a regression


def test_drift_within_band_passes():
    diff = diff_records(_record(), _record(p99_ms=5.5))  # +10% < 20% band
    assert diff.ok
    (delta,) = [d for d in diff.deltas if d.metric == "p99_ms"]
    assert delta.status == "within"


def test_direction_awareness():
    worse = diff_records(_record(), _record(p99_ms=10.0))
    assert [d.metric for d in worse.regressions] == ["p99_ms"]
    better = diff_records(_record(), _record(p99_ms=1.0))
    assert better.ok and [d.metric for d in better.improvements] == ["p99_ms"]
    more_goodput = diff_records(_record(), _record(goodput_rps=80.0))
    assert more_goodput.ok
    assert [d.metric for d in more_goodput.improvements] == ["goodput_rps"]


def test_counters_get_wide_default_band_and_overrides():
    within = diff_records(_record(), _record(counters={"retries": 5}))
    assert within.ok  # +25% exactly on the default counter band
    beyond = diff_records(_record(), _record(counters={"retries": 8}))
    assert not beyond.ok and beyond.changes
    tightened = diff_records(
        _record(), _record(counters={"retries": 5}),
        tolerances={"counters.retries": 0.0},
    )
    assert not tightened.ok


def test_metric_present_on_one_side_is_a_change():
    diff = diff_records(_record(), _record(counters={"retries": 4, "hedges": 2}))
    assert [d.metric for d in diff.changes] == ["counters.hedges"]


def _matrix(records) -> dict:
    return {"schema": MATRIX_SCHEMA, "spec": {}, "axes": [],
            "records": records}


def test_diff_matrices_matches_arms_and_flags_missing():
    old = _matrix([
        {"arm": {"sched.routing": "jsq"}, "kpis": _record().to_dict()},
        {"arm": {"sched.routing": "random"}, "kpis": _record().to_dict()},
    ])
    new = _matrix([
        {"arm": {"sched.routing": "random"}, "kpis": _record().to_dict()},
        {"arm": {"sched.routing": "gray"}, "kpis": _record().to_dict()},
    ])
    results = dict(diff_matrices(old, new))
    assert results['{"sched.routing": "random"}'].ok
    assert results['{"sched.routing": "jsq"}'] is None  # dropped arm
    assert results['{"sched.routing": "gray"}'] is None  # new arm
    with pytest.raises(ValueError, match="expected schema"):
        diff_matrices({"schema": "nope", "records": []}, new)
