"""Scenario engine: seeded reproducibility and spec-driven assembly."""

import math

import pytest

from repro.scenario import (
    SpecError,
    assemble_cluster,
    load_spec,
    run_scenario,
    scenario_from_dict,
)


def _mini_spec(**trace_overrides):
    trace = {"rps": 80.0, "duration_seconds": 0.5, **trace_overrides}
    return scenario_from_dict({
        "name": "t", "seed": 3, "trace": trace,
        "workload": {"compute_seconds": 0.002},
        "fleet": {"workers": 3, "cores": 2},
    })


def test_same_spec_same_seed_identical_kpi_record():
    spec = load_spec("mini")
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert first.kpis.to_json() == second.kpis.to_json()
    assert first.kpis.spec_digest == spec.digest()


def test_different_seed_different_arrivals():
    base = _mini_spec()
    other = base.with_overrides({"seed": 4})
    assert run_scenario(base).kpis.offered != run_scenario(other).kpis.offered


def test_injector_armed_iff_mttf_positive():
    _cluster, injector = assemble_cluster(_mini_spec())
    assert injector is None
    armed_spec = _mini_spec().with_overrides({
        "faults.mttf_seconds": 1.0, "faults.mttr_seconds": 0.1,
    })
    _cluster, injector = assemble_cluster(armed_spec)
    assert injector is not None


def test_unknown_policy_name_fails_before_assembly():
    spec = _mini_spec().with_overrides({"sched.routing": "does_not_exist"})
    with pytest.raises(SpecError, match="unknown routing policy"):
        run_scenario(spec)


def test_multi_app_run_counts_every_request():
    spec = _mini_spec(apps=4, zipf_skew=1.1)
    run = run_scenario(spec)
    assert run.kpis.offered > 0
    assert run.kpis.completed == run.kpis.offered  # no faults configured
    assert run.kpis.success_pct == 100.0


def test_streamed_spec_runs_through_sharded_replay():
    spec = load_spec("fig10_full").with_overrides({
        "trace.scale": 0.5, "trace.duration_seconds": 30.0,
        "fleet.workers": 4, "fleet.cores": 8,
    })
    run = run_scenario(spec, shards=1, executor="serial")
    assert run.report is not None
    assert run.kpis.offered == run.report.routed
    assert run.meta["function_count"] == 50
    # Streamed KPIs don't model utilization/imbalance.
    assert math.isnan(run.kpis.utilization)
    assert "committed_mean_mib" in run.kpis.extras
