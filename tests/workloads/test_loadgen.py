"""Tests for open-loop load generation and phase-model registration."""

import pytest

from repro.baselines import FIRECRACKER_SNAPSHOT, FaasPlatform, FixedHotRatioPolicy, compute_phase
from repro.sim import Environment, Rng
from repro.workloads import (
    FixedDelayService,
    fetch_and_compute_phases,
    matmul_phases,
    register_phase_composition,
    run_arrivals,
    run_open_loop,
)
from repro.worker import WorkerConfig, WorkerNode


def make_fc(cores=4, hot_ratio=1.0):
    env = Environment()
    platform = FaasPlatform(
        env, FIRECRACKER_SNAPSHOT, cores=cores, policy=FixedHotRatioPolicy(hot_ratio, Rng(0))
    )
    platform.register_function("f", [compute_phase(0.001)])
    return env, platform


def test_deterministic_open_loop_counts():
    env, platform = make_fc()
    result = run_open_loop(env, lambda: platform.request("f"), rate_rps=100, duration_seconds=1.0)
    assert result.completed == 100
    assert result.failed == 0
    assert len(result.latencies) == 100
    assert not result.saturated


def test_poisson_open_loop_roughly_rate():
    env, platform = make_fc()
    result = run_open_loop(
        env, lambda: platform.request("f"), rate_rps=200, duration_seconds=2.0, rng=Rng(4)
    )
    assert 300 < result.completed < 500


def test_warmup_excluded_from_latencies():
    env, platform = make_fc()
    result = run_open_loop(
        env,
        lambda: platform.request("f"),
        rate_rps=100,
        duration_seconds=1.0,
        warmup_seconds=0.5,
    )
    assert result.completed == 100
    assert len(result.latencies) < 100


def test_saturation_detected():
    env, platform = make_fc(cores=1)
    # 1ms-compute function at 5000 RPS on one core: hopeless.
    result = run_open_loop(
        env,
        lambda: platform.request("f"),
        rate_rps=5000,
        duration_seconds=0.5,
        drain_seconds=0.1,
    )
    assert result.saturated


def test_run_arrivals_explicit_times():
    env, platform = make_fc()
    result = run_arrivals(env, lambda: platform.request("f"), [0.0, 0.5, 1.0])
    assert result.completed == 3
    assert result.makespan_seconds >= 1.0


def test_summary_shape():
    env, platform = make_fc()
    result = run_open_loop(env, lambda: platform.request("f"), 50, 1.0)
    summary = result.summary()
    assert {"offered_rps", "achieved_rps", "completed", "p99"} <= set(summary)


def test_failed_invocations_counted():
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    register_phase_composition(worker, "m", matmul_phases(1e-4))
    # Invoke with the wrong inputs: every invocation fails.
    result = run_open_loop(
        worker.env,
        lambda: worker.frontend.invoke("m", {}),
        rate_rps=10,
        duration_seconds=0.5,
    )
    assert result.failed == 5
    assert result.completed == 0


def test_register_phase_composition_compute_only():
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    name = register_phase_composition(worker, "mm", matmul_phases(2.5e-3))
    result = worker.invoke_and_run(name, {"data": b"x"})
    assert result.ok
    assert result.latency >= 2.5e-3


def test_register_phase_composition_with_io():
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    name = register_phase_composition(worker, "fc2", fetch_and_compute_phases(2))
    result = worker.invoke_and_run(name, {"data": b"x"})
    assert result.ok
    # 2 io phases at ~1.2ms each plus compute: at least ~2.8ms.
    assert result.latency > 2.4e-3


def test_phase_chain_length_scales_latency():
    latencies = []
    for depth in (2, 8):
        worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
        name = register_phase_composition(worker, f"chain{depth}", fetch_and_compute_phases(depth))
        result = worker.invoke_and_run(name, {"data": b"x"})
        assert result.ok
        latencies.append(result.latency)
    assert latencies[1] > 2.5 * latencies[0]


def test_empty_phases_rejected():
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    with pytest.raises(ValueError):
        register_phase_composition(worker, "none", [])


def test_fixed_delay_service():
    from repro.net import HttpRequest
    service = FixedDelayService("s.internal", 0.005, response_bytes=100)
    response = service.handle(HttpRequest("GET", "http://s.internal/"))
    assert response.ok
    assert len(response.body) == 100
    assert service.service_seconds(None, response) == 0.005
