"""Tests for the worker node assembly and the HTTP frontend."""

import json

import pytest

from repro.functions import compute_function
from repro.net import HttpRequest
from repro.worker import WorkerConfig, WorkerNode


@compute_function(compute_cost=1e-4)
def shout(vfs):
    text = vfs.read_text("/in/text/text")
    vfs.write_text("/out/result/text", text.upper())


SHOUT_DSL = """
composition shout_comp {
    compute s uses shout in(text) out(result);
    input text -> s.text;
    output s.result -> result;
}
"""


def make_worker(**kwargs):
    kwargs.setdefault("total_cores", 4)
    kwargs.setdefault("control_plane_enabled", False)
    worker = WorkerNode(WorkerConfig(**kwargs))
    worker.frontend.register_function(shout)
    worker.frontend.register_composition(SHOUT_DSL)
    return worker


def test_worker_config_validation():
    with pytest.raises(ValueError):
        WorkerConfig(total_cores=1)
    with pytest.raises(ValueError):
        WorkerConfig(total_cores=4, initial_comm_cores=4)
    with pytest.raises(ValueError):
        WorkerConfig(total_cores=4, initial_comm_cores=0)


def test_worker_core_split():
    worker = WorkerNode(WorkerConfig(total_cores=8, initial_comm_cores=3, control_plane_enabled=False))
    assert worker.compute_group.engine_count == 5
    assert worker.comm_group.engine_count == 3
    assert worker.total_engine_cores == 8


def test_invoke_and_run_shortcut():
    worker = make_worker()
    result = worker.invoke_and_run("shout_comp", {"text": b"quiet"})
    assert result.ok
    assert result.output("result").item("text").data == b"QUIET"


def test_string_input_encoded():
    worker = make_worker()
    result = worker.invoke_and_run("shout_comp", {"text": "string input"})
    assert result.output("result").item("text").data == b"STRING INPUT"


def test_stats_shape():
    worker = make_worker()
    worker.invoke_and_run("shout_comp", {"text": b"x"})
    stats = worker.stats()
    assert stats["invocations_completed"] == 1
    assert stats["compute_tasks"] == 1
    assert stats["committed_bytes"] == 0
    assert stats["peak_committed_bytes"] > 0


def test_http_register_composition():
    worker = make_worker()
    source = SHOUT_DSL.replace("shout_comp", "shout2")
    response = worker.frontend.handle(
        HttpRequest("POST", "http://dandelion.internal/v1/compositions", body=source.encode())
    )
    assert response.status == 201
    assert worker.registry.has_composition("shout2")


def test_http_register_invalid_composition():
    worker = make_worker()
    response = worker.frontend.handle(
        HttpRequest("POST", "http://dandelion.internal/v1/compositions", body=b"not valid dsl")
    )
    assert response.status == 400


def test_http_invoke_accepted_then_unknown():
    worker = make_worker()
    accepted = worker.frontend.handle(
        HttpRequest("POST", "http://dandelion.internal/v1/invoke/shout_comp")
    )
    assert accepted.status == 202
    missing = worker.frontend.handle(
        HttpRequest("POST", "http://dandelion.internal/v1/invoke/ghost")
    )
    assert missing.status == 404


def test_http_unknown_endpoint():
    worker = make_worker()
    response = worker.frontend.handle(HttpRequest("GET", "http://dandelion.internal/other"))
    assert response.status == 404


def test_http_full_invocation_roundtrip():
    worker = make_worker()
    request = HttpRequest(
        "POST",
        "http://dandelion.internal/v1/invoke/shout_comp",
        body=json.dumps({"text": "over http"}).encode(),
    )
    process = worker.env.process(worker.frontend.handle_invoke_process(request))
    response = worker.env.run(until=process)
    assert response.status == 200
    payload = json.loads(response.body)
    assert bytes.fromhex(payload["result"]["text"]) == b"OVER HTTP"


def test_http_invocation_bad_json():
    worker = make_worker()
    request = HttpRequest(
        "POST", "http://dandelion.internal/v1/invoke/shout_comp", body=b"{broken"
    )
    process = worker.env.process(worker.frontend.handle_invoke_process(request))
    response = worker.env.run(until=process)
    assert response.status == 400


def test_serialize_failed_result_is_500():
    worker = make_worker()
    result = worker.invoke_and_run("shout_comp", {})  # missing inputs
    response = worker.frontend.serialize_result(result)
    assert response.status == 500


def test_control_plane_runs_by_default():
    worker = WorkerNode(WorkerConfig(total_cores=4))
    worker.frontend.register_function(shout)
    worker.frontend.register_composition(SHOUT_DSL)
    result = worker.invoke_and_run("shout_comp", {"text": b"cp"})
    assert result.ok
    assert worker.allocator.enabled


def test_http_register_composition_over_network():
    # The frontend is itself a network service: registration can arrive
    # through the simulated network like any other HTTP exchange.
    worker = make_worker()
    worker.network.register(worker.frontend)
    source = SHOUT_DSL.replace("shout_comp", "netreg")
    request = HttpRequest(
        "POST", "http://dandelion.internal/v1/compositions", body=source.encode()
    )

    def exchange():
        response = yield from worker.network.perform(request)
        return response

    process = worker.env.process(exchange())
    response = worker.env.run(until=process)
    assert response.status == 201
    assert worker.registry.has_composition("netreg")
