"""SARIF 2.1.0 conformance for the lint renderer.

No jsonschema dependency in the image, so the required shape of the
spec's subset we emit is pinned by hand: the properties GitHub code
scanning actually requires of a minimal uploadable SARIF log.
"""

import json

import pytest

from repro.analysis.dataflow_corpus import analyze_corpus
from repro.analysis.determinism_lint import lint_source
from repro.analysis.sarif import (
    RULES,
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
)


@pytest.fixture(scope="module")
def sarif_log():
    diagnostics = [
        d for report in analyze_corpus().values() for d in report.diagnostics
    ]
    diagnostics += lint_source(
        "import time\n\ndef tick():\n    return time.time()\n", "x.py"
    )
    assert diagnostics
    return json.loads(render_sarif(diagnostics)), diagnostics


def test_top_level_shape(sarif_log):
    log, _ = sarif_log
    assert log["version"] == SARIF_VERSION == "2.1.0"
    assert log["$schema"] == SARIF_SCHEMA_URI
    assert isinstance(log["runs"], list) and len(log["runs"]) == 1


def test_tool_driver(sarif_log):
    log, _ = sarif_log
    driver = log["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert driver["informationUri"].startswith("https://")
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)  # deterministic rule table
    assert len(rule_ids) == len(set(rule_ids))


def test_every_result_references_a_rule(sarif_log):
    log, diagnostics = sarif_log
    run = log["runs"][0]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert len(run["results"]) == len(diagnostics)
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert result["level"] in ("error", "warning")
        assert result["message"]["text"]


def test_results_carry_physical_locations(sarif_log):
    # Registry-sourced diagnostics have no file (location is optional
    # in SARIF); every file-backed diagnostic must carry one.
    log, diagnostics = sarif_log
    located = 0
    for result in log["runs"][0]["results"]:
        for location_wrapper in result.get("locations", ()):
            located += 1
            location = location_wrapper["physicalLocation"]
            assert location["artifactLocation"]["uri"]
            region = location.get("region")
            if region is not None:
                assert region["startLine"] >= 1
    assert located == sum(1 for d in diagnostics if d.file)
    assert located > 0


def test_results_carry_baseline_fingerprints(sarif_log):
    log, diagnostics = sarif_log
    fingerprints = [
        result["partialFingerprints"]["reproLintFingerprint/v1"]
        for result in log["runs"][0]["results"]
    ]
    assert all(fingerprints)
    assert set(fingerprints) == {d.fingerprint for d in diagnostics}


def test_rule_table_covers_every_pass_family():
    families = {code[:3] for code in RULES}
    assert {"PUR", "CMP", "DET", "RAC", "CON", "COS"} <= families


def test_render_is_deterministic(sarif_log):
    _, diagnostics = sarif_log
    assert render_sarif(diagnostics) == render_sarif(list(diagnostics))


def test_empty_log_is_valid():
    log = json.loads(render_sarif([]))
    assert log["runs"][0]["results"] == []
