"""End-to-end `python -m repro lint` CLI: exit codes, formats, scoping."""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

RACY_BLOCK = '''
"""A module embedding a broken composition block."""

PIPELINE = """
composition broken {
    compute work uses nonexistent in(src) out(;
    input start -> work.src;
}
"""
'''


def run_lint(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONHASHSEED"] = "0"
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd or REPO_ROOT,
    )


def test_clean_dataflow_lint_exits_zero():
    proc = run_lint("--only", "dataflow", "--no-cache")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_findings_exit_one(tmp_path):
    racy = tmp_path / "racy.py"
    racy.write_text(RACY_BLOCK)
    proc = run_lint("--only", "compositions", "--no-cache", str(racy))
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "CMP000" in proc.stdout


def test_usage_error_exits_two():
    proc = run_lint("--only", "nonsense")
    assert proc.returncode == 2
    assert "invalid choice" in proc.stderr


def test_json_schema_is_stable(tmp_path):
    racy = tmp_path / "racy.py"
    racy.write_text(RACY_BLOCK)
    proc = run_lint(
        "--only", "compositions", "--no-cache", "--format", "json", str(racy)
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["schema"] == "repro-lint/v1"
    assert payload["errors"] >= 1
    row = payload["diagnostics"][0]
    assert set(row) == {
        "code", "severity", "message", "file", "line", "symbol", "hint",
        "fingerprint",
    }
    assert row["code"] == "CMP000"
    assert row["fingerprint"].startswith("CMP000::")


def test_only_selects_passes(tmp_path):
    # The broken block only matters to the compositions/dataflow
    # passes; restricting to the functions pass must ignore it.
    racy = tmp_path / "racy.py"
    racy.write_text(RACY_BLOCK)
    proc = run_lint(
        "--only", "functions", "--no-cache", "--format", "json", str(racy)
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["diagnostics"] == []


def test_sarif_format_parses(tmp_path):
    racy = tmp_path / "racy.py"
    racy.write_text(RACY_BLOCK)
    proc = run_lint(
        "--only", "compositions", "--no-cache", "--format", "sarif", str(racy)
    )
    assert proc.returncode == 1
    log = json.loads(proc.stdout)
    assert log["version"] == "2.1.0"
    assert [r["ruleId"] for r in log["runs"][0]["results"]] == ["CMP000"]


# -- stale baseline handling (--strict / --write-baseline) ---------------------


@pytest.fixture
def stale_baseline(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "schema": "repro-lint-baseline/v1",
        "suppressions": {
            # Stale for the compositions pass: no current CMP finding
            # will ever match this fabricated fingerprint.
            "CMP001::ghost.py::phantom": 1,
            # Out of scope for the compositions pass: must survive
            # pruning untouched.
            "DET001::ghost.py::phantom": 2,
        },
    }))
    return path


def test_strict_fails_on_stale_fingerprints(stale_baseline):
    proc = run_lint(
        "--only", "compositions", "--no-cache", "--strict",
        "--baseline", str(stale_baseline),
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "CMP001::ghost.py::phantom" in proc.stdout
    assert "stale" in proc.stdout.lower()


def test_nonstrict_ignores_stale_fingerprints(stale_baseline):
    proc = run_lint(
        "--only", "compositions", "--no-cache",
        "--baseline", str(stale_baseline),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_write_baseline_prunes_only_ran_passes(stale_baseline):
    proc = run_lint(
        "--only", "compositions", "--no-cache", "--write-baseline",
        "--baseline", str(stale_baseline),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    rewritten = json.loads(stale_baseline.read_text())["suppressions"]
    assert "CMP001::ghost.py::phantom" not in rewritten  # stale, in scope
    assert rewritten.get("DET001::ghost.py::phantom") == 2  # out of scope
    # And a strict re-run against the pruned baseline is clean.
    proc = run_lint(
        "--only", "compositions", "--no-cache", "--strict",
        "--baseline", str(stale_baseline),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
