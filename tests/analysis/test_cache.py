"""Incremental analysis cache: fingerprints, replay, tolerance."""

import json
import os

from repro.analysis.cache import (
    PASS_VERSIONS,
    AnalysisCache,
    fingerprint_text,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.runner import collect_diagnostics, demo_registry


def _diag(code="DET001", file="x.py"):
    return Diagnostic(
        code=code, severity="error", message="m", file=file, line=1, symbol="f"
    )


def test_fingerprint_is_content_addressed():
    assert fingerprint_text("a", "b") == fingerprint_text("a", "b")
    assert fingerprint_text("a", "b") != fingerprint_text("a", "c")
    # Part boundaries matter: ("ab", "") must not collide with ("a", "b").
    assert fingerprint_text("ab", "") != fingerprint_text("a", "b")


def test_pass_version_salts_fingerprint():
    base = AnalysisCache.pass_fingerprint("self", "source")
    assert base != AnalysisCache.pass_fingerprint("functions", "source")
    assert PASS_VERSIONS["self"]  # bumping this string invalidates "self"


def test_put_get_roundtrip(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = AnalysisCache(path)
    finding = _diag()
    cache.put("self", "x.py", "fp1", [finding])
    hit = cache.get("self", "x.py", "fp1")
    assert hit is not None and len(hit) == 1
    assert hit[0].code == finding.code and hit[0].line == finding.line


def test_miss_on_changed_fingerprint(tmp_path):
    cache = AnalysisCache(str(tmp_path / "cache.json"))
    cache.put("self", "x.py", "fp1", [])
    assert cache.get("self", "x.py", "fp1") is not None
    assert cache.get("self", "x.py", "fp2") is None
    assert cache.hits == 1 and cache.misses == 1


def test_save_and_reload(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = AnalysisCache(path)
    cache.put("functions", "mod.fn", "fp", [_diag("PUR001")])
    cache.save()
    reloaded = AnalysisCache(path)
    assert len(reloaded) == 1
    hit = reloaded.get("functions", "mod.fn", "fp")
    assert hit is not None and hit[0].code == "PUR001"


def test_corrupt_cache_file_is_empty_not_fatal(tmp_path):
    path = str(tmp_path / "cache.json")
    with open(path, "w") as handle:
        handle.write("{not json")
    cache = AnalysisCache(path)
    assert len(cache) == 0
    cache.put("self", "k", "fp", [])
    cache.save()  # and it can still persist over the corrupt file
    assert len(AnalysisCache(path)) == 1


def test_wrong_schema_is_discarded(tmp_path):
    path = str(tmp_path / "cache.json")
    with open(path, "w") as handle:
        json.dump({"schema": "something-else/v9", "entries": {"a": {}}}, handle)
    assert len(AnalysisCache(path)) == 0


def test_missing_file_is_empty(tmp_path):
    assert len(AnalysisCache(str(tmp_path / "absent.json"))) == 0


def test_save_is_atomic(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = AnalysisCache(path)
    cache.put("self", "k", "fp", [])
    cache.save()
    assert not os.path.exists(path + ".tmp")


def test_warm_replay_reproduces_cold_findings(tmp_path):
    path = str(tmp_path / "cache.json")
    registry = demo_registry()
    cache = AnalysisCache(path)
    cold = collect_diagnostics(lint_dataflow=True, registry=registry, cache=cache)
    cache.save()
    warm_cache = AnalysisCache(path)
    warm = collect_diagnostics(
        lint_dataflow=True, registry=registry, cache=warm_cache
    )
    assert [d.to_dict() for d in cold] == [d.to_dict() for d in warm]
    assert warm_cache.hits > 0 and warm_cache.misses == 0
