"""Registration-time purity verification (Registry verify= modes)."""

import os

import pytest

from repro.analysis.purity_check import PurityWarning
from repro.composition import PurityVerificationError, Registry
from repro.composition.registry import FunctionBinary, RegistryError
from repro.functions.sdk import write_item


def pure_fn(vfs):
    write_item(vfs, "out", "item", b"ok")


def impure_fn(vfs):
    os.system("true")


def nondeterministic_fn(vfs):
    import time
    write_item(vfs, "out", "stamp", str(time.time()).encode())


def test_default_registration_skips_verification():
    registry = Registry()
    registry.register_function(FunctionBinary(name="f", entry_point=impure_fn))
    assert registry.has_function("f")


def test_strict_rejects_impure_function():
    registry = Registry()
    with pytest.raises(PurityVerificationError) as excinfo:
        registry.register_function(
            FunctionBinary(name="f", entry_point=impure_fn), verify="strict"
        )
    assert not registry.has_function("f")
    assert excinfo.value.diagnostics  # findings travel with the error
    assert any(d.code == "PUR002" for d in excinfo.value.diagnostics)


def test_strict_accepts_pure_function():
    registry = Registry()
    registry.register_function(
        FunctionBinary(name="f", entry_point=pure_fn), verify="strict"
    )
    assert registry.has_function("f")


def test_warn_mode_registers_with_warning():
    registry = Registry()
    with pytest.warns(PurityWarning):
        registry.register_function(
            FunctionBinary(name="f", entry_point=impure_fn), verify="warn"
        )
    assert registry.has_function("f")


def test_strict_allows_warning_level_findings():
    # Nondeterminism is warning severity: strict verification still
    # registers, but surfaces the finding as a PurityWarning.
    registry = Registry()
    with pytest.warns(PurityWarning):
        registry.register_function(
            FunctionBinary(name="f", entry_point=nondeterministic_fn),
            verify="strict",
        )
    assert registry.has_function("f")


def test_unknown_verify_mode_rejected():
    registry = Registry()
    with pytest.raises(RegistryError):
        registry.register_function(
            FunctionBinary(name="f", entry_point=pure_fn), verify="always"
        )


def test_frontend_passes_verify_through():
    from repro.worker import WorkerConfig, WorkerNode

    worker = WorkerNode(WorkerConfig(total_cores=2, control_plane_enabled=False))
    with pytest.raises(PurityVerificationError):
        worker.frontend.register_function(
            FunctionBinary(name="f", entry_point=impure_fn), verify="strict"
        )


# -- composition-level verification (the dataflow analyzer) --------------------


def _corpus_registry():
    from repro.analysis.dataflow_corpus import build_registry

    return build_registry()


def _racy_composition(registry):
    from repro.composition import parse_composition

    return parse_composition(
        """
        composition fresh_racy {
            compute left uses df_sneaky_writer in(src) out(dst);
            compute right uses df_sneaky_writer in(src) out(dst);
            input a -> left.src;
            input b -> right.src;
            output left.dst -> out_l;
            output right.dst -> out_r;
        }
        """,
        registry.compositions,
    )


def test_composition_strict_rejects_racy_graph():
    from repro.composition import CompositionVerificationError

    registry = _corpus_registry()
    composition = _racy_composition(registry)
    with pytest.raises(CompositionVerificationError) as excinfo:
        registry.register_composition(composition, verify="strict")
    assert not registry.has_composition("fresh_racy")
    assert any(d.code == "RACE001" for d in excinfo.value.diagnostics)


def test_composition_warn_registers_with_warning():
    registry = _corpus_registry()
    composition = _racy_composition(registry)
    with pytest.warns(PurityWarning):
        registry.register_composition(composition, verify="warn")
    assert registry.has_composition("fresh_racy")


def test_composition_default_skips_verification():
    registry = _corpus_registry()
    registry.register_composition(_racy_composition(registry))
    assert registry.has_composition("fresh_racy")


def test_composition_strict_accepts_clean_graph():
    from repro.composition import parse_composition

    registry = _corpus_registry()
    composition = parse_composition(
        """
        composition fresh_clean {
            compute work uses df_copy in(src) out(dst);
            input start -> work.src;
            output work.dst -> result;
        }
        """,
        registry.compositions,
    )
    registry.register_composition(composition, verify="strict")
    assert registry.has_composition("fresh_clean")


def test_composition_invalid_verify_mode_rejected():
    registry = _corpus_registry()
    with pytest.raises(RegistryError):
        registry.register_composition(
            _racy_composition(registry), verify="paranoid"
        )


def test_frontend_register_composition_verify_strict():
    from repro.analysis.dataflow_corpus import _FUNCTIONS
    from repro.composition import CompositionVerificationError
    from repro.worker import WorkerConfig, WorkerNode

    worker = WorkerNode(WorkerConfig(total_cores=2, control_plane_enabled=False))
    for binary in _FUNCTIONS:
        worker.frontend.register_function(binary)
    racy = """
    composition frontend_racy {
        compute left uses df_sneaky_writer in(src) out(dst);
        compute right uses df_sneaky_writer in(src) out(dst);
        input a -> left.src;
        input b -> right.src;
        output left.dst -> out_l;
        output right.dst -> out_r;
    }
    """
    with pytest.raises(CompositionVerificationError):
        worker.frontend.register_composition(racy, verify="strict")
    worker.frontend.register_composition(racy)  # default still permissive
    assert worker.frontend.registry.has_composition("frontend_racy")


def test_frontend_http_verify_query_param():
    from repro.analysis.dataflow_corpus import _FUNCTIONS
    from repro.net import HttpRequest
    from repro.worker import WorkerConfig, WorkerNode

    worker = WorkerNode(WorkerConfig(total_cores=2, control_plane_enabled=False))
    for binary in _FUNCTIONS:
        worker.frontend.register_function(binary)
    racy = (
        "composition http_racy {"
        " compute left uses df_sneaky_writer in(src) out(dst);"
        " compute right uses df_sneaky_writer in(src) out(dst);"
        " input a -> left.src; input b -> right.src;"
        " output left.dst -> out_l; output right.dst -> out_r; }"
    )
    response = worker.frontend.handle(HttpRequest(
        method="POST",
        url="http://worker/v1/compositions?verify=strict",
        body=racy.encode(),
    ))
    assert response.status == 400
    response = worker.frontend.handle(HttpRequest(
        method="POST", url="http://worker/v1/compositions", body=racy.encode(),
    ))
    assert response.status == 201
