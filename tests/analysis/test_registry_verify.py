"""Registration-time purity verification (Registry verify= modes)."""

import os

import pytest

from repro.analysis.purity_check import PurityWarning
from repro.composition import PurityVerificationError, Registry
from repro.composition.registry import FunctionBinary, RegistryError
from repro.functions.sdk import write_item


def pure_fn(vfs):
    write_item(vfs, "out", "item", b"ok")


def impure_fn(vfs):
    os.system("true")


def nondeterministic_fn(vfs):
    import time
    write_item(vfs, "out", "stamp", str(time.time()).encode())


def test_default_registration_skips_verification():
    registry = Registry()
    registry.register_function(FunctionBinary(name="f", entry_point=impure_fn))
    assert registry.has_function("f")


def test_strict_rejects_impure_function():
    registry = Registry()
    with pytest.raises(PurityVerificationError) as excinfo:
        registry.register_function(
            FunctionBinary(name="f", entry_point=impure_fn), verify="strict"
        )
    assert not registry.has_function("f")
    assert excinfo.value.diagnostics  # findings travel with the error
    assert any(d.code == "PUR002" for d in excinfo.value.diagnostics)


def test_strict_accepts_pure_function():
    registry = Registry()
    registry.register_function(
        FunctionBinary(name="f", entry_point=pure_fn), verify="strict"
    )
    assert registry.has_function("f")


def test_warn_mode_registers_with_warning():
    registry = Registry()
    with pytest.warns(PurityWarning):
        registry.register_function(
            FunctionBinary(name="f", entry_point=impure_fn), verify="warn"
        )
    assert registry.has_function("f")


def test_strict_allows_warning_level_findings():
    # Nondeterminism is warning severity: strict verification still
    # registers, but surfaces the finding as a PurityWarning.
    registry = Registry()
    with pytest.warns(PurityWarning):
        registry.register_function(
            FunctionBinary(name="f", entry_point=nondeterministic_fn),
            verify="strict",
        )
    assert registry.has_function("f")


def test_unknown_verify_mode_rejected():
    registry = Registry()
    with pytest.raises(RegistryError):
        registry.register_function(
            FunctionBinary(name="f", entry_point=pure_fn), verify="always"
        )


def test_frontend_passes_verify_through():
    from repro.worker import WorkerConfig, WorkerNode

    worker = WorkerNode(WorkerConfig(total_cores=2, control_plane_enabled=False))
    with pytest.raises(PurityVerificationError):
        worker.frontend.register_function(
            FunctionBinary(name="f", entry_point=impure_fn), verify="strict"
        )
