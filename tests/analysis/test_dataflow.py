"""Whole-composition dataflow analysis (RACE/CON/COST codes)."""

import pytest

from repro.analysis.dataflow import (
    CompositionCostSummary,
    analyze_composition,
    cost_summary,
)
from repro.analysis.dataflow_corpus import (
    CORPUS,
    analyze_corpus,
    analyze_entry,
    build_registry,
)
from repro.analysis.composition_lint import lint_composition
from repro.analysis.runner import demo_registry
from repro.composition import Composition, CompositionError
from repro.composition.dsl import DslError, parse_composition
from repro.composition.printer import composition_to_dsl

ALL_RULES = (
    "RACE001", "RACE002", "RACE003", "RACE004",
    "CON001", "CON002", "CON003",
    "COST001", "COST002", "COST003",
)


@pytest.fixture(scope="module")
def registry():
    return build_registry()


@pytest.fixture(scope="module")
def corpus_reports(registry):
    return analyze_corpus(registry)


def _codes(report):
    return {d.code for d in report.diagnostics}


# -- corpus recall -------------------------------------------------------------


@pytest.mark.parametrize("entry", CORPUS, ids=[e.name for e in CORPUS])
def test_corpus_entry_is_flagged(entry, corpus_reports):
    report = corpus_reports[entry.name]
    fired = _codes(report)
    assert set(entry.expected_codes) <= fired, (
        f"{entry.name}: expected {entry.expected_codes}, fired {sorted(fired)}"
    )


def test_corpus_meets_acceptance_floor():
    assert len(CORPUS) >= 15


def test_every_rule_fires_somewhere(corpus_reports):
    fired = {
        d.code for report in corpus_reports.values() for d in report.diagnostics
    }
    assert set(ALL_RULES) <= fired, sorted(set(ALL_RULES) - fired)


def test_corpus_entries_fire_only_expected_families(corpus_reports):
    # Each seeded violation is surgical: the report must not drown the
    # expected code in unrelated errors (RACE003 warnings may ride
    # along on the cardinality entries, which reuse a fan-out shape).
    for entry in CORPUS:
        report = corpus_reports[entry.name]
        errors = {d.code for d in report.diagnostics if d.severity == "error"}
        unexpected = errors - set(entry.expected_codes)
        assert not unexpected, f"{entry.name}: unexpected errors {unexpected}"


def test_report_ok_reflects_error_severity(corpus_reports):
    race = corpus_reports["race_ww_parallel"]
    assert not race.ok
    fanout = corpus_reports["race_fanout_each"]  # RACE003 is warning-only
    assert fanout.ok


# -- the demo registry must stay clean -----------------------------------------


def test_demo_registry_is_clean():
    registry = demo_registry()
    for name in registry.composition_names:
        report = analyze_composition(registry.composition(name), registry)
        assert report.ok, (name, [str(d) for d in report.diagnostics])


# -- cost summaries ------------------------------------------------------------


def test_cost_summary_chain_numbers(registry, corpus_reports):
    summary = corpus_reports["cost_deadline_chain"].summary
    assert isinstance(summary, CompositionCostSummary)
    assert summary.composition == "cost_deadline_chain"
    assert summary.node_count == 3
    assert summary.critical_path_depth == 3
    assert summary.critical_path_seconds == pytest.approx(0.3)
    assert summary.total_compute_seconds == pytest.approx(0.3)
    assert summary.max_parallel_width == 1
    assert summary.statically_bounded
    assert summary.deadline_seconds == pytest.approx(0.05)
    assert summary.deadline_feasible is False
    assert summary.functions == ("df_slow",)


def test_cost_summary_wide_fanout(corpus_reports):
    summary = corpus_reports["cost_memory_wide"].summary
    assert summary.max_parallel_width == 3  # each over 3 constant items
    assert summary.deadline_seconds is None
    assert summary.deadline_feasible is None


def test_cost_summary_unbounded(corpus_reports):
    summary = corpus_reports["cost_unbounded_fanout"].summary
    assert not summary.statically_bounded


def test_cost_summary_entry_point(registry):
    summary = cost_summary(registry.composition("cost_deadline_chain"), registry)
    assert summary.critical_path_seconds == pytest.approx(0.3)


# -- CON002 vs CMP005: alias resolution must not hide or double-report --------


def test_direct_never_written_stays_cmp005(registry):
    # df_half_writer declares out(real, phantom) but provably writes
    # only "real"; a *direct* consumer of phantom is the composition
    # linter's CMP005, and the dataflow pass must not duplicate it.
    source = """
    composition direct_phantom {
        compute work uses df_half_writer in(src) out(real, phantom);
        compute sink uses df_collect in(phantom) out(result);
        input start -> work.src;
        work.phantom -> sink.phantom [all];
        output sink.result -> result;
    }
    """
    composition = parse_composition(source, registry.compositions)
    cmp_codes = {d.code for d in lint_composition(composition, registry)}
    assert "CMP005" in cmp_codes
    report = analyze_composition(composition, registry)
    assert "CON002" not in _codes(report)


def test_nested_alias_never_written_is_con002(registry, corpus_reports):
    # The same defect routed through a nested composition's output
    # binding: the composition linter cannot see through the alias,
    # so the dataflow pass owns the finding.
    report = corpus_reports["con_aliased"]
    assert "CON002" in _codes(report)
    inner = registry.composition("inner_misbound")
    cmp_codes = {d.code for d in lint_composition(
        registry.composition("con_aliased"), registry
    )}
    assert "CMP005" not in cmp_codes
    assert inner is not None


# -- deadline DSL --------------------------------------------------------------


def test_deadline_parses_to_seconds(registry):
    composition = parse_composition(
        """
        composition dl {
            deadline 500ms;
            compute work uses df_copy in(src) out(dst);
            input start -> work.src;
            output work.dst -> result;
        }
        """,
        registry.compositions,
    )
    assert composition.deadline_seconds == pytest.approx(0.5)


@pytest.mark.parametrize(
    "literal,seconds",
    [("250us", 0.00025), ("50ms", 0.05), ("2s", 2.0), ("1.5s", 1.5)],
)
def test_deadline_units(literal, seconds, registry):
    source = (
        "composition dl { deadline %s; "
        "compute work uses df_copy in(src) out(dst); "
        "input start -> work.src; output work.dst -> result; }" % literal
    )
    composition = parse_composition(source, registry.compositions)
    assert composition.deadline_seconds == pytest.approx(seconds)


def test_deadline_round_trips_through_printer(registry):
    source = (
        "composition dl { deadline 500ms; "
        "compute work uses df_copy in(src) out(dst); "
        "input start -> work.src; output work.dst -> result; }"
    )
    composition = parse_composition(source, registry.compositions)
    printed = composition_to_dsl(composition)
    assert "deadline" in printed
    reparsed = parse_composition(printed, registry.compositions)
    assert reparsed.deadline_seconds == pytest.approx(0.5)


def test_duplicate_deadline_rejected(registry):
    source = (
        "composition dl { deadline 1s; deadline 2s; "
        "compute work uses df_copy in(src) out(dst); "
        "input start -> work.src; output work.dst -> result; }"
    )
    with pytest.raises(DslError):
        parse_composition(source, registry.compositions)


def test_bad_deadline_literal_rejected(registry):
    source = (
        "composition dl { deadline soon; "
        "compute work uses df_copy in(src) out(dst); "
        "input start -> work.src; output work.dst -> result; }"
    )
    with pytest.raises(DslError):
        parse_composition(source, registry.compositions)


def test_negative_deadline_rejected(registry):
    source = (
        "composition dl { "
        "compute work uses df_copy in(src) out(dst); "
        "input start -> work.src; output work.dst -> result; }"
    )
    template = parse_composition(source, registry.compositions)
    with pytest.raises(CompositionError):
        Composition(
            "bad",
            template.nodes,
            template.edges,
            template.inputs,
            template.outputs,
            deadline_seconds=-1.0,
        )


def test_compositions_without_deadline_unchanged(registry):
    composition = registry.composition("race_ww_parallel")
    assert composition.deadline_seconds is None
    summary = cost_summary(composition, registry)
    assert summary.deadline_seconds is None
    assert summary.deadline_feasible is None
