"""Tests for the composition linter (CMP codes)."""

from repro.analysis.composition_lint import (
    extract_dsl_blocks,
    lint_composition,
    lint_dsl_source,
)
from repro.composition import Registry, parse_composition
from repro.composition.registry import FunctionBinary
from repro.functions.sdk import write_item

from .corpus import LINTABLE, MALFORMED, VALID_PIPELINE


def _codes(diagnostics):
    return {d.code for d in diagnostics}


def _lintable(name):
    for case_name, source, code in LINTABLE:
        if case_name == name:
            return source, code
    raise KeyError(name)


def test_valid_pipeline_is_clean():
    composition = parse_composition(VALID_PIPELINE)
    assert lint_composition(composition) == []


def test_malformed_sources_become_cmp000():
    for name, source, expected in MALFORMED:
        composition, diagnostics = lint_dsl_source(source, file=f"{name}.dsl")
        assert composition is None, name
        assert _codes(diagnostics) == {"CMP000"}, name
        assert expected in diagnostics[0].message, name


def test_cmp000_line_offset_applied():
    _composition, diagnostics = lint_dsl_source(
        "composition broken {", file="embedded.py", line_offset=100
    )
    assert diagnostics[0].code == "CMP000"
    assert diagnostics[0].line and diagnostics[0].line > 100


def test_unused_output_set_flagged():
    source, code = _lintable("unused_output_set")
    composition, diagnostics = lint_dsl_source(source)
    assert code in _codes(diagnostics)
    assert any("debug" in d.message for d in diagnostics)


def test_dead_end_vertex_flagged():
    source, code = _lintable("dead_end_vertex")
    _composition, diagnostics = lint_dsl_source(source)
    assert code in _codes(diagnostics)
    assert any("sink" in d.message for d in diagnostics if d.code == "CMP002")


def test_fanout_into_comm_flagged():
    source, code = _lintable("fanout_into_comm")
    _composition, diagnostics = lint_dsl_source(source)
    assert code in _codes(diagnostics)


def test_chained_fanout_flagged():
    source = """
    composition chained {
        compute a uses f in(x) out(ys);
        compute b uses g in(y) out(zs);
        compute c uses h in(z) out(w);
        input x -> a.x;
        a.ys -> b.y [each];
        b.zs -> c.z [each];
        output c.w -> result;
    }
    """
    _composition, diagnostics = lint_dsl_source(source)
    assert any(
        d.code == "CMP003" and "multiply" in d.message for d in diagnostics
    )


def test_shadowed_set_names_flagged():
    inner = parse_composition(
        """
        composition inner {
            compute a uses f in(x) out(result);
            input x -> a.x;
            output a.result -> result;
        }
        """
    )
    outer = parse_composition(
        """
        composition outer {
            compose stage uses inner;
            compute post uses g in(r) out(result);
            input x -> stage.x;
            stage.result -> post.r [all];
            output post.result -> result;
        }
        """,
        library={"inner": inner},
    )
    diagnostics = lint_composition(outer)
    assert "CMP004" in _codes(diagnostics)


def test_never_written_set_flagged_with_registry():
    def writes_wrong_set(vfs):
        write_item(vfs, "other", "item", b"")

    registry = Registry()
    registry.register_function(
        FunctionBinary(name="first_fn", entry_point=writes_wrong_set)
    )
    registry.register_function(
        FunctionBinary(name="second_fn", entry_point=writes_wrong_set)
    )
    composition = parse_composition(VALID_PIPELINE)
    diagnostics = lint_composition(composition, registry)
    cmp005 = [d for d in diagnostics if d.code == "CMP005"]
    assert cmp005  # first.y consumed but first_fn writes only "other"
    assert any("never writes" in d.message for d in cmp005)


def test_untrusted_write_summary_stays_silent():
    def opaque_writer(vfs):
        helper = getattr(vfs, "write_bytes")
        helper("/out/y/item", b"")  # dynamic: summary cannot be trusted

    registry = Registry()
    for name in ("first_fn", "second_fn"):
        registry.register_function(
            FunctionBinary(name=name, entry_point=opaque_writer)
        )
    composition = parse_composition(VALID_PIPELINE)
    diagnostics = lint_composition(composition, registry)
    assert not [d for d in diagnostics if d.code == "CMP005"]


def test_extract_dsl_blocks_offsets():
    text = "preamble\n\n" + VALID_PIPELINE + "\ntrailer\n"
    blocks = extract_dsl_blocks(text)
    assert len(blocks) == 1
    source, offset = blocks[0]
    assert source.startswith("composition pipeline")
    assert offset == 3  # "preamble", blank, leading newline of the block
    composition, diagnostics = lint_dsl_source(source, line_offset=offset)
    assert composition is not None and diagnostics == []


def test_extract_dsl_blocks_none_in_plain_text():
    assert extract_dsl_blocks("def composition():\n    pass\n") == []


def test_cmp000_message_relined_to_embedding_file():
    # The diag line was always file-absolute, but the message used to
    # keep the block-relative "line N:" prefix — confusing for every
    # multi-block script.  Both must agree now.
    bad = "composition b {\n    compute w uses f in(src) out(;\n}\n"
    _composition, diagnostics = lint_dsl_source(
        bad, file="mod.py", line_offset=40
    )
    assert diagnostics[0].code == "CMP000"
    assert diagnostics[0].line == 42
    assert "line 42:" in diagnostics[0].message
    assert "line 2:" not in diagnostics[0].message


def test_cmp000_second_block_of_multiblock_script():
    text = (
        "preamble\n\n"
        + VALID_PIPELINE
        + "\ncomposition second_broken {\n    compute w uses f in(src out(dst);\n}\n"
    )
    blocks = extract_dsl_blocks(text)
    assert len(blocks) == 2
    source, offset = blocks[1]
    _composition, diagnostics = lint_dsl_source(
        source, file="multi.py", line_offset=offset
    )
    assert diagnostics[0].code == "CMP000"
    expected_line = text[: text.index("in(src out(")].count("\n") + 1
    assert diagnostics[0].line == expected_line
    assert f"line {expected_line}:" in diagnostics[0].message
