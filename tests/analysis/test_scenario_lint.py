"""SCN pass: static validation of scenario spec files."""

from repro.analysis.runner import collect_diagnostics
from repro.analysis.scenario_lint import (
    iter_bundled_specs,
    lint_scenario_path,
    lint_scenario_text,
)

_VALID = """
seed = 1

[trace]
rps = 50.0

[workload]
compute_seconds = 0.004

[faults]
deadline_seconds = 0.25
"""


def _codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def test_valid_spec_is_clean():
    assert lint_scenario_text(_VALID, "spec.toml") == []


def test_bundled_specs_are_clean():
    for reported, text in iter_bundled_specs():
        assert lint_scenario_text(text, reported) == [], reported


def test_scn001_parse_error():
    diagnostics = lint_scenario_text("[trace\nrps = ", "bad.toml")
    assert _codes(diagnostics) == ["SCN001"]
    assert diagnostics[0].severity == "error"


def test_scn001_validation_error():
    diagnostics = lint_scenario_text(
        "seed = 1\n\n[trace]\nrps = 1.0\nrps_per_worker = 1.0\n", "bad.toml"
    )
    assert _codes(diagnostics) == ["SCN001"]
    assert "exactly one of rps" in diagnostics[0].message


def test_scn002_to_scn005_unknown_names():
    text = (
        "seed = 1\n\n[trace]\nrps = 1.0\n\n"
        "[fleet]\nbackend = \"qemu\"\nmachine = \"sparc\"\n\n"
        "[sched]\nrouting = \"fastest\"\ncores = \"magic\"\n"
        "autoscaler = \"hpa\"\n"
    )
    diagnostics = lint_scenario_text(text, "bad.toml")
    assert _codes(diagnostics) == [
        "SCN002", "SCN003", "SCN004", "SCN005", "SCN005"]


def test_scn006_missing_seed_is_a_warning():
    diagnostics = lint_scenario_text("[trace]\nrps = 1.0\n", "spec.toml")
    assert _codes(diagnostics) == ["SCN006"]
    assert diagnostics[0].severity == "warning"


def test_scn007_infeasible_deadline():
    text = (
        "seed = 1\n\n[trace]\nrps = 1.0\n\n"
        "[workload]\ncompute_seconds = 0.010\n\n"
        "[faults]\ndeadline_seconds = 0.001\n"
    )
    diagnostics = lint_scenario_text(text, "spec.toml")
    assert _codes(diagnostics) == ["SCN007"]
    assert "critical path" in diagnostics[0].message
    # A deadline above the critical path is feasible.
    assert lint_scenario_text(text.replace("0.001", "0.05"), "spec.toml") == []


def test_runner_wires_the_scenarios_pass(tmp_path):
    bad = tmp_path / "bad.toml"
    bad.write_text("[sched]\nrouting = \"fastest\"\n[trace]\nrps = 1.0\n")
    diagnostics = collect_diagnostics(
        lint_self_pass=False, lint_functions=False, lint_compositions=False,
        lint_scenarios=True, paths=[str(bad)],
    )
    codes = _codes(diagnostics)
    assert "SCN002" in codes and "SCN006" in codes
    # Bundled specs rode along and are clean: every finding targets ours.
    assert all(d.file == str(bad) for d in diagnostics)


def test_lint_scenario_path_reads_files(tmp_path):
    spec = tmp_path / "ok.toml"
    spec.write_text(_VALID)
    assert lint_scenario_path(str(spec)) == []
