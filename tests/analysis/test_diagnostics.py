"""Tests for the shared diagnostics core: records, renderers, baseline."""

import json

import pytest

from repro.analysis.diagnostics import (
    Baseline,
    Diagnostic,
    ERROR,
    WARNING,
    render_json,
    render_text,
)


def _diag(code="PUR001", severity=ERROR, file="src/repro/a.py", line=3,
          symbol="fn", message="boom", hint=None):
    return Diagnostic(code, severity, message, file=file, line=line,
                      symbol=symbol, hint=hint)


def test_severity_validated():
    with pytest.raises(ValueError):
        Diagnostic("X001", "fatal", "nope")


def test_fingerprint_is_line_independent():
    a = _diag(line=3)
    b = _diag(line=300)
    assert a.fingerprint == b.fingerprint == "PUR001::src/repro/a.py::fn"


def test_fingerprint_placeholders_for_missing_fields():
    diag = Diagnostic("DET001", ERROR, "m")
    assert diag.fingerprint == "DET001::<none>::<none>"


def test_render_text_summary_and_hints():
    report = render_text([
        _diag(hint="do the thing"),
        _diag(code="DET004", severity=WARNING, message="slow"),
    ])
    assert "1 error(s), 1 warning(s)" in report
    assert "hint: do the thing" in report
    assert "src/repro/a.py:3 (fn): error PUR001: boom" in report


def test_render_text_orders_errors_first_on_ties():
    report = render_text([
        _diag(code="ZZZ1", severity=WARNING, message="later"),
        _diag(code="AAA1", severity=ERROR, message="first"),
    ])
    assert report.index("AAA1") < report.index("ZZZ1")


def test_render_json_schema():
    payload = json.loads(render_json([_diag()]))
    assert payload["schema"] == "repro-lint/v1"
    assert payload["errors"] == 1 and payload["warnings"] == 0
    assert payload["diagnostics"][0]["code"] == "PUR001"
    assert payload["diagnostics"][0]["line"] == 3


def test_baseline_round_trip(tmp_path):
    path = str(tmp_path / "baseline.json")
    findings = [_diag(), _diag(line=9), _diag(code="DET001")]
    Baseline.from_diagnostics(findings).write(path)
    loaded = Baseline.load(path)
    new, suppressed = loaded.filter(findings)
    assert new == []
    assert len(suppressed) == 3


def test_baseline_budget_limits_repeat_findings():
    baseline = Baseline.from_diagnostics([_diag()])
    new, suppressed = baseline.filter([_diag(line=1), _diag(line=2)])
    assert len(suppressed) == 1
    assert len(new) == 1  # the extra occurrence surfaces


def test_baseline_survives_line_churn():
    baseline = Baseline.from_diagnostics([_diag(line=10)])
    new, suppressed = baseline.filter([_diag(line=999)])
    assert new == [] and len(suppressed) == 1


def test_baseline_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": "other/v0", "suppressions": {}}')
    with pytest.raises(ValueError):
        Baseline.load(str(path))


def test_missing_baseline_suppresses_nothing():
    new, suppressed = Baseline().filter([_diag()])
    assert len(new) == 1 and suppressed == []
