"""Tests for the determinism self-lint (DET codes)."""

from repro.analysis.determinism_lint import HOT_PATH_MODULES, lint_self, lint_source


def _codes(diagnostics):
    return {d.code for d in diagnostics}


def test_syntax_error_is_det000():
    diagnostics = lint_source("def broken(:\n", "bad.py")
    assert _codes(diagnostics) == {"DET000"}


def test_wallclock_module_attribute_call():
    source = "import time\n\ndef tick():\n    return time.perf_counter()\n"
    diagnostics = lint_source(source, "x.py")
    assert _codes(diagnostics) == {"DET001"}
    assert diagnostics[0].symbol == "tick"
    assert diagnostics[0].line == 4


def test_wallclock_bare_import_call():
    source = "from time import monotonic\n\ndef tick():\n    return monotonic()\n"
    assert _codes(lint_source(source, "x.py")) == {"DET001"}


def test_wallclock_aliased_module():
    source = "import time as clock\n\ndef tick():\n    return clock.time()\n"
    assert _codes(lint_source(source, "x.py")) == {"DET001"}


def test_datetime_now_flagged():
    source = "import datetime\n\ndef stamp():\n    return datetime.now()\n"
    assert _codes(lint_source(source, "x.py")) == {"DET001"}


def test_module_level_random_flagged():
    source = "import random\n\ndef draw():\n    return random.random()\n"
    assert _codes(lint_source(source, "x.py")) == {"DET002"}


def test_unseeded_random_constructor_flagged():
    source = "import random\n\ndef make():\n    return random.Random()\n"
    assert _codes(lint_source(source, "x.py")) == {"DET002"}


def test_seeded_random_constructor_clean():
    source = "import random\n\ndef make(seed):\n    return random.Random(seed)\n"
    assert lint_source(source, "x.py") == []


def test_bare_random_function_flagged():
    source = "from random import shuffle\n\ndef mix(xs):\n    shuffle(xs)\n"
    assert _codes(lint_source(source, "x.py")) == {"DET002"}


def test_set_literal_iteration_flagged():
    source = "def walk():\n    for x in {1, 2, 3}:\n        pass\n"
    assert _codes(lint_source(source, "x.py")) == {"DET003"}


def test_set_call_iteration_flagged():
    source = "def walk(xs):\n    return [x for x in set(xs)]\n"
    assert _codes(lint_source(source, "x.py")) == {"DET003"}


def test_sorted_set_iteration_clean():
    source = "def walk(xs):\n    return [x for x in sorted(set(xs))]\n"
    assert lint_source(source, "x.py") == []


def test_id_keyed_sort_flagged():
    source = "def order(xs):\n    return sorted(xs, key=id)\n"
    assert _codes(lint_source(source, "x.py")) == {"DET003"}


def test_hot_path_class_without_slots():
    source = (
        "class Tracker:\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
    )
    diagnostics = lint_source(source, "x.py", hot_path=True)
    assert _codes(diagnostics) == {"DET004"}
    assert diagnostics[0].severity == "warning"
    # The same class outside a hot-path module is fine.
    assert lint_source(source, "x.py", hot_path=False) == []


def test_hot_path_class_with_slots_clean():
    source = (
        "class Tracker:\n"
        "    __slots__ = ('count',)\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
    )
    assert lint_source(source, "x.py", hot_path=True) == []


def test_hot_path_exemptions():
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Record:\n"
        "    def __init__(self):\n"
        "        self.x = 0\n"
        "class MyError(Exception):\n"
        "    def __init__(self):\n"
        "        super().__init__('x')\n"
    )
    assert lint_source(source, "x.py", hot_path=True) == []


def test_lint_self_reports_package_relative_paths():
    diagnostics = lint_self()
    assert diagnostics, "bench/CLI wall clocks should be found"
    assert all(d.file.startswith("src/repro/") for d in diagnostics)


def test_lint_self_finds_no_unbaselined_errors_outside_harness():
    # Everything lint_self finds today is grandfathered in the shipped
    # baseline; this keeps the two in sync.
    from repro.analysis.diagnostics import Baseline
    from repro.analysis.runner import DEFAULT_BASELINE_PATH

    baseline = Baseline.load(DEFAULT_BASELINE_PATH)
    new, _suppressed = baseline.filter(lint_self())
    assert new == []


def test_hot_path_modules_exist():
    import os

    import repro

    package_root = os.path.dirname(repro.__file__)
    for module in HOT_PATH_MODULES:
        assert os.path.exists(os.path.join(package_root, module)), module


# -- DET005: environment reads -------------------------------------------------


def test_environ_subscript_flagged():
    source = "import os\n\ndef cfg():\n    return os.environ['MODE']\n"
    assert _codes(lint_source(source, "x.py")) == {"DET005"}


def test_getenv_call_flagged():
    source = "import os\n\ndef cfg():\n    return os.getenv('MODE')\n"
    assert _codes(lint_source(source, "x.py")) == {"DET005"}


def test_bare_environ_import_flagged():
    source = "from os import environ\n\ndef cfg():\n    return environ.get('MODE')\n"
    assert _codes(lint_source(source, "x.py")) == {"DET005"}


def test_bare_getenv_import_flagged():
    source = "from os import getenv\n\ndef cfg():\n    return getenv('MODE', '1')\n"
    assert _codes(lint_source(source, "x.py")) == {"DET005"}


def test_aliased_os_module_environ_flagged():
    source = "import os as host\n\ndef cfg():\n    return host.environ['MODE']\n"
    assert _codes(lint_source(source, "x.py")) == {"DET005"}


# -- DET006: wall-clock function objects smuggled as values --------------------


def test_wallclock_as_sort_key_flagged():
    source = (
        "import time\n\ndef newest(items):\n"
        "    return sorted(items, key=time.time)\n"
    )
    assert _codes(lint_source(source, "x.py")) == {"DET006"}


def test_bare_wallclock_as_value_flagged():
    source = (
        "from time import perf_counter\n\ndef hooks():\n"
        "    return {'clock': perf_counter}\n"
    )
    assert _codes(lint_source(source, "x.py")) == {"DET006"}


def test_wallclock_call_is_det001_not_det006():
    source = "import time\n\ndef tick():\n    return time.time()\n"
    assert _codes(lint_source(source, "x.py")) == {"DET001"}


def test_wallclock_default_argument_flagged():
    source = (
        "import time\n\ndef sample(clock=time.perf_counter):\n"
        "    return clock()\n"
    )
    assert _codes(lint_source(source, "x.py")) == {"DET006"}
