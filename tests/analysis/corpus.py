"""Shared fixture corpus of composition-language sources.

Used by both the DSL parse-error tests (tests/composition/test_dsl.py)
and the composition-linter tests (tests/analysis/test_composition_lint.py),
so the two suites agree on what "malformed" means.
"""

# A well-formed two-stage pipeline; the baseline for mutations below.
VALID_PIPELINE = """
composition pipeline {
    compute first uses first_fn in(x) out(y);
    compute second uses second_fn in(y) out(z);
    input x -> first.x;
    first.y -> second.y [all];
    output second.z -> result;
}
"""

# (name, source, substring expected in the DslError message)
MALFORMED = [
    (
        "missing_arrow_in_edge",
        """
        composition bad {
            compute a uses f in(x) out(y);
            input x -> a.x;
            a.y a.x;
            output a.y -> result;
        }
        """,
        "expected '->'",
    ),
    (
        "unknown_distribution_keyword",
        """
        composition bad {
            compute a uses f in(x) out(y);
            compute b uses g in(y) out(z);
            input x -> a.x;
            a.y -> b.y [sometimes];
            output b.z -> result;
        }
        """,
        "unknown distribution",
    ),
    (
        "duplicate_set_names",
        """
        composition bad {
            compute a uses f in(x, x) out(y);
            input x -> a.x;
            output a.y -> result;
        }
        """,
        "duplicate input set",
    ),
    (
        "missing_closing_brace",
        """
        composition bad {
            compute a uses f in(x) out(y);
            input x -> a.x;
            output a.y -> result;
        """,
        "missing closing '}'",
    ),
    (
        "missing_semicolon",
        """
        composition bad {
            compute a uses f in(x) out(y)
            input x -> a.x;
            output a.y -> result;
        }
        """,
        "expected ';'",
    ),
    (
        "unexpected_character",
        """
        composition bad {
            compute a uses f in(x) out(y);
            input x -> a.x!
            output a.y -> result;
        }
        """,
        "unexpected character",
    ),
    (
        "unknown_nested_composition",
        """
        composition bad {
            compose inner uses does_not_exist;
            input x -> inner.x;
            output inner.y -> result;
        }
        """,
        "unknown composition",
    ),
    (
        "edge_to_unknown_node",
        """
        composition bad {
            compute a uses f in(x) out(y);
            input x -> a.x;
            a.y -> ghost.y [all];
            output a.y -> result;
        }
        """,
        "unknown node",
    ),
    (
        "no_outputs",
        """
        composition bad {
            compute a uses f in(x) out(y);
            input x -> a.x;
        }
        """,
        "at least one output",
    ),
    (
        "empty_source",
        "   # only a comment\n",
        "empty composition source",
    ),
]

# Well-formed sources that the linter should flag (name, source, code).
LINTABLE = [
    (
        "unused_output_set",
        """
        composition wasteful {
            compute a uses f in(x) out(y, debug);
            input x -> a.x;
            output a.y -> result;
        }
        """,
        "CMP001",
    ),
    (
        "dead_end_vertex",
        """
        composition deadend {
            compute a uses f in(x) out(y);
            compute sink uses g in(y) out(z);
            input x -> a.x;
            a.y -> sink.y [all];
            output a.y -> result;
        }
        """,
        "CMP002",
    ),
    (
        "fanout_into_comm",
        """
        composition fanout {
            compute expand uses f in(x) out(requests);
            comm fetch protocol http;
            compute fold uses g in(pages) out(summary);
            input x -> expand.x;
            expand.requests -> fetch.request [each];
            fetch.response -> fold.pages [all];
            output fold.summary -> result;
        }
        """,
        "CMP003",
    ),
]
