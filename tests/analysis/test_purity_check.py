"""Tests for the static purity verifier (PUR codes, write summaries)."""

import os
import random
import socket

import pytest

from repro.analysis.purity_check import verify_purity
from repro.composition.registry import FunctionBinary
from repro.functions.interpreter import python_function_from_source
from repro.functions.sdk import read_items, write_item


# -- corpus: module-level so `_resolve` sees them in __globals__ ------------


def clean_fn(vfs):
    items = read_items(vfs, "numbers")
    total = sum(int(item.data) for item in items)
    write_item(vfs, "sums", "total", str(total).encode())


def writes_via_vfs_methods(vfs):
    vfs.write_bytes("/out/primary/result", b"x")
    vfs.write_text(f"/out/log/line-0", "done")


def imports_os_locally(vfs):
    import os as operating_system
    return operating_system


def reaches_os_system(vfs):
    os.system("true")


def calls_open(vfs):
    open("/etc/hostname")


def uses_eval(vfs):
    eval("1 + 1")


def mutates_global(vfs):
    global _COUNTER
    _COUNTER = 1


def generator_entry(vfs):
    yield b"chunk"


def reads_wall_clock(vfs):
    import time
    return time.time()


def _helper_that_violates(data):
    return socket.socket()


def delegates_to_helper(vfs):
    return _helper_that_violates(vfs)


def vfs_escapes(vfs):
    consumer = print
    consumer(vfs)
    write_item(vfs, "out_set", "item", b"")


def seeded_rng_fn(vfs):
    rng = random.Random(7)
    return rng.random()


# -- diagnostics ------------------------------------------------------------


def _codes(report):
    return {d.code for d in report.diagnostics}


def test_clean_function_passes():
    report = verify_purity(clean_fn)
    assert report.ok
    assert report.diagnostics == []


def test_local_import_of_blocked_module():
    report = verify_purity(imports_os_locally)
    assert not report.ok
    assert "PUR001" in _codes(report)


def test_attribute_reach_into_blocked_module():
    report = verify_purity(reaches_os_system)
    assert not report.ok
    assert "PUR002" in _codes(report)


def test_builtin_open_call():
    report = verify_purity(calls_open)
    assert "PUR003" in _codes(report)


def test_dynamic_execution():
    report = verify_purity(uses_eval)
    assert "PUR004" in _codes(report)


def test_global_mutation():
    report = verify_purity(mutates_global)
    assert "PUR005" in _codes(report)


def test_generator_entry_point():
    report = verify_purity(generator_entry)
    assert "PUR006" in _codes(report)


def test_nondeterminism_is_warning_not_error():
    report = verify_purity(reads_wall_clock)
    assert report.ok  # warnings only
    assert "PUR010" in _codes(report)


def test_seeded_rng_is_allowed():
    report = verify_purity(seeded_rng_fn)
    # random.Random is the sanctioned construction: no nondeterminism
    # warning for it (rng.random() is a local-name method call).
    assert "PUR010" not in _codes(report)
    assert report.ok


def test_transitive_helper_is_followed():
    report = verify_purity(delegates_to_helper)
    assert not report.ok
    assert "PUR002" in _codes(report)
    # The finding names the call chain.
    assert any("->" in (d.symbol or "") for d in report.diagnostics)


def test_no_source_falls_back_gracefully():
    report = verify_purity(len)  # C builtin: no source, no __code__
    assert "PUR090" in _codes(report)
    assert not report.analyzed


def test_function_binary_target():
    binary = FunctionBinary(name="sys_caller", entry_point=reaches_os_system)
    report = verify_purity(binary)
    assert report.name == "sys_caller"
    assert not report.ok


def test_sourced_function_is_statically_analyzable():
    source = "def fn(vfs):\n    import os\n    os.system('true')\n"
    binary = python_function_from_source("src_fn", source, entry_point="fn")
    report = verify_purity(binary)
    assert not report.ok
    assert "PUR001" in _codes(report)


# -- write summaries --------------------------------------------------------


def test_write_summary_from_sdk_writer():
    report = verify_purity(clean_fn)
    assert report.written_sets == frozenset({"sums"})


def test_write_summary_from_vfs_methods():
    report = verify_purity(writes_via_vfs_methods)
    assert report.written_sets == frozenset({"primary", "log"})


def test_write_summary_invalidated_when_vfs_escapes():
    report = verify_purity(vfs_escapes)
    assert report.written_sets is None
