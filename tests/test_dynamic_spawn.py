"""Dynamic composition spawning over the worker's own HTTP interface.

§4.1: "compositions can include nested compositions, or spawn new
compositions dynamically through Dandelion's HTTP interface, e.g., to
support dynamic control flow."  The worker frontend is registered as a
service on its own simulated network, and a composition's communication
function POSTs to ``/v1/invoke/<name>`` to run another composition.
"""

import json

import pytest

from repro.functions import (
    compute_function,
    format_http_request,
    parse_http_response_item,
    read_items,
    write_item,
)
from repro.worker import WorkerConfig, WorkerNode

INNER = """
composition inner_double {
    compute d uses doubler in(value) out(result);
    input value -> d.value;
    output d.result -> result;
}
"""

OUTER = """
composition outer_spawner {
    compute prep uses spawn_request in(value) out(request);
    comm call;
    compute post uses unwrap_response in(response) out(final);
    input value -> prep.value;
    prep.request -> call.request [all];
    call.response -> post.response [all];
    output post.final -> final;
}
"""


@compute_function(compute_cost=1e-4)
def doubler(vfs):
    value = int(vfs.read_text("/in/value/value"))
    vfs.write_text("/out/result/value", str(value * 2))


@compute_function(compute_cost=1e-4)
def spawn_request(vfs):
    # Dynamic control flow: decide at runtime which composition to
    # spawn, then call the worker's own HTTP interface.
    value = vfs.read_text("/in/value/value")
    body = json.dumps({"value": value}).encode()
    write_item(
        vfs, "request", "r",
        format_http_request(
            "POST", "http://dandelion.internal/v1/invoke/inner_double", body=body
        ),
    )


@compute_function(compute_cost=1e-4)
def unwrap_response(vfs):
    envelope = parse_http_response_item(read_items(vfs, "response")[0].data)
    if envelope["status"] != 200:
        raise RuntimeError(f"nested invocation failed: {envelope}")
    outputs = json.loads(envelope["body"])
    doubled = bytes.fromhex(outputs["result"]["value"])
    write_item(vfs, "final", "value", doubled)


def make_worker():
    worker = WorkerNode(WorkerConfig(total_cores=6, control_plane_enabled=False))
    # The worker's own frontend becomes a network-reachable service.
    worker.network.register(worker.frontend)
    for binary in (doubler, spawn_request, unwrap_response):
        worker.frontend.register_function(binary)
    worker.frontend.register_composition(INNER)
    worker.frontend.register_composition(OUTER)
    return worker


def test_composition_spawns_composition_over_http():
    worker = make_worker()
    result = worker.invoke_and_run("outer_spawner", {"value": b"21"})
    assert result.ok
    assert result.output("final").item("value").data == b"42"
    # Two invocations completed: the outer one and the spawned inner one.
    assert worker.dispatcher.invocations_completed == 2


def test_spawned_invocation_failure_propagates():
    worker = make_worker()
    # "oops" is not an int: the inner doubler fails, the outer unwrap
    # sees a 500 and fails the outer invocation.
    result = worker.invoke_and_run("outer_spawner", {"value": b"oops"})
    assert not result.ok
    assert "nested invocation failed" in str(result.error)


def test_spawn_unknown_composition_is_404():
    worker = make_worker()

    @compute_function(compute_cost=1e-5)
    def bad_spawn(vfs):
        write_item(
            vfs, "request", "r",
            format_http_request("POST", "http://dandelion.internal/v1/invoke/ghost"),
        )

    @compute_function(compute_cost=1e-5)
    def expect_404(vfs):
        envelope = parse_http_response_item(read_items(vfs, "response")[0].data)
        write_item(vfs, "final", "status", str(envelope["status"]).encode())

    worker.frontend.register_function(bad_spawn)
    worker.frontend.register_function(expect_404)
    worker.frontend.register_composition("""
        composition ghost_spawner {
            compute prep uses bad_spawn in(seed) out(request);
            comm call;
            compute post uses expect_404 in(response) out(final);
            input seed -> prep.seed;
            prep.request -> call.request [all];
            call.response -> post.response [all];
            output post.final -> final;
        }
    """)
    result = worker.invoke_and_run("ghost_spawner", {"seed": b""})
    assert result.ok
    assert result.output("final").item("status").data == b"404"


def test_spawn_latency_includes_nested_work():
    worker = make_worker()
    result = worker.invoke_and_run("outer_spawner", {"value": b"5"})
    # Outer pipeline + network round trip + full inner invocation.
    assert result.latency > 3e-4
