"""Unit tests for the composition-language parser."""

import pytest

from repro.composition import (
    Composition,
    Distribution,
    DslError,
    parse_composition,
)

LOGPROC = """
# Distributed log processing (Fig 3).
composition logproc {
    compute access uses access_fn in(token) out(request);
    comm auth protocol http;
    compute fanout uses fanout_fn in(endpoints) out(requests);
    comm fetch protocol http;
    compute render uses render_fn in(pages) out(html);

    input token -> access.token;
    access.request -> auth.request [all];
    auth.response -> fanout.endpoints [all];
    fanout.requests -> fetch.request [each];
    fetch.response -> render.pages [all];
    output render.html -> result;
}
"""


def test_parse_logproc_shape():
    composition = parse_composition(LOGPROC)
    assert composition.name == "logproc"
    assert set(composition.nodes) == {"access", "auth", "fanout", "fetch", "render"}
    assert len(composition.edges) == 4
    assert [b.external for b in composition.inputs] == ["token"]
    assert [b.external for b in composition.outputs] == ["result"]


def test_parse_distribution_keywords():
    composition = parse_composition(LOGPROC)
    edge_by_target = {e.target: e for e in composition.edges}
    assert edge_by_target["fetch"].distribution is Distribution.EACH
    assert edge_by_target["auth"].distribution is Distribution.ALL


def test_default_distribution_is_all():
    source = """
    composition c {
        compute a uses f in(x) out(y);
        compute b uses g in(y) out(z);
        input x -> a.x;
        a.y -> b.y;
        output b.z -> z;
    }
    """
    composition = parse_composition(source)
    assert composition.edges[0].distribution is Distribution.ALL


def test_comm_default_protocol_http():
    source = """
    composition c {
        compute a uses f in(x) out(request);
        comm h;
        input x -> a.x;
        a.request -> h.request;
        output h.response -> r;
    }
    """
    composition = parse_composition(source)
    assert composition.nodes["h"].protocol == "http"


def test_multiple_io_sets():
    source = """
    composition c {
        compute join uses join_fn in(left, right) out(merged, stats);
        input l -> join.left;
        input r -> join.right;
        output join.merged -> merged;
        output join.stats -> stats;
    }
    """
    composition = parse_composition(source)
    node = composition.nodes["join"]
    assert node.input_sets == ("left", "right")
    assert node.output_sets == ("merged", "stats")


def test_comments_ignored():
    source = """
    # leading comment
    composition c { # trailing
        compute a uses f in(x) out(y); # another
        input x -> a.x;
        output a.y -> y;
    }
    """
    assert parse_composition(source).name == "c"


def test_nested_composition_via_library():
    inner = parse_composition(
        """
        composition inner {
            compute a uses f in(x) out(y);
            input x -> a.x;
            output a.y -> y;
        }
        """
    )
    outer = parse_composition(
        """
        composition outer {
            compute pre uses p in(raw) out(x);
            compose sub uses inner;
            input raw -> pre.raw;
            pre.x -> sub.x;
            output sub.y -> y;
        }
        """,
        library={"inner": inner},
    )
    assert outer.nodes["sub"].composition is inner


def test_unknown_nested_composition_rejected():
    with pytest.raises(DslError, match="unknown composition"):
        parse_composition(
            """
            composition outer {
                compose sub uses ghost;
                output sub.y -> y;
            }
            """
        )


def test_empty_source_rejected():
    with pytest.raises(DslError, match="empty"):
        parse_composition("   \n  ")


def test_missing_semicolon_reports_line():
    source = """composition c {
    compute a uses f in(x) out(y)
    input x -> a.x;
    output a.y -> y;
}"""
    with pytest.raises(DslError) as exc_info:
        parse_composition(source)
    assert "line 3" in str(exc_info.value)


def test_missing_closing_brace():
    with pytest.raises(DslError, match="unexpected end|missing closing"):
        parse_composition("composition c { compute a uses f in(x) out(y);")


def test_bad_distribution_keyword():
    source = """
    composition c {
        compute a uses f in(x) out(y);
        compute b uses g in(y) out(z);
        input x -> a.x;
        a.y -> b.y [sideways];
        output b.z -> z;
    }
    """
    with pytest.raises(DslError, match="unknown distribution"):
        parse_composition(source)


def test_unexpected_character():
    with pytest.raises(DslError, match="unexpected character"):
        parse_composition("composition c { compute a uses f in(x) out(y); @ }")


def test_semantic_error_surfaces_as_dsl_error():
    # Cycle: a -> b -> a
    source = """
    composition c {
        compute a uses f in(x) out(y);
        compute b uses g in(y) out(x);
        a.y -> b.y;
        b.x -> a.x;
        output b.x -> r;
    }
    """
    with pytest.raises(DslError, match="cycle"):
        parse_composition(source)


def test_trailing_tokens_rejected():
    source = """
    composition c {
        compute a uses f in(x) out(y);
        input x -> a.x;
        output a.y -> y;
    }
    leftover
    """
    with pytest.raises(DslError, match="trailing"):
        parse_composition(source)


def test_parse_result_is_validated_composition():
    composition = parse_composition(LOGPROC)
    assert isinstance(composition, Composition)
    # Topological order respects the pipeline direction.
    order = composition.topological_order
    assert order.index("access") < order.index("auth") < order.index("fanout")
    assert order.index("fetch") < order.index("render")


# -- parse-error corpus (shared with tests/analysis/test_composition_lint) --


def test_malformed_corpus_rejected_with_messages():
    from repro.composition import CompositionError
    from tests.analysis.corpus import MALFORMED

    for name, source, expected in MALFORMED:
        with pytest.raises(CompositionError, match=expected):
            parse_composition(source)


def test_malformed_corpus_errors_carry_line_numbers():
    from tests.analysis.corpus import MALFORMED

    for name, source, _expected in MALFORMED:
        try:
            parse_composition(source)
        except DslError as exc:
            assert exc.line >= 1, name
        except Exception:
            pass  # node-level CompositionErrors have no line info


def test_valid_corpus_pipeline_parses():
    from tests.analysis.corpus import VALID_PIPELINE

    composition = parse_composition(VALID_PIPELINE)
    assert composition.name == "pipeline"
    assert composition.topological_order == ["first", "second"]
