"""Round-trip tests for the composition-language printer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.composition import (
    CommunicationNode,
    Composition,
    CompositionNode,
    ComputeNode,
    Distribution,
    Edge,
    InputBinding,
    OutputBinding,
    composition_to_dsl,
    parse_composition,
)


def roundtrip(composition, library=None):
    return parse_composition(composition_to_dsl(composition), library=library or {})


def test_simple_roundtrip():
    original = parse_composition("""
        composition simple {
            compute a uses f in(x) out(y);
            input x -> a.x;
            output a.y -> y;
        }
    """)
    restored = roundtrip(original)
    assert restored.name == original.name
    assert set(restored.nodes) == set(original.nodes)
    assert restored.edges == original.edges
    assert restored.inputs == original.inputs
    assert restored.outputs == original.outputs


def test_roundtrip_with_comm_and_distributions():
    original = parse_composition("""
        composition full {
            compute gen uses g in(seed) out(requests);
            comm http protocol http;
            compute agg uses a in(pages) out(html);
            input seed -> gen.seed;
            gen.requests -> http.request [each];
            http.response -> agg.pages [all];
            output agg.html -> report;
        }
    """)
    restored = roundtrip(original)
    edge_by_target = {e.target: e for e in restored.edges}
    assert edge_by_target["http"].distribution is Distribution.EACH
    assert restored.nodes["http"].protocol == "http"


def test_roundtrip_nested_composition():
    inner = parse_composition("""
        composition inner {
            compute a uses f in(x) out(y);
            input x -> a.x;
            output a.y -> y;
        }
    """)
    outer = Composition(
        "outer",
        [ComputeNode("pre", "p", ("raw",), ("x",)), CompositionNode("sub", inner)],
        [Edge("pre", "x", "sub", "x")],
        [InputBinding("raw", "pre", "raw")],
        [OutputBinding("y", "sub", "y")],
    )
    source = composition_to_dsl(outer)
    assert "compose sub uses inner;" in source
    restored = parse_composition(source, library={"inner": inner})
    assert restored.nodes["sub"].composition is inner


def test_printed_source_is_readable():
    original = parse_composition("""
        composition pretty {
            compute a uses f in(x) out(y);
            input x -> a.x;
            output a.y -> out;
        }
    """)
    source = composition_to_dsl(original)
    assert source.startswith("composition pretty {")
    assert source.endswith("}")
    assert "    compute a uses f in(x) out(y);" in source


_names = st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"])


@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 4),
    st.lists(st.sampled_from(list(Distribution)), min_size=0, max_size=3),
)
def test_property_linear_chain_roundtrip(length, distributions):
    # Build a linear chain of `length` compute nodes with random edge
    # distributions; print + parse must preserve the whole structure.
    nodes = [
        ComputeNode(f"n{i}", f"fn{i}", (f"in{i}",), (f"out{i}",))
        for i in range(length)
    ]
    edges = []
    for i in range(length - 1):
        dist = distributions[i % len(distributions)] if distributions else Distribution.ALL
        edges.append(Edge(f"n{i}", f"out{i}", f"n{i+1}", f"in{i+1}", dist))
    composition = Composition(
        "chain",
        nodes,
        edges,
        [InputBinding("start", "n0", "in0")],
        [OutputBinding("end", f"n{length-1}", f"out{length-1}")],
    )
    restored = roundtrip(composition)
    assert restored.topological_order == composition.topological_order
    assert restored.edges == composition.edges


def test_roundtrip_kv_protocol_comm_node():
    original = parse_composition("""
        composition cached {
            compute g uses gen in(seed) out(request);
            comm cache protocol kv;
            input seed -> g.seed;
            g.request -> cache.request;
            output cache.response -> result;
        }
    """)
    restored = roundtrip(original)
    assert restored.nodes["cache"].protocol == "kv"
