"""Unit tests for the function/composition registry."""

import pytest

from repro.composition import (
    ComputeNode,
    Composition,
    FunctionBinary,
    InputBinding,
    OutputBinding,
    Registry,
    RegistryError,
)


def noop(vfs):
    return None


def single_node_composition(name="c", function="f"):
    node = ComputeNode("n", function, ("x",), ("y",))
    return Composition(
        name, [node], [], [InputBinding("x", "n", "x")], [OutputBinding("y", "n", "y")]
    )


def test_register_and_lookup_function():
    registry = Registry()
    binary = FunctionBinary("f", noop)
    registry.register_function(binary)
    assert registry.function("f") is binary
    assert registry.has_function("f")
    assert registry.function_names == ["f"]


def test_duplicate_function_rejected():
    registry = Registry()
    registry.register_function(FunctionBinary("f", noop))
    with pytest.raises(RegistryError, match="already registered"):
        registry.register_function(FunctionBinary("f", noop))


def test_unknown_function_lookup_rejected():
    with pytest.raises(RegistryError, match="unknown function"):
        Registry().function("ghost")


def test_function_binary_validation():
    with pytest.raises(RegistryError):
        FunctionBinary("", noop)
    with pytest.raises(RegistryError):
        FunctionBinary("f", "not callable")
    with pytest.raises(RegistryError):
        FunctionBinary("f", noop, memory_limit=0)
    with pytest.raises(RegistryError):
        FunctionBinary("f", noop, binary_size=0)


def test_modelled_compute_seconds_constant():
    binary = FunctionBinary("f", noop, compute_cost=0.005)
    assert binary.modelled_compute_seconds(123) == 0.005


def test_modelled_compute_seconds_callable_of_input_size():
    binary = FunctionBinary("f", noop, compute_cost=lambda n: n * 1e-9)
    assert binary.modelled_compute_seconds(1000) == pytest.approx(1e-6)


def test_modelled_compute_seconds_absent():
    assert FunctionBinary("f", noop).modelled_compute_seconds(10) is None


def test_register_composition_requires_functions():
    registry = Registry()
    with pytest.raises(RegistryError, match="unregistered"):
        registry.register_composition(single_node_composition())


def test_register_composition_success():
    registry = Registry()
    registry.register_function(FunctionBinary("f", noop))
    composition = single_node_composition()
    registry.register_composition(composition)
    assert registry.composition("c") is composition
    assert registry.has_composition("c")
    assert registry.composition_names == ["c"]
    assert registry.compositions == {"c": composition}


def test_duplicate_composition_rejected():
    registry = Registry()
    registry.register_function(FunctionBinary("f", noop))
    registry.register_composition(single_node_composition())
    with pytest.raises(RegistryError, match="already registered"):
        registry.register_composition(single_node_composition())


def test_unknown_composition_lookup_rejected():
    with pytest.raises(RegistryError, match="unknown composition"):
        Registry().composition("ghost")
