"""Unit tests for the composition graph model and validation."""

import pytest

from repro.composition import (
    CommunicationNode,
    Composition,
    CompositionError,
    CompositionNode,
    ComputeNode,
    Distribution,
    Edge,
    InputBinding,
    OutputBinding,
)


def linear_pipeline():
    """in -> a -> b -> out"""
    a = ComputeNode("a", "fn_a", ("x",), ("y",))
    b = ComputeNode("b", "fn_b", ("y",), ("z",))
    return Composition(
        "pipe",
        [a, b],
        [Edge("a", "y", "b", "y")],
        [InputBinding("x", "a", "x")],
        [OutputBinding("z", "b", "z")],
    )


def test_compute_node_rejects_duplicate_sets():
    with pytest.raises(CompositionError):
        ComputeNode("n", "f", ("a", "a"), ("b",))
    with pytest.raises(CompositionError):
        ComputeNode("n", "f", ("a",), ("b", "b"))


def test_compute_node_rejects_empty_name():
    with pytest.raises(CompositionError):
        ComputeNode("", "f", ("a",), ("b",))


def test_communication_node_fixed_interface():
    node = CommunicationNode("http1")
    assert node.input_sets == ("request",)
    assert node.output_sets == ("response",)
    assert node.protocol == "http"


def test_distribution_parse():
    assert Distribution.parse("ALL") is Distribution.ALL
    assert Distribution.parse("each") is Distribution.EACH
    assert Distribution.parse("key") is Distribution.KEY
    with pytest.raises(CompositionError):
        Distribution.parse("bogus")


def test_valid_linear_pipeline():
    composition = linear_pipeline()
    assert composition.topological_order == ["a", "b"]
    assert composition.required_functions() == {"fn_a", "fn_b"}


def test_duplicate_node_names_rejected():
    a1 = ComputeNode("a", "f", ("x",), ("y",))
    a2 = ComputeNode("a", "g", ("x",), ("y",))
    with pytest.raises(CompositionError):
        Composition("c", [a1, a2], [], [InputBinding("x", "a", "x")], [OutputBinding("y", "a", "y")])


def test_edge_unknown_node_rejected():
    a = ComputeNode("a", "f", ("x",), ("y",))
    with pytest.raises(CompositionError, match="unknown node"):
        Composition(
            "c", [a], [Edge("a", "y", "ghost", "x")],
            [InputBinding("x", "a", "x")], [OutputBinding("y", "a", "y")],
        )


def test_edge_unknown_set_rejected():
    a = ComputeNode("a", "f", ("x",), ("y",))
    b = ComputeNode("b", "g", ("p",), ("q",))
    with pytest.raises(CompositionError, match="no output set"):
        Composition(
            "c", [a, b], [Edge("a", "nope", "b", "p")],
            [InputBinding("x", "a", "x")], [OutputBinding("q", "b", "q")],
        )
    with pytest.raises(CompositionError, match="no input set"):
        Composition(
            "c", [a, b], [Edge("a", "y", "b", "nope")],
            [InputBinding("x", "a", "x")], [OutputBinding("q", "b", "q")],
        )


def test_unfed_input_set_rejected():
    a = ComputeNode("a", "f", ("x", "extra"), ("y",))
    with pytest.raises(CompositionError, match="no producer"):
        Composition(
            "c", [a], [], [InputBinding("x", "a", "x")], [OutputBinding("y", "a", "y")]
        )


def test_doubly_fed_input_set_rejected():
    a = ComputeNode("a", "f", ("x",), ("y",))
    b = ComputeNode("b", "g", ("x",), ("y",))
    c = ComputeNode("c", "h", ("x",), ("y",))
    with pytest.raises(CompositionError, match="2 producers"):
        Composition(
            "c",
            [a, b, c],
            [Edge("a", "y", "c", "x"), Edge("b", "y", "c", "x")],
            [InputBinding("x1", "a", "x"), InputBinding("x2", "b", "x")],
            [OutputBinding("y", "c", "y")],
        )


def test_cycle_rejected():
    a = ComputeNode("a", "f", ("x",), ("y",))
    b = ComputeNode("b", "g", ("y",), ("x",))
    with pytest.raises(CompositionError, match="cycle"):
        Composition(
            "c",
            [a, b],
            [Edge("a", "y", "b", "y"), Edge("b", "x", "a", "x")],
            [],
            [OutputBinding("x", "b", "x")],
        )


def test_missing_output_binding_rejected():
    a = ComputeNode("a", "f", ("x",), ("y",))
    with pytest.raises(CompositionError, match="at least one output"):
        Composition("c", [a], [], [InputBinding("x", "a", "x")], [])


def test_duplicate_external_input_rejected():
    a = ComputeNode("a", "f", ("x", "w"), ("y",))
    with pytest.raises(CompositionError, match="duplicate input"):
        Composition(
            "c", [a], [],
            [InputBinding("same", "a", "x"), InputBinding("same", "a", "w")],
            [OutputBinding("y", "a", "y")],
        )


def test_input_binding_unknown_set_rejected():
    a = ComputeNode("a", "f", ("x",), ("y",))
    with pytest.raises(CompositionError, match="input binding"):
        Composition(
            "c", [a], [], [InputBinding("x", "a", "ghost")], [OutputBinding("y", "a", "y")]
        )


def test_output_binding_unknown_set_rejected():
    a = ComputeNode("a", "f", ("x",), ("y",))
    with pytest.raises(CompositionError, match="output binding"):
        Composition(
            "c", [a], [], [InputBinding("x", "a", "x")], [OutputBinding("z", "a", "ghost")]
        )


def test_diamond_topology_and_queries():
    source = ComputeNode("source", "f", ("x",), ("y",))
    left = ComputeNode("left", "g", ("y",), ("l",))
    right = ComputeNode("right", "h", ("y",), ("r",))
    sink = ComputeNode("sink", "k", ("l", "r"), ("z",))
    composition = Composition(
        "diamond",
        [source, left, right, sink],
        [
            Edge("source", "y", "left", "y", Distribution.EACH),
            Edge("source", "y", "right", "y"),
            Edge("left", "l", "sink", "l"),
            Edge("right", "r", "sink", "r"),
        ],
        [InputBinding("x", "source", "x")],
        [OutputBinding("z", "sink", "z")],
    )
    order = composition.topological_order
    assert order[0] == "source"
    assert order[-1] == "sink"
    assert {e.target for e in composition.outgoing_edges("source")} == {"left", "right"}
    assert {e.source for e in composition.incoming_edges("sink")} == {"left", "right"}
    consumers = composition.consumers_of("source", "y")
    assert len(consumers) == 2
    assert consumers[0].distribution is Distribution.EACH


def test_nested_composition_node_interface():
    inner = linear_pipeline()
    node = CompositionNode("sub", inner)
    assert node.input_sets == ("x",)
    assert node.output_sets == ("z",)
    assert node.kind == "composition"


def test_nested_composition_required_functions_recursive():
    inner = linear_pipeline()
    outer_node = CompositionNode("sub", inner)
    pre = ComputeNode("pre", "fn_pre", ("raw",), ("x",))
    outer = Composition(
        "outer",
        [pre, outer_node],
        [Edge("pre", "x", "sub", "x")],
        [InputBinding("raw", "pre", "raw")],
        [OutputBinding("z", "sub", "z")],
    )
    assert outer.required_functions() == {"fn_pre", "fn_a", "fn_b"}


def test_comm_node_in_composition():
    prepare = ComputeNode("prepare", "prep", ("input",), ("request",))
    http = CommunicationNode("http")
    composition = Composition(
        "fetch",
        [prepare, http],
        [Edge("prepare", "request", "http", "request")],
        [InputBinding("input", "prepare", "input")],
        [OutputBinding("response", "http", "response")],
    )
    assert composition.communication_nodes() == [http]
    assert composition.compute_nodes() == [prepare]
