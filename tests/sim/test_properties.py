"""Property-based tests for the simulation kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, ProcessorSharingCpu, Resource, Store

# Small random workloads: (arrival_delay, service_time) pairs.
_jobs = st.lists(
    st.tuples(
        st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False),
        st.floats(0.001, 1.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=60, deadline=None)
@given(_jobs, st.integers(1, 4))
def test_property_resource_capacity_never_exceeded(jobs, capacity):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    max_seen = {"value": 0}
    completed = {"count": 0}

    def worker(delay, service):
        yield env.timeout(delay)
        request = resource.request()
        yield request
        max_seen["value"] = max(max_seen["value"], resource.count)
        yield env.timeout(service)
        resource.release(request)
        completed["count"] += 1

    for delay, service in jobs:
        env.process(worker(delay, service))
    env.run()
    assert max_seen["value"] <= capacity
    assert completed["count"] == len(jobs)
    assert resource.count == 0
    assert resource.queue_length == 0


@settings(max_examples=60, deadline=None)
@given(_jobs, st.integers(1, 4))
def test_property_ps_cpu_conserves_work(jobs, cores):
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores)
    finished = {"count": 0}

    def worker(delay, service):
        yield env.timeout(delay)
        yield cpu.consume(service)
        finished["count"] += 1

    for delay, service in jobs:
        env.process(worker(delay, service))
    env.run()
    total_work = sum(service for _delay, service in jobs)
    assert finished["count"] == len(jobs)
    assert abs(cpu.busy_core_seconds - total_work) < 1e-6 * max(1, len(jobs))
    assert cpu.active_jobs == 0
    # Makespan lower bounds: no job finishes before its own service
    # time, and the machine cannot do more than `cores` of work/second.
    last_arrival = max(delay for delay, _s in jobs)
    epsilon = 1e-9 * max(1.0, env.now)
    assert env.now >= max(service for _d, service in jobs) - epsilon
    assert env.now >= total_work / cores - epsilon
    assert env.now <= last_arrival + total_work + epsilon


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 1000), min_size=0, max_size=30),
    st.integers(1, 5),
)
def test_property_store_fifo_conservation(items, consumers):
    env = Environment()
    store = Store(env)
    received: list[int] = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer(count):
        for _ in range(count):
            value = yield store.get()
            received.append(value)

    # Split consumption across several consumers.
    base, remainder = divmod(len(items), consumers)
    env.process(producer())
    for index in range(consumers):
        count = base + (1 if index < remainder else 0)
        env.process(consumer(count))
    env.run()
    # Every item delivered exactly once; with a single consumer order
    # is strictly FIFO.
    assert sorted(received) == sorted(items)
    if consumers == 1:
        assert received == items
    assert len(store) == 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.0, 5.0, allow_nan=False), min_size=1, max_size=20))
def test_property_virtual_time_is_monotonic(delays):
    env = Environment()
    observed: list[float] = []

    def ticker(delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(ticker(delay))
    env.run()
    assert observed == sorted(observed)
    assert env.now == max(delays)
