"""Unit tests for metrics (percentiles, time series, counters)."""

import pytest

from repro.sim import Counter, LatencyRecorder, TimeSeries, percentile, relative_variance


def test_percentile_single_sample():
    assert percentile([5.0], 99) == 5.0


def test_percentile_extremes():
    samples = [1.0, 2.0, 3.0, 4.0]
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 100) == 4.0


def test_percentile_interpolates():
    samples = [0.0, 10.0]
    assert percentile(samples, 50) == 5.0
    assert percentile(samples, 25) == 2.5


def test_percentile_empty_is_nan():
    # No samples means no order statistics — NaN, not a crash, so an
    # experiment arm with zero completions can still render its table.
    result = percentile([], 50)
    assert result != result


def test_percentile_out_of_range_rejected():
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    # The q-range check still applies with no samples.
    with pytest.raises(ValueError):
        percentile([], 101)


def test_relative_variance_constant_is_zero():
    assert relative_variance([3.0, 3.0, 3.0]) == 0.0


def test_relative_variance_matches_manual():
    # mean 2, variance ((1)^2+(1)^2)/2 = 1, relvar = 1/4 = 25%
    assert relative_variance([1.0, 3.0]) == pytest.approx(25.0)


def test_latency_recorder_summary():
    recorder = LatencyRecorder("test")
    recorder.extend([1.0, 2.0, 3.0, 4.0, 5.0])
    assert recorder.count == 5
    assert recorder.mean == 3.0
    assert recorder.median == 3.0
    assert recorder.minimum == 1.0
    assert recorder.maximum == 5.0
    summary = recorder.summary()
    assert summary["count"] == 5
    assert summary["p50"] == 3.0


def test_latency_recorder_rejects_negative():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(-0.1)


def test_latency_recorder_empty_stats_are_nan():
    recorder = LatencyRecorder()
    assert recorder.mean != recorder.mean
    assert recorder.minimum != recorder.minimum
    assert recorder.maximum != recorder.maximum
    assert recorder.percentile(99) != recorder.percentile(99)
    summary = recorder.summary()
    assert summary["count"] == 0
    # Same keys as a populated summary, every statistic NaN.
    assert set(summary) == {"name", "count", "mean", "min", "p50", "p95", "p99", "max"}
    for key in ("mean", "min", "p50", "p95", "p99", "max"):
        assert summary[key] != summary[key]


def test_latency_recorder_keeps_sorted_under_unordered_input():
    recorder = LatencyRecorder()
    recorder.extend([5.0, 1.0, 3.0])
    assert recorder.minimum == 1.0
    assert recorder.maximum == 5.0
    assert recorder.median == 3.0


def test_timeseries_value_at():
    series = TimeSeries()
    series.record(0, 10)
    series.record(5, 20)
    assert series.value_at(0) == 10
    assert series.value_at(4.9) == 10
    assert series.value_at(5) == 20
    assert series.value_at(100) == 20


def test_timeseries_value_before_first_rejected():
    series = TimeSeries()
    series.record(5, 1)
    with pytest.raises(ValueError):
        series.value_at(4)


def test_timeseries_non_monotonic_rejected():
    series = TimeSeries()
    series.record(5, 1)
    with pytest.raises(ValueError):
        series.record(4, 2)


def test_timeseries_time_weighted_mean():
    series = TimeSeries()
    series.record(0, 0)
    series.record(10, 100)
    # signal is 0 over [0,10) and 100 over [10,20]: mean over [0,20] = 50
    assert series.time_weighted_mean(0, 20) == pytest.approx(50.0)


def test_timeseries_time_weighted_mean_partial_window():
    series = TimeSeries()
    series.record(0, 4)
    series.record(2, 8)
    # over [1,3]: one second at 4, one second at 8 -> 6
    assert series.time_weighted_mean(1, 3) == pytest.approx(6.0)


def test_timeseries_mean_zero_width_window():
    series = TimeSeries()
    series.record(0, 7)
    assert series.time_weighted_mean(0, 0) == 7


def test_timeseries_maximum():
    series = TimeSeries()
    series.record(0, 1)
    series.record(1, 9)
    series.record(2, 3)
    assert series.maximum() == 9


def test_timeseries_resample_grid():
    series = TimeSeries()
    series.record(0, 1)
    series.record(1, 2)
    points = series.resample(step=0.5, start=0, end=1)
    assert points == [(0, 1), (0.5, 1), (1.0, 2)]


def test_timeseries_resample_start_before_first_sample():
    # Grid points before the first recording clamp to its value
    # instead of raising "time precedes first recording".
    series = TimeSeries()
    series.record(1.0, 5)
    series.record(2.0, 7)
    points = series.resample(step=1.0, start=0.0, end=2.0)
    assert points == [(0.0, 5), (1.0, 5), (2.0, 7)]


def test_timeseries_resample_step_past_end():
    # The grid may extend beyond the last recording; trailing points
    # hold the final value.
    series = TimeSeries()
    series.record(0.0, 3)
    series.record(1.0, 9)
    points = series.resample(step=2.0, start=0.0, end=4.0)
    assert points == [(0.0, 3), (2.0, 9), (4.0, 9)]


def test_timeseries_resample_window_outside_recordings():
    series = TimeSeries()
    series.record(5.0, 42)
    assert series.resample(step=1.0, start=0.0, end=2.0) == [
        (0.0, 42),
        (1.0, 42),
        (2.0, 42),
    ]
    assert series.resample(step=1.0, start=8.0, end=9.0) == [(8.0, 42), (9.0, 42)]


def test_timeseries_resample_rejects_bad_step():
    series = TimeSeries()
    series.record(0.0, 1)
    with pytest.raises(ValueError):
        series.resample(step=0.0)
    with pytest.raises(ValueError):
        TimeSeries().resample(step=1.0)


def test_counter_basics():
    counter = Counter()
    counter.increment("cold_starts")
    counter.increment("cold_starts", 2)
    assert counter.get("cold_starts") == 3
    assert counter.get("missing") == 0
    assert counter.as_dict() == {"cold_starts": 3}


def test_counter_rejects_negative():
    counter = Counter()
    with pytest.raises(ValueError):
        counter.increment("x", -1)
