"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(3.5)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 3.5
    assert env.now == 3.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"


def test_sequential_timeouts_accumulate():
    env = Environment()
    marks = []

    def proc():
        for _ in range(4):
            yield env.timeout(0.25)
            marks.append(env.now)

    env.process(proc())
    env.run()
    assert marks == [0.25, 0.5, 0.75, 1.0]


def test_two_processes_interleave():
    env = Environment()
    order = []

    def fast():
        yield env.timeout(1)
        order.append("fast")

    def slow():
        yield env.timeout(2)
        order.append("slow")

    env.process(slow())
    env.process(fast())
    env.run()
    assert order == ["fast", "slow"]


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def make(tag):
        def proc():
            yield env.timeout(1)
            order.append(tag)
        return proc

    for tag in range(5):
        env.process(make(tag)())
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_wait_on_process():
    env = Environment()

    def child():
        yield env.timeout(2)
        return 42

    def parent():
        result = yield env.process(child())
        return result + 1

    p = env.process(parent())
    assert env.run(until=p) == 43


def test_wait_on_already_finished_process():
    env = Environment()

    def child():
        yield env.timeout(1)
        return "x"

    def parent(proc):
        yield env.timeout(10)
        result = yield proc
        return result

    child_proc = env.process(child())
    parent_proc = env.process(parent(child_proc))
    assert env.run(until=parent_proc) == "x"
    assert env.now == 10


def test_manual_event_succeed():
    env = Environment()
    gate = env.event()

    def opener():
        yield env.timeout(5)
        gate.succeed("open")

    def waiter():
        value = yield gate
        return (env.now, value)

    env.process(opener())
    p = env.process(waiter())
    assert env.run(until=p) == (5, "open")


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_propagates_into_waiter():
    env = Environment()
    evt = env.event()

    def failer():
        yield env.timeout(1)
        evt.fail(RuntimeError("boom"))

    def waiter():
        try:
            yield evt
        except RuntimeError as exc:
            return str(exc)
        return "no error"

    env.process(failer())
    p = env.process(waiter())
    assert env.run(until=p) == "boom"


def test_unhandled_process_exception_surfaces():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1)

    env.process(proc())
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_time_rejected():
    env = Environment(initial_time=100)
    with pytest.raises(SimulationError):
        env.run(until=50)


def test_yield_non_event_fails_process():
    env = Environment()

    def proc():
        yield 5  # not an event

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_all_of_waits_for_everything():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        results = yield AllOf(env, [t1, t2])
        return (env.now, sorted(results.values()))

    p = env.process(proc())
    assert env.run(until=p) == (3, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(3, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return (env.now, list(results.values()))

    p = env.process(proc())
    assert env.run(until=p) == (1, ["fast"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        results = yield env.all_of([])
        return results

    p = env.process(proc())
    assert env.run(until=p) == {}


def test_all_of_duplicate_events_count_once():
    # A duplicated constituent must behave identically whatever its
    # lifecycle state at construction; the condition waits for it once.
    env = Environment()
    evt = env.event()

    def opener():
        yield env.timeout(1)
        evt.succeed("v")

    def waiter():
        results = yield AllOf(env, [evt, evt])
        return results

    env.process(opener())
    p = env.process(waiter())
    assert env.run(until=p) == {evt: "v"}


def test_all_of_duplicate_triggered_but_unprocessed_event():
    # Regression: an event that is already triggered (scheduled) but
    # not yet processed at construction used to register one callback
    # per occurrence in `events` ("double-register"); with dedupe the
    # condition fires exactly once with the event counted once.
    env = Environment()
    evt = env.event()
    evt.succeed("v")  # triggered, callbacks not yet run
    assert evt.triggered and not evt.processed

    def waiter():
        results = yield AllOf(env, [evt, evt])
        return results

    p = env.process(waiter())
    assert env.run(until=p) == {evt: "v"}


def test_all_of_duplicates_mixed_with_pending_event():
    env = Environment()
    dup = env.event()
    other = env.event()

    def opener():
        yield env.timeout(1)
        dup.succeed("a")
        yield env.timeout(1)
        other.succeed("b")

    def waiter():
        results = yield AllOf(env, [dup, other, dup])
        return (env.now, results)

    env.process(opener())
    p = env.process(waiter())
    now, results = env.run(until=p)
    assert now == 2
    assert results == {dup: "a", other: "b"}


def test_any_of_duplicate_events_fire_once():
    env = Environment()
    evt = env.event()
    evt.succeed("x")

    def waiter():
        results = yield AnyOf(env, [evt, evt])
        return results

    p = env.process(waiter())
    assert env.run(until=p) == {evt: "x"}


def test_interrupt_wakes_blocked_process():
    env = Environment()

    def victim():
        try:
            yield env.timeout(100)
            return "finished"
        except Interrupt as interrupt:
            return ("interrupted", env.now, interrupt.cause)

    def attacker(target):
        yield env.timeout(2)
        target.interrupt(cause="preempted")

    v = env.process(victim())
    env.process(attacker(v))
    assert env.run(until=v) == ("interrupted", 2, "preempted")


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_active_process_visible_inside():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc())
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_run_until_event_exhaustion_error():
    env = Environment()
    never = env.event()

    def proc():
        yield env.timeout(1)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_nested_process_chain():
    env = Environment()

    def level(depth):
        if depth == 0:
            yield env.timeout(1)
            return 1
        below = yield env.process(level(depth - 1))
        return below + 1

    p = env.process(level(10))
    assert env.run(until=p) == 11
    assert env.now == 1


def test_succeed_with_delay_fires_in_the_future():
    env = Environment()
    event = env.event()
    event.succeed("late", delay=2.5)
    seen = []
    event.callbacks.append(lambda e: seen.append((env.now, e.value)))
    env.run()
    assert seen == [(2.5, "late")]


def test_succeed_with_delay_orders_after_earlier_events():
    env = Environment()
    order = []
    delayed = env.event()
    delayed.succeed("b", delay=1.0)
    delayed.callbacks.append(lambda _e: order.append("b"))
    early = env.timeout(0.5)
    early.callbacks.append(lambda _e: order.append("a"))
    env.run()
    assert order == ["a", "b"]
