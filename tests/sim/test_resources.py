"""Unit tests for Resource, Store and PriorityStore."""

import pytest

from repro.sim import Environment, PriorityStore, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    grant_times = []

    def worker(tag):
        request = resource.request()
        yield request
        grant_times.append((tag, env.now))
        yield env.timeout(10)
        resource.release(request)

    for tag in range(4):
        env.process(worker(tag))
    env.run()
    assert grant_times == [(0, 0), (1, 0), (2, 10), (3, 10)]


def test_resource_fifo_order():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def worker(tag, arrival):
        yield env.timeout(arrival)
        request = resource.request()
        yield request
        order.append(tag)
        yield env.timeout(5)
        resource.release(request)

    env.process(worker("late", 2))
    env.process(worker("early", 1))
    env.run()
    assert order == ["early", "late"]


def test_resource_count_and_queue_length():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder():
        request = resource.request()
        yield request
        yield env.timeout(5)
        resource.release(request)

    def waiter():
        yield env.timeout(1)
        request = resource.request()
        assert resource.queue_length == 1
        yield request
        resource.release(request)

    env.process(holder())
    env.process(waiter())
    env.run(until=2)
    assert resource.count == 1
    env.run()
    assert resource.count == 0
    assert resource.queue_length == 0


def test_resource_release_unknown_request_rejected():
    env = Environment()
    resource = Resource(env, capacity=1)
    request = resource.request()
    env.run()
    resource.release(request)
    with pytest.raises(SimulationError):
        resource.release(request)


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_resize_grows_grants_waiters():
    env = Environment()
    resource = Resource(env, capacity=1)
    grants = []

    def worker(tag):
        request = resource.request()
        yield request
        grants.append((tag, env.now))
        yield env.timeout(100)
        resource.release(request)

    def grower():
        yield env.timeout(3)
        resource.resize(2)

    env.process(worker("a"))
    env.process(worker("b"))
    env.process(grower())
    env.run(until=50)
    assert grants == [("a", 0), ("b", 3)]


def test_resource_resize_shrink_does_not_preempt():
    env = Environment()
    resource = Resource(env, capacity=2)

    def worker():
        request = resource.request()
        yield request
        yield env.timeout(10)
        resource.release(request)

    env.process(worker())
    env.process(worker())
    env.run(until=1)
    resource.resize(1)
    assert resource.count == 2  # both holders keep their slots
    env.run()
    assert resource.count == 0


def test_resource_acquire_context_manager():
    env = Environment()
    resource = Resource(env, capacity=1)
    held = []

    def worker():
        with resource.acquire() as request:
            yield request
            held.append(resource.count)
            yield env.timeout(1)
        held.append(resource.count)

    env.process(worker())
    env.run()
    assert held == [1, 0]


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def producer():
        yield store.put("item")

    def consumer():
        item = yield store.get()
        return item

    env.process(producer())
    p = env.process(consumer())
    assert env.run(until=p) == "item"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer():
        item = yield store.get()
        return (item, env.now)

    def producer():
        yield env.timeout(4)
        yield store.put("late")

    p = env.process(consumer())
    env.process(producer())
    assert env.run(until=p) == ("late", 4)


def test_store_fifo_ordering():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for value in [1, 2, 3]:
            yield store.put(value)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [1, 2, 3]


def test_store_bounded_put_blocks():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("a", env.now))
        yield store.put("b")
        times.append(("b", env.now))

    def consumer():
        yield env.timeout(5)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [("a", 0), ("b", 5)]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


def test_store_len_and_items():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2
    assert store.items == [1, 2]


def test_priority_store_orders_by_priority():
    env = Environment()
    store = PriorityStore(env)
    received = []

    def producer():
        yield store.put("low", priority=10)
        yield store.put("high", priority=1)
        yield store.put("mid", priority=5)

    def consumer():
        yield env.timeout(1)  # let all puts land before the first get
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == ["high", "mid", "low"]


def test_priority_store_ties_fifo():
    env = Environment()
    store = PriorityStore(env)
    received = []

    def producer():
        for tag in ["first", "second", "third"]:
            yield store.put(tag, priority=0)

    def consumer():
        for _ in range(3):
            received.append((yield store.get()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == ["first", "second", "third"]


def test_many_consumers_each_get_distinct_items():
    env = Environment()
    store = Store(env)
    received = []

    def consumer():
        item = yield store.get()
        received.append(item)

    for _ in range(5):
        env.process(consumer())

    def producer():
        for value in range(5):
            yield store.put(value)

    env.process(producer())
    env.run()
    assert sorted(received) == [0, 1, 2, 3, 4]


def test_uncontended_request_is_born_processed():
    # Fast path: with capacity free, request() returns an event that is
    # already processed, so callback code can run synchronously instead
    # of paying a trip through the event queue.
    env = Environment()
    resource = Resource(env, capacity=1)
    request = resource.request()
    assert request.processed
    assert resource.count == 1


def test_store_get_with_stock_is_born_processed():
    env = Environment()
    store = Store(env)
    store.put("item")
    env.run()
    get = store.get()
    assert get.processed
    assert get.value == "item"
