"""Tests for the processor-sharing CPU model."""

import pytest

from repro.sim import Environment, ProcessorSharingCpu


def run_jobs(cores, durations, switch_overhead=0.0, stagger=0.0):
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores, switch_overhead_seconds=switch_overhead)
    finishes = {}

    def job(tag, seconds, delay):
        if delay:
            yield env.timeout(delay)
        yield cpu.consume(seconds)
        finishes[tag] = env.now

    for index, seconds in enumerate(durations):
        env.process(job(index, seconds, stagger * index))
    env.run()
    return env, cpu, finishes


def test_single_job_runs_at_full_rate():
    _env, _cpu, finishes = run_jobs(cores=1, durations=[2.0])
    assert finishes[0] == pytest.approx(2.0)


def test_underloaded_jobs_run_in_parallel():
    _env, _cpu, finishes = run_jobs(cores=4, durations=[1.0, 1.0, 1.0])
    assert all(t == pytest.approx(1.0) for t in finishes.values())


def test_oversubscribed_jobs_share_fairly():
    # 3 equal jobs on 2 cores: rate 2/3 each, finish at 1.5.
    _env, _cpu, finishes = run_jobs(cores=2, durations=[1.0, 1.0, 1.0])
    assert all(t == pytest.approx(1.5) for t in finishes.values())


def test_unequal_jobs_short_finishes_first():
    env, _cpu, finishes = run_jobs(cores=1, durations=[1.0, 3.0])
    assert finishes[0] < finishes[1]
    # Total work 4s on one core: last finish at 4.
    assert finishes[1] == pytest.approx(4.0)


def test_late_arrival_slows_running_job():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=1)
    finishes = {}

    def job(tag, seconds, delay):
        yield env.timeout(delay)
        yield cpu.consume(seconds)
        finishes[tag] = env.now

    env.process(job("first", 2.0, 0.0))
    env.process(job("second", 1.0, 1.0))
    env.run()
    # First runs alone for 1s (1s left), then shares: both need 2 more
    # wall seconds for their remaining 1s each → first at 3, second at 3.
    assert finishes["first"] == pytest.approx(3.0)
    assert finishes["second"] == pytest.approx(3.0)


def test_zero_work_completes_immediately():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=1)
    event = cpu.consume(0.0)
    assert event.triggered


def test_negative_work_rejected():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=1)
    with pytest.raises(ValueError):
        cpu.consume(-1.0)


def test_invalid_cores_rejected():
    with pytest.raises(ValueError):
        ProcessorSharingCpu(Environment(), cores=0)


def test_switch_overhead_penalizes_oversubscription():
    _env1, _cpu1, no_overhead = run_jobs(2, [1.0] * 4, switch_overhead=0.0)
    _env2, _cpu2, with_overhead = run_jobs(2, [1.0] * 4, switch_overhead=0.05)
    assert max(with_overhead.values()) > max(no_overhead.values())


def test_switch_overhead_free_when_underloaded():
    _env, _cpu, finishes = run_jobs(4, [1.0, 1.0], switch_overhead=0.05)
    assert all(t == pytest.approx(1.0) for t in finishes.values())


def test_busy_accounting():
    env, cpu, _f = run_jobs(2, [1.0, 1.0, 1.0])
    assert cpu.jobs_completed == 3
    assert cpu.busy_core_seconds == pytest.approx(3.0)
    assert cpu.active_jobs == 0


def test_conservation_of_work():
    # Whatever the arrival pattern, total busy core-seconds equals the
    # submitted work (no overhead configured).
    env, cpu, finishes = run_jobs(3, [0.5, 1.5, 2.5, 0.25], stagger=0.3)
    assert cpu.busy_core_seconds == pytest.approx(0.5 + 1.5 + 2.5 + 0.25, rel=1e-6)


def test_arrivals_do_not_accumulate_stale_timers():
    # Regression: each arrival used to spawn a fresh timer process
    # (Process + Initialize + Timeout on the event heap), superseding
    # the previous one by generation but leaving it dead in the heap —
    # N arrivals meant N stale entries.  Arrivals that push the next
    # completion later must reuse the pending timer instead.
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=1)
    events = [cpu.consume(1.0) for _ in range(200)]
    # One armed completion timer; no per-arrival debris.
    assert len(env._queue) <= 2
    env.run()
    assert cpu.jobs_completed == 200
    assert all(evt.processed for evt in events)


def test_staggered_arrivals_keep_event_heap_bounded():
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=2)
    peak = {"value": 0}

    def submitter(index):
        yield env.timeout(0.01 * index)
        yield cpu.consume(1.0)
        peak["value"] = max(peak["value"], len(env._queue))

    for index in range(100):
        env.process(submitter(index))
    env.run()
    assert cpu.jobs_completed == 100
    # Heap holds waiting submitter timeouts plus O(1) CPU timers — far
    # below the 2×N dead-timer growth of the generation-based scheme.
    assert peak["value"] < 150


def test_short_job_undercuts_pending_timer():
    # A short arrival that finishes before the currently armed timer
    # must re-arm earlier (the stale timer is skipped by identity).
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores=2)
    finishes = {}

    def job(tag, delay, work):
        if delay:
            yield env.timeout(delay)
        yield cpu.consume(work)
        finishes[tag] = env.now

    env.process(job("long", 0.0, 10.0))
    env.process(job("short", 1.0, 0.5))
    env.run()
    # Two cores, two jobs: both run at full rate.
    assert finishes["short"] == pytest.approx(1.5)
    assert finishes["long"] == pytest.approx(10.0)
