"""Unit tests for the seeded random-variate helpers."""

import pytest

from repro.sim import Rng


def test_same_seed_same_stream():
    a = Rng(42)
    b = Rng(42)
    assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]


def test_different_seeds_differ():
    assert Rng(1).uniform() != Rng(2).uniform()


def test_fork_is_stable_and_independent():
    root = Rng(7)
    fork_a1 = root.fork(1)
    fork_a2 = Rng(7).fork(1)
    assert fork_a1.uniform() == fork_a2.uniform()
    assert Rng(7).fork(1).uniform() != Rng(7).fork(2).uniform()


def test_exponential_mean_roughly_correct():
    rng = Rng(3)
    samples = [rng.exponential(2.0) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert 1.9 < mean < 2.1


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        Rng(0).exponential(0)


def test_lognormal_median_roughly_correct():
    rng = Rng(5)
    samples = sorted(rng.lognormal(100.0, 1.0) for _ in range(20001))
    median = samples[len(samples) // 2]
    assert 90 < median < 110


def test_bounded_pareto_respects_bounds():
    rng = Rng(9)
    for _ in range(1000):
        value = rng.bounded_pareto(1.1, 1.0, 100.0)
        assert 1.0 <= value <= 100.0


def test_bounded_pareto_invalid_args():
    rng = Rng(0)
    with pytest.raises(ValueError):
        rng.bounded_pareto(1.0, 5.0, 2.0)
    with pytest.raises(ValueError):
        rng.bounded_pareto(-1.0, 1.0, 2.0)


def test_zipf_weights_normalised_and_decreasing():
    weights = Rng(0).zipf_weights(10, skew=1.0)
    assert sum(weights) == pytest.approx(1.0)
    assert all(weights[i] >= weights[i + 1] for i in range(9))


def test_zipf_weights_invalid_count():
    with pytest.raises(ValueError):
        Rng(0).zipf_weights(0)


def test_bernoulli_bounds():
    rng = Rng(1)
    assert all(not rng.bernoulli(0.0) for _ in range(100))
    assert all(rng.bernoulli(1.0) for _ in range(100))
    with pytest.raises(ValueError):
        rng.bernoulli(1.5)


def test_poisson_arrivals_sorted_within_window():
    rng = Rng(11)
    arrivals = rng.poisson_arrivals(rate=50, duration=10, start=2)
    assert arrivals == sorted(arrivals)
    assert all(2 <= t < 12 for t in arrivals)
    # rate 50 over 10s -> ~500 arrivals
    assert 400 < len(arrivals) < 600


def test_poisson_zero_rate_empty():
    assert Rng(0).poisson_arrivals(0, 100) == []


def test_poisson_negative_rate_rejected():
    with pytest.raises(ValueError):
        Rng(0).poisson_arrivals(-1, 10)


def test_piecewise_poisson_segments_sequential():
    rng = Rng(13)
    arrivals = rng.piecewise_poisson_arrivals([(5, 100), (5, 0), (5, 100)])
    assert arrivals == sorted(arrivals)
    middle = [t for t in arrivals if 5 <= t < 10]
    assert middle == []
    assert any(t < 5 for t in arrivals)
    assert any(t >= 10 for t in arrivals)


def test_sample_and_choice_respect_population():
    rng = Rng(17)
    population = list(range(100))
    picked = rng.sample(population, 10)
    assert len(set(picked)) == 10
    assert all(p in population for p in picked)
    assert rng.choice(population) in population


def test_randint_inclusive_bounds():
    rng = Rng(19)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}
