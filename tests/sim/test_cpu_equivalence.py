"""Equivalence of the virtual-time PS model with a brute-force reference.

The production :class:`~repro.sim.cpu.ProcessorSharingCpu` uses the
virtual-time algorithm (one global attained-service clock, min-heap of
finish tags, O(log n) membership changes).  The reference model below
is the straightforward O(n)-rescan formulation the repo originally
shipped: on every membership change, walk all queued jobs and subtract
the service attained since the last change.  Both describe the same
fluid processor-sharing system, so completion times must agree — the
optimization may change wall-clock time only, never virtual-time
results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, ProcessorSharingCpu
from repro.sim.core import Event


class _RefJob:
    __slots__ = ("remaining", "event", "last_update")

    def __init__(self, work, event, now):
        self.remaining = work
        self.event = event
        self.last_update = now


class ReferenceProcessorSharingCpu:
    """Brute-force PS: O(n) rescan of every job per membership change."""

    def __init__(self, env, cores, switch_overhead_seconds=0.0,
                 oversubscribed_efficiency=1.0):
        self.env = env
        self.cores = cores
        self.switch_overhead_seconds = switch_overhead_seconds
        self.oversubscribed_efficiency = oversubscribed_efficiency
        self._jobs = []
        self._timer_generation = 0
        self.jobs_completed = 0
        self.busy_core_seconds = 0.0

    @property
    def current_rate(self):
        if not self._jobs:
            return 1.0
        if len(self._jobs) <= self.cores:
            return 1.0
        return (self.cores / len(self._jobs)) * self.oversubscribed_efficiency

    def consume(self, cpu_seconds) -> Event:
        event = self.env.event()
        if cpu_seconds == 0:
            event.succeed()
            return event
        self._advance()
        work = cpu_seconds
        if len(self._jobs) >= self.cores and self.switch_overhead_seconds:
            work += self.switch_overhead_seconds
        self._jobs.append(_RefJob(work, event, self.env.now))
        self._reschedule()
        return event

    def _advance(self):
        if not self._jobs:
            return
        rate = self.current_rate
        now = self.env.now
        for job in self._jobs:
            progressed = (now - job.last_update) * rate
            job.remaining = max(0.0, job.remaining - progressed)
            job.last_update = now
            self.busy_core_seconds += progressed

    def _reschedule(self):
        self._timer_generation += 1
        generation = self._timer_generation
        if not self._jobs:
            return
        soonest = min(job.remaining for job in self._jobs)
        self.env.process(self._fire_after(soonest / self.current_rate, generation))

    def _fire_after(self, delay, generation):
        yield self.env.timeout(delay)
        if generation != self._timer_generation:
            return
        self._advance()
        finished = [job for job in self._jobs if job.remaining <= 1e-12]
        if finished:
            self._jobs = [job for job in self._jobs if job.remaining > 1e-12]
            for job in finished:
                self.jobs_completed += 1
                job.event.succeed()
        self._reschedule()


def _run_workload(cpu_factory, jobs):
    """Run (delay, work) jobs through a CPU; return completion times."""
    env = Environment()
    cpu = cpu_factory(env)
    finishes = {}

    def job(tag, delay, work):
        if delay:
            yield env.timeout(delay)
        yield cpu.consume(work)
        finishes[tag] = env.now

    for tag, (delay, work) in enumerate(jobs):
        env.process(job(tag, delay, work))
    env.run()
    return finishes, cpu


_jobs = st.lists(
    st.tuples(
        st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False),
        st.floats(1e-6, 1.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=20,
)


@settings(max_examples=120, deadline=None)
@given(_jobs, st.sampled_from([1, 2, 4]), st.sampled_from([0.0, 1e-5]))
def test_virtual_time_matches_brute_force(jobs, cores, overhead):
    fast, fast_cpu = _run_workload(
        lambda env: ProcessorSharingCpu(env, cores, switch_overhead_seconds=overhead),
        jobs,
    )
    slow, slow_cpu = _run_workload(
        lambda env: ReferenceProcessorSharingCpu(env, cores, switch_overhead_seconds=overhead),
        jobs,
    )
    assert set(fast) == set(slow)
    for tag in fast:
        assert abs(fast[tag] - slow[tag]) < 1e-9, (
            f"job {tag}: virtual-time {fast[tag]!r} vs brute-force {slow[tag]!r}"
        )
    assert fast_cpu.jobs_completed == slow_cpu.jobs_completed == len(jobs)
    assert abs(fast_cpu.busy_core_seconds - slow_cpu.busy_core_seconds) < 1e-6


@settings(max_examples=40, deadline=None)
@given(_jobs, st.sampled_from([0.5, 0.9]))
def test_virtual_time_matches_brute_force_degraded_efficiency(jobs, efficiency):
    fast, _ = _run_workload(
        lambda env: ProcessorSharingCpu(env, 2, oversubscribed_efficiency=efficiency),
        jobs,
    )
    slow, _ = _run_workload(
        lambda env: ReferenceProcessorSharingCpu(env, 2, oversubscribed_efficiency=efficiency),
        jobs,
    )
    for tag in fast:
        assert abs(fast[tag] - slow[tag]) < 1e-9
