"""Sharded simulator: codec, invariance, engine equivalence, observability."""

import json

import pytest

from repro.cluster.sharding import INVOCATION, ShardPlan
from repro.sim.sharded import ShardedConfig, run_sharded_replay
from repro.sim.sharded.messages import (
    decode_final_report,
    decode_latencies,
    decode_window_batch,
    decode_window_report,
    encode_final_report,
    encode_window_batch,
    encode_window_report,
)
from repro.trace.stream import streamed_trace

SMALL = dict(function_count=150, duration_seconds=60.0, total_rps=30.0, seed=42)


def small_trace():
    return streamed_trace(**SMALL)


def replay(platform="dandelion", shards=1, engine="lean", executor="serial", **kw):
    config = ShardedConfig(
        workers=6,
        cores_per_worker=8,
        shards=shards,
        platform=platform,
        engine=engine,
        executor=executor,
        **kw,
    )
    return run_sharded_replay(small_trace(), config)


def summary_key(report):
    return json.dumps(report.summary(), sort_keys=True)


class TestShardPlan:
    def test_round_robin_partition(self):
        plan = ShardPlan(7, 3)
        workers = [plan.workers_of(s) for s in range(3)]
        assert workers == [(0, 3, 6), (1, 4), (2, 5)]
        assert all(plan.shard_of(w) == w % 3 for w in range(7))

    def test_shard_count_clamped_to_workers(self):
        assert ShardPlan(2, 8).shard_count == 2

    def test_merge_restores_global_order(self):
        plan = ShardPlan(5, 2)
        per_shard = [["w0", "w2", "w4"], ["w1", "w3"]]
        assert plan.merge(per_shard) == ["w0", "w1", "w2", "w3", "w4"]


class TestMessageCodec:
    def test_window_batch_roundtrip(self):
        records = [(1.25, 3, 17, 0.5, 1.2495), (2.0, 0, 4, 0.125, 1.9995)]
        payload = bytearray()
        for record in records:
            payload += INVOCATION.pack(*record)
        blob = encode_window_batch(7, 3.5, payload)
        index, end, finish, decoded = decode_window_batch(blob)
        assert (index, end, finish) == (7, 3.5, False)
        assert decoded == records

    def test_finish_flag(self):
        _, _, finish, records = decode_window_batch(
            encode_window_batch(0, 0.0, b"", finish=True)
        )
        assert finish and records == []

    def test_window_report_roundtrip(self):
        blob = encode_window_report(3, 2.0, [4, 0, 9], [0.25, 0.5], 123, 0.75)
        index, outstanding, item, events, stall = decode_window_report(blob)
        assert (index, outstanding, events, stall) == (3, [4, 0, 9], 123, 0.75)
        assert decode_latencies(item) == (0.25, 0.5)

    def test_final_report_roundtrip(self):
        summary = {"workers": [{"completed": 3}], "events": 9}
        assert decode_final_report(encode_final_report(summary)) == summary


@pytest.mark.parametrize("platform", ["dandelion", "faas"])
class TestShardCountInvariance:
    """The tentpole guarantee: KPIs are byte-identical across shard
    counts and executors (PYTHONHASHSEED pinned by CI for the formal
    gate; the JSON key ordering here is explicit so the test is hermetic
    either way)."""

    def test_serial_shard_counts(self, platform):
        base = summary_key(replay(platform, shards=1))
        for shards in (2, 3):
            assert summary_key(replay(platform, shards=shards)) == base

    def test_process_executor_matches_serial(self, platform):
        assert summary_key(replay(platform, shards=2, executor="process")) == (
            summary_key(replay(platform, shards=2, executor="serial"))
        )

    def test_every_routed_invocation_completes(self, platform):
        report = replay(platform, shards=3)
        assert report.routed == report.completed > 0


class TestEngineEquivalence:
    def test_classic_matches_lean_modulo_events(self):
        lean = replay(engine="lean", shards=1).summary()
        classic = replay(engine="classic", shards=2).summary()
        lean_events = lean.pop("events")
        classic_events = classic.pop("events")
        assert lean == classic
        # Lean: one reserved delivery seq + one completion per
        # invocation; classic: generator Process + Resource machinery.
        assert lean_events == 2 * lean["routed"]
        assert classic_events > lean_events

    def test_faas_platform_has_cold_starts_and_active_memory(self):
        report = replay(platform="faas", shards=2)
        assert 0 < report.cold_starts < report.completed
        assert report.active_mean_bytes is not None
        assert report.active_mean_bytes < report.committed_mean_bytes

    def test_dandelion_commits_only_active_memory(self):
        report = replay(platform="dandelion")
        assert report.active_mean_bytes is None or (
            report.active_mean_bytes == report.committed_mean_bytes
        )


class TestObservability:
    def test_per_shard_stats_present(self):
        report = replay(shards=3)
        assert len(report.shard_stats) == 3
        for shard, stats in enumerate(report.shard_stats):
            assert stats["shard"] == shard
            assert stats["events"] > 0
            assert stats["windows"] == report.windows
            assert stats["stall_seconds"] >= 0.0
            assert stats["barrier_wait_seconds"] >= 0.0
        assert sum(s["events"] for s in report.shard_stats) == report.events
        assert report.wall_seconds > 0
        assert report.executor_mode == "serial"

    def test_stats_never_leak_into_summary(self):
        summary = replay().summary()
        assert "wall_seconds" not in summary
        assert "shard_stats" not in summary
        assert not any("stall" in key for key in summary)

    def test_process_executor_reports_stall(self):
        report = replay(shards=2, executor="process")
        assert report.executor_mode == "process"
        assert all(s["stall_seconds"] > 0 for s in report.shard_stats)


class TestWindowSemantics:
    def test_window_count_covers_duration(self):
        report = replay()
        assert report.windows >= int(SMALL["duration_seconds"] / 0.5)

    def test_window_length_is_a_model_parameter(self):
        # Unlike the shard count, the window length changes snapshot
        # staleness and therefore the KPIs — it must be held fixed when
        # comparing shard counts, which ShardedConfig's default does.
        wide = replay(window_seconds=2.0)
        narrow = replay(window_seconds=0.5)
        assert summary_key(wide) != summary_key(narrow)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            replay(engine="warp")
