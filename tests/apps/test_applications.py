"""End-to-end tests for the three paper applications on a worker node."""

import pytest

from repro.apps import (
    DEFAULT_TOKEN,
    PAPER_STEP_SECONDS,
    extract_sql,
    generate_test_image,
    register_compression_app,
    register_logproc_app,
    register_text2sql_app,
    sample_movie_database,
    setup_log_services,
    setup_text2sql_services,
)
from repro.apps.png import png_decode
from repro.data import DataItem, DataSet
from repro.worker import WorkerConfig, WorkerNode


def make_worker():
    return WorkerNode(WorkerConfig(total_cores=8, control_plane_enabled=False))


# -- image compression ---------------------------------------------------------


def test_compression_app_produces_valid_png():
    worker = make_worker()
    register_compression_app(worker)
    image = generate_test_image()
    result = worker.invoke_and_run(
        "image_compress", {"image": DataSet("image", [DataItem("photo", image)])}
    )
    assert result.ok
    png = result.output("png").item("photo.png").data
    pixels, width, height, _channels = png_decode(png)
    assert width == height == 76


def test_compression_latency_near_paper():
    worker = make_worker()
    register_compression_app(worker)
    image = generate_test_image()
    result = worker.invoke_and_run(
        "image_compress", {"image": DataSet("image", [DataItem("photo", image)])}
    )
    # Paper Fig 8: 18.23 ms average on Dandelion.
    assert 0.014 < result.latency < 0.025


def test_compression_multiple_images_one_invocation():
    worker = make_worker()
    register_compression_app(worker)
    items = [DataItem(f"img{i}", generate_test_image(seed=i)) for i in range(3)]
    result = worker.invoke_and_run("image_compress", {"image": DataSet("image", items)})
    assert result.ok
    assert len(result.output("png")) == 3


# -- log processing --------------------------------------------------------------


def test_logproc_end_to_end():
    worker = make_worker()
    setup_log_services(worker, shard_count=4, lines_per_shard=30)
    register_logproc_app(worker)
    result = worker.invoke_and_run("logproc", {"token": DEFAULT_TOKEN.encode()})
    assert result.ok
    report = result.output("report").item("report").text()
    assert "total_lines=120" in report
    assert report.count("<section") == 4


def test_logproc_counts_errors():
    worker = make_worker()
    setup_log_services(worker, shard_count=2, lines_per_shard=34)
    register_logproc_app(worker)
    result = worker.invoke_and_run("logproc", {"token": DEFAULT_TOKEN.encode()})
    report = result.output("report").item("report").text()
    # Lines 0, 17 are ERROR in each shard of 34 lines.
    assert "errors=4" in report


def test_logproc_invalid_token_fails_invocation():
    worker = make_worker()
    setup_log_services(worker)
    register_logproc_app(worker)
    result = worker.invoke_and_run("logproc", {"token": b"wrong-token"})
    assert not result.ok
    assert "authorization failed" in str(result.error)


def test_logproc_shard_fanout_parallel():
    worker = make_worker()
    setup_log_services(worker, shard_count=6)
    register_logproc_app(worker)
    result = worker.invoke_and_run("logproc", {"token": DEFAULT_TOKEN.encode()})
    assert result.ok
    # access + fanout + render = 3 compute tasks; 1 auth + 6 shard
    # fetches = 7 comm tasks.
    assert worker.compute_group.tasks_executed == 3
    assert worker.comm_group.tasks_executed == 7


# -- Text2SQL ----------------------------------------------------------------------


def test_extract_sql_variants():
    assert extract_sql("```sql\nSELECT 1\n```") == "SELECT 1"
    assert extract_sql("Sure!\nSELECT a FROM t\n") == "SELECT a FROM t"
    with pytest.raises(ValueError):
        extract_sql("no sql here")


def test_text2sql_end_to_end():
    worker = make_worker()
    setup_text2sql_services(worker)
    register_text2sql_app(worker)
    result = worker.invoke_and_run("text2sql", {"prompt": b"What are the top rated movies?"})
    assert result.ok
    answer = result.output("answer").item("text").text()
    assert "The Last Ledger" in answer  # rating 9.1, must rank first
    assert answer.splitlines()[1].startswith("The Last Ledger")


def test_text2sql_count_query():
    worker = make_worker()
    setup_text2sql_services(worker)
    register_text2sql_app(worker)
    result = worker.invoke_and_run("text2sql", {"prompt": b"How many movies are there?"})
    answer = result.output("answer").item("text").text()
    assert "8" in answer


def test_text2sql_latency_matches_paper_breakdown():
    worker = make_worker()
    setup_text2sql_services(worker)
    register_text2sql_app(worker)
    result = worker.invoke_and_run("text2sql", {"prompt": b"average rating of movies?"})
    total = sum(PAPER_STEP_SECONDS.values())  # ~2.015 s
    assert result.latency == pytest.approx(total, rel=0.05)
    # LLM step dominates: ~61% of end-to-end latency.
    assert 0.55 < PAPER_STEP_SECONDS["llm_request"] / result.latency < 0.68


def test_text2sql_empty_prompt_fails():
    worker = make_worker()
    setup_text2sql_services(worker)
    register_text2sql_app(worker)
    result = worker.invoke_and_run("text2sql", {"prompt": b"   "})
    assert not result.ok


def test_sample_database_contents():
    db = sample_movie_database()
    rows = db.execute_rows("SELECT COUNT(*) AS n FROM movies")
    assert rows == [{"n": 8}]
