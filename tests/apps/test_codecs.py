"""Tests for the QOI codec and PNG encoder/decoder."""

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    PngError,
    QoiError,
    generate_test_image,
    png_decode,
    png_encode,
    qoi_decode,
    qoi_encode,
    qoi_to_png,
)


def checker_pixels(width=8, height=8, channels=4):
    pixels = bytearray()
    for y in range(height):
        for x in range(width):
            value = 255 if (x + y) % 2 == 0 else 0
            pixels += bytes([value, 255 - value, 128] + ([255] if channels == 4 else []))
    return bytes(pixels)


def test_qoi_roundtrip_rgba():
    pixels = checker_pixels()
    encoded = qoi_encode(pixels, 8, 8, 4)
    decoded, width, height, channels = qoi_decode(encoded)
    assert (width, height, channels) == (8, 8, 4)
    assert decoded == pixels


def test_qoi_roundtrip_rgb():
    pixels = checker_pixels(channels=3)
    encoded = qoi_encode(pixels, 8, 8, 3)
    decoded, _w, _h, channels = qoi_decode(encoded)
    assert channels == 3
    assert decoded == pixels


def test_qoi_run_length_compresses_flat_image():
    flat = bytes([10, 20, 30, 255]) * (64 * 64)
    encoded = qoi_encode(flat, 64, 64, 4)
    assert len(encoded) < len(flat) / 50


def test_qoi_long_run_split_at_62():
    # 200 identical pixels needs multiple run ops; must roundtrip.
    flat = bytes([1, 2, 3, 255]) * 200
    encoded = qoi_encode(flat, 200, 1, 4)
    decoded, _w, _h, _c = qoi_decode(encoded)
    assert decoded == flat


def test_qoi_alpha_changes_use_rgba_op():
    pixels = bytes([5, 5, 5, 255, 5, 5, 5, 128])
    encoded = qoi_encode(pixels, 2, 1, 4)
    decoded, _w, _h, _c = qoi_decode(encoded)
    assert decoded == pixels


def test_qoi_encode_validation():
    with pytest.raises(QoiError):
        qoi_encode(b"", 0, 1, 4)
    with pytest.raises(QoiError):
        qoi_encode(b"\x00" * 10, 1, 1, 4)
    with pytest.raises(QoiError):
        qoi_encode(b"\x00" * 8, 1, 1, 2)


def test_qoi_decode_rejects_garbage():
    with pytest.raises(QoiError):
        qoi_decode(b"not a qoi image at all....")
    with pytest.raises(QoiError):
        qoi_decode(b"qoif" + b"\x00" * 30)  # zero dimensions


def test_qoi_decode_rejects_truncation():
    encoded = qoi_encode(checker_pixels(), 8, 8, 4)
    with pytest.raises(QoiError):
        qoi_decode(encoded[: len(encoded) // 2])


def test_qoi_decode_rejects_missing_end_marker():
    encoded = bytearray(qoi_encode(checker_pixels(), 8, 8, 4))
    encoded[-1] = 0x00
    with pytest.raises(QoiError):
        qoi_decode(bytes(encoded))


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 12), st.integers(1, 12), st.binary(min_size=0, max_size=0), st.integers(0, 2**32 - 1))
def test_property_qoi_roundtrip_random_images(width, height, _unused, seed):
    import random
    rng = random.Random(seed)
    pixels = bytes(rng.randrange(256) for _ in range(width * height * 4))
    encoded = qoi_encode(pixels, width, height, 4)
    decoded, w, h, c = qoi_decode(encoded)
    assert (w, h, c) == (width, height, 4)
    assert decoded == pixels


def test_png_roundtrip_rgba():
    pixels = checker_pixels()
    png = png_encode(pixels, 8, 8, 4)
    decoded, width, height, channels = png_decode(png)
    assert (width, height, channels) == (8, 8, 4)
    assert decoded == pixels


def test_png_roundtrip_rgb():
    pixels = checker_pixels(channels=3)
    png = png_encode(pixels, 8, 8, 3)
    decoded, _w, _h, channels = png_decode(png)
    assert channels == 3
    assert decoded == pixels


def test_png_structure_valid():
    png = png_encode(checker_pixels(), 8, 8, 4)
    assert png.startswith(b"\x89PNG\r\n\x1a\n")
    assert b"IHDR" in png and b"IDAT" in png and png.endswith(
        struct.pack(">I", zlib.crc32(b"IEND"))
    )


def test_png_encode_validation():
    with pytest.raises(PngError):
        png_encode(b"", 0, 1)
    with pytest.raises(PngError):
        png_encode(b"\x00" * 3, 1, 1, 2)
    with pytest.raises(PngError):
        png_encode(b"\x00" * 5, 1, 1, 4)


def test_png_decode_rejects_bad_signature():
    with pytest.raises(PngError):
        png_decode(b"JFIF....")


def test_png_decode_rejects_corrupt_crc():
    png = bytearray(png_encode(checker_pixels(), 8, 8, 4))
    png[20] ^= 0xFF  # flip a bit inside IHDR payload
    with pytest.raises(PngError, match="CRC"):
        png_decode(bytes(png))


def test_qoi_to_png_preserves_pixels():
    qoi = generate_test_image()
    png = qoi_to_png(qoi)
    qoi_pixels, width, height, channels = qoi_decode(qoi)
    png_pixels, pw, ph, pc = png_decode(png)
    assert (pw, ph, pc) == (width, height, channels)
    assert png_pixels == qoi_pixels


def test_generated_image_near_18kb():
    # The Fig 8 app uses "an 18kB QOI image".
    qoi = generate_test_image()
    assert 14_000 < len(qoi) < 24_000


def test_generated_image_deterministic():
    assert generate_test_image(seed=3) == generate_test_image(seed=3)
    assert generate_test_image(seed=3) != generate_test_image(seed=4)
