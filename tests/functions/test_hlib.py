"""Tests for the hlib utility library (the hlibc analogue)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions import hlib
from repro.functions.hlib import (
    HLIB_NAMESPACE,
    b64decode,
    b64encode,
    crc32,
    deflate,
    format_csv,
    format_table,
    inflate,
    json_dumps,
    json_loads,
    mean,
    median,
    pack,
    parse_csv,
    parse_query_string,
    unpack,
    variance,
)


def test_json_roundtrip():
    value = {"b": [1, 2], "a": {"nested": True}}
    assert json_loads(json_dumps(value)) == value


def test_json_loads_accepts_bytes():
    assert json_loads(b'{"x": 1}') == {"x": 1}


def test_json_dumps_deterministic():
    assert json_dumps({"b": 1, "a": 2}) == '{"a": 2, "b": 1}'


def test_base64_roundtrip():
    data = bytes(range(256))
    assert b64decode(b64encode(data)) == data


def test_crc32_stable():
    assert crc32(b"hello") == 0x3610A686


def test_deflate_inflate_roundtrip():
    data = b"compress me " * 100
    squeezed = deflate(data)
    assert len(squeezed) < len(data)
    assert inflate(squeezed) == data


def test_pack_unpack():
    blob = pack("<IHd", 7, 42, 2.5)
    assert unpack("<IHd", blob) == (7, 42, 2.5)


def test_parse_csv_basic():
    rows = parse_csv("a,b,c\n1,2,3")
    assert rows == [["a", "b", "c"], ["1", "2", "3"]]


def test_parse_csv_quoted_fields():
    rows = parse_csv('name,notes\n"Smith, Jo","said ""hi"""')
    assert rows[1] == ["Smith, Jo", 'said "hi"']


def test_format_csv_quotes_when_needed():
    text = format_csv([["a,b", 'say "x"'], ["plain", 7]])
    assert text.splitlines()[0] == '"a,b","say ""x"""'
    assert text.splitlines()[1] == "plain,7"


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.lists(
        st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=10),
        min_size=2, max_size=4,
    ).filter(lambda row: any(row)),
    min_size=1, max_size=5,
))
def test_property_csv_roundtrip(rows):
    # Rows with at least one non-empty field roundtrip exactly
    # (a fully empty row renders as an empty line, which parsing skips).
    width = max(len(row) for row in rows)
    rows = [row + [""] * (width - len(row)) for row in rows]
    assert parse_csv(format_csv(rows)) == rows


def test_parse_query_string():
    assert parse_query_string("?a=1&b=two+words&c=%2Fpath") == {
        "a": "1", "b": "two words", "c": "/path",
    }
    assert parse_query_string("") == {}


def test_format_table_aligns():
    text = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert len(lines) == 3
    assert lines[1].index("1") == lines[2].index("2")


def test_statistics():
    assert mean([1, 2, 3]) == 2
    assert median([5, 1, 3]) == 3
    assert median([1, 2, 3, 4]) == 2.5
    assert variance([2, 2, 2]) == 0
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        median([])
    with pytest.raises(ValueError):
        variance([])


def test_namespace_facade():
    assert HLIB_NAMESPACE.json_dumps({"x": 1}) == '{"x": 1}'
    assert HLIB_NAMESPACE.sqrt(9) == 3
    assert "hlib" in repr(HLIB_NAMESPACE)


def test_hlib_available_in_sourced_functions():
    from repro.functions import python_function_from_source, run_compute_function

    source = """
def main(vfs):
    rows = hlib.parse_csv(vfs.read_text("/in/data/table"))
    numbers = [int(row[1]) for row in rows]
    summary = hlib.json_dumps({"mean": hlib.mean(numbers), "crc": hlib.crc32(b"x")})
    vfs.write_text("/out/result/summary", summary)
"""
    from repro.data import DataItem, DataSet

    binary = python_function_from_source("csv_stats", source)
    result = run_compute_function(
        binary,
        [DataSet("data", [DataItem("table", b"a,1\nb,3")])],
        ["result"],
    )
    summary = json_loads(result.outputs[0].item("summary").data)
    assert summary["mean"] == 2.0
