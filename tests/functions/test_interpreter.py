"""Tests for registering compute functions from Python source text."""

import pytest

from repro.errors import FunctionFailure
from repro.functions import (
    SourceError,
    python_function_from_source,
    run_compute_function,
)
from repro.data import DataItem, DataSet
from repro.worker import WorkerConfig, WorkerNode

DOUBLE_SOURCE = """
def main(vfs):
    value = int(vfs.read_text("/in/data/data"))
    vfs.write_text("/out/result/value", str(value * 2))
"""


def test_source_function_executes():
    binary = python_function_from_source("double", DOUBLE_SOURCE)
    result = run_compute_function(
        binary, [DataSet("data", [DataItem("data", b"21")])], ["result"]
    )
    assert result.outputs[0].item("value").data == b"42"


def test_binary_size_reflects_interpreter():
    binary = python_function_from_source("double", DOUBLE_SOURCE)
    assert binary.binary_size > 4 * 1024 * 1024
    assert binary.language == "python-source"


def test_syntax_error_rejected():
    with pytest.raises(SourceError, match="failed to compile"):
        python_function_from_source("bad", "def main(vfs:\n  pass")


def test_missing_entry_point_rejected():
    with pytest.raises(SourceError, match="does not define"):
        python_function_from_source("noentry", "x = 1")
    with pytest.raises(SourceError, match="does not define"):
        python_function_from_source("notcallable", "main = 42")


def test_custom_entry_point():
    binary = python_function_from_source(
        "custom", "def handler(vfs):\n    vfs.write_text('/out/o/x', 'ok')",
        entry_point="handler",
    )
    result = run_compute_function(binary, [], ["o"])
    assert result.outputs[0].item("x").data == b"ok"


def test_import_blocked_in_source_namespace():
    source = """
def main(vfs):
    import os
    os.system("true")
"""
    binary = python_function_from_source("importer", source)
    with pytest.raises(FunctionFailure):
        run_compute_function(binary, [], ["o"])


def test_open_unavailable_in_source_namespace():
    source = """
def main(vfs):
    open("/etc/passwd")
"""
    binary = python_function_from_source("opener", source)
    with pytest.raises(FunctionFailure):
        run_compute_function(binary, [], ["o"])


def test_module_level_failure_surfaces_at_registration():
    with pytest.raises(SourceError, match="import time"):
        python_function_from_source("boom", "raise ValueError('at import')\ndef main(vfs): pass")


def test_safe_builtins_available():
    source = """
def main(vfs):
    values = sorted([3, 1, 2])
    vfs.write_text("/out/o/r", str(sum(values)) + "," + str(max(values)))
"""
    binary = python_function_from_source("mathy", source)
    result = run_compute_function(binary, [], ["o"])
    assert result.outputs[0].item("r").data == b"6,3"


def test_source_function_in_full_worker():
    worker = WorkerNode(WorkerConfig(total_cores=4, control_plane_enabled=False))
    worker.frontend.register_function(
        python_function_from_source("double", DOUBLE_SOURCE, compute_cost=1e-4)
    )
    worker.frontend.register_composition("""
        composition doubled {
            compute d uses double in(data) out(result);
            input data -> d.data;
            output d.result -> result;
        }
    """)
    result = worker.invoke_and_run("doubled", {"data": b"8"})
    assert result.ok
    assert result.output("result").item("value").data == b"16"
