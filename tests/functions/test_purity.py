"""Unit tests for the compute-function purity guard."""

import builtins
import os
import socket
import subprocess

import pytest

from repro.errors import SyscallBlocked
from repro.functions import purity_guard


def test_open_blocked_inside_guard():
    with purity_guard():
        with pytest.raises(SyscallBlocked):
            open("/etc/hostname")


def test_open_restored_after_guard():
    original = builtins.open
    with purity_guard():
        pass
    assert builtins.open is original
    # And it actually works again.
    with open(os.devnull, "rb") as handle:
        assert handle.read(0) == b""


def test_socket_blocked():
    with purity_guard():
        with pytest.raises(SyscallBlocked):
            socket.socket()
        with pytest.raises(SyscallBlocked):
            socket.create_connection(("localhost", 80))


def test_subprocess_blocked():
    with purity_guard():
        with pytest.raises(SyscallBlocked):
            subprocess.run(["true"])
        with pytest.raises(SyscallBlocked):
            subprocess.Popen(["true"])


def test_os_system_blocked():
    with purity_guard():
        with pytest.raises(SyscallBlocked):
            os.system("true")


def test_os_file_mutation_blocked():
    with purity_guard():
        with pytest.raises(SyscallBlocked):
            os.remove("/tmp/nonexistent")
        with pytest.raises(SyscallBlocked):
            os.mkdir("/tmp/should_not_exist")


def test_thread_start_blocked():
    import threading

    with purity_guard():
        thread = threading.Thread(target=lambda: None)
        with pytest.raises(SyscallBlocked):
            thread.start()


def test_restored_after_exception():
    original = builtins.open
    with pytest.raises(ValueError):
        with purity_guard():
            raise ValueError("user code failed")
    assert builtins.open is original


def test_nested_guards_restore_once():
    original = builtins.open
    with purity_guard():
        with purity_guard():
            with pytest.raises(SyscallBlocked):
                open("x")
        # Still blocked: inner exit must not restore early.
        with pytest.raises(SyscallBlocked):
            open("x")
    assert builtins.open is original


def test_error_message_mentions_alternative():
    with purity_guard():
        with pytest.raises(SyscallBlocked, match="virtual filesystem"):
            open("x")


def test_pure_computation_unaffected():
    with purity_guard():
        assert sum(range(100)) == 4950
        assert [x * x for x in range(5)] == [0, 1, 4, 9, 16]


def test_originals_captured_at_enter_respect_monkeypatching():
    # The stub table is built at import, but originals are saved at
    # enter time, so an attribute patched before the guard is restored
    # to the patch, not to the import-time original.
    def sentinel(*_args, **_kwargs):
        return "patched"

    original = builtins.open
    builtins.open = sentinel
    try:
        with purity_guard():
            with pytest.raises(SyscallBlocked):
                open("x")
        assert builtins.open is sentinel
    finally:
        builtins.open = original


def test_guard_reentry_is_counter_only():
    # Nested enters must not touch the patched attributes: the stub
    # installed by the outer enter stays the same object throughout.
    with purity_guard():
        stub = builtins.open
        with purity_guard():
            assert builtins.open is stub
        assert builtins.open is stub


def test_os_unlink_rmdir_replace_blocked():
    with purity_guard():
        with pytest.raises(SyscallBlocked):
            os.unlink("/tmp/nonexistent")
        with pytest.raises(SyscallBlocked):
            os.rmdir("/tmp/nonexistent")
        with pytest.raises(SyscallBlocked):
            os.replace("/tmp/a", "/tmp/b")


def test_pathlib_open_blocked():
    import pathlib

    with purity_guard():
        with pytest.raises(SyscallBlocked):
            pathlib.Path("/etc/hostname").open()
    # Restored: Path.open works again outside the guard.
    with pathlib.Path(os.devnull).open("rb") as handle:
        assert handle.read(0) == b""


def test_socketpair_blocked():
    with purity_guard():
        with pytest.raises(SyscallBlocked):
            socket.socketpair()
