"""Unit tests for the compute-function harness and SDK."""

import pytest

from repro.composition import FunctionBinary
from repro.data import DataItem, DataSet
from repro.errors import FunctionFailure, MemoryLimitExceeded
from repro.functions import (
    compute_function,
    format_http_request,
    parse_http_request_item,
    read_all_bytes,
    read_items,
    run_compute_function,
    write_item,
)


def inputs(**sets):
    return [
        DataSet(name, [DataItem(k, v) for k, v in items.items()])
        for name, items in sets.items()
    ]


def test_run_simple_function():
    @compute_function()
    def double(vfs):
        value = int(vfs.read_text("/in/data/value"))
        vfs.write_text("/out/result/value", str(value * 2))

    result = run_compute_function(double, inputs(data={"value": b"21"}), ["result"])
    assert result.outputs[0].item("value").data == b"42"
    assert result.input_bytes == 2
    assert result.output_bytes == 2


def test_declared_outputs_always_present():
    @compute_function()
    def silent(vfs):
        pass

    result = run_compute_function(silent, [], ["a", "b"])
    assert [s.ident for s in result.outputs] == ["a", "b"]
    assert all(len(s) == 0 for s in result.outputs)


def test_user_exception_wrapped_as_failure():
    @compute_function()
    def broken(vfs):
        raise RuntimeError("bug in user code")

    with pytest.raises(FunctionFailure) as exc_info:
        run_compute_function(broken, [], ["out"])
    assert exc_info.value.function_name == "broken"
    assert isinstance(exc_info.value.cause, RuntimeError)


def test_syscall_attempt_reported_as_failure():
    @compute_function()
    def escapee(vfs):
        open("/etc/passwd")

    with pytest.raises(FunctionFailure) as exc_info:
        run_compute_function(escapee, [], ["out"])
    assert "open" in str(exc_info.value.cause)


def test_purity_restored_after_function_runs():
    import builtins
    original = builtins.open

    @compute_function()
    def fine(vfs):
        vfs.write_text("/out/out/x", "ok")

    run_compute_function(fine, [], ["out"])
    assert builtins.open is original


def test_input_memory_limit_enforced():
    @compute_function(memory_limit=8)
    def small(vfs):
        pass

    with pytest.raises(MemoryLimitExceeded, match="inputs"):
        run_compute_function(small, inputs(data={"big": b"123456789"}), ["out"])


def test_output_memory_limit_enforced():
    @compute_function(memory_limit=16)
    def producer(vfs):
        vfs.write_bytes("/out/out/big", b"x" * 100)

    with pytest.raises(MemoryLimitExceeded, match="outputs"):
        run_compute_function(producer, [], ["out"])


def test_function_reads_multiple_sets():
    @compute_function()
    def concat(vfs):
        left = read_all_bytes(vfs, "left")
        right = read_all_bytes(vfs, "right")
        write_item(vfs, "out", "joined", left + right)

    result = run_compute_function(
        concat, inputs(left={"a": b"foo"}, right={"b": b"bar"}), ["out"]
    )
    assert result.outputs[0].item("joined").data == b"foobar"


def test_read_items_helper():
    @compute_function()
    def lister(vfs):
        items = read_items(vfs, "data")
        names = ",".join(item.ident for item in items)
        write_item(vfs, "out", "names", names.encode())

    result = run_compute_function(
        lister, inputs(data={"b": b"2", "a": b"1"}), ["out"]
    )
    assert result.outputs[0].item("names").data == b"a,b"


def test_write_item_with_key():
    @compute_function()
    def keyed(vfs):
        write_item(vfs, "out", "x", b"1", key="shard0")

    result = run_compute_function(keyed, [], ["out"])
    assert result.outputs[0].item("x").key == "shard0"


def test_http_request_envelope_roundtrip():
    raw = format_http_request(
        "GET", "http://storage.internal/bucket/key",
        body=b"payload", headers={"accept": "text/plain"},
    )
    parsed = parse_http_request_item(raw)
    assert parsed["method"] == "GET"
    assert parsed["url"] == "http://storage.internal/bucket/key"
    assert parsed["headers"] == {"accept": "text/plain"}
    assert parsed["body"] == b"payload"


def test_http_envelope_missing_fields_rejected():
    with pytest.raises(ValueError, match="missing fields"):
        parse_http_request_item(b'{"method": "GET"}')


def test_http_envelope_non_object_rejected():
    with pytest.raises(ValueError, match="JSON object"):
        parse_http_request_item(b'["GET"]')


def test_compute_function_decorator_metadata():
    @compute_function(name="custom", memory_limit=1 << 20, binary_size=1234, compute_cost=0.01)
    def implementation(vfs):
        pass

    assert isinstance(implementation, FunctionBinary)
    assert implementation.name == "custom"
    assert implementation.memory_limit == 1 << 20
    assert implementation.binary_size == 1234
    assert implementation.modelled_compute_seconds(0) == 0.01


def test_decorator_defaults_to_function_name():
    @compute_function()
    def my_fn(vfs):
        pass

    assert my_fn.name == "my_fn"
    assert my_fn.language == "python"
