#!/usr/bin/env python3
"""Text2SQL agentic AI workflow (§7.7 of the paper).

Five steps: parse the prompt (compute) → LLM inference over HTTP
(communication) → extract SQL from the completion (compute) → query the
database over HTTP (communication) → format the rows (compute).  The
LLM is a latency-faithful mock (1238 ms, as the paper measures for
Gemma-3-4b on an H100); the database is the library's own mini SQL
engine behind an HTTP service.

Run:  python examples/text2sql_agent.py
"""

from repro import WorkerConfig, WorkerNode
from repro.apps import (
    PAPER_STEP_SECONDS,
    register_text2sql_app,
    setup_text2sql_services,
)

PROMPTS = [
    "What are the top rated movies?",
    "How many movies are there?",
    "What is the average rating of movies?",
]


def main():
    worker = WorkerNode(WorkerConfig(total_cores=4))
    setup_text2sql_services(worker)
    register_text2sql_app(worker)

    for prompt in PROMPTS:
        result = worker.invoke_and_run("text2sql", {"prompt": prompt.encode()})
        answer = result.output("answer").item("text").text()
        print(f"Q: {prompt}")
        print(f"   ({result.latency:.2f} s end-to-end, "
              f"{100 * PAPER_STEP_SECONDS['llm_request'] / result.latency:.0f}% in the LLM call)")
        for line in answer.splitlines():
            print(f"   {line}")
        print()


if __name__ == "__main__":
    main()
