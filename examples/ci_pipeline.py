#!/usr/bin/env python3
"""A CI/CD pipeline on Dandelion (one of the paper's §3 target domains).

Demonstrates two more platform features at once:

* functions registered from **Python source text** (the §4.2
  interpreter path) with only safe builtins + ``hlib`` available;
* the ``key`` distribution: test cases are grouped by suite, one
  sandbox per suite, fanned out in parallel.

Pipeline:  build (checksum the sources)  →  test (per-suite instances)
           →  report (aggregate verdicts).

Run:  python examples/ci_pipeline.py
"""

from repro import DataItem, DataSet, WorkerConfig, WorkerNode
from repro.functions import python_function_from_source

BUILD_SOURCE = """
def main(vfs):
    # "Compile": concatenate the sources and stamp a checksum.
    blob = b""
    for name in vfs.listdir("/in/sources"):
        blob += vfs.read_bytes("/in/sources/" + name)
    artifact = hlib.json_dumps({"size": len(blob), "crc": hlib.crc32(blob)})
    # Emit one test job per suite, keyed so 'key' distribution groups them.
    for name in vfs.listdir("/in/tests"):
        suite = name.split(".")[0]
        vfs.write_bytes("/out/jobs/" + name, vfs.read_bytes("/in/tests/" + name), key=suite)
    vfs.write_text("/out/artifact/meta", artifact)
"""

TEST_SOURCE = """
def main(vfs):
    results = []
    for name in sorted(vfs.listdir("/in/jobs")):
        case = vfs.read_text("/in/jobs/" + name)
        expression, _, expected = case.partition("==")
        passed = str(eval_expr(expression.strip())) == expected.strip()
        results.append([name, "pass" if passed else "FAIL"])
    vfs.write_text("/out/verdicts/result", hlib.format_csv(results))

def eval_expr(text):
    # A deliberately tiny calculator: ints, + and *.
    total = 0
    for term in text.split("+"):
        product = 1
        for factor in term.split("*"):
            product = product * int(factor.strip())
        total = total + product
    return total
"""

REPORT_SOURCE = """
def main(vfs):
    rows = []
    for name in sorted(vfs.listdir("/in/verdicts")):
        rows.extend(hlib.parse_csv(vfs.read_text("/in/verdicts/" + name)))
    failed = [r for r in rows if r[1] != "pass"]
    summary = hlib.format_table(["case", "verdict"], rows)
    status = "SUCCESS" if not failed else str(len(failed)) + " FAILURES"
    vfs.write_text("/out/report/summary", status + "\\n" + summary)
"""

PIPELINE = """
composition ci {
    compute build uses ci_build in(sources, tests) out(jobs, artifact);
    compute test uses ci_test in(jobs) out(verdicts);
    compute report uses ci_report in(verdicts) out(report);

    input sources -> build.sources;
    input tests -> build.tests;
    build.jobs -> test.jobs [key];        # one sandbox per test suite
    test.verdicts -> report.verdicts [all];
    output report.report -> report;
    output build.artifact -> artifact;
}
"""


def main():
    worker = WorkerNode(WorkerConfig(total_cores=8))
    worker.frontend.register_function(
        python_function_from_source("ci_build", BUILD_SOURCE, compute_cost=2e-3))
    worker.frontend.register_function(
        python_function_from_source("ci_test", TEST_SOURCE, compute_cost=8e-3))
    worker.frontend.register_function(
        python_function_from_source("ci_report", REPORT_SOURCE, compute_cost=1e-3))
    worker.frontend.register_composition(PIPELINE)

    sources = DataSet("sources", [
        DataItem("math.c", b"int add(int a,int b){return a+b;}"),
        DataItem("mul.c", b"int mul(int a,int b){return a*b;}"),
    ])
    tests = DataSet("tests", [
        DataItem("arith.t1", b"1 + 2 == 3"),
        DataItem("arith.t2", b"2 * 3 + 1 == 7"),
        DataItem("scale.t1", b"10 * 10 == 100"),
        DataItem("scale.t2", b"5 * 5 + 5 == 31"),   # deliberately failing
    ])

    result = worker.invoke_and_run("ci", {"sources": sources, "tests": tests})
    print(f"pipeline latency: {result.latency * 1e3:.2f} ms (simulated)")
    print(f"artifact: {result.output('artifact').item('meta').text()}")
    print(f"sandboxes: {worker.compute_group.tasks_executed} "
          f"(build + one per suite + report)\n")
    print(result.output("report").item("summary").text())


if __name__ == "__main__":
    main()
