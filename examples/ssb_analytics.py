#!/usr/bin/env python3
"""Elastic SQL analytics: SSB queries as Dandelion compositions (§7.7).

Generates Star Schema Benchmark data, loads it into a simulated S3
bucket as partitioned objects, compiles each query into a Dandelion
DAG (partition-parallel scan via an ``each`` edge, broadcast dimension
tables, re-aggregating merge), runs it, and cross-checks the result
against single-process local execution.  Also prices each query on the
Athena model for comparison (Fig 9).

Run:  python examples/ssb_analytics.py
"""

import json

from repro import WorkerConfig, WorkerNode
from repro.net import ObjectStoreService
from repro.query import (
    AthenaModel,
    Ec2CostModel,
    Table,
    generate_ssb_tables,
    load_ssb_to_store,
    register_ssb_query,
    run_ssb_query,
)

QUERIES = ["Q1.1", "Q2.1", "Q3.1", "Q4.1"]
PARTITIONS = 16


def main():
    tables = generate_ssb_tables(scale_factor=0.005, seed=3)
    print("generated SSB tables:",
          ", ".join(f"{name}={table.num_rows} rows" for name, table in tables.items()))

    worker = WorkerNode(WorkerConfig(total_cores=32))
    store = ObjectStoreService()
    worker.network.register(store)
    manifest = load_ssb_to_store(tables, store, partitions=PARTITIONS)
    print(f"loaded {manifest['total_bytes'] / 1e6:.2f} MB into s3://{manifest['bucket']} "
          f"({PARTITIONS} lineorder partitions + 4 dimension objects)\n")

    athena = AthenaModel()
    ec2 = Ec2CostModel()
    for query_name in QUERIES:
        composition = register_ssb_query(worker, query_name, partitions=PARTITIONS)
        result = worker.invoke_and_run(composition, {"query": query_name.encode()})
        dag_table = Table.from_bytes(result.output("result").item("table").data)
        local = run_ssb_query(query_name, tables)
        assert dag_table.num_rows == local.num_rows, "distributed != local!"
        rows = json.loads(result.output("result").item("rows").data)
        athena_s = athena.latency_seconds(manifest["total_bytes"], joins=3)
        print(f"{query_name}: {dag_table.num_rows} rows in {result.latency * 1e3:.1f} ms "
              f"(Athena model: {athena_s:.2f} s); "
              f"cost {ec2.cost_cents(result.latency):.5f}¢ vs "
              f"Athena {athena.cost_cents(manifest['total_bytes']):.3f}¢")
        if rows:
            print(f"   first row: {rows[0]}")
    print("\nall distributed results verified against local execution")


if __name__ == "__main__":
    main()
