#!/usr/bin/env python3
"""Azure-trace replay: the memory-elasticity headline (Figs 1 and 10).

Replays the same synthetic Azure-Functions-like invocation stream on
(a) Dandelion with per-request contexts and (b) Firecracker MicroVMs
under Knative-style keep-alive autoscaling, then compares committed
memory and tail latency.

Run:  python examples/azure_trace_replay.py
"""

from repro.experiments import default_trace
from repro.trace import replay_on_dandelion, replay_on_faas

MiB = 1 << 20


def main():
    trace = default_trace(duration_seconds=900.0)
    print(f"trace: {len(trace.functions)} functions, "
          f"{trace.total_invocations} invocations over {trace.duration_seconds:.0f} s "
          f"({trace.average_rps:.1f} rps average)\n")

    dandelion = replay_on_dandelion(trace)
    firecracker = replay_on_faas(trace)

    for report in (dandelion, firecracker):
        summary = report.summary()
        print(f"{summary['platform']:>22}: "
              f"avg committed {summary['avg_committed_mib']:8.1f} MiB | "
              f"peak {summary['peak_committed_mib']:8.1f} MiB | "
              f"p99 latency {summary['p99_latency'] * 1e3:7.1f} ms | "
              f"cold {summary['cold_fraction'] * 100:5.1f}%")

    savings = 100 * (
        1 - dandelion.average_committed_bytes() / firecracker.average_committed_bytes()
    )
    over = firecracker.average_committed_bytes() / max(1, firecracker.average_active_bytes())
    print(f"\nKnative over-provisions {over:.0f}x more memory than active demand (paper: 16x)")
    print(f"Dandelion commits {savings:.1f}% less memory on average (paper: 96%)")


if __name__ == "__main__":
    main()
