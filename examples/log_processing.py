#!/usr/bin/env python3
"""The distributed log-processing application from Fig 3 of the paper.

Flow: an access token is exchanged at an auth service for the list of
authorized log-shard endpoints; the shards are fetched in parallel by
the HTTP communication function (``each`` edge); a render function
aggregates everything into one HTML report.

Run:  python examples/log_processing.py
"""

from repro import WorkerConfig, WorkerNode
from repro.apps import DEFAULT_TOKEN, register_logproc_app, setup_log_services


def main():
    worker = WorkerNode(WorkerConfig(total_cores=8))
    endpoints = setup_log_services(worker, shard_count=6, lines_per_shard=80)
    register_logproc_app(worker)
    print(f"provisioned auth service + {len(endpoints)} log shards")

    result = worker.invoke_and_run("logproc", {"token": DEFAULT_TOKEN.encode()})
    report = result.output("report").item("report").text()

    print(f"latency: {result.latency * 1e3:.2f} ms (simulated)")
    print(f"compute sandboxes: {worker.compute_group.tasks_executed}, "
          f"HTTP exchanges: {worker.comm_group.tasks_executed}")
    summary = report.split("<p>")[1].split("</p>")[0]
    print(f"report summary: {summary}")
    print(f"report size: {len(report)} bytes of HTML")

    # An invalid token is rejected by the auth service and surfaces as
    # an invocation failure rather than a silent empty report.
    denied = worker.invoke_and_run("logproc", {"token": b"stolen-token"})
    print(f"invalid token -> ok={denied.ok} ({denied.error})")


if __name__ == "__main__":
    main()
