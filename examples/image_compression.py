#!/usr/bin/env python3
"""Image compression: QOI → PNG inside a Dandelion compute function.

The compute-intensive application of Fig 8: a pure compute function
decodes a real QOI image and encodes a real PNG, all through the
in-memory virtual filesystem (no syscalls).  The resulting PNG is
written to /tmp by the *driver* so you can open it.

Run:  python examples/image_compression.py
"""

import pathlib

from repro import DataItem, DataSet, WorkerConfig, WorkerNode
from repro.apps import generate_test_image, register_compression_app
from repro.apps.png import png_decode
from repro.apps.qoi import qoi_decode


def main():
    worker = WorkerNode(WorkerConfig(total_cores=4))
    register_compression_app(worker)

    qoi_bytes = generate_test_image(seed=7)
    _pixels, width, height, _channels = qoi_decode(qoi_bytes)
    print(f"input:  {len(qoi_bytes)} bytes of QOI ({width}x{height} RGBA)")

    result = worker.invoke_and_run(
        "image_compress",
        {"image": DataSet("image", [DataItem("photo", qoi_bytes)])},
    )
    png_bytes = result.output("png").item("photo.png").data
    print(f"output: {len(png_bytes)} bytes of PNG")
    print(f"latency: {result.latency * 1e3:.2f} ms (simulated; paper: 18.23 ms avg)")

    # Verify the conversion was lossless.
    png_pixels, *_ = png_decode(png_bytes)
    qoi_pixels, *_ = qoi_decode(qoi_bytes)
    assert png_pixels == qoi_pixels, "pixel mismatch!"
    print("verified: PNG pixels identical to the QOI source")

    out_path = pathlib.Path("/tmp/dandelion_example.png")
    out_path.write_bytes(png_bytes)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
