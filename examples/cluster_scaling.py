#!/usr/bin/env python3
"""Multi-worker clusters: Dirigent-style load balancing (§5).

Runs the same burst of SSB-style analytical work through clusters of
growing size and shows near-linear scale-out — the multi-node story
§7.7 appeals to for inputs beyond one machine.

Run:  python examples/cluster_scaling.py
"""

from repro.cluster import ClusterManager
from repro.functions import compute_function
from repro.worker import WorkerConfig

BATCH = 64


@compute_function(name="analyze_chunk", compute_cost=8e-3)
def analyze_chunk(vfs):
    """Stand-in for a per-partition analytical operator (8 ms native)."""
    vfs.write_bytes("/out/out/r", b"partial-aggregate")


COMPOSITION = """
composition analyze {
    compute a uses analyze_chunk in(chunk) out(out);
    input chunk -> a.chunk;
    output a.out -> result;
}
"""


def run_cluster(worker_count: int):
    cluster = ClusterManager(
        worker_count=worker_count,
        worker_config=WorkerConfig(total_cores=9, control_plane_enabled=False),
        policy="least_loaded",
    )
    cluster.register_function(analyze_chunk)
    cluster.register_composition(COMPOSITION)
    processes = [cluster.invoke("analyze", {"chunk": b"data"}) for _ in range(BATCH)]
    cluster.env.run(until=cluster.env.all_of(processes))
    return cluster


def main():
    print(f"dispatching a burst of {BATCH} analytical invocations\n")
    baseline = None
    for worker_count in (1, 2, 4, 8):
        cluster = run_cluster(worker_count)
        makespan = cluster.env.now
        baseline = baseline or makespan
        spread = cluster.per_worker_invocations
        print(f"{worker_count} worker(s): makespan {makespan * 1e3:7.2f} ms  "
              f"(speedup {baseline / makespan:4.1f}x)  "
              f"per-worker spread {min(spread.values())}..{max(spread.values())}")
    print("\nevery invocation cold-started its sandbox; the cluster manager")
    print("replays registrations onto new workers and balances by load")


if __name__ == "__main__":
    main()
