#!/usr/bin/env python3
"""Quickstart: register compute functions, compose a DAG, invoke it.

Builds a three-stage composition — tokenize, per-token transform
(fanned out with an ``each`` edge, one lightweight sandbox per token),
and aggregate — and runs it on a simulated 8-core Dandelion worker.

Run:  python examples/quickstart.py
"""

from repro import WorkerConfig, WorkerNode, compute_function
from repro.functions import read_items, write_item


@compute_function(compute_cost=50e-6)
def tokenize(vfs):
    """Split the input sentence into one item per word."""
    sentence = vfs.read_text("/in/sentence/sentence")
    for position, word in enumerate(sentence.split()):
        write_item(vfs, "words", f"w{position:03d}", word.encode())


@compute_function(compute_cost=20e-6)
def emphasize(vfs):
    """Uppercase one word (runs as its own instance per word)."""
    (word,) = read_items(vfs, "word")
    write_item(vfs, "loud", word.ident, word.data.upper())


@compute_function(compute_cost=30e-6)
def join_words(vfs):
    """Merge the per-word results back into a sentence."""
    words = sorted(read_items(vfs, "words"), key=lambda item: item.ident)
    sentence = b" ".join(item.data for item in words)
    write_item(vfs, "result", "sentence", sentence)


COMPOSITION = """
composition shout_pipeline {
    compute tok uses tokenize in(sentence) out(words);
    compute emp uses emphasize in(word) out(loud);
    compute agg uses join_words in(words) out(result);

    input sentence -> tok.sentence;
    tok.words -> emp.word [each];     # one sandbox per word
    emp.loud -> agg.words [all];
    output agg.result -> result;
}
"""


def main():
    worker = WorkerNode(WorkerConfig(total_cores=8, backend="kvm"))
    worker.frontend.register_function(tokenize)
    worker.frontend.register_function(emphasize)
    worker.frontend.register_function(join_words)
    worker.frontend.register_composition(COMPOSITION)

    result = worker.invoke_and_run(
        "shout_pipeline", {"sentence": b"dandelion makes cold starts cheap"}
    )

    print("output:   ", result.output("result").item("sentence").text())
    print(f"latency:   {result.latency * 1e3:.3f} ms (simulated)")
    stats = worker.stats()
    print(f"sandboxes: {stats['compute_tasks']} compute tasks, "
          f"every one cold-started in this invocation")
    print(f"memory:    peak {stats['peak_committed_bytes'] / 1024:.0f} KiB committed, "
          f"{stats['committed_bytes']} bytes after completion")


if __name__ == "__main__":
    main()
