"""§7.7: Text2SQL agentic workflow latency breakdown."""

import pytest

from repro.experiments import run_sec77

from conftest import run_and_render


def test_sec77_text2sql(benchmark):
    result = run_and_render(benchmark, run_sec77)
    total = result.row(step="end_to_end_measured")["seconds"]
    # Paper: ~2 s end to end for the sample prompt.
    assert total == pytest.approx(2.015, rel=0.08)
    # The LLM request dominates at ~61%.
    llm = result.row(step="llm_request")
    assert 55 < llm["share_pct"] < 68
    # The five steps account for (almost) the whole pipeline.
    step_sum = sum(
        row["seconds"] for row in result.rows if row["step"] != "end_to_end_measured"
    )
    assert step_sum == pytest.approx(total, rel=0.05)
