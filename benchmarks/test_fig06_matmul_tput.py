"""Fig 6: 128x128 matmul latency/throughput on the 16-core server."""

from repro.experiments import run_fig06

from conftest import run_and_render


def _peak(result, system):
    sustained = [
        row["achieved_rps"]
        for row in result.rows
        if row["system"] == system and not row["saturated"]
    ]
    return max(sustained) if sustained else 0.0


def _unloaded(result, system):
    return [row for row in result.rows if row["system"] == system][0]


def test_fig06_matmul_throughput(benchmark):
    result = run_and_render(benchmark, run_fig06, duration_seconds=0.6)
    peaks = {
        system: _peak(result, system)
        for system in (
            "dandelion-kvm", "dandelion-rwasm", "firecracker-snapshot",
            "wasmtime", "hyperlight",
        )
    }
    # Paper: Dandelion-KVM 4800 > FC-snap 3000 > WT 2600; rwasm hurt by
    # transpiled matmul; Hyperlight far behind.
    assert peaks["dandelion-kvm"] > peaks["firecracker-snapshot"] > peaks["wasmtime"]
    assert 4000 < peaks["dandelion-kvm"] < 6200
    assert 2400 < peaks["firecracker-snapshot"] < 4000
    assert 1800 < peaks["wasmtime"] < 3200
    assert peaks["dandelion-rwasm"] < peaks["dandelion-kvm"]
    assert peaks["hyperlight"] < 800

    # Unloaded latencies: Dandelion low and stable; Hyperlight's 27.5ms
    # average matches the paper's measured components.
    dandelion = _unloaded(result, "dandelion-kvm")
    assert dandelion["p50_ms"] < 4.0
    assert dandelion["p95_ms"] - dandelion["p5_ms"] < 1.0  # stable
    hyperlight = _unloaded(result, "hyperlight")
    assert 25 < hyperlight["p50_ms"] < 30
    # FC is bimodal under the 97% hot ratio: p95 spread visible at load.
    wasmtime = _unloaded(result, "wasmtime")
    assert wasmtime["p50_ms"] > dandelion["p50_ms"]  # slower codegen
