"""Cluster scale-out: throughput scales with worker count (§5, §7.7).

The paper's cluster manager (Dirigent) load-balances composition
invocations across worker nodes; §7.7 notes that larger inputs require
"scaling query execution across multiple Dandelion nodes".  This bench
drives a fixed concurrent batch of compute-heavy invocations through
1-, 2- and 4-worker clusters and checks near-linear makespan scaling.
"""

import pytest

from repro.cluster import ClusterManager
from repro.functions import compute_function
from repro.worker import WorkerConfig

BATCH = 48


def _make_binary():
    @compute_function(name="heavy", compute_cost=5e-3)
    def heavy(vfs):
        vfs.write_bytes("/out/out/r", b"done")

    return heavy


COMPOSITION = """
composition heavy_comp {
    compute h uses heavy in(seed) out(out);
    input seed -> h.seed;
    output h.out -> result;
}
"""


def run_batch(worker_count: int) -> float:
    cluster = ClusterManager(
        worker_count=worker_count,
        worker_config=WorkerConfig(total_cores=5, control_plane_enabled=False),
        policy="least_loaded",
    )
    cluster.register_function(_make_binary())
    cluster.register_composition(COMPOSITION)
    processes = [cluster.invoke("heavy_comp", {"seed": b"x"}) for _ in range(BATCH)]
    cluster.env.run(until=cluster.env.all_of(processes))
    assert all(process.value.ok for process in processes)
    return cluster.env.now


def test_cluster_scaling(benchmark):
    makespans = benchmark.pedantic(
        lambda: {n: run_batch(n) for n in (1, 2, 4)}, rounds=1, iterations=1
    )
    print("\nmakespan by cluster size: "
          + ", ".join(f"{n}w={t * 1e3:.1f}ms" for n, t in makespans.items()))
    # Doubling workers roughly halves makespan for a parallel batch.
    assert makespans[2] < 0.65 * makespans[1]
    assert makespans[4] < 0.65 * makespans[2]
    # And 4 workers stay within 2x of perfect linear scaling.
    assert makespans[4] > makespans[1] / 8
