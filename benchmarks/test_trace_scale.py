"""Trace-scale benchmark: sharded replay vs the pre-PR single kernel.

Re-measures the reduced (10×) matrix — ~70k invocations through the
baseline eager-replay path and the sharded lean kernel — and asserts
the shape the committed ``BENCH_trace_scale.json`` records: the lean
sharded engine beats the pre-existing single kernel well past the CI
floor, and every configuration replays the identical stream.
"""

from repro.experiments.bench_trace_scale import FLOORS, trace_scale_matrix


def test_trace_scale_10x_matrix(benchmark):
    matrix = benchmark.pedantic(
        trace_scale_matrix, args=(10.0,), rounds=1, iterations=1
    )
    rows = {
        (row.get("engine"), row.get("shards"), row.get("executor")): row
        for row in matrix["rows"]
    }
    baseline = rows[("baseline_single_kernel", None, None)]
    lean_1 = rows[("lean", 1, "serial")]
    assert baseline["invocations"] == lean_1["invocations"] > 50_000
    print()
    for row in matrix["rows"]:
        label = f"{row['engine']}-{row.get('shards', 1)}-{row.get('executor', '')}"
        print(f"{label:32s} {row['wall_seconds']:8.2f}s")
    print(f"speedup lean-1 vs baseline:   {matrix['speedup_lean_1_vs_baseline']}x")
    print(f"speedup 4-shard vs baseline:  {matrix['speedup_4_shards_vs_baseline']}x")
    assert matrix["speedup_lean_1_vs_baseline"] >= FLOORS["speedup_lean_1_min_10x"]
    assert (
        matrix["speedup_4_shards_vs_baseline"] >= FLOORS["speedup_4_shards_min_10x"]
    )
    for row in matrix["rows"]:
        if row["engine"] == "lean":
            assert row["events_per_second"] >= FLOORS["events_per_second_min"]
