"""Fig 1: Knative autoscaling commits far more memory than active demand."""

from repro.experiments import default_trace, run_fig01

from conftest import run_and_render


def test_fig01_committed_vs_active(benchmark):
    trace = default_trace(duration_seconds=900.0)
    result = run_and_render(benchmark, run_fig01, trace)
    committed = result.column("committed_mib")
    active = result.column("active_mib")
    # Committed memory dwarfs active demand at every sampled instant
    # after warmup (paper: 16x on average).
    for c, a in list(zip(committed, active))[2:]:
        assert c > 3 * max(a, 1.0)
    average_ratio = (sum(committed) / len(committed)) / max(
        sum(active) / len(active), 1e-9
    )
    assert average_ratio > 8  # order-of-magnitude over-provisioning
