"""Fig 10: Azure trace — Dandelion vs Firecracker+Knative memory and p99."""

from repro.experiments import default_trace, run_fig10

from conftest import run_and_render


def test_fig10_azure_trace(benchmark):
    trace = default_trace(duration_seconds=900.0)
    result = run_and_render(benchmark, run_fig10, trace)
    dandelion = result.column("dandelion_mib")
    firecracker = result.column("firecracker_mib")
    # Dandelion commits a small fraction of Firecracker's memory at
    # every sampled instant after warmup (paper: 4% on average).
    for d, f in list(zip(dandelion, firecracker))[2:]:
        assert d < 0.25 * f
    avg_d = sum(dandelion) / len(dandelion)
    avg_f = sum(firecracker) / len(firecracker)
    assert avg_d < 0.1 * avg_f  # >=90% memory savings (paper: 96%)
    # The notes carry the p99 comparison; Dandelion must not be slower.
    p99_note = next(n for n in result.notes if n.startswith("p99"))
    assert "reduction" in p99_note
