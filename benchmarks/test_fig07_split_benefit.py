"""Fig 7: compute/communication split vs monolithic D-hybrid."""

from repro.experiments import run_fig07

from conftest import run_and_render


def _peak(result, system, workload):
    sustained = [
        row["achieved_rps"]
        for row in result.rows
        if row["system"] == system and row["workload"] == workload and not row["saturated"]
    ]
    return max(sustained) if sustained else 0.0


def test_fig07_split_benefit(benchmark):
    result = run_and_render(benchmark, run_fig07, duration_seconds=0.4)

    # The I/O workload: pinned D-hybrid wastes cores during I/O waits,
    # unpinned high-tpc is needed; Dandelion matches the best static
    # config without retuning.
    io_peaks = {
        s: _peak(result, s, "fetch_and_compute")
        for s in ("dandelion", "dhybrid-tpc1-pinned", "dhybrid-tpc5")
    }
    assert io_peaks["dhybrid-tpc1-pinned"] < 0.6 * io_peaks["dhybrid-tpc5"]
    assert io_peaks["dandelion"] >= 0.95 * io_peaks["dhybrid-tpc5"]

    # The compute workload: pinned tpc1 is the best static config;
    # Dandelion stays within the one-comm-core reservation of it.
    compute_peaks = {
        s: _peak(result, s, "matmul")
        for s in ("dandelion", "dhybrid-tpc1-pinned", "dhybrid-tpc5")
    }
    assert compute_peaks["dandelion"] >= 0.80 * compute_peaks["dhybrid-tpc1-pinned"]

    # No single static D-hybrid config is best at both workloads, while
    # Dandelion is within 5% of the best on io and 80% on compute.
    best_io = max(io_peaks, key=io_peaks.get)
    best_compute = max(
        (s for s in compute_peaks if s != "dandelion"), key=compute_peaks.get
    )
    assert best_io != "dhybrid-tpc1-pinned"
    assert best_compute != "dhybrid-tpc5" or compute_peaks["dhybrid-tpc5"] <= compute_peaks["dhybrid-tpc1-pinned"] * 1.05
