"""§7.4: composition overhead vs number of compute-communication phases."""

import pytest

from repro.experiments import run_sec74

from conftest import run_and_render


def test_sec74_composition_chain(benchmark):
    result = run_and_render(benchmark, run_sec74)
    # Linear growth for every system: the latency at 16 phases is close
    # to 2x the latency at 8 phases.
    for column in (
        "dandelion_uncached_ms", "dandelion_cached_ms", "fc_hot_ms", "wasmtime_ms",
    ):
        at_8 = result.row(phases=8)[column]
        at_16 = result.row(phases=16)[column]
        assert at_16 == pytest.approx(2 * at_8, rel=0.25), column

    at_8 = result.row(phases=8)
    at_16 = result.row(phases=16)
    # Dandelion uncached within ~25% of Firecracker-hot at 8 phases
    # (paper: 17%) despite creating a sandbox per phase.
    overhead_8 = at_8["dandelion_uncached_ms"] / at_8["fc_hot_ms"] - 1
    assert overhead_8 < 0.30
    # Only a few ms slower at 16 phases (paper: ~4 ms).
    assert at_16["dandelion_uncached_ms"] - at_16["fc_hot_ms"] < 8.0
    # Binary caching buys little even for long chains (paper: 0.5 ms).
    assert at_16["dandelion_uncached_ms"] - at_16["dandelion_cached_ms"] < 2.0
    # Cold Firecracker pays its restore up front: higher base, same slope.
    assert at_16["fc_cold_ms"] > at_16["fc_hot_ms"] + 20
    assert at_16["fc_cold_ms"] > at_16["dandelion_uncached_ms"]
