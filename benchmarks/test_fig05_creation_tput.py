"""Fig 5: sandbox-creation tail latency vs throughput (0% hot)."""

from repro.experiments import run_fig05

from conftest import run_and_render


def _peak(result, system):
    sustained = [
        row["achieved_rps"]
        for row in result.rows
        if row["system"] == system and not row["saturated"]
    ]
    return max(sustained) if sustained else 0.0


def _unloaded_p99(result, system):
    rows = [row for row in result.rows if row["system"] == system]
    return rows[0]["p99_ms"]


def test_fig05_creation_throughput(benchmark):
    result = run_and_render(benchmark, run_fig05, duration_seconds=0.6)
    peaks = {
        system: _peak(result, system)
        for system in (
            "dandelion-cheri", "dandelion-kvm", "wasmtime",
            "firecracker-snapshot", "firecracker", "gvisor",
        )
    }
    # Dandelion backends and pooled Wasmtime live in the thousands of
    # RPS; FC-snapshot is restore-limited to low hundreds (paper: ~120);
    # fresh-boot FC and gVisor cannot sustain even the lowest rate.
    assert peaks["dandelion-cheri"] > 10_000
    assert peaks["dandelion-kvm"] > 2_000
    assert 4_000 < peaks["wasmtime"] < 12_000
    assert peaks["firecracker-snapshot"] < 300
    assert peaks["firecracker"] == 0.0
    assert peaks["gvisor"] == 0.0
    # Unloaded tail latency ordering: Dandelion sub-ms, FC-snap tens of
    # ms, fresh FC hundreds of ms, gVisor worst.
    assert _unloaded_p99(result, "dandelion-cheri") < 0.2
    assert _unloaded_p99(result, "dandelion-kvm") < 1.0
    assert 10 < _unloaded_p99(result, "firecracker-snapshot") < 60
    assert _unloaded_p99(result, "firecracker") > 100
    assert _unloaded_p99(result, "gvisor") > _unloaded_p99(result, "firecracker")
