"""Simulation-kernel perf suite (pytest-benchmark).

Micro-benchmarks for the event-kernel hot paths and the
processor-sharing CPU, plus a reduced Fig 5 sweep as an end-to-end
smoke gate.  The wall-clock assertions are deliberately generous —
they catch a 10× regression (e.g. reintroducing the O(n²) rescan),
not 10% noise; trend tracking lives in ``BENCH_sim_kernel.json``
(``python -m repro bench``).
"""

import time

from repro.experiments.bench_kernel import (
    bench_fig05_reduced,
    bench_process_spawn,
    bench_ps_cpu_loaded,
    bench_timeout_churn,
)


def test_bench_timeout_churn(benchmark):
    benchmark.pedantic(bench_timeout_churn, args=(100_000,), rounds=1, iterations=1)


def test_bench_process_spawn(benchmark):
    benchmark.pedantic(bench_process_spawn, args=(30_000,), rounds=1, iterations=1)


def test_bench_ps_cpu_loaded(benchmark):
    # The previously quadratic path: thousands of queued jobs on an
    # oversubscribed PS CPU.  Pre-rewrite this size took minutes.
    start = time.perf_counter()
    benchmark.pedantic(bench_ps_cpu_loaded, args=(20_000, 4), rounds=1, iterations=1)
    assert time.perf_counter() - start < 30.0


def test_bench_fig05_reduced(benchmark):
    seconds = benchmark.pedantic(bench_fig05_reduced, rounds=1, iterations=1)
    # Post-rewrite this runs in well under a second; the old
    # implementation took a few seconds.  Budget catches order-of-
    # magnitude regressions only.
    assert seconds < 30.0
