"""Fig 8: multiplexing compute- and I/O-intensive apps under bursty load."""

from repro.experiments import run_fig08

from conftest import run_and_render


def test_fig08_multiplexing(benchmark):
    result = run_and_render(benchmark, run_fig08)

    def row(system, app):
        return result.row(system=system, app=app)

    # Dandelion has the lowest relative variance on BOTH applications —
    # the paper's headline stability result.
    for app in ("logproc", "compress"):
        dandelion = row("dandelion", app)["rel_variance_pct"]
        assert dandelion < row("firecracker", app)["rel_variance_pct"]
        assert dandelion < row("wasmtime", app)["rel_variance_pct"]

    # Average latencies land near the paper's measurements.
    assert 14 < row("dandelion", "compress")["mean_ms"] < 23      # paper 18.23
    assert 20 < row("dandelion", "logproc")["mean_ms"] < 33       # paper 27.92

    # Firecracker is bimodal: p99 well above its own median regime.
    fc = row("firecracker", "compress")
    assert fc["p99_ms"] > 1.8 * fc["mean_ms"]

    # Wasmtime's compression suffers from slower codegen + interference.
    assert row("wasmtime", "compress")["mean_ms"] > row("dandelion", "compress")["mean_ms"] * 1.5
