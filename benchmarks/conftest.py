"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper table/figure with reduced
parameters, prints the same rows/series the paper reports, asserts the
*shape* of the result (orderings, crossovers, rough factors), and
registers the runtime with pytest-benchmark.
"""

import pytest


def run_and_render(benchmark, runner, *args, **kwargs):
    """Run an experiment once under the benchmark timer and print it."""
    result = benchmark.pedantic(runner, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    return result
