"""§8: trusted computing base sizes and live security-property checks."""

from repro.experiments import run_sec8_enforcement, run_sec8_tcb

from conftest import run_and_render


def test_sec8_tcb_table(benchmark):
    result = run_and_render(benchmark, run_sec8_tcb)
    lines = {row["system"]: row["lines"] for row in result.rows}
    # Dandelion's TCB is a fraction of every baseline's.
    assert lines["dandelion"] < lines["gvisor"]
    assert lines["dandelion"] < lines["spin/wasmtime"]
    assert lines["dandelion"] < lines["firecracker"]
    assert lines["dandelion"] * 5 < lines["firecracker"]


def test_sec8_enforcement_checks(benchmark):
    result = run_and_render(benchmark, run_sec8_enforcement)
    for row in result.rows:
        assert row["blocked"] == row["attempts"], row["check"]
    assert "all enforcement checks passed" in result.notes
