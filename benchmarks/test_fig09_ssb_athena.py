"""Fig 9: SSB query latency and cost vs the Athena model."""

from repro.experiments import run_fig09

from conftest import run_and_render


def test_fig09_ssb_vs_athena(benchmark):
    result = run_and_render(
        benchmark, run_fig09, scale_factor=0.01, partitions=16, cores=32
    )
    assert len(result.rows) == 13  # all SSB queries
    for row in result.rows:
        # Dandelion wins on both latency and cost for short queries —
        # Athena's fixed startup and per-TB minimum dominate (the paper
        # reports 40%/67%; our simulated substrate is faster than the
        # authors' real S3/Acero stack, so the margins are larger).
        assert row["dandelion_s"] < row["athena_s"], row["query"]
        assert row["dandelion_cents"] < row["athena_cents"], row["query"]
        assert row["latency_reduction_pct"] >= 40
        assert row["cost_reduction_pct"] >= 67


def test_sec77_scaling_crossover(benchmark):
    """§7.7: at 7 GB one node no longer beats Athena on latency, a small
    cluster does, and Dandelion's cost stays lower everywhere."""
    from repro.experiments import run_fig09_scaling

    result = run_and_render(benchmark, run_fig09_scaling)
    assert all(row["dandelion_cheaper"] for row in result.rows)
    small_single = result.row(input_gb=0.7, nodes=1)
    assert small_single["dandelion_faster"]
    big_single = result.row(input_gb=7.0, nodes=1)
    assert not big_single["dandelion_faster"]
    big_cluster = result.row(input_gb=7.0, nodes=4)
    assert big_cluster["dandelion_faster"]
