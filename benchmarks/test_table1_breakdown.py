"""Table 1: Dandelion per-backend latency breakdown (1x1 matmul)."""

import pytest

from repro.experiments import run_table1

from conftest import run_and_render

PAPER_TOTALS_MORELLO = {"cheri": 89, "rwasm": 241, "process": 486, "kvm": 889}
PAPER_TOTALS_LINUX = {"rwasm": 109, "process": 539, "kvm": 218}


def test_table1_morello(benchmark):
    result = run_and_render(benchmark, run_table1, "morello")
    totals = result.row(stage="total")
    for backend, paper_micro in PAPER_TOTALS_MORELLO.items():
        # Within 5% of the published totals (the residual is the real
        # matmul's own execution time on top of the sandbox stages).
        assert totals[backend] == pytest.approx(paper_micro, rel=0.05)
    # The published ordering: CHERI < rWasm < process < KVM.
    assert totals["cheri"] < totals["rwasm"] < totals["process"] < totals["kvm"]
    assert totals["cheri"] < 95  # "under 90 µs" + matmul time


def test_table1_linux_kernel(benchmark):
    result = run_and_render(benchmark, run_table1, "linux")
    totals = result.row(stage="total")
    for backend, paper_micro in PAPER_TOTALS_LINUX.items():
        assert totals[backend] == pytest.approx(paper_micro, rel=0.05)
    # On a stock kernel, KVM beats the process backend (§7.2).
    assert totals["kvm"] < totals["process"]
