"""Fig 2: Firecracker tail latency vs percentage of hot requests."""

from repro.experiments import run_fig02

from conftest import run_and_render


def test_fig02_tail_sensitivity(benchmark):
    result = run_and_render(benchmark, run_fig02, duration_seconds=8.0)
    all_hot = result.row(hot_pct="100")
    mostly_hot = result.row(hot_pct="97")
    # Median barely moves...
    assert mostly_hot["p50_ms"] < 2 * all_hot["p50_ms"]
    # ...but the tail explodes once a few percent of requests are cold
    # (snapshot restore + demand paging on the critical path).
    assert mostly_hot["p99_ms"] > 3 * all_hot["p99_ms"]
    assert mostly_hot["p999_ms"] > 5 * all_hot["p999_ms"]
    # Tail latency grows monotonically-ish as the hot share drops.
    p999 = result.column("p999_ms")
    assert p999[-1] >= p999[0]
