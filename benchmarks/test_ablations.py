"""Ablation benches for the design choices DESIGN.md calls out.

1. PI controller vs a static core split under a shifting workload mix;
2. binary caching (cached vs uncached loads) on composition chains;
3. the Knative keep-alive window: memory vs cold-start trade-off;
4. ``each`` fan-out vs ``all`` single-instance processing.
"""

import pytest

from repro.functions import compute_function, read_items, write_item
from repro.sim import Rng
from repro.trace import generate_trace, replay_on_faas
from repro.worker import WorkerConfig, WorkerNode
from repro.workloads import (
    fetch_and_compute_phases,
    register_phase_composition,
    run_open_loop,
)


def _mixed_load(worker, name, rate, duration=1.0):
    return run_open_loop(
        worker.env,
        lambda: worker.frontend.invoke(name, {"data": b"x"}),
        rate,
        duration,
        drain_seconds=5.0,
    )


def test_ablation_pi_controller_vs_static(benchmark):
    """The controller re-allocates cores when the workload is I/O-heavy;
    a compute-heavy static split strangles communication throughput."""

    def run(control_plane_enabled):
        worker = WorkerNode(
            WorkerConfig(
                total_cores=8,
                control_plane_enabled=control_plane_enabled,
                initial_comm_cores=1,
            )
        )
        name = register_phase_composition(worker, "io_app", fetch_and_compute_phases(4))
        return _mixed_load(worker, name, rate=1200, duration=1.0)

    result = benchmark.pedantic(lambda: (run(True), run(False)), rounds=1, iterations=1)
    with_controller, static = result
    print(f"\nPI controller: achieved {with_controller.achieved_rps:.0f} rps, "
          f"p99 {with_controller.latencies.p99 * 1e3:.1f} ms")
    print(f"static split:  achieved {static.achieved_rps:.0f} rps, "
          f"p99 {static.latencies.p99 * 1e3:.1f} ms")
    # With one static comm core the I/O-heavy app bottlenecks on the
    # communication queue; the controller fixes this autonomously.
    assert with_controller.achieved_rps >= static.achieved_rps
    assert with_controller.latencies.p99 <= static.latencies.p99


def test_ablation_binary_cache_modes(benchmark):
    """Cached binary loads shave a constant per-sandbox cost."""

    def chain_latency(cache_mode):
        worker = WorkerNode(
            WorkerConfig(total_cores=8, control_plane_enabled=False, cache_mode=cache_mode)
        )
        name = register_phase_composition(worker, "chain", fetch_and_compute_phases(8))
        result = worker.invoke_and_run(name, {"data": b"x"})
        assert result.ok
        return result.latency

    latencies = benchmark.pedantic(
        lambda: {mode: chain_latency(mode) for mode in ("never", "warm", "always")},
        rounds=1, iterations=1,
    )
    print(f"\nchain latency by cache mode: "
          + ", ".join(f"{m}={v * 1e3:.2f}ms" for m, v in latencies.items()))
    assert latencies["always"] < latencies["never"]
    # 'warm' pays disk for each function's first load only, landing
    # between the two extremes (each chain function runs exactly once
    # here, so warm == never for a single invocation).
    assert latencies["always"] <= latencies["warm"] <= latencies["never"] + 1e-9


def test_ablation_keepalive_window(benchmark):
    """Longer keep-alive: fewer cold starts, more committed memory."""
    trace = generate_trace(function_count=40, duration_seconds=400, total_rps=6, seed=5)

    def sweep():
        return {
            window: replay_on_faas(trace, keep_alive_seconds=window)
            for window in (0.0, 30.0, 120.0, 600.0)
        }

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for window, report in reports.items():
        print(f"keepalive {window:>5.0f}s: cold {report.cold_fraction * 100:5.1f}%  "
              f"avg committed {report.average_committed_bytes() / 2**20:8.1f} MiB")
    colds = [reports[w].cold_fraction for w in sorted(reports)]
    memories = [reports[w].average_committed_bytes() for w in sorted(reports)]
    # Monotone trade-off: cold fraction falls, memory rises.
    assert all(a >= b for a, b in zip(colds, colds[1:]))
    assert all(a <= b for a, b in zip(memories, memories[1:]))
    assert reports[0.0].cold_fraction == 1.0


@compute_function(compute_cost=2e-3)
def _slow_worker(vfs):
    (item,) = read_items(vfs, "part")
    write_item(vfs, "out", item.ident, item.data)


@compute_function(compute_cost=2e-3 * 8)
def _slow_monolith(vfs):
    for item in read_items(vfs, "part"):
        write_item(vfs, "out", item.ident, item.data)


@compute_function(compute_cost=50e-6)
def _splitter(vfs):
    for index in range(8):
        write_item(vfs, "parts", f"p{index}", b"x")


def test_ablation_each_vs_all_distribution(benchmark):
    """``each`` fan-out exploits data parallelism that ``all`` cannot."""

    def run(distribution):
        worker = WorkerNode(WorkerConfig(total_cores=10, control_plane_enabled=False))
        worker.frontend.register_function(_splitter)
        worker.frontend.register_function(_slow_worker)
        worker.frontend.register_function(_slow_monolith)
        function = "_slow_worker" if distribution == "each" else "_slow_monolith"
        worker.frontend.register_composition(f"""
            composition fan_{distribution} {{
                compute split uses _splitter in(seed) out(parts);
                compute work uses {function} in(part) out(out);
                input seed -> split.seed;
                split.parts -> work.part [{distribution}];
                output work.out -> out;
            }}
        """)
        result = worker.invoke_and_run(f"fan_{distribution}", {"seed": b""})
        assert result.ok
        assert len(result.output("out")) == 8
        return result.latency

    latencies = benchmark.pedantic(
        lambda: {d: run(d) for d in ("each", "all")}, rounds=1, iterations=1
    )
    print(f"\nfan-out latency: each={latencies['each'] * 1e3:.2f}ms, "
          f"all={latencies['all'] * 1e3:.2f}ms")
    # 8 parallel 2ms instances vs one 16ms monolith.
    assert latencies["each"] < latencies["all"] / 2


def test_ablation_copy_vs_remap_data_passing(benchmark):
    """§6.1 future work: remapping memory instead of copying between
    contexts cuts both pipeline latency and peak committed memory."""
    from repro.functions import read_all_bytes

    @compute_function(name="abl_produce", compute_cost=1e-4, memory_limit=64 << 20)
    def produce(vfs):
        write_item(vfs, "payload", "blob", b"z" * 1_000_000)

    @compute_function(name="abl_consume", compute_cost=1e-4, memory_limit=64 << 20)
    def consume(vfs):
        write_item(vfs, "result", "n", str(len(read_all_bytes(vfs, "payload"))).encode())

    def run(mode):
        worker = WorkerNode(
            WorkerConfig(total_cores=4, control_plane_enabled=False, data_passing=mode)
        )
        worker.frontend.register_function(produce)
        worker.frontend.register_function(consume)
        worker.frontend.register_composition("""
            composition abl_pipe {
                compute p uses abl_produce in(seed) out(payload);
                compute c uses abl_consume in(payload) out(result);
                input seed -> p.seed;
                p.payload -> c.payload;
                output c.result -> result;
            }
        """)
        result = worker.invoke_and_run("abl_pipe", {"seed": b""})
        assert result.ok
        return result.latency, worker.memory.peak_bytes

    outcomes = benchmark.pedantic(
        lambda: {mode: run(mode) for mode in ("copy", "remap")}, rounds=1, iterations=1
    )
    copy_latency, copy_peak = outcomes["copy"]
    remap_latency, remap_peak = outcomes["remap"]
    print(f"\n1MB pipeline: copy {copy_latency * 1e3:.2f}ms / {copy_peak >> 10}KiB peak, "
          f"remap {remap_latency * 1e3:.2f}ms / {remap_peak >> 10}KiB peak")
    assert remap_latency < copy_latency
    assert remap_peak < copy_peak
