"""Star Schema Benchmark: schema, data generator, and the 13 queries.

§7.7 evaluates "Star Schema Benchmark [79] queries (which are based on
the industry standard TPC-H benchmark) using 700MB of input data".
This module generates SSB data at a configurable scale factor and
implements all thirteen queries (Q1.1–Q4.3) over the columnar operator
library, both for local execution and for compilation onto Dandelion
compositions.

Scale factor 1 corresponds to ~6M lineorder rows; the reproduction's
benchmarks run small fractions of that (the shapes of the queries, not
the absolute data volume, drive the comparison with Athena).
"""

from __future__ import annotations

from typing import Callable

from ..sim.distributions import Rng
from .columnar import Table
from .operators import (
    Aggregation,
    Predicate,
    filter_rows,
    group_aggregate,
    hash_join,
    sort_rows,
)

__all__ = [
    "generate_ssb_tables",
    "SSB_QUERY_NAMES",
    "run_ssb_query",
    "ssb_query_functions",
]

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS_PER_REGION = 5
_CITIES_PER_NATION = 10

LINEORDER_ROWS_SF1 = 6_000_000
CUSTOMER_ROWS_SF1 = 30_000
SUPPLIER_ROWS_SF1 = 2_000
PART_ROWS_SF1 = 200_000

_MONTH_NAMES = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]


def _nations() -> list[str]:
    names = []
    for region in REGIONS:
        for index in range(_NATIONS_PER_REGION):
            names.append(f"{region[:6]} N{index}")
    # Keep recognisable SSB names where queries depend on them.
    names[names.index("EUROPE N0")] = "UNITED KINGDOM"
    names[names.index("AMERIC N0")] = "UNITED STATES"
    return names


def _nation_region(nation_index: int) -> str:
    return REGIONS[nation_index // _NATIONS_PER_REGION]


def _city(nation: str, index: int) -> str:
    return f"{nation[:9].ljust(9)}{index}"


def _date_dimension() -> Table:
    datekeys, years, yearmonthnums, yearmonths, weeks, months = [], [], [], [], [], []
    days_in_month = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]
    for year in range(1992, 1999):
        day_of_year = 0
        for month in range(1, 13):
            for day in range(1, days_in_month[month - 1] + 1):
                day_of_year += 1
                datekeys.append(year * 10000 + month * 100 + day)
                years.append(year)
                yearmonthnums.append(year * 100 + month)
                yearmonths.append(f"{_MONTH_NAMES[month - 1]}{year}")
                weeks.append(min(53, 1 + day_of_year // 7))
                months.append(month)
    return Table(
        "date",
        {
            "d_datekey": datekeys,
            "d_year": years,
            "d_yearmonthnum": yearmonthnums,
            "d_yearmonth": yearmonths,
            "d_weeknuminyear": weeks,
            "d_monthnuminyear": months,
        },
    )


def generate_ssb_tables(scale_factor: float = 0.001, seed: int = 0) -> dict[str, Table]:
    """Generate the five SSB tables at ``scale_factor``.

    Returns a dict with keys ``lineorder``, ``date``, ``customer``,
    ``supplier``, ``part``.
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    rng = Rng(seed)
    nations = _nations()
    date_dim = _date_dimension()
    datekeys = date_dim.column("d_datekey")

    customer_rows = max(50, int(CUSTOMER_ROWS_SF1 * scale_factor))
    supplier_rows = max(20, int(SUPPLIER_ROWS_SF1 * scale_factor))
    part_rows = max(100, int(PART_ROWS_SF1 * scale_factor))
    lineorder_rows = max(1000, int(LINEORDER_ROWS_SF1 * scale_factor))

    def entity(prefix: str, count: int, table_name: str, key_name: str) -> Table:
        keys, names, cities, nation_col, regions = [], [], [], [], []
        for index in range(count):
            nation_index = rng.randint(0, len(nations) - 1)
            nation = nations[nation_index]
            keys.append(index + 1)
            names.append(f"{prefix}#{index + 1:09d}")
            cities.append(_city(nation, rng.randint(0, _CITIES_PER_NATION - 1)))
            nation_col.append(nation)
            regions.append(_nation_region(nation_index))
        short = prefix[0].lower()
        return Table(
            table_name,
            {
                key_name: keys,
                f"{short}_name": names,
                f"{short}_city": cities,
                f"{short}_nation": nation_col,
                f"{short}_region": regions,
            },
        )

    customer = entity("Customer", customer_rows, "customer", "c_custkey")
    supplier = entity("Supplier", supplier_rows, "supplier", "s_suppkey")

    part_keys, mfgrs, categories, brands, colors = [], [], [], [], []
    for index in range(part_rows):
        mfgr_index = rng.randint(1, 5)
        category_index = rng.randint(1, 5)
        brand_index = rng.randint(1, 40)
        part_keys.append(index + 1)
        mfgrs.append(f"MFGR#{mfgr_index}")
        categories.append(f"MFGR#{mfgr_index}{category_index}")
        brands.append(f"MFGR#{mfgr_index}{category_index}{brand_index:02d}")
        colors.append(rng.choice(["red", "green", "blue", "ivory", "peach"]))
    part = Table(
        "part",
        {
            "p_partkey": part_keys,
            "p_mfgr": mfgrs,
            "p_category": categories,
            "p_brand1": brands,
            "p_color": colors,
        },
    )

    orderdate, custkey, partkey, suppkey = [], [], [], []
    quantity, extendedprice, discount, revenue, supplycost = [], [], [], [], []
    for _ in range(lineorder_rows):
        orderdate.append(int(rng.choice(datekeys)))
        custkey.append(rng.randint(1, customer_rows))
        partkey.append(rng.randint(1, part_rows))
        suppkey.append(rng.randint(1, supplier_rows))
        q = rng.randint(1, 50)
        price = rng.randint(100, 10000)
        d = rng.randint(0, 10)
        quantity.append(q)
        extendedprice.append(price)
        discount.append(d)
        revenue.append(price * (100 - d) // 100)
        supplycost.append(int(price * 0.6))
    lineorder = Table(
        "lineorder",
        {
            "lo_orderdate": orderdate,
            "lo_custkey": custkey,
            "lo_partkey": partkey,
            "lo_suppkey": suppkey,
            "lo_quantity": quantity,
            "lo_extendedprice": extendedprice,
            "lo_discount": discount,
            "lo_revenue": revenue,
            "lo_supplycost": supplycost,
        },
    )
    return {
        "lineorder": lineorder,
        "date": date_dim,
        "customer": customer,
        "supplier": supplier,
        "part": part,
    }


# -- the 13 queries -----------------------------------------------------------


def _q1(tables, year_pred: Predicate, discount_low, discount_high, quantity_pred) -> Table:
    lineorder = filter_rows(
        tables["lineorder"],
        quantity_pred.between("lo_discount", discount_low, discount_high),
    )
    joined = hash_join(lineorder, filter_rows(tables["date"], year_pred), "lo_orderdate", "d_datekey")
    amounts = joined.column("lo_extendedprice") * joined.column("lo_discount")
    table = Table("q1", {"amount": amounts})
    return group_aggregate(table, [], [Aggregation("revenue", "sum", "amount")])


def q1_1(tables) -> Table:
    return _q1(tables, Predicate.where("d_year", "==", 1993), 1, 3,
               Predicate.where("lo_quantity", "<", 25))


def q1_2(tables) -> Table:
    return _q1(tables, Predicate.where("d_yearmonthnum", "==", 199401), 4, 6,
               Predicate.true().between("lo_quantity", 26, 35))


def q1_3(tables) -> Table:
    return _q1(
        tables,
        Predicate.where("d_weeknuminyear", "==", 6).and_where("d_year", "==", 1994),
        5, 7,
        Predicate.true().between("lo_quantity", 26, 35),
    )


def _q2(tables, part_pred: Predicate, supplier_region: str) -> Table:
    part = filter_rows(tables["part"], part_pred)
    supplier = filter_rows(
        tables["supplier"], Predicate.where("s_region", "==", supplier_region)
    )
    joined = hash_join(tables["lineorder"], part, "lo_partkey", "p_partkey")
    joined = hash_join(joined, supplier, "lo_suppkey", "s_suppkey")
    joined = hash_join(joined, tables["date"], "lo_orderdate", "d_datekey")
    result = group_aggregate(
        joined, ["d_year", "p_brand1"], [Aggregation("revenue", "sum", "lo_revenue")]
    )
    return sort_rows(result, ["d_year", "p_brand1"])


def q2_1(tables) -> Table:
    return _q2(tables, Predicate.where("p_category", "==", "MFGR#12"), "AMERICA")


def q2_2(tables) -> Table:
    return _q2(
        tables,
        Predicate.true().between("p_brand1", "MFGR#2221", "MFGR#2228"),
        "ASIA",
    )


def q2_3(tables) -> Table:
    return _q2(tables, Predicate.where("p_brand1", "==", "MFGR#2239"), "EUROPE")


def _q3(tables, customer_pred, supplier_pred, date_pred, group_cols) -> Table:
    customer = filter_rows(tables["customer"], customer_pred)
    supplier = filter_rows(tables["supplier"], supplier_pred)
    dates = filter_rows(tables["date"], date_pred)
    joined = hash_join(tables["lineorder"], customer, "lo_custkey", "c_custkey")
    joined = hash_join(joined, supplier, "lo_suppkey", "s_suppkey")
    joined = hash_join(joined, dates, "lo_orderdate", "d_datekey")
    result = group_aggregate(
        joined, group_cols, [Aggregation("revenue", "sum", "lo_revenue")]
    )
    result = sort_rows(result, "revenue", ascending=False)
    return result


def q3_1(tables) -> Table:
    return _q3(
        tables,
        Predicate.where("c_region", "==", "ASIA"),
        Predicate.where("s_region", "==", "ASIA"),
        Predicate.true().between("d_year", 1992, 1997),
        ["c_nation", "s_nation", "d_year"],
    )


def q3_2(tables) -> Table:
    return _q3(
        tables,
        Predicate.where("c_nation", "==", "UNITED STATES"),
        Predicate.where("s_nation", "==", "UNITED STATES"),
        Predicate.true().between("d_year", 1992, 1997),
        ["c_city", "s_city", "d_year"],
    )


def _ki_cities(tables) -> list[str]:
    cities = {
        str(city)
        for city in tables["customer"].column("c_city")
        if str(city).startswith("UNITED KI")
    }
    return sorted(cities)[:2] or ["UNITED KI1", "UNITED KI5"]


def q3_3(tables) -> Table:
    cities = _ki_cities(tables)
    return _q3(
        tables,
        Predicate.true().isin("c_city", cities),
        Predicate.true().isin("s_city", cities),
        Predicate.true().between("d_year", 1992, 1997),
        ["c_city", "s_city", "d_year"],
    )


def q3_4(tables) -> Table:
    cities = _ki_cities(tables)
    return _q3(
        tables,
        Predicate.true().isin("c_city", cities),
        Predicate.true().isin("s_city", cities),
        Predicate.where("d_yearmonth", "==", "Dec1997"),
        ["c_city", "s_city", "d_year"],
    )


def _q4(tables, customer_pred, supplier_pred, part_pred, date_pred, group_cols) -> Table:
    joined = hash_join(
        tables["lineorder"], filter_rows(tables["customer"], customer_pred),
        "lo_custkey", "c_custkey",
    )
    joined = hash_join(joined, filter_rows(tables["supplier"], supplier_pred), "lo_suppkey", "s_suppkey")
    joined = hash_join(joined, filter_rows(tables["part"], part_pred), "lo_partkey", "p_partkey")
    joined = hash_join(joined, filter_rows(tables["date"], date_pred), "lo_orderdate", "d_datekey")
    profits = joined.column("lo_revenue") - joined.column("lo_supplycost")
    augmented = Table(
        "q4",
        {**{c: joined.column(c) for c in group_cols}, "profit_amount": profits},
    )
    result = group_aggregate(
        augmented, group_cols, [Aggregation("profit", "sum", "profit_amount")]
    )
    return sort_rows(result, group_cols)


def q4_1(tables) -> Table:
    return _q4(
        tables,
        Predicate.where("c_region", "==", "AMERICA"),
        Predicate.where("s_region", "==", "AMERICA"),
        Predicate.true().isin("p_mfgr", ["MFGR#1", "MFGR#2"]),
        Predicate.true(),
        ["d_year", "c_nation"],
    )


def q4_2(tables) -> Table:
    return _q4(
        tables,
        Predicate.where("c_region", "==", "AMERICA"),
        Predicate.where("s_region", "==", "AMERICA"),
        Predicate.true().isin("p_mfgr", ["MFGR#1", "MFGR#2"]),
        Predicate.true().isin("d_year", [1997, 1998]),
        ["d_year", "s_nation", "p_category"],
    )


def q4_3(tables) -> Table:
    return _q4(
        tables,
        Predicate.true(),
        Predicate.where("s_nation", "==", "UNITED STATES"),
        Predicate.where("p_category", "==", "MFGR#14"),
        Predicate.true().isin("d_year", [1997, 1998]),
        ["d_year", "s_city", "p_brand1"],
    )


def ssb_query_functions() -> dict[str, Callable[[dict], Table]]:
    """All 13 queries as name -> callable(tables) -> result table."""
    return {
        "Q1.1": q1_1, "Q1.2": q1_2, "Q1.3": q1_3,
        "Q2.1": q2_1, "Q2.2": q2_2, "Q2.3": q2_3,
        "Q3.1": q3_1, "Q3.2": q3_2, "Q3.3": q3_3, "Q3.4": q3_4,
        "Q4.1": q4_1, "Q4.2": q4_2, "Q4.3": q4_3,
    }


SSB_QUERY_NAMES = list(ssb_query_functions())


def run_ssb_query(name: str, tables: dict[str, Table]) -> Table:
    functions = ssb_query_functions()
    if name not in functions:
        raise KeyError(f"unknown SSB query {name!r}; expected one of {SSB_QUERY_NAMES}")
    return functions[name](tables)
