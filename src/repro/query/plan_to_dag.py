"""Compiling SSB queries onto Dandelion compositions (§7.7).

A query runs as the DAG:

.. code-block:: text

    gen ──lo_requests──▶ fetch_lo (comm, each) ──▶ partial (each) ─┐
     └──dim_requests──▶ fetch_dims (comm, all) ──▶────────────────┤
                                                                  ▼
                                                        final (all) ──▶ result

``gen`` formats one HTTP GET per lineorder partition plus one per
dimension table; the communication function fetches them from the
(simulated) S3 bucket; one ``partial`` instance per partition joins its
chunk with the broadcast dimensions and computes partial aggregates;
``final`` merges partials (all SSB aggregates are re-aggregable sums)
and applies the query's ordering.

This is exactly how "Dandelion quickly boots sandboxes and spreads
query execution across all 32 CPU cores": partition parallelism via an
``each`` edge.
"""

from __future__ import annotations

import json

from ..functions.sdk import (
    compute_function,
    format_http_request,
    parse_http_response_item,
    read_items,
    write_item,
)
from ..net.services import ObjectStoreService
from ..worker import WorkerNode
from .columnar import Table
from .operators import Aggregation, group_aggregate, sort_rows
from .ssb import SSB_QUERY_NAMES, run_ssb_query

__all__ = [
    "QueryShape",
    "QUERY_SHAPES",
    "load_ssb_to_store",
    "register_ssb_query",
    "partition_table",
]

_DIMENSIONS = ("date", "customer", "supplier", "part")

# Per-byte processing cost of the partial operator (vectorised scan +
# multi-way join probe, ~250 MB/s per core) used for the modelled
# execution time.
_SECONDS_PER_INPUT_BYTE = 4e-9
_PARTIAL_BASE_SECONDS = 200e-6


class QueryShape:
    """Re-aggregation metadata for one SSB query."""

    def __init__(self, group_by: list[str], value_column: str, order_by, descending: bool):
        self.group_by = group_by
        self.value_column = value_column
        self.order_by = order_by
        self.descending = descending


QUERY_SHAPES: dict[str, QueryShape] = {
    "Q1.1": QueryShape([], "revenue", None, False),
    "Q1.2": QueryShape([], "revenue", None, False),
    "Q1.3": QueryShape([], "revenue", None, False),
    "Q2.1": QueryShape(["d_year", "p_brand1"], "revenue", ["d_year", "p_brand1"], False),
    "Q2.2": QueryShape(["d_year", "p_brand1"], "revenue", ["d_year", "p_brand1"], False),
    "Q2.3": QueryShape(["d_year", "p_brand1"], "revenue", ["d_year", "p_brand1"], False),
    "Q3.1": QueryShape(["c_nation", "s_nation", "d_year"], "revenue", "revenue", True),
    "Q3.2": QueryShape(["c_city", "s_city", "d_year"], "revenue", "revenue", True),
    "Q3.3": QueryShape(["c_city", "s_city", "d_year"], "revenue", "revenue", True),
    "Q3.4": QueryShape(["c_city", "s_city", "d_year"], "revenue", "revenue", True),
    "Q4.1": QueryShape(["d_year", "c_nation"], "profit", ["d_year", "c_nation"], False),
    "Q4.2": QueryShape(["d_year", "s_nation", "p_category"], "profit", ["d_year", "s_nation", "p_category"], False),
    "Q4.3": QueryShape(["d_year", "s_city", "p_brand1"], "profit", ["d_year", "s_city", "p_brand1"], False),
}


def partition_table(table: Table, partitions: int) -> list[Table]:
    """Split a table row-wise into ``partitions`` nearly equal chunks."""
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    import numpy as np

    boundaries = np.linspace(0, table.num_rows, partitions + 1, dtype=int)
    return [
        table.take(np.arange(boundaries[i], boundaries[i + 1]))
        for i in range(partitions)
    ]


def load_ssb_to_store(
    tables: dict[str, Table],
    store: ObjectStoreService,
    bucket: str = "ssb",
    partitions: int = 8,
) -> dict:
    """Serialize SSB tables into the object store.

    The fact table is split into ``partitions`` objects
    (``lineorder/part<i>``); dimensions are single objects.  Returns a
    manifest with object names and total bytes.
    """
    manifest = {"bucket": bucket, "partitions": partitions, "objects": {}, "total_bytes": 0}
    for index, chunk in enumerate(partition_table(tables["lineorder"], partitions)):
        key = f"lineorder/part{index}"
        blob = chunk.to_bytes()
        store.put_object(bucket, key, blob)
        manifest["objects"][key] = len(blob)
        manifest["total_bytes"] += len(blob)
    for name in _DIMENSIONS:
        blob = tables[name].to_bytes()
        store.put_object(bucket, name, blob)
        manifest["objects"][name] = len(blob)
        manifest["total_bytes"] += len(blob)
    return manifest


def register_ssb_query(
    worker: WorkerNode,
    query_name: str,
    store_host: str = "storage.internal",
    bucket: str = "ssb",
    partitions: int = 8,
) -> str:
    """Register composition + functions for one SSB query; returns its name."""
    if query_name not in SSB_QUERY_NAMES:
        raise KeyError(f"unknown SSB query {query_name!r}")
    shape = QUERY_SHAPES[query_name]
    tag = query_name.replace(".", "_").lower()
    composition_name = f"ssb_{tag}"

    @compute_function(name=f"{tag}_gen", compute_cost=20e-6)
    def gen(vfs):
        for index in range(partitions):
            write_item(
                vfs, "lo_requests", f"p{index}",
                format_http_request("GET", f"http://{store_host}/{bucket}/lineorder/part{index}"),
            )
        for dimension in _DIMENSIONS:
            write_item(
                vfs, "dim_requests", dimension,
                format_http_request("GET", f"http://{store_host}/{bucket}/{dimension}"),
            )

    @compute_function(
        name=f"{tag}_partial",
        compute_cost=lambda n: _PARTIAL_BASE_SECONDS + n * _SECONDS_PER_INPUT_BYTE,
        memory_limit=1 << 31,
    )
    def partial(vfs):
        chunk_item = read_items(vfs, "chunk")[0]
        chunk = Table.from_bytes(parse_http_response_item(chunk_item.data)["body"])
        tables = {"lineorder": chunk.with_name("lineorder")}
        for item in read_items(vfs, "dims"):
            body = parse_http_response_item(item.data)["body"]
            tables[item.ident] = Table.from_bytes(body)
        result = run_ssb_query(query_name, tables)
        write_item(vfs, "partial", "agg", result.to_bytes())

    @compute_function(
        name=f"{tag}_final",
        compute_cost=lambda n: 50e-6 + n * _SECONDS_PER_INPUT_BYTE,
        memory_limit=1 << 31,
    )
    def final(vfs):
        partials = [Table.from_bytes(item.data) for item in read_items(vfs, "partials")]
        merged = partials[0]
        for extra in partials[1:]:
            merged = merged.concat(extra)
        result = group_aggregate(
            merged,
            shape.group_by,
            [Aggregation(shape.value_column, "sum", shape.value_column)],
        )
        if shape.order_by:
            result = sort_rows(result, shape.order_by, ascending=not shape.descending)
        write_item(vfs, "result", "table", result.to_bytes())
        write_item(
            vfs, "result", "rows",
            json.dumps(result.to_rows(), default=str).encode(),
        )

    for binary in (gen, partial, final):
        worker.frontend.register_function(binary)
    worker.frontend.register_composition(
        f"""
        composition {composition_name} {{
            compute gen uses {tag}_gen in(query) out(lo_requests, dim_requests);
            comm fetch_lo;
            comm fetch_dims;
            compute partial uses {tag}_partial in(chunk, dims) out(partial);
            compute final uses {tag}_final in(partials) out(result);
            input query -> gen.query;
            gen.lo_requests -> fetch_lo.request [all];
            gen.dim_requests -> fetch_dims.request [all];
            fetch_lo.response -> partial.chunk [each];
            fetch_dims.response -> partial.dims [all];
            partial.partial -> final.partials [all];
            output final.result -> result;
        }}
        """
    )
    return composition_name
