"""Columnar tables — the data substrate of the query engine (§7.7).

The prototype ports Apache Arrow Acero operators to Dandelion; this
reproduction implements a compact Arrow-like columnar layer from
scratch: a :class:`Table` is a named set of equal-length columns,
numeric columns are numpy arrays, string columns are numpy object
arrays.  Tables serialize to a self-describing binary format (JSON
header + raw little-endian buffers; strings as UTF-8 with offsets) so
they can travel through Dandelion data items and the simulated object
store without pickle.
"""

from __future__ import annotations

import io
import json
import struct
from typing import Iterable, Optional

import numpy as np

__all__ = ["Table", "TableError"]

_MAGIC = b"COLT"
_NUMERIC_KINDS = ("i", "u", "f", "b")


class TableError(Exception):
    """Raised for malformed tables or schema mismatches."""


class Table:
    """An immutable-by-convention named collection of columns."""

    def __init__(self, name: str, columns: dict[str, "np.ndarray | list"]):
        if not name:
            raise TableError("table name must be non-empty")
        self.name = name
        self._columns: dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for column_name, values in columns.items():
            array = self._normalize(values)
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise TableError(
                    f"column {column_name!r} has {len(array)} rows, expected {length}"
                )
            self._columns[column_name] = array
        self._length = length or 0

    @staticmethod
    def _normalize(values) -> np.ndarray:
        if isinstance(values, np.ndarray):
            if values.dtype.kind in _NUMERIC_KINDS:
                return values
            return np.asarray(values, dtype=object)
        values = list(values)
        if values and isinstance(values[0], str):
            return np.asarray(values, dtype=object)
        if values and isinstance(values[0], (int, np.integer)):
            return np.asarray(values, dtype=np.int64)
        if values and isinstance(values[0], (float, np.floating)):
            return np.asarray(values, dtype=np.float64)
        if not values:
            return np.asarray(values, dtype=np.int64)
        return np.asarray(values, dtype=object)

    # -- shape ------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise TableError(f"table {self.name!r} has no column {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self._length

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_rows(cls, name: str, rows: Iterable[dict]) -> "Table":
        rows = list(rows)
        if not rows:
            return cls(name, {})
        columns = {key: [row[key] for row in rows] for key in rows[0]}
        return cls(name, columns)

    def to_rows(self) -> list[dict]:
        names = self.column_names
        arrays = [self._columns[n] for n in names]
        return [
            {name: _python_value(array[index]) for name, array in zip(names, arrays)}
            for index in range(self._length)
        ]

    def head(self, count: int) -> "Table":
        return self.take(np.arange(min(count, self._length)))

    def take(self, indices: np.ndarray) -> "Table":
        """Row subset by integer indices (or boolean mask)."""
        return Table(
            self.name, {name: array[indices] for name, array in self._columns.items()}
        )

    def select(self, names: Iterable[str]) -> "Table":
        names = list(names)
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise TableError(f"table {self.name!r} missing columns {missing}")
        return Table(self.name, {n: self._columns[n] for n in names})

    def rename(self, mapping: dict[str, str]) -> "Table":
        return Table(
            self.name,
            {mapping.get(name, name): array for name, array in self._columns.items()},
        )

    def with_name(self, name: str) -> "Table":
        return Table(name, dict(self._columns))

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the self-describing binary format."""
        header: dict = {"name": self.name, "rows": self._length, "columns": []}
        buffers: list[bytes] = []
        for column_name, array in self._columns.items():
            if array.dtype.kind in _NUMERIC_KINDS:
                data = np.ascontiguousarray(array).tobytes()
                header["columns"].append(
                    {"name": column_name, "kind": "numeric", "dtype": array.dtype.str}
                )
                buffers.append(data)
            else:
                encoded = [str(v).encode("utf-8") for v in array]
                offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
                np.cumsum([len(e) for e in encoded], out=offsets[1:])
                header["columns"].append({"name": column_name, "kind": "string"})
                buffers.append(offsets.tobytes())
                buffers.append(b"".join(encoded))
        header_blob = json.dumps(header).encode("utf-8")
        out = io.BytesIO()
        out.write(_MAGIC)
        out.write(struct.pack("<I", len(header_blob)))
        out.write(header_blob)
        for buffer in buffers:
            out.write(struct.pack("<Q", len(buffer)))
            out.write(buffer)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Table":
        view = memoryview(blob)
        if bytes(view[:4]) != _MAGIC:
            raise TableError("not a serialized table (bad magic)")
        (header_length,) = struct.unpack("<I", view[4:8])
        position = 8
        try:
            header = json.loads(bytes(view[position : position + header_length]))
        except ValueError as exc:
            raise TableError(f"corrupt table header: {exc}") from exc
        position += header_length

        def next_buffer() -> memoryview:
            nonlocal position
            if position + 8 > len(view):
                raise TableError("truncated table data")
            (length,) = struct.unpack("<Q", view[position : position + 8])
            position += 8
            if position + length > len(view):
                raise TableError("truncated table buffer")
            buffer = view[position : position + length]
            position += length
            return buffer

        rows = header["rows"]
        columns: dict[str, np.ndarray] = {}
        for descriptor in header["columns"]:
            if descriptor["kind"] == "numeric":
                array = np.frombuffer(next_buffer(), dtype=np.dtype(descriptor["dtype"]))
                if len(array) != rows:
                    raise TableError("numeric column length mismatch")
                columns[descriptor["name"]] = array.copy()
            else:
                offsets = np.frombuffer(next_buffer(), dtype=np.int64)
                payload = bytes(next_buffer())
                if len(offsets) != rows + 1:
                    raise TableError("string offsets length mismatch")
                values = np.empty(rows, dtype=object)
                for index in range(rows):
                    values[index] = payload[offsets[index] : offsets[index + 1]].decode("utf-8")
                columns[descriptor["name"]] = values
        return cls(header["name"], columns)

    # -- misc --------------------------------------------------------------

    def concat(self, other: "Table") -> "Table":
        """Row-wise concatenation (schemas must match)."""
        if set(self.column_names) != set(other.column_names):
            raise TableError("concat requires identical schemas")
        return Table(
            self.name,
            {
                name: np.concatenate([self._columns[name], other.column(name)])
                for name in self.column_names
            },
        )

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self._length} rows x {len(self._columns)} cols)"


def _python_value(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value
