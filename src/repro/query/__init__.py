"""Columnar query engine, SSB benchmark, mini-SQL, and Athena model."""

from .athena import AthenaModel, Ec2CostModel, M7A_8XLARGE_HOURLY_USD
from .columnar import Table, TableError
from .operators import (
    Aggregation,
    Predicate,
    filter_rows,
    group_aggregate,
    hash_join,
    limit,
    project,
    sort_rows,
)
from .plan_to_dag import (
    QUERY_SHAPES,
    QueryShape,
    load_ssb_to_store,
    partition_table,
    register_ssb_query,
)
from .sql import SqlDatabase, SqlError, SqlQuery, parse_sql
from .ssb import SSB_QUERY_NAMES, generate_ssb_tables, run_ssb_query, ssb_query_functions

__all__ = [
    "AthenaModel",
    "Ec2CostModel",
    "M7A_8XLARGE_HOURLY_USD",
    "Table",
    "TableError",
    "Aggregation",
    "Predicate",
    "filter_rows",
    "group_aggregate",
    "hash_join",
    "limit",
    "project",
    "sort_rows",
    "QUERY_SHAPES",
    "QueryShape",
    "load_ssb_to_store",
    "partition_table",
    "register_ssb_query",
    "SqlDatabase",
    "SqlError",
    "SqlQuery",
    "parse_sql",
    "SSB_QUERY_NAMES",
    "generate_ssb_tables",
    "run_ssb_query",
    "ssb_query_functions",
]
