"""A small SQL engine over columnar tables.

Supports the subset the Text2SQL workflow (§7.7) produces:

.. code-block:: sql

    SELECT col, AGG(col) AS alias, ...
    FROM table
    [WHERE col OP literal [AND ...]]
    [GROUP BY col, ...]
    [ORDER BY col [ASC|DESC]]
    [LIMIT n]

with ``COUNT(*)``, ``SUM``, ``AVG``, ``MIN``, ``MAX`` aggregates and
``=, !=, <, <=, >, >=`` comparisons against numeric or quoted string
literals.  The engine parses into a :class:`SqlQuery` plan and executes
it with the operator library, so the same code paths the SSB queries
use also serve ad-hoc SQL.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from .columnar import Table
from .operators import (
    Aggregation,
    Predicate,
    filter_rows,
    group_aggregate,
    limit,
    project,
    sort_rows,
)

__all__ = ["SqlError", "SqlQuery", "parse_sql", "SqlDatabase"]

_AGG_FUNCTIONS = ("count", "sum", "avg", "min", "max")


class SqlError(ValueError):
    """Syntax or semantic error in a SQL query."""


@dataclass(frozen=True)
class SelectItem:
    """One item of the SELECT list."""

    expression: str            # column name, or agg function name
    column: Optional[str]      # None for COUNT(*)
    alias: str
    is_aggregate: bool


@dataclass(frozen=True)
class Condition:
    column: str
    op: str
    value: object


@dataclass
class SqlQuery:
    """A parsed SELECT statement."""

    select: list[SelectItem]
    table: str
    where: list[Condition] = field(default_factory=list)
    group_by: list[str] = field(default_factory=list)
    order_by: Optional[str] = None
    order_desc: bool = False
    limit_count: Optional[int] = None

    @property
    def has_aggregates(self) -> bool:
        return any(item.is_aggregate for item in self.select)


_TOKEN = re.compile(
    r"""\s*(?:
        (?P<string>'[^']*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<word>[A-Za-z_][A-Za-z_0-9.]*)
      | (?P<symbol><=|>=|!=|<>|=|<|>|\(|\)|,|\*)
    )""",
    re.VERBOSE,
)


def _tokenize(sql: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    sql = sql.strip().rstrip(";")
    while position < len(sql):
        match = _TOKEN.match(sql, position)
        if match is None:
            raise SqlError(f"unexpected character at {sql[position:position + 10]!r}")
        position = match.end()
        tokens.append(match.group().strip())
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of query")
        self.position += 1
        return token

    def expect_word(self, word: str) -> None:
        token = self.next()
        if token.lower() != word.lower():
            raise SqlError(f"expected {word!r}, got {token!r}")

    def at_word(self, word: str) -> bool:
        token = self.peek()
        return token is not None and token.lower() == word.lower()

    def parse(self) -> SqlQuery:
        self.expect_word("select")
        select = self._select_list()
        self.expect_word("from")
        table = self.next()
        where: list[Condition] = []
        group_by: list[str] = []
        order_by = None
        order_desc = False
        limit_count = None
        while self.peek() is not None:
            token = self.next().lower()
            if token == "where":
                where = self._conditions()
            elif token == "group":
                self.expect_word("by")
                group_by = self._name_list()
            elif token == "order":
                self.expect_word("by")
                order_by = self.next()
                if self.at_word("desc"):
                    self.next()
                    order_desc = True
                elif self.at_word("asc"):
                    self.next()
            elif token == "limit":
                try:
                    limit_count = int(self.next())
                except ValueError:
                    raise SqlError("LIMIT expects an integer") from None
            else:
                raise SqlError(f"unexpected token {token!r}")
        return SqlQuery(select, table, where, group_by, order_by, order_desc, limit_count)

    def _select_list(self) -> list[SelectItem]:
        items: list[SelectItem] = []
        while True:
            items.append(self._select_item())
            if self.at_word("from") or self.peek() is None:
                break
            token = self.next()
            if token != ",":
                raise SqlError(f"expected ',' in select list, got {token!r}")
        return items

    def _select_item(self) -> SelectItem:
        token = self.next()
        if token == "*":
            return SelectItem("*", None, "*", is_aggregate=False)
        lowered = token.lower()
        if lowered in _AGG_FUNCTIONS and self.peek() == "(":
            self.next()  # (
            inner = self.next()
            column = None if inner == "*" else inner
            if inner == "*" and lowered != "count":
                raise SqlError(f"{lowered.upper()}(*) is not valid")
            closing = self.next()
            if closing != ")":
                raise SqlError("expected ')'")
            alias = f"{lowered}_{column or 'all'}"
            if self.at_word("as"):
                self.next()
                alias = self.next()
            return SelectItem(lowered, column, alias, is_aggregate=True)
        alias = token
        if self.at_word("as"):
            self.next()
            alias = self.next()
        return SelectItem(token, token, alias, is_aggregate=False)

    def _conditions(self) -> list[Condition]:
        conditions = [self._condition()]
        while self.at_word("and"):
            self.next()
            conditions.append(self._condition())
        return conditions

    def _condition(self) -> Condition:
        column = self.next()
        op = self.next()
        if op == "=":
            op = "=="
        if op == "<>":
            op = "!="
        if op not in ("==", "!=", "<", "<=", ">", ">="):
            raise SqlError(f"unsupported operator {op!r}")
        return Condition(column, op, self._literal(self.next()))

    @staticmethod
    def _literal(token: str):
        if token.startswith("'") and token.endswith("'"):
            return token[1:-1]
        try:
            if "." in token:
                return float(token)
            return int(token)
        except ValueError:
            raise SqlError(f"expected a literal, got {token!r}") from None

    def _name_list(self) -> list[str]:
        names = [self.next()]
        while self.peek() == ",":
            self.next()
            names.append(self.next())
        return names


def _without_order(query: SqlQuery) -> SqlQuery:
    return SqlQuery(
        query.select, query.table, query.where, query.group_by,
        None, False, query.limit_count,
    )


def parse_sql(sql: str) -> SqlQuery:
    """Parse a SELECT statement into a :class:`SqlQuery` plan."""
    tokens = _tokenize(sql)
    if not tokens:
        raise SqlError("empty query")
    return _Parser(tokens).parse()


class SqlDatabase:
    """A named collection of tables with a ``query`` entry point.

    Doubles as the executor behind
    :class:`~repro.net.services.SqlDatabaseService` for the Text2SQL
    workflow.
    """

    def __init__(self, tables: Optional[dict[str, Table]] = None):
        self._tables: dict[str, Table] = dict(tables or {})

    def add_table(self, table: Table) -> None:
        self._tables[table.name] = table

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SqlError(f"no table {name!r}") from None

    def execute(self, sql: str) -> Table:
        """Run a SELECT and return the result as a table."""
        query = parse_sql(sql)
        source = self.table(query.table)
        if query.where:
            predicate = Predicate.true()
            for condition in query.where:
                predicate.and_where(condition.column, condition.op, condition.value)
            source = filter_rows(source, predicate)
        if query.has_aggregates or query.group_by:
            aggregations = []
            for item in query.select:
                if item.is_aggregate:
                    aggregations.append(Aggregation(item.alias, item.expression, item.column))
                elif item.column not in query.group_by and item.column != "*":
                    raise SqlError(
                        f"column {item.column!r} must appear in GROUP BY or an aggregate"
                    )
            result = group_aggregate(source, query.group_by, aggregations)
            # Preserve select order: group columns first as listed.
            ordered = [
                item.alias if item.is_aggregate else item.column
                for item in query.select
            ]
            rename = {
                item.column: item.alias
                for item in query.select
                if not item.is_aggregate and item.alias != item.column
            }
            result = result.select([c if c in result.column_names else c for c in ordered])
            result = result.rename(rename)
        else:
            # SQL permits ORDER BY on columns the projection drops, so
            # sort before projecting when the key is a source column.
            if query.order_by and query.order_by in source.column_names:
                source = sort_rows(source, query.order_by, ascending=not query.order_desc)
                query = _without_order(query)
            if any(item.expression == "*" for item in query.select):
                result = source
            else:
                result = project(source, [item.column for item in query.select])
                rename = {
                    item.column: item.alias
                    for item in query.select
                    if item.alias != item.column
                }
                if rename:
                    result = result.rename(rename)
        if query.order_by:
            result = sort_rows(result, query.order_by, ascending=not query.order_desc)
        if query.limit_count is not None:
            result = limit(result, query.limit_count)
        return result

    def execute_rows(self, sql: str) -> list[dict]:
        """Run a SELECT and return rows as dicts (the HTTP service API)."""
        return self.execute(sql).to_rows()
