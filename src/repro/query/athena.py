"""AWS Athena latency/cost model and EC2 pricing (Fig 9 baseline).

Athena is a Query-as-a-Service: "providers managing infrastructure and
billing per byte read" (§7.7).  The paper compares SSB latency and cost
(in US cents) between Athena and Dandelion-on-EC2 (m7a.8xlarge, 32
cores, same region as the S3 bucket), excluding Athena's queueing
delay.

Model parameters:

* Athena bills $5 per TB scanned with a 10 MB per-query minimum (the
  published pricing);
* query latency = engine startup/planning overhead plus scan time at an
  effective aggregate bandwidth — for short queries the fixed overhead
  dominates, which is exactly the regime where the paper reports
  Dandelion winning by 40%/67%;
* Dandelion's cost = EC2 on-demand price × query execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AthenaModel", "Ec2CostModel", "M7A_8XLARGE_HOURLY_USD"]

TB = 1e12
MB = 1e6

# us-east-1 on-demand price of m7a.8xlarge (32 vCPU), USD per hour.
M7A_8XLARGE_HOURLY_USD = 1.8546


@dataclass(frozen=True)
class AthenaModel:
    """Latency and cost of an Athena query over S3 data."""

    price_per_tb_usd: float = 5.0
    minimum_billed_bytes: float = 10 * MB
    # Fixed engine/planning overhead per query (excludes queueing,
    # which the paper also excludes).
    startup_seconds: float = 2.2
    # Effective scan bandwidth of the serverless engine fleet.
    scan_bytes_per_second: float = 4e9
    # Extra per-join planning/shuffle overhead.
    per_join_seconds: float = 0.15

    def latency_seconds(self, scanned_bytes: float, joins: int = 1) -> float:
        if scanned_bytes < 0:
            raise ValueError("scanned_bytes must be non-negative")
        return (
            self.startup_seconds
            + joins * self.per_join_seconds
            + scanned_bytes / self.scan_bytes_per_second
        )

    def cost_usd(self, scanned_bytes: float) -> float:
        if scanned_bytes < 0:
            raise ValueError("scanned_bytes must be non-negative")
        billed = max(self.minimum_billed_bytes, scanned_bytes)
        return billed / TB * self.price_per_tb_usd

    def cost_cents(self, scanned_bytes: float) -> float:
        return 100.0 * self.cost_usd(scanned_bytes)


@dataclass(frozen=True)
class Ec2CostModel:
    """Pay-per-time cost of running Dandelion on an EC2 instance."""

    hourly_usd: float = M7A_8XLARGE_HOURLY_USD

    def cost_usd(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return self.hourly_usd * seconds / 3600.0

    def cost_cents(self, seconds: float) -> float:
        return 100.0 * self.cost_usd(seconds)
