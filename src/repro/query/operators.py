"""Relational operators over columnar tables.

The set the paper's SSB port needs (§7.7): "The queries include filter,
projection, join, order by, and aggregation operators, which we
implement in Dandelion by porting the Apache Arrow Acero library
operators."  All operators here are pure functions Table -> Table,
vectorised with numpy, so they can run inside Dandelion compute
functions unchanged.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from .columnar import Table, TableError

__all__ = [
    "Predicate",
    "filter_rows",
    "project",
    "hash_join",
    "group_aggregate",
    "sort_rows",
    "limit",
    "Aggregation",
]

_COMPARATORS: dict[str, Callable] = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


class Predicate:
    """A conjunction of simple column comparisons.

    Built via the fluent helpers::

        Predicate.where("year", "==", 1993).and_where("discount", ">=", 1)

    ``between`` adds an inclusive range; ``isin`` a membership test.
    """

    def __init__(self):
        self._clauses: list[Callable[[Table], np.ndarray]] = []
        self._descriptions: list[str] = []

    @classmethod
    def where(cls, column: str, op: str, value) -> "Predicate":
        return cls().and_where(column, op, value)

    @classmethod
    def true(cls) -> "Predicate":
        return cls()

    def and_where(self, column: str, op: str, value) -> "Predicate":
        comparator = _COMPARATORS.get(op)
        if comparator is None:
            raise TableError(f"unknown comparison operator {op!r}")
        self._clauses.append(lambda table: comparator(table.column(column), value))
        self._descriptions.append(f"{column} {op} {value!r}")
        return self

    def between(self, column: str, low, high) -> "Predicate":
        self._clauses.append(
            lambda table: (table.column(column) >= low) & (table.column(column) <= high)
        )
        self._descriptions.append(f"{column} BETWEEN {low!r} AND {high!r}")
        return self

    def isin(self, column: str, values: Iterable) -> "Predicate":
        values = list(values)
        self._clauses.append(lambda table: np.isin(table.column(column), values))
        self._descriptions.append(f"{column} IN {values!r}")
        return self

    def mask(self, table: Table) -> np.ndarray:
        if not self._clauses:
            return np.ones(table.num_rows, dtype=bool)
        mask = self._clauses[0](table)
        for clause in self._clauses[1:]:
            mask = mask & clause(table)
        return mask

    def __repr__(self) -> str:
        return " AND ".join(self._descriptions) or "TRUE"


def filter_rows(table: Table, predicate: Predicate) -> Table:
    """Keep the rows satisfying the predicate."""
    return table.take(predicate.mask(table))


def project(table: Table, columns: Iterable[str]) -> Table:
    """Keep only the named columns."""
    return table.select(columns)


def hash_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    right_prefix: str = "",
) -> Table:
    """Inner hash join; right-side columns may get a prefix to avoid
    name collisions."""
    right_values = right.column(right_key)
    index: dict = {}
    for position, value in enumerate(right_values):
        index.setdefault(value, []).append(position)
    left_values = left.column(left_key)
    left_positions: list[int] = []
    right_positions: list[int] = []
    for position, value in enumerate(left_values):
        matches = index.get(value)
        if matches:
            for match in matches:
                left_positions.append(position)
                right_positions.append(match)
    left_idx = np.asarray(left_positions, dtype=np.int64)
    right_idx = np.asarray(right_positions, dtype=np.int64)
    columns: dict[str, np.ndarray] = {}
    for name in left.column_names:
        columns[name] = left.column(name)[left_idx]
    for name in right.column_names:
        out_name = f"{right_prefix}{name}"
        if out_name in columns:
            if name == right_key:
                continue  # equal by construction
            out_name = f"{right.name}.{name}"
        columns[out_name] = right.column(name)[right_idx]
    return Table(left.name, columns)


class Aggregation:
    """One aggregate: output column name, function, input column."""

    FUNCTIONS = ("sum", "count", "min", "max", "avg")

    def __init__(self, output: str, function: str, column: Optional[str] = None):
        if function not in self.FUNCTIONS:
            raise TableError(f"unknown aggregate function {function!r}")
        if function != "count" and column is None:
            raise TableError(f"aggregate {function!r} needs an input column")
        self.output = output
        self.function = function
        self.column = column

    def compute(self, table: Table, row_groups: "list[np.ndarray]") -> list:
        if self.function == "count":
            return [len(group) for group in row_groups]
        values = table.column(self.column)
        if self.function == "sum":
            return [values[group].sum() if len(group) else 0 for group in row_groups]
        if self.function == "min":
            return [values[group].min() for group in row_groups]
        if self.function == "max":
            return [values[group].max() for group in row_groups]
        # avg
        return [values[group].mean() if len(group) else float("nan") for group in row_groups]


def group_aggregate(
    table: Table,
    group_by: Iterable[str],
    aggregations: Iterable[Aggregation],
) -> Table:
    """Group-by aggregation; with no group columns, one global group."""
    group_by = list(group_by)
    aggregations = list(aggregations)
    if not aggregations:
        raise TableError("group_aggregate needs at least one aggregation")
    if table.num_rows == 0 and group_by:
        return Table(table.name, {**{g: [] for g in group_by}, **{a.output: [] for a in aggregations}})
    if group_by:
        key_arrays = [table.column(name) for name in group_by]
        groups: dict[tuple, list[int]] = {}
        for row in range(table.num_rows):
            key = tuple(array[row] for array in key_arrays)
            groups.setdefault(key, []).append(row)
        keys = list(groups)
        row_groups = [np.asarray(groups[key], dtype=np.int64) for key in keys]
        columns: dict[str, list] = {
            name: [key[i] for key in keys] for i, name in enumerate(group_by)
        }
    else:
        row_groups = [np.arange(table.num_rows)]
        columns = {}
    for aggregation in aggregations:
        columns[aggregation.output] = aggregation.compute(table, row_groups)
    return Table(table.name, columns)


def sort_rows(table: Table, by: "str | list", ascending: bool = True) -> Table:
    """Sort rows by one or several columns (last key is primary per
    numpy lexsort, so we reverse the list)."""
    if isinstance(by, str):
        by = [by]
    if not by:
        raise TableError("sort needs at least one column")
    keys = [table.column(name) for name in reversed(by)]
    # Object (string) columns need conversion for lexsort.
    keys = [
        np.asarray([str(v) for v in key]) if key.dtype.kind == "O" else key
        for key in keys
    ]
    order = np.lexsort(keys)
    if not ascending:
        order = order[::-1]
    return table.take(order)


def limit(table: Table, count: int) -> Table:
    """First ``count`` rows."""
    if count < 0:
        raise TableError("limit must be non-negative")
    return table.head(count)
