"""Tasks — the unit of work the dispatcher hands to engines (§5).

"The dispatcher enqueues tasks (which consist of a prepared memory
context and metadata) to the appropriate queue type and receives
contexts containing the results."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..composition.registry import FunctionBinary
from ..data.context import MemoryContext
from ..data.items import DataSet
from ..sim.core import Event

__all__ = ["Task", "TaskOutcome", "COMPUTE", "COMMUNICATION"]

COMPUTE = "compute"
COMMUNICATION = "communication"

_task_ids = itertools.count()


@dataclass(slots=True)
class TaskOutcome:
    """What an engine reports back for one task."""

    success: bool
    outputs: Optional[list[DataSet]] = None
    error: Optional[BaseException] = None
    service_seconds: float = 0.0      # engine-side time spent on the task
    breakdown: Optional[dict[str, float]] = None
    transient: bool = False           # retryable (engine-level) failure


@dataclass(slots=True)
class Task:
    """One function instance ready for execution.

    ``completion`` fires with a :class:`TaskOutcome` when the engine is
    done.  ``context`` is the instance's prepared memory context (its
    committed bytes are the platform's memory footprint for the task).
    """

    kind: str
    input_sets: list[DataSet]
    output_set_names: list[str]
    completion: Event
    context: Optional[MemoryContext] = None
    binary: Optional[FunctionBinary] = None   # compute tasks only
    cached: bool = False                      # binary served from RAM cache
    zero_copy: bool = False                   # inputs remapped, not copied (§6.1)
    protocol: str = "http"                    # communication tasks only
    timeout: Optional[float] = None
    invocation_id: int = 0
    node_name: str = ""
    instance_index: int = 0
    task_id: int = field(default_factory=lambda: next(_task_ids))
    enqueued_at: float = 0.0

    def __post_init__(self):
        if self.kind not in (COMPUTE, COMMUNICATION):
            raise ValueError(f"unknown task kind {self.kind!r}")
        if self.kind == COMPUTE and self.binary is None:
            raise ValueError("compute tasks need a function binary")

    @property
    def input_bytes(self) -> int:
        return sum(s.size for s in self.input_sets)
