"""Compute and communication engines plus engine-group management."""

from .comm_engine import RESPONSE_SET, CommunicationEngine
from .compute_engine import SHUTDOWN, ComputeEngine
from .group import EngineGroup
from .task import COMMUNICATION, COMPUTE, Task, TaskOutcome

__all__ = [
    "RESPONSE_SET",
    "CommunicationEngine",
    "SHUTDOWN",
    "ComputeEngine",
    "EngineGroup",
    "COMMUNICATION",
    "COMPUTE",
    "Task",
    "TaskOutcome",
]
