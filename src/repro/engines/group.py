"""Engine groups — dynamic pools of compute or communication engines.

The control plane re-assigns CPU cores between the two engine types at
runtime (§5).  A group owns one task queue and a resizable set of
engines; shrinking retires exactly one engine via a shutdown sentinel
(the retiring engine finishes its current task first, so cores are
never preempted mid-function), and growing starts a new engine
immediately.
"""

from __future__ import annotations

from typing import Callable

from ..sim.core import Environment
from ..sim.resources import Store
from .compute_engine import SHUTDOWN

__all__ = ["EngineGroup"]


class EngineGroup:
    """A resizable pool of same-type engines sharing one task queue."""

    def __init__(
        self,
        env: Environment,
        kind: str,
        engine_factory: Callable[[Store, str], object],
        initial_count: int = 1,
    ):
        self.env = env
        self.kind = kind
        self.queue = Store(env)
        self._engine_factory = engine_factory
        self._engines: list = []
        self._next_engine_id = 0
        self._pending_shutdowns = 0
        self._retired_tasks_executed = 0
        self._retired_busy_seconds = 0.0
        self.queue_samples: list[tuple[float, int]] = []
        for _ in range(initial_count):
            self._start_engine()

    # -- sizing -----------------------------------------------------------

    @property
    def engine_count(self) -> int:
        """Engines currently assigned (running minus pending retires)."""
        return len(self._engines) - self._pending_shutdowns

    @property
    def engines(self) -> list:
        return list(self._engines)

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    def _start_engine(self) -> None:
        name = f"{self.kind}-engine-{self._next_engine_id}"
        self._next_engine_id += 1
        engine = self._engine_factory(self.queue, name)
        self._engines.append(engine)

    def grow(self) -> None:
        """Assign one more core to this engine type."""
        self._start_engine()

    def shrink(self):
        """Retire one engine; returns an event firing once it has exited.

        The sentinel joins the FIFO queue, so the retiring engine first
        drains any tasks ahead of it — shrinking never cancels work.
        """
        if self.engine_count <= 0:
            raise ValueError(f"no {self.kind} engine left to retire")
        self._pending_shutdowns += 1
        self.queue.put(SHUTDOWN)
        done = self.env.event()
        self.env.process(self._await_retirement(done))
        return done

    def _await_retirement(self, done):
        # Any engine may consume the sentinel; wait until one reports.
        stops = [engine.stopped for engine in self._engines]
        yield self.env.any_of(stops)
        retired = [engine for engine in self._engines if engine.stopped.triggered]
        for engine in retired:
            if engine in self._engines:
                self._engines.remove(engine)
                self._pending_shutdowns -= 1
                self._retired_tasks_executed += engine.tasks_executed
                self._retired_busy_seconds += engine.busy_seconds
        done.succeed()

    # -- submission and telemetry -------------------------------------------

    def submit(self, task) -> None:
        task.enqueued_at = self.env.now
        self.queue.put(task)

    def sample_queue(self) -> int:
        """Record the current queue length (control-plane telemetry)."""
        length = len(self.queue)
        self.queue_samples.append((self.env.now, length))
        return length

    @property
    def tasks_executed(self) -> int:
        live = sum(engine.tasks_executed for engine in self._engines)
        return live + self._retired_tasks_executed

    @property
    def busy_seconds(self) -> float:
        live = sum(engine.busy_seconds for engine in self._engines)
        return live + self._retired_busy_seconds
