"""Per-worker engine throttle — the degraded-mode ("limplock") knob.

Real fleets degrade before they die: a worker with a failing disk or a
flaky NIC stays nominally healthy while serving every request several
times slower, poisoning cluster-wide tail latency (the "limplock"
regime).  :class:`EngineThrottle` is the one mutable cell that models
this: every engine on a worker shares the worker's throttle and
stretches its service times by ``multiplier``.

The throttle is deliberately dumb — a single float — so that the
fault-free fast path stays byte-identical: engines multiply service
times by ``multiplier`` only, and ``x * 1.0 == x`` exactly in IEEE
arithmetic, so a healthy worker's event stream is unchanged down to
the last bit.  Extra *events* (stretch timeouts on network exchanges)
are only scheduled when the worker is actually limping.
"""

from __future__ import annotations

__all__ = ["EngineThrottle"]


class EngineThrottle:
    """Shared throughput multiplier for all engines of one worker.

    ``multiplier`` >= 1.0 is the service-time stretch factor: 1.0 is a
    healthy worker, 4.0 is a worker whose CPU and network effectively
    run at a quarter of their nominal rate.  The cluster manager flips
    the value through :meth:`set` when a limp fault is injected or
    cleared; engines read it on every task.
    """

    __slots__ = ("multiplier",)

    def __init__(self, multiplier: float = 1.0):
        if multiplier < 1.0:
            raise ValueError(f"throttle multiplier {multiplier} must be >= 1.0")
        self.multiplier = multiplier

    def set(self, multiplier: float) -> None:
        if multiplier < 1.0:
            raise ValueError(f"throttle multiplier {multiplier} must be >= 1.0")
        self.multiplier = multiplier

    def clear(self) -> None:
        self.multiplier = 1.0

    @property
    def limping(self) -> bool:
        return self.multiplier > 1.0

    def __repr__(self) -> str:
        return f"EngineThrottle({self.multiplier}x)"
