"""Compute engines — run-to-completion execution of sandboxed functions.

"Compute engines are responsible for securely executing untrusted user
code. ... Compute functions do not block, so each compute engine only
runs a single task at a time to completion to minimize interference and
context switching." (§5)

An engine is a simulation process pinned to one CPU core: it polls the
compute task queue ("late binding"), charges the full sandbox breakdown
(Table 1 stages plus modelled compute time) as busy time on its core,
and reports a :class:`TaskOutcome`.
"""

from __future__ import annotations

from typing import Optional

from ..backends.base import IsolationBackend
from ..errors import FunctionFailure, FunctionTimeout, MemoryLimitExceeded
from ..functions.purity import purity_guard
from ..sim.core import Environment
from ..sim.resources import Store
from .task import Task, TaskOutcome

__all__ = ["ComputeEngine", "SHUTDOWN"]

# Sentinel pushed onto a queue to retire exactly one engine.
SHUTDOWN = object()


class ComputeEngine:
    """One compute engine bound to one CPU core."""

    def __init__(
        self,
        env: Environment,
        queue: Store,
        backend: IsolationBackend,
        name: str = "compute-engine",
        failure_rng=None,
        transient_failure_rate: float = 0.0,
        batch_guard: bool = False,
        throttle=None,
    ):
        self.env = env
        self.queue = queue
        self.backend = backend
        self.name = name
        self.tasks_executed = 0
        self.busy_seconds = 0.0
        self.stopped = env.event()
        self._failure_rng = failure_rng
        self._transient_failure_rate = transient_failure_rate
        # Degraded-mode (limplock) model: the worker's shared throttle
        # stretches service times.  Healthy workers have multiplier 1.0
        # and `service * 1.0 == service` exactly, so the fault-free
        # event stream is bit-identical to a build without throttling.
        self._throttle = throttle
        # Engine-scoped purity guard: hold the (re-entrant) guard for
        # the engine's whole lifetime so each compute run's own guard
        # is a counter bump instead of the patch/unpatch loop.  Only
        # safe when nothing else in the program performs blocked
        # operations (open/sockets/...) while the simulation runs, so
        # it is opt-in.
        self._batch_guard = batch_guard
        self.process = env.process(self._run())

    def _run(self):
        guard = purity_guard() if self._batch_guard else None
        if guard is not None:
            guard.__enter__()
        try:
            while True:
                task = yield self.queue.get()
                if task is SHUTDOWN:
                    break
                outcome = self._execute(task)
                service = outcome.service_seconds
                if self._throttle is not None:
                    service *= self._throttle.multiplier
                if service > 0:
                    # Fire the completion directly at now + service and
                    # stay busy by waiting on it — one event instead of
                    # a Timeout followed by an immediate succeed.
                    task.completion.succeed(outcome, delay=service)
                    yield task.completion
                    self.busy_seconds += service
                    self.tasks_executed += 1
                else:
                    self.busy_seconds += service
                    self.tasks_executed += 1
                    task.completion.succeed(outcome)
        finally:
            if guard is not None:
                guard.__exit__(None, None, None)
        self.stopped.succeed(self.name)

    def _execute(self, task: Task) -> TaskOutcome:
        # Engine-level transient fault injection (crashed sandbox, not
        # buggy user code): the dispatcher may retry these, since pure
        # compute functions are idempotent (§6.1 fault tolerance).
        if (
            self._failure_rng is not None
            and self._transient_failure_rate > 0
            and self._failure_rng.bernoulli(self._transient_failure_rate)
        ):
            creation = self.backend.creation_seconds(task.binary, task.cached)
            return TaskOutcome(
                success=False,
                error=RuntimeError("sandbox crashed (injected transient fault)"),
                service_seconds=creation,
                transient=True,
            )
        try:
            execution = self.backend.execute(
                task.binary,
                task.input_sets,
                task.output_set_names,
                cached=task.cached,
                timeout=task.timeout,
                remap_input=task.zero_copy,
            )
        except (FunctionFailure, FunctionTimeout, MemoryLimitExceeded) as exc:
            # Deterministic failures are charged sandbox-creation time
            # (the sandbox was built before the function misbehaved).
            creation = self.backend.creation_seconds(task.binary, task.cached)
            return TaskOutcome(
                success=False, error=exc, service_seconds=creation, transient=False
            )
        return TaskOutcome(
            success=True,
            outputs=execution.outputs,
            service_seconds=execution.total_seconds,
            breakdown=execution.breakdown,
        )
