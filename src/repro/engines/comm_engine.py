"""Communication engines — trusted, cooperative network I/O (§5, §6.3).

"Each communication engine runs a separate kernel thread pinned on a
dedicated core, which executes its own asynchronous runtime, using
green threads to run multiple requests in parallel."  Engines share the
dispatcher-facing interface with compute engines (poll a task queue,
return contexts with outputs), but:

* they are trusted, so no sandbox is created;
* input data is untrusted and is sanitized before any network syscall
  is issued on its behalf (:func:`repro.net.http.sanitize_request`);
* only the CPU-side work (parsing, validation, copying) occupies the
  engine's core — network waits overlap across green threads.

A failed sanitization produces an error *item* in the response set
rather than failing the whole task, mirroring how the prototype returns
an error to the user when validation fails.
"""

from __future__ import annotations

import json

from ..data.items import DataItem, DataSet
from ..functions.sdk import parse_http_request_item
from ..net.http import HttpRequest, SanitizationError, sanitize_request
from ..net.network import SimulatedNetwork
from ..sim.core import Environment
from ..sim.resources import Store
from .compute_engine import SHUTDOWN
from .task import Task, TaskOutcome

__all__ = ["CommunicationEngine", "RESPONSE_SET", "IDEMPOTENT_METHODS", "IDEMPOTENT_KV_OPS"]

RESPONSE_SET = "response"

# CPU cost of parsing/validating one request and assembling its
# response, charged serially on the engine core.
_PER_REQUEST_CPU_SECONDS = 20e-6
_CPU_BYTES_PER_SECOND = 5e9

# §6.1 fault tolerance: "Communication function failures are more
# complicated due to side effects.  Protocol specifications can help
# Dandelion decide which functions can be re-executed ... For example,
# HTTP PUT requests are idempotent."  Methods in this set may be
# retried transparently after a transient network failure.
IDEMPOTENT_METHODS = frozenset({"GET", "HEAD", "PUT", "DELETE"})

# Same §6.1 protocol reasoning for the TCP key-value protocol: reads
# and absolute writes can be blindly re-issued, increments cannot.
IDEMPOTENT_KV_OPS = frozenset({"get", "set", "delete"})


class CommunicationEngine:
    """One communication engine bound to one CPU core."""

    def __init__(
        self,
        env: Environment,
        queue: Store,
        network: SimulatedNetwork,
        name: str = "comm-engine",
        max_green_threads: int = 256,
        failure_rng=None,
        transient_failure_rate: float = 0.0,
        max_retries: int = 2,
        throttle=None,
    ):
        self.env = env
        self.queue = queue
        self.network = network
        self.name = name
        self.max_green_threads = max_green_threads
        # Degraded-mode (limplock) model: stretches both the serial CPU
        # work and the network exchange time by the worker's shared
        # throttle multiplier (a slow NIC slows the wire, a slow core
        # slows parsing).  Healthy workers multiply by exactly 1.0 and
        # schedule no extra events.
        self._throttle = throttle
        self.tasks_executed = 0
        self.busy_seconds = 0.0
        self.active_green_threads = 0
        self.retries_performed = 0
        self.exchange_timeouts = 0
        self.handler_faults = 0
        self.stopped = env.event()
        self._failure_rng = failure_rng
        self._transient_failure_rate = transient_failure_rate
        self._max_retries = max_retries
        # Identity-keyed memo caches for the hot HTTP path.  Workloads
        # re-send the same request bytes and receive the same response
        # body object (services hand out a fixed payload), so the parse/
        # sanitize work and the hex+JSON response encoding are computed
        # once per distinct object.  Entries pin the keyed object, which
        # keeps recycled ids from ever aliasing a dead one; both caches
        # are bounded so adversarial traffic degrades to the slow path.
        self._request_cache: dict[int, tuple] = {}
        self._payload_cache: dict[int, tuple] = {}
        self.process = env.process(self._run())

    def _cpu_seconds(self, task: Task) -> float:
        items = sum(len(s) for s in task.input_sets)
        return items * _PER_REQUEST_CPU_SECONDS + task.input_bytes / _CPU_BYTES_PER_SECOND

    def _run(self):
        while True:
            task = yield self.queue.get()
            if task is SHUTDOWN:
                break
            # Serialized CPU work on this core: parse and validate.
            cpu = self._cpu_seconds(task)
            if self._throttle is not None:
                cpu *= self._throttle.multiplier
            yield self.env.timeout(cpu)
            self.busy_seconds += cpu
            self.tasks_executed += 1
            # The network exchange itself runs as a green thread so the
            # engine can pick up further tasks while I/O is in flight.
            self.env.process(self._handle(task, cpu))
        self.stopped.succeed(self.name)

    def _handle(self, task: Task, cpu_seconds: float):
        self.active_green_threads += 1
        try:
            handler = self._PROTOCOL_HANDLERS.get(task.protocol)
            responses = DataSet(RESPONSE_SET)
            items = [item for data_set in task.input_sets for item in data_set]
            if handler is None:
                handler = type(self)._unknown_protocol_item
            if len(items) == 1:
                # Single-request fast path (the common case): run the
                # exchange inline in this green thread instead of
                # spawning a sub-process per item.
                response_item = yield from handler(
                    self, items[0], task.protocol, task.timeout
                )
                responses.add(response_item)
            else:
                exchanges = [
                    self.env.process(handler(self, item, task.protocol, task.timeout))
                    for item in items
                ]
                for exchange in exchanges:
                    response_item = yield exchange
                    responses.add(response_item)
            outcome = TaskOutcome(
                success=True,
                outputs=[responses],
                service_seconds=cpu_seconds,
            )
        except Exception as exc:  # noqa: BLE001 - any handler bug must fail the task
            # A raising handler must fail the task's completion: leaving
            # it pending would strand the dispatcher process waiting on
            # it and deadlock the whole simulation.  Handler bugs are
            # deterministic, so the failure is not marked retryable.
            self.handler_faults += 1
            outcome = TaskOutcome(
                success=False,
                error=exc,
                service_seconds=cpu_seconds,
                transient=False,
            )
        finally:
            self.active_green_threads -= 1
        task.completion.succeed(outcome)

    def _perform(self, request: HttpRequest):
        """One HTTP exchange, stretched by the worker's limp factor.

        A limping NIC makes the whole wire exchange proportionally
        slower: the extra wait is scheduled *after* the real exchange so
        the stretch composes with whatever the network model charged.
        Healthy workers take the exact pass-through path (no extra
        events).
        """
        throttle = self._throttle
        if throttle is None or throttle.multiplier <= 1.0:
            response = yield from self.network.perform(request)
            return response
        started = self.env.now
        response = yield from self.network.perform(request)
        extra = (throttle.multiplier - 1.0) * (self.env.now - started)
        if extra > 0:
            yield self.env.timeout(extra)
        return response

    def _perform_kv(self, host, op, key, value):
        """One key-value exchange, stretched like :meth:`_perform`."""
        throttle = self._throttle
        if throttle is None or throttle.multiplier <= 1.0:
            result = yield from self.network.perform_kv(host, op, key, value)
            return result
        started = self.env.now
        result = yield from self.network.perform_kv(host, op, key, value)
        extra = (throttle.multiplier - 1.0) * (self.env.now - started)
        if extra > 0:
            yield self.env.timeout(extra)
        return result

    def _one_exchange(self, item: DataItem, protocol: str = "http", timeout=None):
        """Carry one request item through sanitization and the network.

        Transient network failures (modelled by the injection knobs)
        and exchanges that exceed ``timeout`` are retried transparently
        for idempotent methods; non-idempotent methods surface the
        failure to the user as an error item, since blind re-issue
        could duplicate side effects (§6.1).
        """
        data = item.data
        cached = self._request_cache.get(id(data))
        if cached is not None and cached[0] is data:
            request = cached[1]
            if request is None:
                # Cached sanitization verdict: same bytes, same rejection.
                return DataItem(item.ident, cached[2], key=item.key)
        else:
            try:
                envelope = parse_http_request_item(data)
                request = HttpRequest(
                    method=envelope["method"],
                    url=envelope["url"],
                    headers=envelope["headers"],
                    body=envelope["body"],
                )
                sanitize_request(request)
            except (ValueError, SanitizationError) as exc:
                payload = json.dumps({"status": 400, "error": str(exc)}).encode()
                if len(self._request_cache) < 512:
                    self._request_cache[id(data)] = (data, None, payload)
                return DataItem(item.ident, payload, key=item.key)
            if len(self._request_cache) < 512:
                self._request_cache[id(data)] = (data, request, None)
        attempts = 0
        retryable = request.method in IDEMPOTENT_METHODS
        while True:
            failed = (
                self._failure_rng is not None
                and self._transient_failure_rate > 0
                and self._failure_rng.bernoulli(self._transient_failure_rate)
            )
            if failed:
                # The connection dropped mid-exchange: charge a round
                # trip, then decide whether the request may be retried.
                yield self.env.timeout(self.network.latency.round_trip_seconds)
                if retryable and attempts < self._max_retries:
                    attempts += 1
                    self.retries_performed += 1
                    continue
                payload = json.dumps(
                    {
                        "status": 503,
                        "error": "connection reset",
                        "retried": attempts,
                        "idempotent": retryable,
                    }
                ).encode()
                return DataItem(item.ident, payload, key=item.key)
            if timeout is None:
                response = yield from self._perform(request)
            else:
                # Race the exchange against the task deadline (§6.1).
                # The exchange runs as its own process so an overdue
                # network round trip can be abandoned mid-flight; its
                # eventual result, if any, is discarded.  The limp
                # stretch runs inside the raced process, so a limping
                # NIC's slow exchanges hit the deadline like real ones.
                exchange = self.env.process(self._perform(request))
                yield self.env.any_of([exchange, self.env.timeout(timeout)])
                if not exchange.processed:
                    self.exchange_timeouts += 1
                    if retryable and attempts < self._max_retries:
                        attempts += 1
                        self.retries_performed += 1
                        continue
                    payload = json.dumps(
                        {
                            "status": 504,
                            "error": f"exchange exceeded {timeout}s deadline",
                            "retried": attempts,
                            "idempotent": retryable,
                        }
                    ).encode()
                    return DataItem(item.ident, payload, key=item.key)
                response = exchange.value
            body = response.body
            cached = self._payload_cache.get(id(body))
            if (
                cached is not None
                and cached[0] is body
                and cached[1] == response.status
                and cached[2] == response.reason
            ):
                payload = cached[3]
            else:
                payload = json.dumps(
                    {
                        "status": response.status,
                        "reason": response.reason,
                        "body_hex": body.hex(),
                    }
                ).encode()
                if len(self._payload_cache) < 512:
                    self._payload_cache[id(body)] = (
                        body,
                        response.status,
                        response.reason,
                        payload,
                    )
            return DataItem(item.ident, payload, key=item.key)

    def _unknown_protocol_item(self, item: DataItem, protocol: str, timeout=None):
        """Yieldless placeholder exchange for unsupported protocols."""
        if False:  # pragma: no cover - makes this a generator
            yield None
        return DataItem(
            item.ident,
            json.dumps({"status": 400, "error": f"unsupported protocol {protocol!r}"}).encode(),
            key=item.key,
        )

    def _kv_exchange(self, item: DataItem, protocol: str = "kv", timeout=None):
        """Carry one key-value request through sanitization and the
        network (§4.1's TCP text-protocol communication function).

        ``timeout`` bounds each exchange; overdue reads and absolute
        writes (:data:`IDEMPOTENT_KV_OPS`) are re-issued up to the
        retry budget, while an overdue ``incr`` surfaces an error item
        (a blind re-issue could double-count, §6.1).
        """
        from ..net.kv import parse_kv_request_item, sanitize_kv_request

        try:
            envelope = sanitize_kv_request(parse_kv_request_item(item.data))
        except (ValueError, SanitizationError) as exc:
            return DataItem(
                item.ident,
                json.dumps({"status": 400, "error": str(exc)}).encode(),
                key=item.key,
            )
        attempts = 0
        retryable = envelope["op"] in IDEMPOTENT_KV_OPS
        while True:
            if timeout is None:
                status, value, reason = yield from self._perform_kv(
                    envelope["host"], envelope["op"], envelope["key"], envelope["value"]
                )
            else:
                exchange = self.env.process(
                    self._perform_kv(
                        envelope["host"], envelope["op"], envelope["key"], envelope["value"]
                    )
                )
                yield self.env.any_of([exchange, self.env.timeout(timeout)])
                if not exchange.processed:
                    self.exchange_timeouts += 1
                    if retryable and attempts < self._max_retries:
                        attempts += 1
                        self.retries_performed += 1
                        continue
                    payload = json.dumps(
                        {
                            "status": 504,
                            "error": f"kv exchange exceeded {timeout}s deadline",
                            "retried": attempts,
                            "idempotent": retryable,
                        }
                    ).encode()
                    return DataItem(item.ident, payload, key=item.key)
                status, value, reason = exchange.value
            payload = json.dumps(
                {"status": status, "reason": reason, "value_hex": value.hex()}
            ).encode()
            return DataItem(item.ident, payload, key=item.key)

    _PROTOCOL_HANDLERS = {
        "http": _one_exchange,
        "kv": _kv_exchange,
    }
