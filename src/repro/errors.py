"""Exception hierarchy shared across the platform."""

__all__ = [
    "DandelionError",
    "SyscallBlocked",
    "FunctionFailure",
    "FunctionTimeout",
    "MemoryLimitExceeded",
    "InvocationError",
    "DeadlineExceeded",
    "WorkerCrashed",
]


class DandelionError(Exception):
    """Base class for platform-level errors."""


class SyscallBlocked(DandelionError):
    """A pure compute function attempted a system-call-like operation.

    Mirrors the prototype's behaviour: functions that attempt syscalls
    are terminated and the user notified (§6.2, process backend) or get
    stub error codes (§4.1).
    """


class FunctionFailure(DandelionError):
    """A compute function raised; carries the original exception."""

    def __init__(self, function_name: str, cause: BaseException):
        super().__init__(f"function {function_name!r} failed: {cause!r}")
        self.function_name = function_name
        self.cause = cause


class FunctionTimeout(DandelionError):
    """A function exceeded its user-specified execution timeout.

    "Tasks that run for longer than a user-specified timeout (e.g. long
    or infinite loops) will be preempted to prevent resource hogging."
    """


class MemoryLimitExceeded(DandelionError):
    """A function's data exceeded its declared memory requirement."""


class InvocationError(DandelionError):
    """A composition invocation could not be carried out."""


class DeadlineExceeded(DandelionError):
    """A task missed its dispatcher-enforced invocation deadline (§6.1).

    Unlike :class:`FunctionTimeout` (the sandbox preempting a runaway
    function), this is the orchestration layer giving up on a task whose
    completion never arrived — a crashed engine, a lost exchange, or a
    queue that never drained.
    """


class WorkerCrashed(DandelionError):
    """A worker node fail-stopped while an invocation was in flight on it.

    Carries the worker index; the cluster manager re-routes the
    invocation to a healthy peer (safe because compositions are pure,
    §6.1) or surfaces this error when no peer is available.
    """

    def __init__(self, worker_index: int):
        super().__init__(f"worker {worker_index} crashed (fail-stop)")
        self.worker_index = worker_index
