"""Trace-scale benchmark: sharded replay vs the pre-PR single kernel.

Times the sharded simulator (:mod:`repro.sim.sharded`) against the
baseline the repo had before it existed — eager trace materialization
(:meth:`~repro.trace.stream.StreamedTrace.materialize`) plus
:func:`~repro.trace.replay.replay_on_dandelion` on one pooled-core
kernel — at the *same* invocation stream and aggregate core count.
The numbers land in ``BENCH_trace_scale.json``; the CI trace-scale
smoke job re-measures the reduced (10×) matrix and gates on
:data:`FLOORS`, and the 100× acceptance record (measured once on the
development machine, like ``bench_kernel.REFERENCE``) is carried in
:data:`REFERENCE_100X`.

Scale is relative to ``run_fig10``'s 100-function sample: ``scale=10``
is 1,000 functions at 120 rps aggregate over the same 1200 s window
(~70k invocations), ``scale=100`` is the fig10_full headline (10,000
functions, ~670k invocations).

The baseline's wall-clock grows *superlinearly* with scale (eager
generation materializes and sorts every invocation; the single
``Resource`` with thousands of pooled cores keeps deep waiter queues),
which is exactly the "trace construction starts to rival the
simulation" failure mode streamed generation + sharding remove — so
the speedup at 100× is much larger than at 10×.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

__all__ = [
    "run_trace_scale_bench",
    "trace_scale_matrix",
    "DEFAULT_OUTPUT",
    "FLOORS",
    "REFERENCE_100X",
]

DEFAULT_OUTPUT = "BENCH_trace_scale.json"

# CI gates (see .github/workflows/ci.yml, trace-scale job).  The 10×
# floors are re-measured on every CI run and set conservatively —
# they must hold even on a single-CPU host where the 4-shard run
# falls back to serial stepping and sharding is pure per-window
# overhead (the lean-1 ratio is the core-count-independent gate; the
# 4-shard floor just forbids sharding from losing to the baseline).
# The 100× floor is the acceptance record, asserted against
# REFERENCE_100X whenever the benchmark is (re)generated.
FLOORS = {
    "events_per_second_min": 40_000,
    "speedup_lean_1_min_10x": 2.0,
    "speedup_4_shards_min_10x": 1.0,
    "speedup_4_shards_min_100x": 3.0,
}

# Measured once at full fig10_full scale (scale=100: 10,000 functions,
# 670,847 invocations, 25×64-core fleet) on the development machine —
# a 1-CPU container, so the 4-shard row runs the serial executor and
# the speedup is pure kernel + data-plane work, with zero parallelism.
REFERENCE_100X = {
    "scale": 100,
    "invocations": 670_847,
    "workers": 25,
    "cores_per_worker": 64,
    "cpu_count": 1,
    "baseline_single_kernel_seconds": 78.9,
    "baseline_trace_materialize_seconds": 5.2,
    "sharded_classic_1_serial_seconds": 19.4,
    "sharded_lean_1_serial_seconds": 5.9,
    "sharded_lean_4_serial_seconds": 6.1,
    "speedup_lean_1_vs_baseline": 13.4,
    "speedup_4_shards_vs_baseline": 11.4,
    "machine": "Linux x86_64 dev container, CPython 3.11, 1 CPU",
}


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _scaled_params(scale: float) -> dict:
    from .fig10_full import (
        BASE_DURATION_SECONDS,
        BASE_FUNCTIONS,
        BASE_TOTAL_RPS,
        _fleet_for,
    )

    workers, cores_per_worker = _fleet_for(scale)
    return {
        "function_count": round(BASE_FUNCTIONS * scale),
        "duration_seconds": BASE_DURATION_SECONDS,
        "total_rps": BASE_TOTAL_RPS * scale,
        "workers": workers,
        "cores_per_worker": cores_per_worker,
    }


def _baseline_single_kernel(trace, total_cores: int) -> dict:
    """The pre-PR path: eager materialization + one pooled-core kernel."""
    from ..trace.replay import replay_on_dandelion

    start = time.perf_counter()
    eager = trace.materialize()
    materialized = time.perf_counter()
    report = replay_on_dandelion(eager, cores=total_cores)
    done = time.perf_counter()
    return {
        "engine": "baseline_single_kernel",
        "invocations": report.total_requests,
        "trace_materialize_seconds": round(materialized - start, 3),
        "replay_seconds": round(done - materialized, 3),
        "wall_seconds": round(done - start, 3),
    }


def _sharded_row(trace, workers, cores_per_worker, engine, shards, executor) -> dict:
    from ..sim.sharded import ShardedConfig, run_sharded_replay

    config = ShardedConfig(
        workers=workers,
        cores_per_worker=cores_per_worker,
        shards=shards,
        engine=engine,
        executor=executor,
    )
    start = time.perf_counter()
    report = run_sharded_replay(trace, config)
    wall = time.perf_counter() - start
    return {
        "engine": engine,
        "shards": shards,
        "executor": executor,
        "executor_mode": report.executor_mode,
        "invocations": report.routed,
        "events": report.events,
        "wall_seconds": round(wall, 3),
        "events_per_second": round(report.events / wall) if wall > 0 else None,
        "windows": report.windows,
        "stall_seconds": round(
            sum(stats["stall_seconds"] for stats in report.shard_stats), 3
        ),
    }


def trace_scale_matrix(scale: float = 10.0, include_baseline: bool = True) -> dict:
    """One scale's measurement matrix (the CI smoke re-runs this at 10×)."""
    from ..trace.stream import streamed_trace

    params = _scaled_params(scale)
    workers = params["workers"]
    cores_per_worker = params["cores_per_worker"]

    def fresh_trace():
        return streamed_trace(
            function_count=params["function_count"],
            duration_seconds=params["duration_seconds"],
            total_rps=params["total_rps"],
            seed=42,
        )

    rows = []
    if include_baseline:
        rows.append(
            _baseline_single_kernel(fresh_trace(), workers * cores_per_worker)
        )
    # classic shards=1 is the ablation: the old generator/Resource kernel
    # inside the new streamed + windowed data plane, isolating how much
    # of the win is the lean kernel vs the surrounding machinery.
    rows.append(_sharded_row(fresh_trace(), workers, cores_per_worker, "classic", 1, "serial"))
    for shards in (1, 2, 4):
        rows.append(_sharded_row(fresh_trace(), workers, cores_per_worker, "lean", shards, "serial"))
    rows.append(_sharded_row(fresh_trace(), workers, cores_per_worker, "lean", 4, "auto"))

    result = {
        "scale": scale,
        "workers": workers,
        "cores_per_worker": cores_per_worker,
        "rows": rows,
    }
    if include_baseline:
        baseline = rows[0]["wall_seconds"]
        by_key = {
            (row.get("engine"), row.get("shards"), row.get("executor")): row
            for row in rows
        }
        lean_1 = by_key[("lean", 1, "serial")]["wall_seconds"]
        lean_4 = by_key[("lean", 4, "auto")]["wall_seconds"]
        result["speedup_lean_1_vs_baseline"] = round(baseline / lean_1, 2)
        result["speedup_4_shards_vs_baseline"] = round(baseline / lean_4, 2)
    return result


def run_trace_scale_bench(
    scales=(10.0,), output: "str | None" = DEFAULT_OUTPUT
) -> dict:
    """Measure the matrix at each scale; optionally write ``output``."""
    report = {
        "schema": "repro-bench-trace-scale/v1",
        "generated_unix": int(time.time()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": _available_cpus(),
        "floors": FLOORS,
        "measured": {f"scale_{scale:g}x": trace_scale_matrix(scale) for scale in scales},
        "reference_100x": REFERENCE_100X,
    }
    assert (
        REFERENCE_100X["speedup_4_shards_vs_baseline"]
        >= FLOORS["speedup_4_shards_min_100x"]
    ), "100x acceptance record fell below its floor"
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return report
