"""§6.2 — cluster scheduling policies under skewed trace-driven load.

Dandelion's elasticity story (§6, Fig. 7) depends on fast, explicit
scheduling decisions at every layer; Dirigent showed the cluster
manager's placement policy is itself a bottleneck at scale.  This
experiment sweeps every registered routing policy
(:data:`repro.sched.ROUTING_POLICIES`) against fleet size under a
skewed, trace-shaped workload — Zipf-popular applications with
heavy binaries, Poisson arrivals — and reports goodput, latency
percentiles, and per-worker load imbalance.

What the sweep shows:

* ``random`` routing pays twice under skew: queue-length variance
  inflates p99 (a random choice lands on a busy worker with constant
  probability) and every app's binary eventually cold-loads on every
  worker;
* ``jsq`` (power-of-d-choices, d=2) removes most of the queueing
  variance with two samples per decision — the classic Mitzenmacher
  result — without reading the whole fleet's state;
* ``locality`` routes each app to the workers whose binary caches are
  already warm for it, collapsing load-from-disk stalls on top of the
  balance the least-loaded tie-break provides;
* ``round_robin``/``least_loaded`` anchor the comparison.

Every run is deterministic per seed: the same arrival times and the
same app popularity draws are replayed against every policy × fleet
size cell, so the cells differ only in placement decisions.

Since the `repro.scenario` refactor this module is a thin wrapper
over one base :class:`~repro.scenario.spec.ScenarioSpec` (bundled as
``scenario/specs/sec62.toml``) swept across ``sched.routing`` ×
``fleet.workers`` — exactly what ``python -m repro scenario sweep
sec62 --axis policy=... --axis fleet=4,8,16`` runs from the CLI; the
``reseed_per_fleet`` trace knob keeps the request stream pinned per
fleet size.
"""

from __future__ import annotations

from ..scenario.engine import run_scenario
from ..scenario.spec import (
    FleetSpec,
    ScenarioSpec,
    SchedSpec,
    TraceSpec,
    WorkloadSpec,
)
from .common import ExperimentResult

__all__ = ["run_sec62"]

MiB = 1024 * 1024

# Each app's sandbox binary: big enough that a cold load-from-disk
# (~34 ms at NVMe bandwidth) dominates a few service times, as §7.2
# measures for container images and VM snapshots, while the warm
# in-memory load (~7 ms at memcpy bandwidth) stays a modest share of
# each invocation.
_BINARY_BYTES = 64 * MiB

# The §6.2 sweep compares the load-balancing family; the "gray"
# quarantine policy is a fault-domain defense benchmarked in §6.3, so
# the default arm list is pinned (not tuple(ROUTING_POLICIES)) to keep
# this experiment's committed output stable as the registry grows.
_SEC62_POLICIES = ("round_robin", "least_loaded", "random", "jsq", "locality")


def _base_spec(
    rps_per_worker: float,
    duration_seconds: float,
    apps: int,
    zipf_skew: float,
    cores: int,
    compute_seconds: float,
    seed: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        name="sec62",
        seed=seed,
        trace=TraceSpec(
            rps_per_worker=rps_per_worker,
            duration_seconds=duration_seconds,
            apps=apps,
            zipf_skew=zipf_skew,
            reseed_per_fleet=True,
        ),
        workload=WorkloadSpec(
            name="sched_app",
            compute_seconds=compute_seconds,
            binary_mib=_BINARY_BYTES / MiB,
        ),
        fleet=FleetSpec(cores=cores),
        sched=SchedSpec(routing="least_loaded"),
    )


def run_sec62(
    policies: tuple = _SEC62_POLICIES,
    fleet_sizes: tuple = (4, 8, 16),
    rps_per_worker: float = 200.0,
    duration_seconds: float = 3.0,
    apps: int = 16,
    zipf_skew: float = 1.2,
    cores: int = 4,
    compute_seconds: float = 2e-3,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="§6.2",
        description="cluster scheduling policies: goodput/latency vs fleet size "
        "under skewed trace load",
        headers=[
            "policy",
            "workers",
            "offered_rps",
            "goodput_rps",
            "success_pct",
            "p50_ms",
            "p99_ms",
            "imbalance",
        ],
    )
    base = _base_spec(
        rps_per_worker, duration_seconds, apps, zipf_skew, cores,
        compute_seconds, seed,
    )
    for workers in fleet_sizes:
        for policy in policies:
            run = run_scenario(base.with_overrides({
                "fleet.workers": workers,
                "sched.routing": policy,
            }))
            kpis = run.kpis
            result.add_row(
                policy=policy,
                workers=workers,
                offered_rps=kpis.offered / duration_seconds,
                goodput_rps=kpis.goodput_rps,
                success_pct=kpis.success_pct,
                p50_ms=kpis.p50_ms,
                p99_ms=kpis.p99_ms,
                imbalance=kpis.imbalance,
            )
    result.note(
        f"{apps} apps, Zipf skew {zipf_skew}, {_BINARY_BYTES // MiB} MiB binaries "
        f"(~{_BINARY_BYTES / 2e9 * 1e3:.0f} ms cold load), "
        f"{compute_seconds * 1e3:g} ms service, {rps_per_worker:g} rps/worker; "
        "identical request streams per fleet size, so cells differ only in "
        "placement decisions"
    )
    result.note(
        "jsq = power-of-2-choices sampling; locality = warm-binary-cache "
        "affinity with load-bounded spill (docs/scheduling.md)"
    )
    return result
