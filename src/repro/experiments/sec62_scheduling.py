"""§6.2 — cluster scheduling policies under skewed trace-driven load.

Dandelion's elasticity story (§6, Fig. 7) depends on fast, explicit
scheduling decisions at every layer; Dirigent showed the cluster
manager's placement policy is itself a bottleneck at scale.  This
experiment sweeps every registered routing policy
(:data:`repro.sched.ROUTING_POLICIES`) against fleet size under a
skewed, trace-shaped workload — Zipf-popular applications with
heavy binaries, Poisson arrivals — and reports goodput, latency
percentiles, and per-worker load imbalance.

What the sweep shows:

* ``random`` routing pays twice under skew: queue-length variance
  inflates p99 (a random choice lands on a busy worker with constant
  probability) and every app's binary eventually cold-loads on every
  worker;
* ``jsq`` (power-of-d-choices, d=2) removes most of the queueing
  variance with two samples per decision — the classic Mitzenmacher
  result — without reading the whole fleet's state;
* ``locality`` routes each app to the workers whose binary caches are
  already warm for it, collapsing load-from-disk stalls on top of the
  balance the least-loaded tie-break provides;
* ``round_robin``/``least_loaded`` anchor the comparison.

Every run is deterministic per seed: the same arrival times and the
same app popularity draws are replayed against every policy × fleet
size cell, so the cells differ only in placement decisions.
"""

from __future__ import annotations

from ..cluster.manager import ClusterManager
from ..functions.sdk import compute_function
from ..sched.routing import ROUTING_POLICIES
from ..sim.distributions import Rng
from ..worker import WorkerConfig
from .common import ExperimentResult

__all__ = ["run_sec62"]

MiB = 1024 * 1024

# Each app's sandbox binary: big enough that a cold load-from-disk
# (~34 ms at NVMe bandwidth) dominates a few service times, as §7.2
# measures for container images and VM snapshots, while the warm
# in-memory load (~7 ms at memcpy bandwidth) stays a modest share of
# each invocation.
_BINARY_BYTES = 64 * MiB

_COMPOSITION_TEMPLATE = """
composition {comp} {{
    compute stage uses {fn} in(data) out(result);
    input data -> stage.data;
    output stage.result -> result;
}}
"""


def _app_binary(index: int, compute_seconds: float):
    @compute_function(
        name=f"sched_app_fn_{index}",
        compute_cost=compute_seconds,
        binary_size=_BINARY_BYTES,
    )
    def sched_app(vfs):
        vfs.write_bytes("/out/result/data", vfs.read_bytes("/in/data/data"))

    return sched_app


def _make_cluster(policy: str, workers: int, cores: int, apps: int,
                  compute_seconds: float, seed: int) -> ClusterManager:
    cluster = ClusterManager(
        worker_count=workers,
        worker_config=WorkerConfig(
            total_cores=cores, control_plane_enabled=False, seed=seed
        ),
        policy=policy,
        seed=seed,
    )
    for index in range(apps):
        cluster.register_function(_app_binary(index, compute_seconds))
        cluster.register_composition(
            _COMPOSITION_TEMPLATE.format(
                comp=f"sched_app_{index}", fn=f"sched_app_fn_{index}"
            )
        )
    return cluster


def _trace(apps: int, rps: float, duration_seconds: float, zipf_skew: float,
           seed: int) -> list:
    """Deterministic (time, app index) request stream, Zipf-popular."""
    arrival_rng = Rng(seed)
    app_rng = Rng(seed).fork(1)
    weights = arrival_rng.zipf_weights(apps, zipf_skew)
    cumulative = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    arrivals = arrival_rng.poisson_arrivals(rps, duration_seconds)
    requests = []
    for arrive_at in arrivals:
        draw = app_rng.uniform()
        app = next(
            index for index, edge in enumerate(cumulative) if draw <= edge
        )
        requests.append((arrive_at, app))
    return requests


def _drive(cluster: ClusterManager, requests: list) -> tuple[int, int]:
    env = cluster.env
    completed = [0]

    def one(arrive_at, app):
        delay = arrive_at - env.now
        if delay > 0:
            yield env.timeout(delay)
        result = yield cluster.invoke(f"sched_app_{app}", {"data": b"ping"})
        if result.ok:
            completed[0] += 1

    def driver():
        processes = [env.process(one(t, app)) for t, app in requests]
        if processes:
            yield env.all_of(processes)

    env.run(until=env.process(driver()))
    return len(requests), completed[0]


def _imbalance(cluster: ClusterManager) -> float:
    """Peak-to-mean ratio of per-worker routed invocations."""
    counts = [cluster.per_worker_invocations[i] for i in range(len(cluster.workers))]
    total = sum(counts)
    if not counts or total == 0:
        return float("nan")
    mean = total / len(counts)
    return max(counts) / mean


# The §6.2 sweep compares the load-balancing family; the "gray"
# quarantine policy is a fault-domain defense benchmarked in §6.3, so
# the default arm list is pinned (not tuple(ROUTING_POLICIES)) to keep
# this experiment's committed output stable as the registry grows.
_SEC62_POLICIES = ("round_robin", "least_loaded", "random", "jsq", "locality")


def run_sec62(
    policies: tuple = _SEC62_POLICIES,
    fleet_sizes: tuple = (4, 8, 16),
    rps_per_worker: float = 200.0,
    duration_seconds: float = 3.0,
    apps: int = 16,
    zipf_skew: float = 1.2,
    cores: int = 4,
    compute_seconds: float = 2e-3,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="§6.2",
        description="cluster scheduling policies: goodput/latency vs fleet size "
        "under skewed trace load",
        headers=[
            "policy",
            "workers",
            "offered_rps",
            "goodput_rps",
            "success_pct",
            "p50_ms",
            "p99_ms",
            "imbalance",
        ],
    )
    for workers in fleet_sizes:
        rps = rps_per_worker * workers
        requests = _trace(apps, rps, duration_seconds, zipf_skew, seed + workers)
        for policy in policies:
            cluster = _make_cluster(
                policy, workers, cores, apps, compute_seconds, seed
            )
            offered, completed = _drive(cluster, requests)
            have_latencies = len(cluster.latencies) > 0
            result.add_row(
                policy=policy,
                workers=workers,
                offered_rps=offered / duration_seconds,
                goodput_rps=completed / duration_seconds,
                success_pct=100.0 * completed / offered if offered else 100.0,
                p50_ms=cluster.latencies.median * 1e3 if have_latencies else float("nan"),
                p99_ms=cluster.latencies.p99 * 1e3 if have_latencies else float("nan"),
                imbalance=_imbalance(cluster),
            )
    result.note(
        f"{apps} apps, Zipf skew {zipf_skew}, {_BINARY_BYTES // MiB} MiB binaries "
        f"(~{_BINARY_BYTES / 2e9 * 1e3:.0f} ms cold load), "
        f"{compute_seconds * 1e3:g} ms service, {rps_per_worker:g} rps/worker; "
        "identical request streams per fleet size, so cells differ only in "
        "placement decisions"
    )
    result.note(
        "jsq = power-of-2-choices sampling; locality = warm-binary-cache "
        "affinity with load-bounded spill (docs/scheduling.md)"
    )
    return result
