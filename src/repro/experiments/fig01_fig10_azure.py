"""Figs 1 and 10 — Azure-trace memory and latency experiments.

Both figures replay the (synthetic) Azure Functions trace sample:

* **Fig 1** contrasts the memory Knative-style autoscaling *commits*
  (warm MicroVMs held after requests) against the memory required by
  the VMs *actively serving requests* — the paper measures ~16× average
  over-provisioning.

* **Fig 10** adds Dandelion: per-request contexts mean committed ==
  active, reducing average committed memory by ~96% vs
  Firecracker+Knative (109 MB vs 2619 MB in the paper) while also
  cutting p99 latency (−46% in the paper) because no request waits on
  a snapshot restore.
"""

from __future__ import annotations

from ..sim.distributions import Rng
from ..trace.azure import generate_trace
from ..trace.replay import replay_on_dandelion, replay_on_faas
from ..trace.sampler import sample_trace
from .common import ExperimentResult

__all__ = ["run_fig01", "run_fig10", "default_trace"]

MiB = 1 << 20


def default_trace(
    function_population: int = 100,
    sample_size: int = 100,
    duration_seconds: float = 1200.0,
    total_rps: float = 12.0,
    seed: int = 42,
):
    """The experiment's trace: a 100-function sample at d430-scale load.

    When ``function_population`` exceeds ``sample_size`` the InVitro-
    style stratified sampler picks the subset; the default generates
    the sample-sized population directly (the sampler is exercised by
    its own tests), which keeps the aggregate request rate calibrated.
    """
    population = generate_trace(
        function_count=function_population,
        duration_seconds=duration_seconds,
        total_rps=total_rps,
        seed=seed,
    )
    if function_population == sample_size:
        return population
    return sample_trace(population, sample_size, Rng(seed + 1))


def run_fig01(trace=None, cores: int = 16, resample_step: float = 60.0) -> ExperimentResult:
    trace = trace or default_trace()
    report = replay_on_faas(trace, cores=cores)
    result = ExperimentResult(
        name="Fig 1",
        description="Azure trace on Knative-autoscaled MicroVMs: committed vs active memory (MiB)",
        headers=["time_s", "committed_mib", "active_mib"],
    )
    committed_points = report.committed_series.resample(resample_step, 0, trace.duration_seconds)
    for time, committed in committed_points:
        active = report.active_series.value_at(min(time, trace.duration_seconds))
        result.add_row(time_s=time, committed_mib=committed / MiB, active_mib=active / MiB)
    average_committed = report.average_committed_bytes() / MiB
    average_active = max(report.average_active_bytes() / MiB, 1e-9)
    result.note(
        f"average committed {average_committed:.0f} MiB vs active "
        f"{average_active:.0f} MiB -> {average_committed / average_active:.1f}x "
        "over-provisioning (paper: ~16x)"
    )
    result.note(f"cold fraction {report.cold_fraction * 100:.1f}% (paper: ~3.3%)")
    return result


def run_fig10(trace=None, cores: int = 16, resample_step: float = 60.0) -> ExperimentResult:
    trace = trace or default_trace()
    dandelion = replay_on_dandelion(trace, cores=cores)
    firecracker = replay_on_faas(trace, cores=cores)
    result = ExperimentResult(
        name="Fig 10",
        description="Azure trace: committed memory over time, Dandelion vs Firecracker+Knative (MiB)",
        headers=["time_s", "dandelion_mib", "firecracker_mib"],
    )
    for time, dandelion_bytes in dandelion.committed_series.resample(
        resample_step, 0, trace.duration_seconds
    ):
        fc_bytes = firecracker.committed_series.value_at(min(time, trace.duration_seconds))
        result.add_row(
            time_s=time,
            dandelion_mib=dandelion_bytes / MiB,
            firecracker_mib=fc_bytes / MiB,
        )
    dandelion_avg = dandelion.average_committed_bytes() / MiB
    firecracker_avg = firecracker.average_committed_bytes() / MiB
    savings = 100 * (1 - dandelion_avg / firecracker_avg)
    p99_reduction = 100 * (
        1 - dandelion.latencies.percentile(99) / firecracker.latencies.percentile(99)
    )
    result.note(
        f"average committed: dandelion {dandelion_avg:.0f} MiB vs firecracker "
        f"{firecracker_avg:.0f} MiB -> {savings:.1f}% less (paper: 96%, 109 vs 2619 MB)"
    )
    result.note(
        f"p99 latency: dandelion {dandelion.latencies.percentile(99) * 1e3:.0f} ms vs "
        f"firecracker {firecracker.latencies.percentile(99) * 1e3:.0f} ms -> "
        f"{p99_reduction:.1f}% reduction (paper: 46%)"
    )
    result.note(
        f"requests: {dandelion.total_requests}; dandelion cold fraction 100% by design"
    )
    return result
