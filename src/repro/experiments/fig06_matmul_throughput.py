"""Fig 6 — 128×128 matmul latency vs throughput on the 16-core server.

Dandelion creates a new sandbox per request (3% of requests load the
binary from disk rather than the RAM cache); Firecracker runs 97% hot;
Wasmtime pays its compute slowdown; Hyperlight pays per-request
runtime+module loading.  The paper's shape: Dandelion-KVM low and
stable, peaking at 4800 RPS; FC-snapshot saturates at 3000 RPS and gets
unstable beyond 2800; WT saturates at 2600 RPS with higher unloaded
latency; Hyperlight's unloaded average is 27.5 ms.
"""

from __future__ import annotations

import numpy as np

from ..baselines import (
    FIRECRACKER_SNAPSHOT,
    HYPERLIGHT_MATMUL,
    WASMTIME,
    FaasPlatform,
    FixedHotRatioPolicy,
    compute_phase,
)
from ..data.items import DataItem, DataSet
from ..functions.sdk import compute_function
from ..sim.core import Environment
from ..sim.distributions import Rng
from ..workloads.loadgen import run_open_loop
from ..workloads.phase_apps import MATMUL_128_SECONDS
from .common import ExperimentResult
from .loaded_dandelion import DandelionLoadModel

__all__ = ["run_fig06", "matmul_128_binary", "DEFAULT_SYSTEMS"]

DEFAULT_SYSTEMS = (
    "dandelion-kvm",
    "dandelion-process",
    "dandelion-rwasm",
    "firecracker-snapshot",
    "wasmtime",
    "hyperlight",
)

_MATRIX_SIDE = 128


def matmul_128_binary():
    """A real 128x128 int64 matmul compute function."""

    @compute_function(
        name="matmul128",
        compute_cost=MATMUL_128_SECONDS,
        binary_size=96 * 1024,
        memory_limit=8 << 20,
    )
    def matmul(vfs):
        a = np.frombuffer(vfs.read_bytes("/in/a/matrix"), dtype=np.int64)
        b = np.frombuffer(vfs.read_bytes("/in/b/matrix"), dtype=np.int64)
        a = a.reshape(_MATRIX_SIDE, _MATRIX_SIDE)
        b = b.reshape(_MATRIX_SIDE, _MATRIX_SIDE)
        vfs.write_bytes("/out/c/matrix", (a @ b).tobytes())

    return matmul


def _matrix_inputs(seed: int = 0):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 100, size=(_MATRIX_SIDE, _MATRIX_SIDE), dtype=np.int64)
    b = rng.integers(0, 100, size=(_MATRIX_SIDE, _MATRIX_SIDE), dtype=np.int64)
    return [
        DataSet("a", [DataItem("matrix", a.tobytes())]),
        DataSet("b", [DataItem("matrix", b.tobytes())]),
    ]


def _make_submit(system: str, env: Environment, cores: int, seed: int):
    if system.startswith("dandelion-"):
        model = DandelionLoadModel(
            env,
            matmul_128_binary(),
            _matrix_inputs(seed),
            ["c"],
            cores=cores,
            backend_name=system.split("-", 1)[1],
            machine="linux",
            cold_load_fraction=0.03,  # "load from disk ... for 3% of requests"
            rng=Rng(seed),
        )
        return model.request
    if system == "firecracker-snapshot":
        platform = FaasPlatform(
            env, FIRECRACKER_SNAPSHOT, cores=cores,
            policy=FixedHotRatioPolicy(0.97, Rng(seed)),
        )
    elif system == "wasmtime":
        platform = FaasPlatform(
            env, WASMTIME, cores=cores, policy=FixedHotRatioPolicy(0.0, Rng(seed))
        )
    elif system == "hyperlight":
        platform = FaasPlatform(
            env, HYPERLIGHT_MATMUL, cores=cores, policy=FixedHotRatioPolicy(0.0, Rng(seed))
        )
    else:
        raise KeyError(f"unknown system {system!r}")
    platform.register_function("matmul128", [compute_phase(MATMUL_128_SECONDS)])
    return lambda: platform.request("matmul128")


def run_fig06(
    systems=DEFAULT_SYSTEMS,
    rates=(100, 500, 1000, 2000, 2600, 3000, 3600, 4200, 4800, 5400, 6000),
    duration_seconds: float = 1.0,
    cores: int = 16,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 6",
        description="128x128 matmul on 16-core server: median latency (p5/p95) vs offered RPS",
        headers=["system", "offered_rps", "achieved_rps", "p5_ms", "p50_ms", "p95_ms", "saturated"],
    )
    for system in systems:
        for rate in rates:
            env = Environment()
            submit = _make_submit(system, env, cores, seed)
            load = run_open_loop(
                env, submit, rate, duration_seconds,
                drain_seconds=5.0,
            )
            latencies = load.latencies
            result.add_row(
                system=system,
                offered_rps=rate,
                achieved_rps=load.achieved_rps,
                p5_ms=latencies.percentile(5) * 1e3 if len(latencies) else float("nan"),
                p50_ms=latencies.percentile(50) * 1e3 if len(latencies) else float("nan"),
                p95_ms=latencies.percentile(95) * 1e3 if len(latencies) else float("nan"),
                saturated=load.saturated,
            )
            if load.saturated:
                break
    result.note(
        "paper: Dandelion-KVM peaks at 4800 RPS; FC-snap saturates at 3000; "
        "WT at 2600; Hyperlight unloaded avg 27.5 ms"
    )
    return result
