"""Experiment harnesses: one module per paper table/figure."""

from .common import ExperimentResult, ascii_chart, render_table
from .fig01_fig10_azure import default_trace, run_fig01, run_fig10
from .fig02_hot_ratio import run_fig02
from .fig05_creation_throughput import run_fig05
from .fig06_matmul_throughput import matmul_128_binary, run_fig06
from .fig07_split_benefit import run_fig07
from .fig08_multiplexing import run_fig08
from .fig09_scaling import dandelion_query_seconds, run_fig09_scaling
from .fig09_ssb_athena import run_fig09
from .fig10_full import full_trace, run_fig10_full
from .loaded_dandelion import DandelionLoadModel
from .sec61_fault_tolerance import run_sec61
from .sec62_scheduling import run_sec62
from .sec63_gray_failures import run_sec63
from .sec74_composition_chain import run_sec74
from .sec77_text2sql import run_sec77
from .sec8_security import run_sec8_enforcement, run_sec8_static, run_sec8_tcb
from .table1_breakdown import matmul_1x1_binary, run_table1

__all__ = [
    "ExperimentResult",
    "ascii_chart",
    "render_table",
    "default_trace",
    "run_fig01",
    "run_fig10",
    "run_fig10_full",
    "full_trace",
    "run_fig02",
    "run_fig05",
    "matmul_128_binary",
    "run_fig06",
    "run_fig07",
    "run_fig08",
    "run_fig09",
    "run_fig09_scaling",
    "dandelion_query_seconds",
    "DandelionLoadModel",
    "run_sec61",
    "run_sec62",
    "run_sec63",
    "run_sec74",
    "run_sec77",
    "run_sec8_enforcement",
    "run_sec8_static",
    "run_sec8_tcb",
    "matmul_1x1_binary",
    "run_table1",
]
