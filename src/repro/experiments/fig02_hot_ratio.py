"""Fig 2 — Firecracker tail latency vs the percentage of hot requests.

"128x128 int64 matmul running in Firecracker MicroVMs.  The % of cold
requests greatly impacts performance" — median latency stays low, but
p99/p99.9 explode by orders of magnitude as soon as a small fraction of
requests must restore a MicroVM on the critical path (note the paper's
log scale).
"""

from __future__ import annotations

from ..baselines import FIRECRACKER_SNAPSHOT, FaasPlatform, FixedHotRatioPolicy, compute_phase
from ..sim.core import Environment
from ..sim.distributions import Rng
from ..workloads.loadgen import run_open_loop
from ..workloads.phase_apps import MATMUL_128_SECONDS
from .common import ExperimentResult

__all__ = ["run_fig02"]

DEFAULT_HOT_RATIOS = (1.0, 0.9999, 0.999, 0.99, 0.98, 0.97)


def run_fig02(
    hot_ratios=DEFAULT_HOT_RATIOS,
    rate_rps: float = 400.0,
    duration_seconds: float = 20.0,
    cores: int = 16,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 2",
        description="128x128 matmul on Firecracker (snapshots): latency vs % hot requests (ms)",
        headers=["hot_pct", "p50_ms", "p95_ms", "p99_ms", "p999_ms", "max_ms"],
    )
    for index, hot_ratio in enumerate(hot_ratios):
        env = Environment()
        platform = FaasPlatform(
            env,
            FIRECRACKER_SNAPSHOT,
            cores=cores,
            policy=FixedHotRatioPolicy(hot_ratio, Rng(seed * 100 + index)),
        )
        platform.register_function("matmul", [compute_phase(MATMUL_128_SECONDS)])
        load = run_open_loop(
            env,
            lambda: platform.request("matmul"),
            rate_rps,
            duration_seconds,
            rng=Rng(seed * 100 + index + 50),
        )
        latencies = load.latencies
        result.add_row(
            hot_pct=f"{hot_ratio * 100:g}",
            p50_ms=latencies.percentile(50) * 1e3,
            p95_ms=latencies.percentile(95) * 1e3,
            p99_ms=latencies.percentile(99) * 1e3,
            p999_ms=latencies.percentile(99.9) * 1e3,
            max_ms=latencies.maximum * 1e3,
        )
    result.note(
        "paper: tail latency spans orders of magnitude between 100% and 97% hot"
    )
    return result
