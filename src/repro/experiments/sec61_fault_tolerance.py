"""§6.1 — fault tolerance: goodput/latency degradation under injected faults.

The paper's fault-tolerance story (§6.1) is that failures are absorbed
by the platform: pure compute functions are transparently re-executed,
communication functions are retried when the protocol marks them
idempotent, and the Dirigent-based cluster manager (§5) re-routes work
away from crashed workers.  This experiment injects faults at two
levels and measures how goodput and tail latency degrade:

* **transient engine faults** — each task execution crashes its sandbox
  with probability ``rate``; the dispatcher retries with exponential
  backoff and seeded jitter;
* **worker fail-stop crashes** — workers die with exponential MTTF and
  return (fresh, registrations replayed) after exponential MTTR; the
  cluster manager skips unhealthy nodes and re-routes invocations that
  were in flight on a crashed one.

All randomness is seeded, so the same seed reproduces the same report
byte for byte; at fault rate 0 the run takes the no-retry fast path and
behaves exactly like a fault-free cluster.

Since the `repro.scenario` refactor this module is a thin wrapper: it
builds one base :class:`~repro.scenario.spec.ScenarioSpec` (also
bundled as ``scenario/specs/sec61.toml``), sweeps the fault axes via
spec overrides through :func:`~repro.scenario.engine.run_scenario`,
and renders the rows from each run's KpiRecord.
"""

from __future__ import annotations

from ..scenario.engine import run_scenario
from ..scenario.spec import (
    FaultSpec,
    FleetSpec,
    ScenarioSpec,
    SchedSpec,
    TraceSpec,
    WorkloadSpec,
)
from .common import ExperimentResult

__all__ = ["run_sec61"]

# Per-invocation deadline: generous against the ~1 ms service time, so
# only genuinely stuck work (crashed engines, lost exchanges) hits it.
_DEADLINE_SECONDS = 0.25


def _base_spec(
    rps: float,
    duration_seconds: float,
    workers: int,
    cores: int,
    mttr_seconds: float,
    seed: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        name="sec61",
        seed=seed,
        trace=TraceSpec(rps=rps, duration_seconds=duration_seconds),
        workload=WorkloadSpec(name="ft_echo", compute_seconds=4e-3),
        fleet=FleetSpec(workers=workers, cores=cores),
        faults=FaultSpec(
            max_retries=3,
            deadline_seconds=_DEADLINE_SECONDS,
            mttr_seconds=mttr_seconds,
        ),
        sched=SchedSpec(routing="least_loaded"),
    )


def run_sec61(
    rps: float = 150.0,
    duration_seconds: float = 4.0,
    workers: int = 3,
    cores: int = 4,
    transient_rates: tuple = (0.0, 0.02, 0.05, 0.1, 0.2),
    mttf_sweep: tuple = (2.0, 1.0, 0.5),
    mttr_seconds: float = 0.25,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="§6.1",
        description="fault tolerance: goodput and tail latency under injected faults",
        headers=[
            "scenario",
            "fault_rate",
            "mttf_s",
            "crashes",
            "reroutes",
            "retries",
            "offered",
            "goodput_rps",
            "success_pct",
            "p50_ms",
            "p99_ms",
        ],
    )
    base = _base_spec(rps, duration_seconds, workers, cores, mttr_seconds, seed)

    def add_row(scenario, fault_rate, mttf_label, kpis):
        result.add_row(
            scenario=scenario,
            fault_rate=fault_rate,
            mttf_s=mttf_label,
            crashes=kpis.counters["crashes"],
            reroutes=kpis.counters["reroutes"],
            retries=kpis.counters["retries"],
            offered=kpis.offered,
            goodput_rps=kpis.goodput_rps,
            success_pct=kpis.success_pct,
            p50_ms=kpis.p50_ms,
            p99_ms=kpis.p99_ms,
        )

    # Sweep 1: transient engine faults, absorbed by backoff retries.
    for rate in transient_rates:
        run = run_scenario(
            base.with_overrides({"faults.transient_rate": rate})
        )
        add_row("transient", rate, "-", run.kpis)

    # Sweep 2: fail-stop worker crashes, absorbed by re-routing.
    for mttf in mttf_sweep:
        run = run_scenario(
            base.with_overrides({"faults.mttf_seconds": mttf})
        )
        add_row("fail-stop", 0.0, mttf, run.kpis)

    baseline = result.rows[0]
    result.note(
        f"baseline (no faults): {baseline['goodput_rps']:.1f} req/s goodput, "
        f"p99 {baseline['p99_ms']:.2f} ms; degradation curves above are relative to it"
    )
    result.note(
        "§6.1: pure compute functions are re-executed transparently (backoff "
        "retries); fail-stopped workers lose state and in-flight invocations "
        "re-route to healthy peers; every run is deterministic per seed"
    )
    return result
