"""§6.1 — fault tolerance: goodput/latency degradation under injected faults.

The paper's fault-tolerance story (§6.1) is that failures are absorbed
by the platform: pure compute functions are transparently re-executed,
communication functions are retried when the protocol marks them
idempotent, and the Dirigent-based cluster manager (§5) re-routes work
away from crashed workers.  This experiment injects faults at two
levels and measures how goodput and tail latency degrade:

* **transient engine faults** — each task execution crashes its sandbox
  with probability ``rate``; the dispatcher retries with exponential
  backoff and seeded jitter;
* **worker fail-stop crashes** — workers die with exponential MTTF and
  return (fresh, registrations replayed) after exponential MTTR; the
  cluster manager skips unhealthy nodes and re-routes invocations that
  were in flight on a crashed one.

All randomness is seeded, so the same seed reproduces the same report
byte for byte; at fault rate 0 the run takes the no-retry fast path and
behaves exactly like a fault-free cluster.
"""

from __future__ import annotations

from ..cluster.faults import WorkerFaultInjector
from ..cluster.manager import ClusterManager
from ..functions.sdk import compute_function
from ..sim.distributions import Rng
from ..worker import WorkerConfig
from .common import ExperimentResult

__all__ = ["run_sec61"]

_COMPOSITION = """
composition ft_echo {
    compute e uses ft_echo_fn in(data) out(result);
    input data -> e.data;
    output e.result -> result;
}
"""

# Per-invocation deadline: generous against the ~1 ms service time, so
# only genuinely stuck work (crashed engines, lost exchanges) hits it.
_DEADLINE_SECONDS = 0.25


def _echo_binary():
    @compute_function(name="ft_echo_fn", compute_cost=4e-3)
    def ft_echo_fn(vfs):
        vfs.write_bytes("/out/result/data", vfs.read_bytes("/in/data/data"))

    return ft_echo_fn


def _make_cluster(
    workers: int, cores: int, transient_rate: float, seed: int
) -> ClusterManager:
    config = WorkerConfig(
        total_cores=cores,
        control_plane_enabled=False,
        transient_failure_rate=transient_rate,
        max_retries=3,
        default_timeout=_DEADLINE_SECONDS,
        seed=seed,
    )
    cluster = ClusterManager(
        worker_count=workers,
        worker_config=config,
        policy="least_loaded",
        seed=seed,
    )
    cluster.register_function(_echo_binary())
    cluster.register_composition(_COMPOSITION)
    return cluster


def _drive(cluster: ClusterManager, rps: float, duration_seconds: float, seed: int):
    """Poisson arrivals against the cluster; returns (offered, completed)."""
    env = cluster.env
    arrivals = Rng(seed).poisson_arrivals(rps, duration_seconds)
    completed = [0]

    def one(arrive_at):
        delay = arrive_at - env.now
        if delay > 0:
            yield env.timeout(delay)
        result = yield cluster.invoke("ft_echo", {"data": b"ping"})
        if result.ok:
            completed[0] += 1

    def driver():
        processes = [env.process(one(t)) for t in arrivals]
        if processes:
            yield env.all_of(processes)

    env.run(until=env.process(driver()))
    return len(arrivals), completed[0]


def _cluster_retries(cluster: ClusterManager) -> int:
    return sum(worker.dispatcher.retries_performed for worker in cluster.workers)


def run_sec61(
    rps: float = 150.0,
    duration_seconds: float = 4.0,
    workers: int = 3,
    cores: int = 4,
    transient_rates: tuple = (0.0, 0.02, 0.05, 0.1, 0.2),
    mttf_sweep: tuple = (2.0, 1.0, 0.5),
    mttr_seconds: float = 0.25,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="§6.1",
        description="fault tolerance: goodput and tail latency under injected faults",
        headers=[
            "scenario",
            "fault_rate",
            "mttf_s",
            "crashes",
            "reroutes",
            "retries",
            "offered",
            "goodput_rps",
            "success_pct",
            "p50_ms",
            "p99_ms",
        ],
    )

    def add_row(scenario, fault_rate, mttf_label, cluster, offered, completed):
        stats = cluster.stats()["failures"]
        have_latencies = len(cluster.latencies) > 0
        result.add_row(
            scenario=scenario,
            fault_rate=fault_rate,
            mttf_s=mttf_label,
            crashes=stats["worker_crashes"],
            reroutes=stats["reroutes"],
            retries=_cluster_retries(cluster),
            offered=offered,
            goodput_rps=completed / duration_seconds,
            success_pct=100.0 * completed / offered if offered else 100.0,
            p50_ms=cluster.latencies.median * 1e3 if have_latencies else float("nan"),
            p99_ms=cluster.latencies.p99 * 1e3 if have_latencies else float("nan"),
        )

    # Sweep 1: transient engine faults, absorbed by backoff retries.
    for rate in transient_rates:
        cluster = _make_cluster(workers, cores, rate, seed)
        offered, completed = _drive(cluster, rps, duration_seconds, seed + 17)
        add_row("transient", rate, "-", cluster, offered, completed)

    # Sweep 2: fail-stop worker crashes, absorbed by re-routing.
    for mttf in mttf_sweep:
        cluster = _make_cluster(workers, cores, 0.0, seed)
        injector = WorkerFaultInjector(
            cluster,
            mttf_seconds=mttf,
            mttr_seconds=mttr_seconds,
            seed=seed + 29,
        )
        offered, completed = _drive(cluster, rps, duration_seconds, seed + 17)
        add_row("fail-stop", 0.0, mttf, cluster, offered, completed)
        del injector

    baseline = result.rows[0]
    result.note(
        f"baseline (no faults): {baseline['goodput_rps']:.1f} req/s goodput, "
        f"p99 {baseline['p99_ms']:.2f} ms; degradation curves above are relative to it"
    )
    result.note(
        "§6.1: pure compute functions are re-executed transparently (backoff "
        "retries); fail-stopped workers lose state and in-flight invocations "
        "re-route to healthy peers; every run is deterministic per seed"
    )
    return result
