"""Fig 7 — throughput benefits of the compute/communication split.

Dandelion (engine split + PI-controlled core allocation) vs D-hybrid
(same architecture, but compositions run as single hybrid functions
with a static threads-per-core setting) on two workload types:

* compute-intensive: the 128×128 matmul;
* I/O-intensive: fetch-and-compute (two phases).

Paper finding: D-hybrid needs fundamentally different static settings
per workload (tpc 1 pinned for matmul, ~5 tpc unpinned for
fetch-and-compute) while Dandelion's control plane reaches the highest
throughput on both — plus lower tail latency for the I/O app thanks to
run-to-completion compute and cooperative networking.
"""

from __future__ import annotations

from ..baselines.dhybrid import DHybridPlatform
from ..sim.core import Environment
from ..worker import WorkerConfig, WorkerNode
from ..workloads.loadgen import run_open_loop
from ..workloads.phase_apps import (
    fetch_and_compute_phases,
    matmul_phases,
    register_phase_composition,
)
from .common import ExperimentResult

__all__ = ["run_fig07"]

DEFAULT_CONFIGS = (
    ("dandelion", None, None),
    ("dhybrid", 1, True),    # 1 tpc, pinned
    ("dhybrid", 3, False),
    ("dhybrid", 5, False),
)

WORKLOADS = {
    "matmul": matmul_phases,
    "fetch_and_compute": lambda: fetch_and_compute_phases(2),
}


def _make_submit(system, tpc, pinned, workload, cores, env_holder):
    phases = WORKLOADS[workload]()
    if system == "dandelion":
        worker = WorkerNode(
            WorkerConfig(total_cores=cores, control_plane_enabled=True, machine="linux")
        )
        name = register_phase_composition(worker, workload, phases)
        env_holder.append(worker.env)
        return worker.env, lambda: worker.frontend.invoke(name, {"data": b"x"})
    env = Environment()
    platform = DHybridPlatform(env, cores=cores, threads_per_core=tpc, pinned=pinned)
    platform.register_function(workload, phases)
    return env, lambda: platform.request(workload)


def run_fig07(
    configs=DEFAULT_CONFIGS,
    rates=(200, 500, 1000, 1500, 2000, 2200, 2400, 3000, 4500, 6000),
    duration_seconds: float = 0.5,
    cores: int = 8,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 7",
        description="Dandelion vs D-hybrid (static tpc): peak throughput and p99 per workload",
        headers=["system", "workload", "offered_rps", "achieved_rps", "p99_ms", "saturated"],
    )
    peaks: dict[tuple, float] = {}
    for workload in WORKLOADS:
        for system, tpc, pinned in configs:
            label = system if system == "dandelion" else (
                f"dhybrid-tpc{tpc}{'-pinned' if pinned else ''}"
            )
            for rate in rates:
                env, submit = _make_submit(system, tpc, pinned, workload, cores, [])
                load = run_open_loop(env, submit, rate, duration_seconds, drain_seconds=5.0)
                latencies = load.latencies
                result.add_row(
                    system=label,
                    workload=workload,
                    offered_rps=rate,
                    achieved_rps=load.achieved_rps,
                    p99_ms=latencies.percentile(99) * 1e3 if len(latencies) else float("nan"),
                    saturated=load.saturated,
                )
                if load.saturated:
                    break
                peaks[(label, workload)] = max(
                    peaks.get((label, workload), 0.0), load.achieved_rps
                )
    for (label, workload), peak in sorted(peaks.items()):
        result.note(f"peak {label} on {workload}: {peak:.0f} RPS")
    result.note(
        "paper: best static D-hybrid config differs per workload "
        "(tpc1-pinned for matmul, tpc5-unpinned for fetch-and-compute); "
        "Dandelion's controller matches or beats both without retuning"
    )
    return result
