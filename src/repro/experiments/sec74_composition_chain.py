"""§7.4 — composition performance overhead vs chain depth.

"A microbenchmark that fetches a 64KiB array and computes sum, min and
max over a sample of the elements; we call this sequence a phase.  We
sweep the number of phases in the microbenchmark from 2 to 16."

Dandelion pays a sandbox creation per compute function in the chain
(cached or uncached binary), while Firecracker-hot runs the whole chain
inside one warm MicroVM; Firecracker-cold pays one snapshot restore up
front; Wasmtime runs the chain in one instance with its compute
slowdown.  The paper's findings: all systems scale linearly; Dandelion
KVM uncached is ~17% slower than FC-hot at 8 phases and ~4 ms slower at
16; cached vs uncached differ by only ~0.5 ms at 16 phases; Dandelion
is 4.6× faster than FC-cold at 16 phases.
"""

from __future__ import annotations

from ..baselines import (
    FIRECRACKER_SNAPSHOT,
    WASMTIME,
    FaasPlatform,
    FixedHotRatioPolicy,
)
from ..sim.core import Environment
from ..sim.distributions import Rng
from ..worker import WorkerConfig, WorkerNode
from ..workloads.phase_apps import fetch_and_compute_phases, register_phase_composition
from .common import ExperimentResult

__all__ = ["run_sec74"]

DEFAULT_DEPTHS = (2, 4, 8, 12, 16)


def _dandelion_latency(depth: int, cache_mode: str, cores: int) -> float:
    worker = WorkerNode(
        WorkerConfig(
            total_cores=cores,
            control_plane_enabled=False,
            cache_mode=cache_mode,
            backend="kvm",
            machine="linux",
        )
    )
    name = register_phase_composition(
        worker, f"chain{depth}", fetch_and_compute_phases(depth)
    )
    result = worker.invoke_and_run(name, {"data": b"x"})
    if not result.ok:
        raise RuntimeError(f"chain invocation failed: {result.error}")
    return result.latency


def _baseline_latency(spec, hot_ratio: float, depth: int, cores: int) -> float:
    env = Environment()
    platform = FaasPlatform(
        env, spec, cores=cores, policy=FixedHotRatioPolicy(hot_ratio, Rng(1))
    )
    platform.register_function("chain", fetch_and_compute_phases(depth))
    record = env.run(until=platform.request("chain"))
    return record.latency


def run_sec74(depths=DEFAULT_DEPTHS, cores: int = 16) -> ExperimentResult:
    result = ExperimentResult(
        name="§7.4",
        description="Composition chain latency (ms) vs number of fetch+compute phases",
        headers=[
            "phases",
            "dandelion_uncached_ms",
            "dandelion_cached_ms",
            "fc_hot_ms",
            "fc_cold_ms",
            "wasmtime_ms",
        ],
    )
    for depth in depths:
        row = {
            "phases": depth,
            "dandelion_uncached_ms": _dandelion_latency(depth, "never", cores) * 1e3,
            "dandelion_cached_ms": _dandelion_latency(depth, "always", cores) * 1e3,
            "fc_hot_ms": _baseline_latency(FIRECRACKER_SNAPSHOT, 1.0, depth, cores) * 1e3,
            "fc_cold_ms": _baseline_latency(FIRECRACKER_SNAPSHOT, 0.0, depth, cores) * 1e3,
            "wasmtime_ms": _baseline_latency(WASMTIME, 0.0, depth, cores) * 1e3,
        }
        result.add_row(**row)
    final = result.rows[-1]
    if final["phases"] == 16:
        result.note(
            "at 16 phases: Dandelion uncached vs FC-hot: "
            f"+{final['dandelion_uncached_ms'] - final['fc_hot_ms']:.2f} ms; "
            f"cached vs uncached diff {final['dandelion_uncached_ms'] - final['dandelion_cached_ms']:.2f} ms; "
            f"FC-cold / Dandelion uncached = {final['fc_cold_ms'] / final['dandelion_uncached_ms']:.2f}x"
        )
    result.note(
        "paper: +17% vs FC-hot at 8 phases, ~4 ms at 16; cached/uncached diff 0.5 ms; 4.6x vs FC-cold"
    )
    return result
