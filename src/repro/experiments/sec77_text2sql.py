"""§7.7 — Text2SQL agentic workflow: end-to-end latency breakdown.

Runs the five-step workflow (parse → LLM → extract → DB → format)
through the fully functional pipeline and reports the per-step share of
end-to-end latency.  The paper: ~2 s total, with the LLM inference step
accounting for 61%.
"""

from __future__ import annotations

from ..apps.text2sql import (
    PAPER_STEP_SECONDS,
    register_text2sql_app,
    setup_text2sql_services,
)
from ..worker import WorkerConfig, WorkerNode
from .common import ExperimentResult

__all__ = ["run_sec77"]


def run_sec77(prompt: str = "What are the top rated movies?", cores: int = 8) -> ExperimentResult:
    result = ExperimentResult(
        name="§7.7 Text2SQL",
        description="Five-step Text2SQL workflow: per-step latency and share",
        headers=["step", "seconds", "share_pct"],
    )
    worker = WorkerNode(WorkerConfig(total_cores=cores, control_plane_enabled=False))
    setup_text2sql_services(worker)
    register_text2sql_app(worker)
    invocation = worker.invoke_and_run("text2sql", {"prompt": prompt.encode()})
    if not invocation.ok:
        raise RuntimeError(f"text2sql failed: {invocation.error}")
    total = invocation.latency
    for step, seconds in PAPER_STEP_SECONDS.items():
        result.add_row(step=step, seconds=seconds, share_pct=100 * seconds / total)
    result.add_row(step="end_to_end_measured", seconds=total, share_pct=100.0)
    answer = invocation.output("answer").item("text").text()
    result.note(f"answer head: {answer.splitlines()[0] if answer else '(empty)'}")
    result.note(
        f"LLM share {100 * PAPER_STEP_SECONDS['llm_request'] / total:.0f}% "
        "(paper: 61%); paper end-to-end ~2 s"
    )
    return result
