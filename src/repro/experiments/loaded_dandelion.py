"""Lightweight Dandelion load model for high-throughput sweeps.

Figs 5 and 6 sweep offered load up to thousands of requests per second.
Driving the fully functional worker at those rates would execute the
same user function tens of thousands of times without changing the
modelled timing (simulated time is deterministic given the cost model),
so the sweep experiments use this reduced model:

* the function is executed **once** through the real isolation backend
  (functional verification + per-stage breakdown);
* each simulated request then replays that timing on a pool of
  dedicated compute-engine cores, run-to-completion, FIFO — exactly the
  engine discipline of the full worker;
* per-request variation (binary served from RAM cache vs loaded from
  disk) follows the experiment's cold-load fraction.

The fully functional worker is exercised under load by the §7.4, Fig 7
and Fig 8 experiments, where requests carry real data.
"""

from __future__ import annotations

from typing import Optional

from ..backends.base import create_backend
from ..composition.registry import FunctionBinary
from ..data.items import DataSet
from ..sim.core import Environment
from ..sim.distributions import Rng
from ..sim.metrics import LatencyRecorder
from ..sim.resources import Resource

__all__ = ["DandelionLoadModel"]


class DandelionLoadModel:
    """Single-function Dandelion worker model for load sweeps."""

    def __init__(
        self,
        env: Environment,
        binary: FunctionBinary,
        input_sets: list[DataSet],
        output_set_names: list[str],
        cores: int = 4,
        backend_name: str = "kvm",
        machine: str = "morello",
        cold_load_fraction: float = 1.0,
        rng: Optional[Rng] = None,
    ):
        self.env = env
        self.cores = Resource(env, capacity=cores)
        self.backend = create_backend(backend_name, machine)
        self.cold_load_fraction = cold_load_fraction
        self.rng = rng or Rng(0)
        self.latencies = LatencyRecorder(f"dandelion-{backend_name}")
        # Functional verification run: the user code really executes.
        uncached = self.backend.execute(binary, input_sets, output_set_names, cached=False)
        cached = self.backend.execute(binary, input_sets, output_set_names, cached=True)
        self.outputs = uncached.outputs
        self.uncached_seconds = uncached.total_seconds
        self.cached_seconds = cached.total_seconds
        self.requests_served = 0

    def service_seconds(self) -> float:
        if self.cold_load_fraction >= 1.0 or (
            self.cold_load_fraction > 0 and self.rng.bernoulli(self.cold_load_fraction)
        ):
            return self.uncached_seconds
        return self.cached_seconds

    def request(self):
        """Submit one request; returns its simulation process."""
        return self.env.process(self._serve())

    def _serve(self):
        arrived = self.env.now
        with self.cores.acquire() as slot:
            yield slot
            yield self.env.timeout(self.service_seconds())
        self.latencies.record(self.env.now - arrived)
        self.requests_served += 1
