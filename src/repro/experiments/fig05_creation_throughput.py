"""Fig 5 — sandbox-creation tail latency vs throughput (0% hot).

"1x1 matmul on the Morello server, with 0% hot requests": every request
creates a fresh sandbox.  Dandelion's backends sustain thousands of RPS
at sub-millisecond p99; Spin/Wasmtime reaches ~7000 RPS thanks to
pooling; Firecracker with snapshots is limited to ~120 RPS by the ~12ms
restore; fresh-boot Firecracker and gVisor are far behind.
"""

from __future__ import annotations

import struct

from ..baselines import (
    FIRECRACKER,
    FIRECRACKER_SNAPSHOT,
    GVISOR,
    HYPERLIGHT,
    WASMTIME,
    FaasPlatform,
    FixedHotRatioPolicy,
    compute_phase,
)
from ..data.items import DataItem, DataSet
from ..sim.core import Environment
from ..sim.distributions import Rng
from ..workloads.loadgen import run_open_loop
from ..workloads.phase_apps import MATMUL_1x1_SECONDS
from .common import ExperimentResult
from .loaded_dandelion import DandelionLoadModel
from .table1_breakdown import matmul_1x1_binary

__all__ = ["run_fig05", "DEFAULT_SYSTEMS"]

DEFAULT_SYSTEMS = (
    "dandelion-cheri",
    "dandelion-rwasm",
    "dandelion-process",
    "dandelion-kvm",
    "wasmtime",
    "hyperlight",
    "firecracker-snapshot",
    "firecracker",
    "gvisor",
)

_BASELINE_SPECS = {
    "firecracker": FIRECRACKER,
    "firecracker-snapshot": FIRECRACKER_SNAPSHOT,
    "gvisor": GVISOR,
    "wasmtime": WASMTIME,
    "hyperlight": HYPERLIGHT,   # §7.2: 9.1 ms avg unloaded cold start
}


def _matmul_inputs():
    return [
        DataSet("a", [DataItem("value", struct.pack("<q", 3))]),
        DataSet("b", [DataItem("value", struct.pack("<q", 5))]),
    ]


def _make_submit(system: str, env: Environment, cores: int, seed: int):
    if system.startswith("dandelion-"):
        backend_name = system.split("-", 1)[1]
        model = DandelionLoadModel(
            env,
            matmul_1x1_binary(),
            _matmul_inputs(),
            ["c"],
            cores=cores,
            backend_name=backend_name,
            machine="morello",
            cold_load_fraction=1.0,  # 0% hot: always load from disk
            rng=Rng(seed),
        )
        return model.request
    spec = _BASELINE_SPECS[system]
    platform = FaasPlatform(
        env, spec, cores=cores, policy=FixedHotRatioPolicy(0.0, Rng(seed))
    )
    platform.register_function("matmul1x1", [compute_phase(MATMUL_1x1_SECONDS)])
    return lambda: platform.request("matmul1x1")


def run_fig05(
    systems=DEFAULT_SYSTEMS,
    rates=(25, 50, 100, 200, 500, 1000, 2000, 4000, 7000, 12000, 20000),
    duration_seconds: float = 1.0,
    cores: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep offered RPS per system; report p99 and the peak sustained rate.

    A rate is *sustained* when achieved throughput stays within 5% of
    offered; sweeping stops for a system once it saturates.
    """
    result = ExperimentResult(
        name="Fig 5",
        description="Sandbox creation: tail latency vs throughput, 0% hot, 4-core Morello",
        headers=["system", "offered_rps", "achieved_rps", "p50_ms", "p99_ms", "saturated"],
    )
    peaks: dict[str, float] = {}
    for system in systems:
        for rate in rates:
            env = Environment()
            submit = _make_submit(system, env, cores, seed)
            load = run_open_loop(
                env, submit, rate, duration_seconds,
                drain_seconds=5.0,
            )
            latencies = load.latencies
            result.add_row(
                system=system,
                offered_rps=rate,
                achieved_rps=load.achieved_rps,
                p50_ms=latencies.percentile(50) * 1e3 if len(latencies) else float("nan"),
                p99_ms=latencies.percentile(99) * 1e3 if len(latencies) else float("nan"),
                saturated=load.saturated,
            )
            if not load.saturated:
                peaks[system] = max(peaks.get(system, 0.0), load.achieved_rps)
            else:
                break
    for system, peak in peaks.items():
        result.note(f"peak sustained throughput {system}: {peak:.0f} RPS")
    result.note(
        "paper: FC-snapshot limited to ~120 RPS; WT ~7000 RPS peak; "
        "Dandelion backends create sandboxes in 100s of µs"
    )
    result.note(
        "paper §7.2 also reports Hyperlight Wasm at 9.1 ms unloaded cold "
        "start and cites Unikraft's 3.1 ms boot-to-main (similar to FC "
        "with snapshots once request handling is included)"
    )
    return result
