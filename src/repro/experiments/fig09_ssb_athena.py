"""Fig 9 — SSB query latency and cost: Dandelion-on-EC2 vs AWS Athena.

The thirteen Star Schema Benchmark queries run as real Dandelion
compositions (partition-parallel scan over the simulated S3 store, one
compute sandbox per partition, merge + order at the end) on a modelled
m7a.8xlarge (32 cores).  Cost is EC2 time × the on-demand rate.  Athena
is the published pricing/latency model: $5/TB scanned (10 MB minimum)
plus fixed engine startup, which dominates short queries.

The paper runs ~700 MB of input; the harness runs a configurable scale
factor through the *real* pipeline and prices Athena on the same
scanned bytes, so the relative claim ("40% lower latency and 67% lower
cost for short-running queries") is evaluated in the regime where
Athena's fixed startup dominates — exactly the paper's point.
"""

from __future__ import annotations

from ..net.services import ObjectStoreService
from ..query.athena import AthenaModel, Ec2CostModel
from ..query.plan_to_dag import load_ssb_to_store, register_ssb_query
from ..query.ssb import SSB_QUERY_NAMES, generate_ssb_tables
from ..worker import WorkerConfig, WorkerNode
from .common import ExperimentResult

__all__ = ["run_fig09"]

# The per-join counts of each query family (Athena planning overhead).
_JOINS = {"Q1": 1, "Q2": 3, "Q3": 3, "Q4": 4}


def run_fig09(
    scale_factor: float = 0.01,
    partitions: int = 32,
    cores: int = 32,
    queries=SSB_QUERY_NAMES,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 9",
        description="SSB query latency (s) and cost (US cents): Dandelion on m7a.8xlarge vs Athena",
        headers=[
            "query",
            "dandelion_s",
            "athena_s",
            "dandelion_cents",
            "athena_cents",
            "latency_reduction_pct",
            "cost_reduction_pct",
        ],
    )
    tables = generate_ssb_tables(scale_factor=scale_factor, seed=seed)
    worker = WorkerNode(
        WorkerConfig(total_cores=cores, control_plane_enabled=False, machine="linux")
    )
    store = ObjectStoreService()
    worker.network.register(store)
    manifest = load_ssb_to_store(tables, store, partitions=partitions)
    scanned_bytes = manifest["total_bytes"]
    athena = AthenaModel()
    ec2 = Ec2CostModel()

    latency_reductions = []
    cost_reductions = []
    for query_name in queries:
        composition = register_ssb_query(worker, query_name, partitions=partitions)
        start = worker.env.now
        invocation = worker.invoke_and_run(composition, {"query": query_name.encode()})
        if not invocation.ok:
            raise RuntimeError(f"{query_name} failed: {invocation.error}")
        dandelion_seconds = invocation.latency
        joins = _JOINS[query_name.split(".")[0]]
        athena_seconds = athena.latency_seconds(scanned_bytes, joins=joins)
        dandelion_cents = ec2.cost_cents(dandelion_seconds)
        athena_cents = athena.cost_cents(scanned_bytes)
        latency_reduction = 100 * (1 - dandelion_seconds / athena_seconds)
        cost_reduction = 100 * (1 - dandelion_cents / athena_cents)
        latency_reductions.append(latency_reduction)
        cost_reductions.append(cost_reduction)
        result.add_row(
            query=query_name,
            dandelion_s=dandelion_seconds,
            athena_s=athena_seconds,
            dandelion_cents=dandelion_cents,
            athena_cents=athena_cents,
            latency_reduction_pct=latency_reduction,
            cost_reduction_pct=cost_reduction,
        )
    result.note(
        f"input: {scanned_bytes / 1e6:.1f} MB over {partitions} partitions "
        f"(scale factor {scale_factor})"
    )
    result.note(
        f"mean latency reduction {sum(latency_reductions) / len(latency_reductions):.0f}% "
        f"(paper: 40%); mean cost reduction "
        f"{sum(cost_reductions) / len(cost_reductions):.0f}% (paper: 67%)"
    )
    return result
