"""§7.7 scaling extension — SSB at larger inputs, single vs multi node.

"With larger input data sizes (we tested up to 7GB), matching Athena's
latency requires scaling query execution across multiple Dandelion
nodes, but we continue to see lower query execution cost compared to
Athena."

The model combines the same constants the functional pipeline uses —
per-connection S3 bandwidth (one GET per partition, 32 partitions per
node) and the per-byte operator cost — with the Athena latency/cost
model, sweeping input size and node count.  The bench asserts the
paper's two-sided claim: at 7 GB one node no longer beats Athena on
latency, a small cluster does, and Dandelion's cost stays lower at
every point.
"""

from __future__ import annotations

from ..query.athena import AthenaModel, Ec2CostModel
from .common import ExperimentResult

__all__ = ["run_fig09_scaling", "dandelion_query_seconds"]

# Constants shared with the functional pipeline (see repro.net.services
# ObjectStoreService and repro.query.plan_to_dag).
_S3_FIRST_BYTE_SECONDS = 8e-3
_S3_BYTES_PER_CONNECTION_PER_SECOND = 4e7
_OPERATOR_SECONDS_PER_BYTE = 4e-9        # ~250 MB/s per core
_PARTITIONS_PER_NODE = 32
_FIXED_OVERHEAD_SECONDS = 0.02           # registration + gen + merge + frontend


def dandelion_query_seconds(input_bytes: float, nodes: int = 1) -> float:
    """Modelled SSB query latency on an N-node Dandelion cluster.

    Each node fans one partition per core (32); fetch streams at S3
    per-connection bandwidth and the operator pipeline consumes the
    partition behind it.
    """
    if input_bytes < 0:
        raise ValueError("input_bytes must be non-negative")
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    partition_bytes = input_bytes / (_PARTITIONS_PER_NODE * nodes)
    fetch = _S3_FIRST_BYTE_SECONDS + partition_bytes / _S3_BYTES_PER_CONNECTION_PER_SECOND
    compute = partition_bytes * _OPERATOR_SECONDS_PER_BYTE
    return _FIXED_OVERHEAD_SECONDS + fetch + compute


def run_fig09_scaling(
    input_gigabytes=(0.7, 2.0, 7.0),
    node_counts=(1, 2, 4),
    joins: int = 3,
) -> ExperimentResult:
    result = ExperimentResult(
        name="§7.7 scaling",
        description="SSB latency/cost vs input size: Dandelion (1..N nodes) vs Athena",
        headers=[
            "input_gb", "nodes", "dandelion_s", "athena_s",
            "dandelion_cents", "athena_cents", "dandelion_faster", "dandelion_cheaper",
        ],
    )
    athena = AthenaModel()
    ec2 = Ec2CostModel()
    for gigabytes in input_gigabytes:
        input_bytes = gigabytes * 1e9
        athena_seconds = athena.latency_seconds(input_bytes, joins=joins)
        athena_cents = athena.cost_cents(input_bytes)
        for nodes in node_counts:
            dandelion_seconds = dandelion_query_seconds(input_bytes, nodes)
            dandelion_cents = nodes * ec2.cost_cents(dandelion_seconds)
            result.add_row(
                input_gb=gigabytes,
                nodes=nodes,
                dandelion_s=dandelion_seconds,
                athena_s=athena_seconds,
                dandelion_cents=dandelion_cents,
                athena_cents=athena_cents,
                dandelion_faster=dandelion_seconds < athena_seconds,
                dandelion_cheaper=dandelion_cents < athena_cents,
            )
    result.note(
        "paper: at ~7GB matching Athena's latency requires multiple Dandelion "
        "nodes, while query cost remains lower at every size"
    )
    return result
