"""Table 1 — Dandelion latency breakdown per isolation backend.

Reproduces the per-stage (marshal / load from disk / transfer input /
execute / get-send output / other) unloaded latency of a 1×1 int64
matmul on each backend, in microseconds, plus the §7.2 totals on a
default Linux kernel.  The numbers are produced by actually running the
matmul through each backend's execute path, not by echoing constants:
the functional harness runs the multiply, the cost model times it.
"""

from __future__ import annotations

import struct

from ..backends import BACKEND_NAMES, create_backend
from ..data.items import DataItem, DataSet
from ..functions.sdk import compute_function
from ..workloads.phase_apps import MATMUL_1x1_SECONDS
from .common import ExperimentResult

__all__ = ["run_table1", "matmul_1x1_binary"]

STAGES = ["marshal", "load", "transfer_input", "execute", "output", "other"]


def matmul_1x1_binary():
    """A real 1x1 int64 matmul over the context's input items."""

    @compute_function(name="matmul1x1", compute_cost=MATMUL_1x1_SECONDS, binary_size=64 * 1024)
    def matmul(vfs):
        a = struct.unpack("<q", vfs.read_bytes("/in/a/value"))[0]
        b = struct.unpack("<q", vfs.read_bytes("/in/b/value"))[0]
        vfs.write_bytes("/out/c/value", struct.pack("<q", a * b))

    return matmul


def run_table1(machine: str = "morello") -> ExperimentResult:
    """Run the 1x1 matmul on every backend; report per-stage µs."""
    result = ExperimentResult(
        name=f"Table 1 ({machine})",
        description="Dandelion avg latency breakdown in µs per isolation backend (1x1 matmul)",
        headers=["stage"] + list(BACKEND_NAMES),
    )
    binary = matmul_1x1_binary()
    inputs = [
        DataSet("a", [DataItem("value", struct.pack("<q", 6))]),
        DataSet("b", [DataItem("value", struct.pack("<q", 7))]),
    ]
    breakdowns = {}
    for backend_name in BACKEND_NAMES:
        backend = create_backend(backend_name, machine)
        execution = backend.execute(binary, inputs, ["c"], cached=False)
        product = struct.unpack("<q", execution.outputs[0].item("value").data)[0]
        if product != 42:
            raise AssertionError("matmul produced a wrong result")
        breakdowns[backend_name] = execution.breakdown
    for stage in STAGES:
        result.add_row(
            stage=stage,
            **{name: breakdowns[name][stage] * 1e6 for name in BACKEND_NAMES},
        )
    result.add_row(
        stage="total",
        **{name: sum(breakdowns[name].values()) * 1e6 for name in BACKEND_NAMES},
    )
    result.note("paper totals on Morello: cheri 89, rwasm 241, process 486, kvm 889 µs")
    if machine == "linux":
        result.note("paper totals on Linux 5.15: rwasm 109, process 539, kvm 218 µs")
    return result
