"""Simulation-kernel performance benchmark (``python -m repro bench``).

Times the hot paths every experiment flows through — raw event
scheduling, the virtual-time processor-sharing CPU, process chains —
plus the dispatcher data plane (accounting-first ``store_sets``,
zero-copy ``transfer_to``, the strict output parser, and the
end-to-end sim-step cost of one dispatcher invocation, grouped under
``dispatcher_data_plane``) and a reduced Fig 5 sweep as an end-to-end
proxy.  The numbers land in ``BENCH_sim_kernel.json`` so future
changes have a trajectory to regress against.

The JSON also carries the recorded before/after wall-clock of the full
``run_fig05()`` sweep across the virtual-time PS rewrite (the O(n)
per-membership rescan made loaded baselines O(n²) in queued jobs);
re-measure with ``--full`` to append a fresh number on your machine.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Callable

from ..sim.core import Environment
from ..sim.cpu import ProcessorSharingCpu

__all__ = ["run_bench", "BENCH_GROUPS", "DEFAULT_OUTPUT", "REFERENCE"]

DEFAULT_OUTPUT = "BENCH_sim_kernel.json"

# Wall-clock of the full Fig 5 sweep (9 systems, 11-rate sweep, 1 s
# duration) measured on the development machine before and after the
# virtual-time PS + kernel fast-path rewrite.  "profiled" is under
# cProfile, which is how the hot spots were attributed.
REFERENCE = {
    "fig05_full_seconds": {"pre_virtual_time": 53.5, "post_virtual_time": 6.3},
    "fig05_full_profiled_seconds": {"pre_virtual_time": 213.8, "post_virtual_time": 17.1},
    "machine": "Linux x86_64 dev container, CPython 3.11",
}


def _timed(fn: Callable[[], int]) -> dict:
    """Run ``fn`` once; it returns an operation count."""
    start = time.perf_counter()
    operations = fn()
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "operations": operations,
        "ops_per_second": round(operations / elapsed) if elapsed > 0 else None,
    }


def bench_timeout_churn(count: int = 200_000) -> int:
    """Raw event-loop throughput: schedule and drain plain timeouts."""
    env = Environment()

    def ticker(n):
        for _ in range(n):
            yield env.timeout(0.001)

    env.process(ticker(count))
    env.run()
    return count


def bench_process_spawn(count: int = 50_000) -> int:
    """Process creation + completion (Initialize/StopIteration path)."""
    env = Environment()

    def child():
        yield env.timeout(0.001)
        return 1

    def parent(n):
        for _ in range(n):
            yield env.process(child())

    env.process(parent(count))
    env.run()
    return count


def bench_ps_cpu_loaded(jobs: int = 20_000, cores: int = 4) -> int:
    """The previously quadratic path: a heavily oversubscribed PS CPU.

    Open-loop arrivals outpace service so the run queue grows into the
    thousands; before the virtual-time rewrite each arrival rescanned
    every queued job.
    """
    env = Environment()
    cpu = ProcessorSharingCpu(env, cores, switch_overhead_seconds=5e-6)

    def submitter(index):
        yield env.timeout(1e-4 * index)
        yield cpu.consume(1e-3)

    for index in range(jobs):
        env.process(submitter(index))
    env.run()
    assert cpu.jobs_completed == jobs
    return jobs


def bench_store_sets(count: int = 50_000) -> dict:
    """Accounting-first store throughput: N stores into fresh contexts.

    Each iteration charges a context for a two-set payload without
    materializing the blob — the dispatcher's per-invocation hot path.
    """
    from ..data.context import MemoryContext, serialized_size
    from ..data.items import DataItem, DataSet

    sets = [
        DataSet("input", [DataItem("request", b"x" * 512)]),
        DataSet("config", [DataItem(f"k{i}", b"y" * 64) for i in range(8)]),
    ]
    size = serialized_size(sets)
    start = time.perf_counter()
    for _ in range(count):
        context = MemoryContext(capacity=1 << 20)
        context.store_sets(sets)
        context.free()
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "operations": count,
        "ops_per_second": round(count / elapsed) if elapsed > 0 else None,
        "bytes_per_op": size,
        "accounted_bytes_per_second": round(count * size / elapsed) if elapsed > 0 else None,
    }


def bench_store_sets_lazy_passthrough(count: int = 20_000) -> dict:
    """Re-encoding unmodified lazy views: the splice fast path.

    Parses a representative blob once, then re-serializes the lazy set
    views ``count`` times — the store-back-what-you-loaded pattern the
    dispatcher hits when a function forwards sets untouched.  The fast
    path splices each set's byte range from the source blob (one slice
    per set, zero item decodes), so throughput should sit near memcpy
    speed; a regression to per-item re-encoding is roughly an order of
    magnitude.
    """
    from ..data.context import serialize_sets
    from ..data.lazy import parse_sets_lazy

    blob = _parse_bench_blob()
    sets = parse_sets_lazy(blob)
    assert serialize_sets(sets) == blob  # splice must be byte-faithful

    def run() -> int:
        for _ in range(count):
            serialize_sets(sets)
        return count

    return _with_throughput(_timed(run), len(blob))


def bench_transfer_to(count: int = 20_000, payload: int = 64 * 1024) -> dict:
    """Context-to-context moves via the zero-copy read view.

    The source materializes once; every transfer then costs one copy
    into the destination (memoryview source), so throughput should sit
    near memcpy speed rather than half of it.
    """
    from ..data.context import MemoryContext

    source = MemoryContext(capacity=payload * 2)
    source.write(0, b"z" * payload)
    destination = MemoryContext(capacity=payload * 2)
    start = time.perf_counter()
    for _ in range(count):
        source.transfer_to(destination, 0, 0, payload)
    elapsed = time.perf_counter() - start
    moved = count * payload
    return {
        "seconds": round(elapsed, 4),
        "operations": count,
        "bytes_per_op": payload,
        "bytes_per_second": round(moved / elapsed) if elapsed > 0 else None,
    }


def _parse_bench_blob(items: int = 16, payload: int = 256) -> bytes:
    """A representative response blob with seeded payload bytes."""
    import random

    from ..data.context import serialize_sets
    from ..data.items import DataItem, DataSet

    rng = random.Random(0x5EED)
    return serialize_sets(
        [
            DataSet(
                "response",
                [
                    DataItem(f"item{i}", rng.randbytes(payload), key=f"key{i % 4}")
                    for i in range(items)
                ],
            )
        ]
    )


def _with_throughput(numbers: dict, bytes_per_op: int) -> dict:
    numbers["bytes_per_op"] = bytes_per_op
    ops = numbers.get("ops_per_second")
    numbers["bytes_per_second"] = ops * bytes_per_op if ops else None
    return numbers


def bench_parse_sets(count: int = 20_000) -> dict:
    """Strict output-parser throughput over a representative blob.

    This is the validation/debug codec: it decodes every record *and*
    cross-checks the v2 footer, so it is the upper bound on parse cost.
    """
    from ..data.context import parse_sets

    blob = _parse_bench_blob()

    def run() -> int:
        for _ in range(count):
            parse_sets(blob)
        return count

    return _with_throughput(_timed(run), len(blob))


def bench_parse_sets_lazy_index(count: int = 20_000) -> dict:
    """Zero-parse indexing: footer read only, no record ever decoded.

    This is what ``MemoryContext.load_sets`` costs when a consumer
    routes a set without inspecting it — the common dispatcher case.
    """
    from ..data.lazy import parse_sets_lazy

    blob = _parse_bench_blob()

    def run() -> int:
        for _ in range(count):
            parse_sets_lazy(blob)
        return count

    return _with_throughput(_timed(run), len(blob))


def bench_parse_sets_lazy_full_touch(count: int = 20_000) -> dict:
    """Lazy views with every payload materialized (worst case).

    Upper bound for a consumer that reads every item: index build plus
    per-item header decode plus one payload copy each.
    """
    from ..data.lazy import parse_sets_lazy

    blob = _parse_bench_blob()

    def run() -> int:
        for _ in range(count):
            for data_set in parse_sets_lazy(blob):
                for item in data_set:
                    item.data
        return count

    return _with_throughput(_timed(run), len(blob))


def bench_dispatcher_single_request(count: int = 500) -> dict:
    """End-to-end dispatcher cost of one single-node invocation.

    Reports wall-clock *and* simulation steps (scheduled events) per
    invocation — the sim-step count is deterministic, so it regresses
    loudly when the per-invocation fast path picks up extra event churn.
    """
    from ..functions import compute_function
    from ..worker import WorkerConfig, WorkerNode

    @compute_function(compute_cost=1e-5, name="bench_echo")
    def bench_echo(vfs):
        data = vfs.read_bytes("/in/input/request")
        vfs.write_bytes("/out/result/reply", data)

    worker = WorkerNode(WorkerConfig(total_cores=2, control_plane_enabled=False))
    worker.frontend.register_function(bench_echo)
    worker.frontend.register_composition(
        """
        composition bench_single {
            compute echo uses bench_echo in(input) out(result);
            input input -> echo.input;
            output echo.result -> result;
        }
        """
    )
    # Warm one invocation so registry/plan compilation is out of the loop.
    worker.invoke_and_run("bench_single", {"input": b"ping"})
    steps_before = worker.env._seq
    start = time.perf_counter()
    for _ in range(count):
        worker.invoke_and_run("bench_single", {"input": b"ping"})
    elapsed = time.perf_counter() - start
    steps = worker.env._seq - steps_before
    return {
        "seconds": round(elapsed, 4),
        "operations": count,
        "ops_per_second": round(count / elapsed) if elapsed > 0 else None,
        "sim_steps_per_invocation": round(steps / count, 1),
    }


def bench_retry_backoff(count: int = 300) -> dict:
    """Retry/backoff hot path: transient faults force re-submissions.

    Every invocation runs under ``transient_failure_rate=0.5`` so the
    dispatcher's backoff loop (fresh completion events, jittered
    ``env.timeout`` waits, re-drawn binary cache) dominates.  Reports
    retries per invocation alongside throughput so regressions in the
    retry machinery itself — not just the happy path — are visible.
    """
    from ..functions import compute_function
    from ..worker import WorkerConfig, WorkerNode

    @compute_function(compute_cost=1e-5, name="bench_flaky_echo")
    def bench_flaky_echo(vfs):
        vfs.write_bytes("/out/result/reply", vfs.read_bytes("/in/input/request"))

    worker = WorkerNode(
        WorkerConfig(
            total_cores=2,
            control_plane_enabled=False,
            transient_failure_rate=0.5,
            max_retries=8,
            seed=13,
        )
    )
    worker.frontend.register_function(bench_flaky_echo)
    worker.frontend.register_composition(
        """
        composition bench_flaky {
            compute echo uses bench_flaky_echo in(input) out(result);
            input input -> echo.input;
            output echo.result -> result;
        }
        """
    )
    worker.invoke_and_run("bench_flaky", {"input": b"ping"})  # warm-up
    retries_before = worker.dispatcher.retries_performed
    start = time.perf_counter()
    for _ in range(count):
        worker.invoke_and_run("bench_flaky", {"input": b"ping"})
    elapsed = time.perf_counter() - start
    retries = worker.dispatcher.retries_performed - retries_before
    return {
        "seconds": round(elapsed, 4),
        "operations": count,
        "ops_per_second": round(count / elapsed) if elapsed > 0 else None,
        "retries_per_invocation": round(retries / count, 2),
    }


def bench_health_observe(count: int = 200_000) -> dict:
    """Latency health tracker fold: one ``observe`` per completion.

    The gray-failure detector sits on every cluster completion, so its
    per-sample cost must stay O(1) dict work — no rescans, no sorting.
    The stream alternates a slow worker in so quarantine flips (the
    only non-O(1) edge, rare by hysteresis) are exercised too.
    """
    from ..cluster.health import LatencyHealthTracker

    tracker = LatencyHealthTracker()
    workers = 16
    start = time.perf_counter()
    for step in range(count):
        index = step % workers
        latency = 10e-3 if index == 0 and (step // workers) % 64 < 32 else 1e-3
        tracker.observe(index, latency)
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "operations": count,
        "ops_per_second": round(count / elapsed) if elapsed > 0 else None,
        "quarantine_flips": tracker.quarantine_entries + tracker.quarantine_exits,
    }


def bench_gray_cluster_invocation(count: int = 300) -> dict:
    """End-to-end routed invocations with the full gray-failure stack on.

    Latency health + gray policy + hedging against a 3-worker fleet
    with one limping worker: the per-invocation overhead of the EWMA
    fold, the preferred-ring snapshot, and the hedge bookkeeping all
    land on this path.  Compare against ``cluster_routed_invocation``
    (scheduling group) for the health-off baseline.
    """
    from ..cluster.manager import ClusterManager
    from ..functions import compute_function
    from ..worker import WorkerConfig

    # Compute-dominated (1 ms vs ~an order less of fixed overhead) so
    # the 8x limp is actually visible to the latency detector.
    @compute_function(compute_cost=1e-3, name="bench_gray_echo")
    def bench_gray_echo(vfs):
        vfs.write_bytes("/out/result/reply", vfs.read_bytes("/in/input/request"))

    cluster = ClusterManager(
        worker_count=3,
        worker_config=WorkerConfig(
            total_cores=2, control_plane_enabled=False, seed=13
        ),
        policy="gray",
        latency_health=True,
        hedge=True,
        hedge_min_samples=10,
        seed=13,
    )
    cluster.register_function(bench_gray_echo)
    cluster.register_composition(
        """
        composition bench_gray {
            compute echo uses bench_gray_echo in(input) out(result);
            input input -> echo.input;
            output echo.result -> result;
        }
        """
    )
    cluster.limp_worker(0, 8.0)
    env = cluster.env

    def one():
        yield cluster.invoke("bench_gray", {"input": b"ping"})

    def batch(width):
        processes = [env.process(one()) for _ in range(width)]
        env.run(until=env.all_of(processes))

    batch(3)  # warm-up
    start = time.perf_counter()
    # Batches of 3 keep all workers in play (serial invocations would
    # tie-break to one worker and never feed the peer baseline).
    for _ in range(count // 3):
        batch(3)
    elapsed = time.perf_counter() - start
    gray = cluster.stats()["gray"]
    return {
        "seconds": round(elapsed, 4),
        "operations": count,
        "ops_per_second": round(count / elapsed) if elapsed > 0 else None,
        "quarantine_entries": gray["quarantine_entries"],
        "hedges_issued": gray["hedges_issued"],
    }


def bench_policy_decisions(count: int = 50_000) -> dict:
    """Routing-policy decision throughput over a fixed fleet snapshot.

    Every registered policy decides ``count`` times against the same
    16-worker view (mixed load, partial warmth), so the numbers compare
    the *policies*, not snapshot construction.  Decisions are the
    per-invocation cost of the cluster manager's routing hop, so a slow
    policy taxes every experiment in §5/§6.
    """
    from ..sched.routing import ROUTING_POLICIES
    from ..sched.snapshots import ClusterSnapshot
    from ..sim.distributions import Rng

    workers = 16
    healthy = tuple(range(workers))
    health = {index: True for index in range(workers)}
    in_flight = {index: (index * 7) % 5 for index in range(workers)}
    warm = [
        {"sched_f0", "sched_f1"} if index % 3 == 0 else set()
        for index in range(workers)
    ]
    snapshot = ClusterSnapshot(
        healthy,
        workers,
        health,
        in_flight,
        "sched_bench",
        ("sched_f0", "sched_f1"),
        lambda index: warm[index],
    )
    results = {}
    for name, cls in ROUTING_POLICIES.items():
        policy = cls.build(Rng(7))
        start = time.perf_counter()
        for _ in range(count):
            policy.decide(snapshot)
        elapsed = time.perf_counter() - start
        results[name] = {
            "seconds": round(elapsed, 4),
            "operations": count,
            "ops_per_second": round(count / elapsed) if elapsed > 0 else None,
        }
    return results


def bench_snapshot_build(count: int = 100_000) -> dict:
    """ClusterSnapshot construction on a live 8-worker cluster.

    The snapshot is the routing fast path's only allocation; it must
    stay O(1) regardless of fleet size or registration count.
    """
    from ..cluster.manager import ClusterManager
    from ..worker import WorkerConfig

    cluster = ClusterManager(
        worker_count=8,
        worker_config=WorkerConfig(total_cores=2, control_plane_enabled=False),
    )
    start = time.perf_counter()
    for _ in range(count):
        cluster.snapshot("sched_bench")
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "operations": count,
        "ops_per_second": round(count / elapsed) if elapsed > 0 else None,
    }


def bench_cluster_routed_invocation(count: int = 500) -> dict:
    """End-to-end cost of one invocation routed through the cluster.

    The cluster analogue of ``dispatcher_single_request``: reports
    wall-clock and deterministic sim-steps per invocation, so routing
    refactors that add event churn (or per-invocation fleet scans)
    regress loudly.
    """
    from ..cluster.manager import ClusterManager
    from ..functions import compute_function
    from ..worker import WorkerConfig

    @compute_function(compute_cost=1e-5, name="bench_cluster_echo")
    def bench_cluster_echo(vfs):
        vfs.write_bytes("/out/result/reply", vfs.read_bytes("/in/input/request"))

    cluster = ClusterManager(
        worker_count=4,
        worker_config=WorkerConfig(total_cores=2, control_plane_enabled=False),
        policy="least_loaded",
    )
    cluster.register_function(bench_cluster_echo)
    cluster.register_composition(
        """
        composition bench_cluster_single {
            compute echo uses bench_cluster_echo in(input) out(result);
            input input -> echo.input;
            output echo.result -> result;
        }
        """
    )
    cluster.invoke_and_run("bench_cluster_single", {"input": b"ping"})  # warm-up
    steps_before = cluster.env._seq
    start = time.perf_counter()
    for _ in range(count):
        cluster.invoke_and_run("bench_cluster_single", {"input": b"ping"})
    elapsed = time.perf_counter() - start
    steps = cluster.env._seq - steps_before
    return {
        "seconds": round(elapsed, 4),
        "operations": count,
        "ops_per_second": round(count / elapsed) if elapsed > 0 else None,
        "sim_steps_per_invocation": round(steps / count, 1),
    }


def bench_fig05_reduced() -> float:
    """End-to-end proxy: 3 systems × 3 rates, 0.2 s duration."""
    from .fig05_creation_throughput import run_fig05

    start = time.perf_counter()
    run_fig05(
        systems=("dandelion-kvm", "wasmtime", "firecracker-snapshot"),
        rates=(200, 1000, 4000),
        duration_seconds=0.2,
    )
    return time.perf_counter() - start


def bench_purity_verification(rounds: int = 25) -> dict:
    """Static purity verification over the full demo registry.

    ``operations`` counts verified functions; a slow verifier would make
    strict registration (and the CI lint job) painful.
    """
    from ..analysis.purity_check import verify_purity
    from ..analysis.runner import demo_registry

    registry = demo_registry()

    def run() -> int:
        verified = 0
        for _ in range(rounds):
            for name in registry.function_names:
                verify_purity(registry.function(name))
                verified += 1
        return verified

    return _timed(run)


def bench_self_lint() -> dict:
    """One determinism self-lint sweep over src/repro (wall time)."""
    from ..analysis.determinism_lint import lint_self

    def run() -> int:
        return len(lint_self())

    numbers = _timed(run)
    numbers["findings"] = numbers.pop("operations")
    numbers.pop("ops_per_second", None)
    return numbers


def bench_dataflow_corpus(rounds: int = 5) -> dict:
    """Whole-composition dataflow analysis over the violation corpus.

    ``operations`` counts analyzed compositions (corpus entries ×
    rounds); registry construction and function purity summaries are
    warm before the timer starts, so this measures the analyzer itself
    (graph facts, reachability, rule sweep, cost model).
    """
    from ..analysis.dataflow_corpus import CORPUS, analyze_entry, build_registry

    registry = build_registry()
    for entry in CORPUS:  # prime purity summaries / parse caches
        analyze_entry(entry, registry)

    def run() -> int:
        analyzed = 0
        for _ in range(rounds):
            for entry in CORPUS:
                analyze_entry(entry, registry)
                analyzed += 1
        return analyzed

    return _timed(run)


def bench_lint_incremental_warm() -> dict:
    """Cold vs cache-warm full lint (all four passes, demo registry).

    The warm run replays fingerprint-matched results from the analysis
    cache instead of re-parsing/re-verifying; CI gates the speedup at
    10× so a cache regression (bad fingerprint, dropped entry) fails
    the perf-smoke job rather than silently slowing every re-lint.
    """
    import os
    import tempfile

    from ..analysis.cache import AnalysisCache
    from ..analysis.runner import collect_diagnostics, demo_registry

    registry = demo_registry()
    handle, path = tempfile.mkstemp(suffix=".json", prefix="repro_lint_cache_")
    os.close(handle)
    try:
        cache = AnalysisCache(path)
        start = time.perf_counter()
        cold_findings = collect_diagnostics(
            lint_dataflow=True, registry=registry, cache=cache
        )
        cold = time.perf_counter() - start
        cache.save()
        warm_cache = AnalysisCache(path)
        start = time.perf_counter()
        warm_findings = collect_diagnostics(
            lint_dataflow=True, registry=registry, cache=warm_cache
        )
        warm = time.perf_counter() - start
    finally:
        os.unlink(path)
    if len(cold_findings) != len(warm_findings):
        raise RuntimeError(
            f"cache replay changed findings: {len(cold_findings)} cold "
            f"vs {len(warm_findings)} warm"
        )
    return {
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "warm_speedup": round(cold / warm, 1) if warm > 0 else None,
        "findings": len(cold_findings),
        "cache_entries": len(warm_cache),
    }


def bench_spec_parse(count: int = 2_000) -> dict:
    """Scenario-spec TOML parse + schema validation throughput.

    Parses the bundled §6.2 spec (the busiest schema: every section
    populated) ``count`` times; a slow parser would make sweeps and the
    SCN lint pass drag on spec-heavy repos.
    """
    from ..scenario.spec import bundled_specs, scenario_from_toml

    with open(bundled_specs()["sec62"], "r", encoding="utf-8") as handle:
        text = handle.read()

    def run() -> int:
        for _ in range(count):
            scenario_from_toml(text)
        return count

    return _timed(run)


def bench_scenario_assembly(count: int = 100) -> dict:
    """Scenario-engine assembly overhead: spec → cluster + injector.

    Builds the full §6.1 topology (fleet, registered workload,
    dispatcher, fault injector) per operation — the fixed cost every
    sweep arm pays before its first simulated event.
    """
    from ..scenario.engine import assemble_cluster
    from ..scenario.spec import load_spec

    spec = load_spec("sec61")

    def run() -> int:
        for _ in range(count):
            assemble_cluster(spec)
        return count

    return _timed(run)


def bench_fig05_full() -> float:
    from .fig05_creation_throughput import run_fig05

    start = time.perf_counter()
    run_fig05()
    return time.perf_counter() - start


def _bench_trace_scale_group() -> dict:
    """Sharded replay vs the pre-PR single kernel at 10× trace scale.

    Delegates to :mod:`.bench_trace_scale`, which also refreshes
    ``BENCH_trace_scale.json`` (its own gated report, carrying the 100×
    acceptance record alongside the re-measured 10× matrix).
    """
    from .bench_trace_scale import DEFAULT_OUTPUT as TRACE_SCALE_OUTPUT
    from .bench_trace_scale import run_trace_scale_bench

    report = run_trace_scale_bench(scales=(10.0,), output=TRACE_SCALE_OUTPUT)
    matrix = report["measured"]["scale_10x"]
    return {
        "baseline_single_kernel": {
            "seconds": matrix["rows"][0]["wall_seconds"],
            "operations": matrix["rows"][0]["invocations"],
        },
        "sharded_lean_4_auto": {
            "seconds": matrix["rows"][-1]["wall_seconds"],
            "operations": matrix["rows"][-1]["invocations"],
            "ops_per_second": matrix["rows"][-1]["events_per_second"],
        },
        "speedup_4_shards_vs_baseline": matrix["speedup_4_shards_vs_baseline"],
    }


# Group name -> thunk; ``--only <group>`` picks a subset (the CI
# perf-smoke job runs just the gated groups instead of the full suite).
BENCH_GROUPS: "dict[str, Callable[[], dict]]" = {
    "timeout_churn_200k": lambda: _timed(bench_timeout_churn),
    "process_spawn_50k": lambda: _timed(bench_process_spawn),
    "ps_cpu_loaded_20k_jobs_4_cores": lambda: _timed(bench_ps_cpu_loaded),
    "dispatcher_data_plane": lambda: {
        "store_sets_50k": bench_store_sets(),
        "store_sets_lazy_passthrough_20k": bench_store_sets_lazy_passthrough(),
        "transfer_to_20k_64KiB": bench_transfer_to(),
        "parse_sets_20k": bench_parse_sets(),
        "parse_sets_lazy_index": bench_parse_sets_lazy_index(),
        "parse_sets_lazy_full_touch": bench_parse_sets_lazy_full_touch(),
        "dispatcher_single_request_500": bench_dispatcher_single_request(),
    },
    "fault_tolerance": lambda: {
        "retry_backoff_300": bench_retry_backoff(),
        "health_observe_200k": bench_health_observe(),
        "gray_cluster_invocation_300": bench_gray_cluster_invocation(),
    },
    "scheduling": lambda: {
        "policy_decisions_50k": bench_policy_decisions(),
        "snapshot_build_100k": bench_snapshot_build(),
        "cluster_routed_invocation_500": bench_cluster_routed_invocation(),
    },
    "static_analysis": lambda: {
        "purity_verification_25x": bench_purity_verification(),
        "self_lint_sweep": bench_self_lint(),
        "dataflow_analyze_corpus": bench_dataflow_corpus(),
        "lint_incremental_warm": bench_lint_incremental_warm(),
    },
    "scenario": lambda: {
        "spec_parse_validate_2k": bench_spec_parse(),
        "engine_assembly_100": bench_scenario_assembly(),
    },
    "fig05_reduced": lambda: {"seconds": round(bench_fig05_reduced(), 4)},
    "trace_scale": _bench_trace_scale_group,
}


def run_bench(
    full: bool = False,
    output: str | None = DEFAULT_OUTPUT,
    only: "list[str] | None" = None,
) -> dict:
    """Run the kernel benchmark suite; optionally write ``output``.

    ``only`` restricts the run to the named top-level groups (see
    :data:`BENCH_GROUPS`); unknown names raise ``KeyError`` so a typo
    in a CI job fails loudly instead of silently benchmarking nothing.
    """
    if only:
        unknown = [name for name in only if name not in BENCH_GROUPS]
        if unknown:
            raise KeyError(
                f"unknown bench groups {unknown}; available: {list(BENCH_GROUPS)}"
            )
        selected = [name for name in BENCH_GROUPS if name in set(only)]
    else:
        selected = list(BENCH_GROUPS)
    benchmarks = {name: BENCH_GROUPS[name]() for name in selected}
    if full and not only:
        benchmarks["fig05_full"] = {"seconds": round(bench_fig05_full(), 2)}
    report = {
        "schema": "repro-bench-sim-kernel/v1",
        "generated_unix": int(time.time()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": benchmarks,
        "reference": REFERENCE,
    }
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return report
