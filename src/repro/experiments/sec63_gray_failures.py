"""§6.3 — gray failures: limplock workers vs latency-based defenses.

§6.1's fault story covers workers that *die*: fail-stop detection
removes them from the routing ring and in-flight work re-routes.  Real
fleets degrade before they die — a failing disk or flaky NIC leaves a
worker nominally healthy while it serves every request several times
slower (the "limplock" regime), and a fail-stop detector is blind to
it: the slow worker keeps absorbing its share of traffic and poisons
cluster-wide tail latency and goodput.

This experiment injects seeded limp cycles (severity × duration, per
worker, from forked RNG streams — see
:class:`~repro.cluster.faults.WorkerFaultInjector`) and sweeps three
detector configurations over a severity ladder:

* ``fail-stop`` — the §6.1 baseline: least-outstanding routing, no
  latency health.  Limping workers stay in full rotation.
* ``latency`` — the ``gray`` routing policy over the cluster's
  per-worker completion-latency EWMA: workers whose score drifts past
  the quarantine factor are sidelined (with load-bounded spill-back,
  so they keep a recovery trickle).
* ``latency+hedge`` — additionally re-issue an invocation to a second
  worker once it has been outstanding longer than the p95 of observed
  latency, first completion wins.  Hedges are budget-capped at a small
  fraction of traffic and only sent for pure-compute (idempotent)
  compositions.

The per-invocation deadline is deliberately tight (a few multiples of
the healthy service time): a severely limping worker pushes its work
past the deadline, so blindness to gray failure costs *goodput*, not
just tail latency.  Every run is deterministic per seed.

Since the `repro.scenario` refactor this module is a thin wrapper:
one base :class:`~repro.scenario.spec.ScenarioSpec` (bundled as
``scenario/specs/sec63.toml``) swept over ``faults.limp_severity``,
with each detector arm expressed as sched-section overrides (routing /
latency_health / hedge) through
:func:`~repro.scenario.engine.run_scenario`.
"""

from __future__ import annotations

from ..scenario.engine import run_scenario
from ..scenario.spec import (
    FaultSpec,
    FleetSpec,
    ScenarioSpec,
    SchedSpec,
    TraceSpec,
    WorkloadSpec,
)
from .common import ExperimentResult

__all__ = ["run_sec63"]

# Healthy service time is ~4 ms; the deadline is 5x that.  The severity
# ladder then crosses two regimes: at 4x the limped worker still beats
# the deadline, so gray failure is pure tail-latency pain (slow
# successes); at 8x it cannot, and blindness to gray failure costs
# goodput outright.
_COMPUTE_SECONDS = 4e-3
_DEADLINE_SECONDS = 20e-3

_DETECTORS = ("fail-stop", "latency", "latency+hedge")


def _base_spec(
    rps: float,
    duration_seconds: float,
    workers: int,
    cores: int,
    limp_mttf_seconds: float,
    limp_duration_seconds: float,
    seed: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        name="sec63",
        seed=seed,
        trace=TraceSpec(rps=rps, duration_seconds=duration_seconds),
        workload=WorkloadSpec(name="gray_echo", compute_seconds=_COMPUTE_SECONDS),
        fleet=FleetSpec(workers=workers, cores=cores),
        faults=FaultSpec(
            max_retries=3,
            deadline_seconds=_DEADLINE_SECONDS,
            # Crash cycles are disabled (astronomical MTTF): this
            # experiment isolates the gray-failure domain.
            mttf_seconds=1e9,
            mttr_seconds=1.0,
            limp_mttf_seconds=limp_mttf_seconds,
            limp_duration_seconds=limp_duration_seconds,
            seed_offset=41,
        ),
        sched=SchedSpec(routing="least_loaded"),
    )


def _detector_overrides(detector: str, hedge_budget_fraction: float) -> dict:
    with_health = detector != "fail-stop"
    return {
        "sched.routing": "gray" if with_health else "least_loaded",
        "sched.latency_health": with_health,
        "sched.hedge": detector == "latency+hedge",
        "sched.hedge_percentile": 95.0,
        "sched.hedge_budget_fraction": hedge_budget_fraction,
    }


def run_sec63(
    rps: float = 150.0,
    duration_seconds: float = 4.0,
    workers: int = 4,
    cores: int = 4,
    severities: tuple = (1.0, 2.0, 4.0, 8.0),
    detectors: tuple = _DETECTORS,
    limp_mttf_seconds: float = 3.0,
    limp_duration_seconds: float = 0.5,
    hedge_budget_fraction: float = 0.10,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="§6.3",
        description="gray failures: limplock severity vs fail-stop / "
        "latency-quarantine / hedging detectors",
        headers=[
            "severity",
            "detector",
            "limps",
            "quarantines",
            "offered",
            "goodput_rps",
            "success_pct",
            "p50_ms",
            "p99_ms",
            "hedge_rate_pct",
        ],
    )
    base = _base_spec(
        rps, duration_seconds, workers, cores,
        limp_mttf_seconds, limp_duration_seconds, seed,
    )

    for severity in severities:
        for detector in detectors:
            overrides = {"faults.limp_severity": severity}
            overrides.update(
                _detector_overrides(detector, hedge_budget_fraction)
            )
            run = run_scenario(base.with_overrides(overrides))
            kpis = run.kpis
            result.add_row(
                severity=severity,
                detector=detector,
                limps=kpis.counters["limps"],
                quarantines=kpis.counters["quarantines"],
                offered=kpis.offered,
                goodput_rps=kpis.goodput_rps,
                success_pct=kpis.success_pct,
                p50_ms=kpis.p50_ms,
                p99_ms=kpis.p99_ms,
                hedge_rate_pct=kpis.counters["hedge_rate_pct"],
            )

    result.note(
        "fail-stop detection is blind to limplock: the degraded worker keeps "
        "its full traffic share, so severity >= the deadline/service ratio "
        "turns tail latency pain into goodput loss"
    )
    result.note(
        "latency quarantine (policy=gray) sidelines the limping worker after "
        "its completion-latency EWMA drifts past the fleet's; hedging "
        "additionally re-issues the slowest in-flight requests "
        f"(budget {100.0 * hedge_budget_fraction:.0f}% of traffic) and takes "
        "the first completion"
    )
    result.note("deterministic per seed: identical tables for identical seeds")
    return result
