"""§6.3 — gray failures: limplock workers vs latency-based defenses.

§6.1's fault story covers workers that *die*: fail-stop detection
removes them from the routing ring and in-flight work re-routes.  Real
fleets degrade before they die — a failing disk or flaky NIC leaves a
worker nominally healthy while it serves every request several times
slower (the "limplock" regime), and a fail-stop detector is blind to
it: the slow worker keeps absorbing its share of traffic and poisons
cluster-wide tail latency and goodput.

This experiment injects seeded limp cycles (severity × duration, per
worker, from forked RNG streams — see
:class:`~repro.cluster.faults.WorkerFaultInjector`) and sweeps three
detector configurations over a severity ladder:

* ``fail-stop`` — the §6.1 baseline: least-outstanding routing, no
  latency health.  Limping workers stay in full rotation.
* ``latency`` — the ``gray`` routing policy over the cluster's
  per-worker completion-latency EWMA: workers whose score drifts past
  the quarantine factor are sidelined (with load-bounded spill-back,
  so they keep a recovery trickle).
* ``latency+hedge`` — additionally re-issue an invocation to a second
  worker once it has been outstanding longer than the p95 of observed
  latency, first completion wins.  Hedges are budget-capped at a small
  fraction of traffic and only sent for pure-compute (idempotent)
  compositions.

The per-invocation deadline is deliberately tight (a few multiples of
the healthy service time): a severely limping worker pushes its work
past the deadline, so blindness to gray failure costs *goodput*, not
just tail latency.  Every run is deterministic per seed.
"""

from __future__ import annotations

from ..cluster.faults import WorkerFaultInjector
from ..cluster.manager import ClusterManager
from ..functions.sdk import compute_function
from ..sim.distributions import Rng
from ..worker import WorkerConfig
from .common import ExperimentResult

__all__ = ["run_sec63"]

_COMPOSITION = """
composition gray_echo {
    compute e uses gray_echo_fn in(data) out(result);
    input data -> e.data;
    output e.result -> result;
}
"""

# Healthy service time is ~4 ms; the deadline is 5x that.  The severity
# ladder then crosses two regimes: at 4x the limped worker still beats
# the deadline, so gray failure is pure tail-latency pain (slow
# successes); at 8x it cannot, and blindness to gray failure costs
# goodput outright.
_COMPUTE_SECONDS = 4e-3
_DEADLINE_SECONDS = 20e-3

_DETECTORS = ("fail-stop", "latency", "latency+hedge")


def _echo_binary():
    @compute_function(name="gray_echo_fn", compute_cost=_COMPUTE_SECONDS)
    def gray_echo_fn(vfs):
        vfs.write_bytes("/out/result/data", vfs.read_bytes("/in/data/data"))

    return gray_echo_fn


def _make_cluster(
    workers: int,
    cores: int,
    detector: str,
    hedge_budget_fraction: float,
    seed: int,
) -> ClusterManager:
    config = WorkerConfig(
        total_cores=cores,
        control_plane_enabled=False,
        max_retries=3,
        default_timeout=_DEADLINE_SECONDS,
        seed=seed,
    )
    with_health = detector != "fail-stop"
    cluster = ClusterManager(
        worker_count=workers,
        worker_config=config,
        policy="gray" if with_health else "least_loaded",
        seed=seed,
        latency_health=with_health,
        hedge=detector == "latency+hedge",
        hedge_percentile=95.0,
        hedge_budget_fraction=hedge_budget_fraction,
    )
    cluster.register_function(_echo_binary())
    cluster.register_composition(_COMPOSITION)
    return cluster


def _drive(cluster: ClusterManager, rps: float, duration_seconds: float, seed: int):
    """Poisson arrivals against the cluster; returns (offered, completed)."""
    env = cluster.env
    arrivals = Rng(seed).poisson_arrivals(rps, duration_seconds)
    completed = [0]

    def one(arrive_at):
        delay = arrive_at - env.now
        if delay > 0:
            yield env.timeout(delay)
        result = yield cluster.invoke("gray_echo", {"data": b"ping"})
        if result.ok:
            completed[0] += 1

    def driver():
        processes = [env.process(one(t)) for t in arrivals]
        if processes:
            yield env.all_of(processes)

    env.run(until=env.process(driver()))
    return len(arrivals), completed[0]


def run_sec63(
    rps: float = 150.0,
    duration_seconds: float = 4.0,
    workers: int = 4,
    cores: int = 4,
    severities: tuple = (1.0, 2.0, 4.0, 8.0),
    detectors: tuple = _DETECTORS,
    limp_mttf_seconds: float = 3.0,
    limp_duration_seconds: float = 0.5,
    hedge_budget_fraction: float = 0.10,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="§6.3",
        description="gray failures: limplock severity vs fail-stop / "
        "latency-quarantine / hedging detectors",
        headers=[
            "severity",
            "detector",
            "limps",
            "quarantines",
            "offered",
            "goodput_rps",
            "success_pct",
            "p50_ms",
            "p99_ms",
            "hedge_rate_pct",
        ],
    )

    for severity in severities:
        for detector in detectors:
            cluster = _make_cluster(
                workers, cores, detector, hedge_budget_fraction, seed
            )
            injector = WorkerFaultInjector(
                cluster,
                # Crash cycles are disabled (astronomical MTTF): this
                # experiment isolates the gray-failure domain.
                mttf_seconds=1e9,
                mttr_seconds=1.0,
                seed=seed + 41,
                limp_mttf_seconds=limp_mttf_seconds,
                limp_duration_seconds=limp_duration_seconds,
                limp_severity=severity,
            )
            offered, completed = _drive(cluster, rps, duration_seconds, seed + 17)
            gray = cluster.stats()["gray"]
            result.add_row(
                severity=severity,
                detector=detector,
                limps=injector.limps_injected,
                quarantines=gray["quarantine_entries"],
                offered=offered,
                goodput_rps=completed / duration_seconds,
                success_pct=100.0 * completed / offered if offered else 100.0,
                p50_ms=cluster.latencies.median * 1e3,
                p99_ms=cluster.latencies.p99 * 1e3,
                hedge_rate_pct=100.0 * gray["hedge_rate"],
            )

    result.note(
        "fail-stop detection is blind to limplock: the degraded worker keeps "
        "its full traffic share, so severity >= the deadline/service ratio "
        "turns tail latency pain into goodput loss"
    )
    result.note(
        "latency quarantine (policy=gray) sidelines the limping worker after "
        "its completion-latency EWMA drifts past the fleet's; hedging "
        "additionally re-issues the slowest in-flight requests "
        f"(budget {100.0 * hedge_budget_fraction:.0f}% of traffic) and takes "
        "the first completion"
    )
    result.note("deterministic per seed: identical tables for identical seeds")
    return result
