"""Fig 8 — multiplexing compute- vs I/O-intensive apps under bursty load.

The distributed log-processing application (I/O-intensive, Fig 3) and
the QOI→PNG image compression application (compute-intensive) run
together on each platform while their request rates change over time.
Dandelion cold-starts every request yet keeps latency low and stable
(the controller re-allocates cores between compute and communication
engines as the mix shifts); Firecracker is bimodal (97% hot + 3%
snapshot restores); Wasmtime suffers cross-application interference on
its shared runtime.

Reported per app and system: average and p99 latency plus the paper's
relative-variance metric (variance / mean², in %), where the paper
measures Dandelion at 1.30% (compression) and 2.87% (log processing)
vs Firecracker's 389.6% / 1495.17%.
"""

from __future__ import annotations

from ..apps.compress import QOI_TO_PNG_SECONDS
from ..apps.logproc import register_logproc_app, setup_log_services
from ..baselines import (
    FIRECRACKER_SNAPSHOT,
    WASMTIME,
    FaasPlatform,
    FixedHotRatioPolicy,
    compute_phase,
    io_phase,
)
from ..functions.sdk import compute_function, write_item
from ..sim.core import Environment
from ..sim.distributions import Rng
from ..sim.metrics import LatencyRecorder
from ..worker import WorkerConfig, WorkerNode
from .common import ExperimentResult

__all__ = ["run_fig08", "DEFAULT_SCHEDULE"]

# Bursty (duration_seconds, rps) segments per application.
DEFAULT_SCHEDULE = {
    "logproc": [(2.0, 50.0), (2.0, 220.0), (2.0, 50.0)],
    "compress": [(2.0, 120.0), (2.0, 40.0), (2.0, 460.0)],
}

# Baseline-side phase models of the two applications (the Dandelion
# side runs the real compositions).  Log processing: auth round trip,
# then parallel shard fetches, then rendering.  Compression: one long
# compute burst.
_LOGPROC_PHASES = [
    compute_phase(150e-6),
    io_phase(1.1e-3),        # authorization round trip
    compute_phase(100e-6),
    io_phase(23e-3),         # shard fetches (overlapped inside the app)
    compute_phase(800e-6),
]
_COMPRESS_PHASES = [compute_phase(QOI_TO_PNG_SECONDS)]


def _modelled_compress_binary():
    """Compression with the real app's cost but a token body.

    The genuine QOI→PNG conversion (exercised by tests and examples)
    burns ~10 ms of *host* CPU per request; at thousands of requests a
    sweep would spend minutes computing identical PNGs.  The loaded
    experiment models the cost and keeps the data flow.
    """

    @compute_function(name="qoi_to_png", compute_cost=QOI_TO_PNG_SECONDS, binary_size=512 * 1024)
    def convert(vfs):
        write_item(vfs, "png", "out.png", b"png-bytes")

    return convert


def _dandelion_submits(cores: int):
    worker = WorkerNode(
        WorkerConfig(total_cores=cores, control_plane_enabled=True, machine="linux")
    )
    setup_log_services(worker, shard_count=4, lines_per_shard=40, shard_latency_seconds=22e-3)
    register_logproc_app(worker)
    worker.frontend.register_function(_modelled_compress_binary())
    worker.frontend.register_composition(
        """
        composition image_compress {
            compute convert uses qoi_to_png in(image) out(png);
            input image -> convert.image;
            output convert.png -> png;
        }
        """
    )
    return worker, {
        "logproc": lambda: worker.frontend.invoke("logproc", {"token": b"token-alpha"}),
        "compress": lambda: worker.frontend.invoke("image_compress", {"image": b"qoi"}),
    }


def _baseline_submits(spec, hot_ratio, cores, seed):
    env = Environment()
    platform = FaasPlatform(
        env, spec, cores=cores, policy=FixedHotRatioPolicy(hot_ratio, Rng(seed))
    )
    platform.register_function("logproc", _LOGPROC_PHASES)
    platform.register_function("compress", _COMPRESS_PHASES)
    return env, platform, {
        "logproc": lambda: platform.request("logproc"),
        "compress": lambda: platform.request("compress"),
    }


def _drive(env, submits, schedule, seed):
    """Run both apps' bursty arrival schedules concurrently."""
    recorders = {app: LatencyRecorder(app) for app in submits}
    rng = Rng(seed)
    arrival_lists = {
        app: rng.fork(hash(app) % 1000).piecewise_poisson_arrivals(schedule[app])
        for app in submits
    }

    def one(app, arrive_at):
        delay = arrive_at - env.now
        if delay > 0:
            yield env.timeout(delay)
        started = env.now
        outcome = yield submits[app]()
        if getattr(outcome, "ok", True) is not False:
            recorders[app].record(env.now - started)

    def driver():
        processes = [
            env.process(one(app, t))
            for app, arrivals in arrival_lists.items()
            for t in arrivals
        ]
        yield env.all_of(processes)

    env.run(until=env.process(driver()))
    return recorders


def run_fig08(
    schedule=DEFAULT_SCHEDULE,
    cores: int = 16,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="Fig 8",
        description="Multiplexing compute- and I/O-intensive apps under bursty load",
        headers=["system", "app", "mean_ms", "p99_ms", "rel_variance_pct", "requests"],
    )
    systems = {}
    worker, dandelion_submits = _dandelion_submits(cores)
    dandelion_worker = worker
    systems["dandelion"] = (worker.env, dandelion_submits)
    fc_env, _fc, fc_submits = _baseline_submits(FIRECRACKER_SNAPSHOT, 0.97, cores, seed + 1)
    systems["firecracker"] = (fc_env, fc_submits)
    wt_env, _wt, wt_submits = _baseline_submits(WASMTIME, 0.0, cores, seed + 2)
    systems["wasmtime"] = (wt_env, wt_submits)

    for system, (env, submits) in systems.items():
        recorders = _drive(env, submits, schedule, seed)
        for app, recorder in recorders.items():
            result.add_row(
                system=system,
                app=app,
                mean_ms=recorder.mean * 1e3,
                p99_ms=recorder.p99 * 1e3,
                rel_variance_pct=recorder.relative_variance(),
                requests=recorder.count,
            )
    history = dandelion_worker.allocator.allocation_history
    if history:
        comm_cores = [comm for _t, _compute, comm in history]
        result.note(
            f"dandelion control plane: comm cores ranged "
            f"{min(comm_cores)}..{max(comm_cores)} across the run "
            f"({len(dandelion_worker.allocator.reassignments)} re-assignments; "
            "paper: scales from 1 to 4 I/O cores during the logproc burst)"
        )
    dandelion_rows = [r for r in result.rows if r["system"] == "dandelion"]
    for row in dandelion_rows:
        others = [
            r for r in result.rows
            if r["app"] == row["app"] and r["system"] != "dandelion"
        ]
        if all(row["rel_variance_pct"] < other["rel_variance_pct"] for other in others):
            result.note(f"dandelion has the lowest relative variance for {row['app']}")
    result.note(
        "paper: Dandelion rel. variance 1.30% (compression) / 2.87% (logproc) "
        "vs FC 389.6% / 1495.17% and WT 6.11% / 79.2%; Dandelion avg 18.23 ms "
        "(compression) and 27.92 ms (logproc)"
    )
    return result
