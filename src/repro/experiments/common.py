"""Shared utilities for experiment harnesses.

Every experiment module exposes a ``run_*`` function returning an
:class:`ExperimentResult`: named rows (dicts) plus free-form metadata.
``ExperimentResult.render()`` prints the same kind of table/series the
paper reports, and the benchmark suite snapshots these outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["ExperimentResult", "render_table", "fmt"]


def fmt(value, digits: int = 3) -> str:
    """Compact human formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:
            # NaN means "no samples" (e.g. an arm with zero
            # completions); a dash reads better than "nan" in tables.
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.{digits}g}"
    return str(value)


def _cell_matches(cell, value) -> bool:
    """Raw-value row matching: tolerant for floats, exact otherwise."""
    if isinstance(cell, bool) or isinstance(value, bool):
        return cell == value
    float_pair = (
        isinstance(cell, (int, float))
        and isinstance(value, (int, float))
        and (isinstance(cell, float) or isinstance(value, float))
    )
    if float_pair:
        if math.isnan(value) or (isinstance(cell, float) and math.isnan(cell)):
            return (
                isinstance(cell, float) and math.isnan(cell)
                and math.isnan(value)
            )
        return math.isclose(cell, value, rel_tol=1e-9, abs_tol=1e-12)
    return cell == value


def render_table(headers: list[str], rows: Iterable[dict]) -> str:
    """Render rows as an aligned text table with the given columns."""
    rows = list(rows)
    cells = [[fmt(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Rows + metadata of one experiment run.

    ``meta`` carries machine-facing observability (wall clocks,
    per-shard statistics, run configuration) that deliberately stays
    out of :meth:`render`: rendered output is the deterministic,
    comparison-ready record, ``meta`` is where run-dependent numbers
    live so they never contaminate golden comparisons.
    """

    name: str
    description: str
    headers: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add_row(self, **cells) -> None:
        self.rows.append(cells)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def row(self, **criteria) -> dict:
        """First row matching all key=value criteria.

        Matches on *raw* cell values: floats compare with
        ``math.isclose`` (so a swept axis like ``x=0.1 + 0.2`` is
        findable as ``row(x=0.3)``; NaN matches NaN), ints and
        everything else compare exactly.
        """
        for row in self.rows:
            if all(_cell_matches(row.get(k), v) for k, v in criteria.items()):
                return row
        raise KeyError(f"no row matching {criteria}")

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        parts = [f"== {self.name}: {self.description} =="]
        parts.append(render_table(self.headers, self.rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


def ascii_chart(
    values: "list[float]",
    width: int = 64,
    height: int = 10,
    label: str = "",
) -> str:
    """Render a value series as a compact ASCII area chart.

    Used by the CLI to sketch the memory-over-time figures (Figs 1/10)
    without any plotting dependency.
    """
    if not values:
        raise ValueError("no values to chart")
    # Downsample/stretch to the target width.
    resampled = [
        values[min(len(values) - 1, int(i * len(values) / width))]
        for i in range(width)
    ]
    top = max(resampled)
    if top <= 0:
        top = 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = top * (level - 0.5) / height
        line = "".join("█" if v >= threshold else " " for v in resampled)
        rows.append(f"{top * level / height:>10.0f} |{line}")
    rows.append(" " * 11 + "+" + "-" * width)
    if label:
        rows.append(" " * 12 + label)
    return "\n".join(rows)
