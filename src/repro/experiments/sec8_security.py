"""§8 — security analysis: attack surface and trusted computing base.

The paper's comparison is structural rather than experimental; this
module reproduces it as data plus *executable* checks against the
reproduction itself:

* the TCB line counts the paper reports for each system;
* the attack-surface comparison (what interface untrusted code can
  reach);
* live verification that the reproduction enforces the two Dandelion
  security properties §8 leans on — compute functions cannot reach
  syscall-like interfaces, and the communication engine sanitizes
  untrusted request data before any network action.
"""

from __future__ import annotations

from ..errors import SyscallBlocked
from ..functions.purity import PURITY_BLOCKED_OPERATIONS, purity_guard
from ..net.http import HttpRequest, SanitizationError, sanitize_request
from .common import ExperimentResult

__all__ = ["run_sec8_tcb", "run_sec8_enforcement", "TCB_TABLE", "ATTACK_SURFACE"]

# Paper-reported code-base sizes (§8, "Trusted computing base").
TCB_TABLE = [
    {"system": "dandelion", "lines": 12_000, "language": "Rust",
     "notes": "incl. tests; ~2k lines touch isolation/user data; output parser ~100 lines"},
    {"system": "firecracker", "lines": 68_000, "language": "Rust", "notes": ""},
    {"system": "spin/wasmtime", "lines": 65_000, "language": "Rust", "notes": ""},
    {"system": "gvisor", "lines": 38_000, "language": "Go", "notes": "excl. third-party"},
]

# What interface untrusted user code can reach directly.
ATTACK_SURFACE = [
    {"system": "dandelion", "interface": "none (pure compute; syscalls blocked)",
     "defense": "memory isolation + 100-line output parser + HTTP input validation"},
    {"system": "firecracker", "interface": "guest syscalls -> guest kernel",
     "defense": "defense in depth: guest kernel + VMM + host seccomp"},
    {"system": "gvisor", "interface": "syscalls -> Sentry (userspace kernel)",
     "defense": "syscall interception + second kernel"},
    {"system": "wasmtime", "interface": "WASI",
     "defense": "compiler/runtime memory safety + process sandboxing"},
]

_MALICIOUS_REQUESTS = [
    HttpRequest("TRACE", "http://victim.internal/"),
    HttpRequest("GET", "http://victim.internal/", version="HTTP/0.9"),
    HttpRequest("GET", "ftp://victim.internal/"),
    HttpRequest("GET", "http://bad host/"),
    HttpRequest("GET", "http://victim.internal/x", headers={"X": "a\r\nInjected: 1"}),
]


def run_sec8_tcb() -> ExperimentResult:
    result = ExperimentResult(
        name="§8 TCB",
        description="Trusted-computing-base size comparison (paper-reported lines)",
        headers=["system", "lines", "language", "notes"],
    )
    for row in TCB_TABLE:
        result.add_row(**row)
    smallest = min(TCB_TABLE, key=lambda r: r["lines"])
    result.note(f"smallest TCB: {smallest['system']} ({smallest['lines']:,} lines)")
    return result


def run_sec8_enforcement() -> ExperimentResult:
    """Executable checks of the reproduction's security properties."""
    result = ExperimentResult(
        name="§8 enforcement",
        description="Live checks: purity guard coverage and HTTP sanitization",
        headers=["check", "attempts", "blocked"],
    )
    blocked = 0
    with purity_guard():
        for operation_name, holder, attribute in PURITY_BLOCKED_OPERATIONS:
            try:
                getattr(holder, attribute)()
            except SyscallBlocked:
                blocked += 1
            except TypeError:
                # Stub raised before signature mattered? It must not:
                # stubs accept anything.  A TypeError means the real
                # function ran — count as NOT blocked.
                pass
    result.add_row(
        check="syscall-like operations blocked in compute functions",
        attempts=len(PURITY_BLOCKED_OPERATIONS),
        blocked=blocked,
    )
    rejected = 0
    for request in _MALICIOUS_REQUESTS:
        try:
            sanitize_request(request)
        except SanitizationError:
            rejected += 1
    result.add_row(
        check="malicious HTTP requests rejected by sanitizer",
        attempts=len(_MALICIOUS_REQUESTS),
        blocked=rejected,
    )
    if blocked == len(PURITY_BLOCKED_OPERATIONS) and rejected == len(_MALICIOUS_REQUESTS):
        result.note("all enforcement checks passed")
    else:
        result.note("SOME ENFORCEMENT CHECKS FAILED")
    return result
