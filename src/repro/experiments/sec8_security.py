"""§8 — security analysis: attack surface and trusted computing base.

The paper's comparison is structural rather than experimental; this
module reproduces it as data plus *executable* checks against the
reproduction itself:

* the TCB line counts the paper reports for each system;
* the attack-surface comparison (what interface untrusted code can
  reach);
* live verification that the reproduction enforces the two Dandelion
  security properties §8 leans on — compute functions cannot reach
  syscall-like interfaces, and the communication engine sanitizes
  untrusted request data before any network action;
* static-vs-dynamic enforcement rates: a corpus of violating compute
  functions, each run against both the dynamic purity guard (which
  terminates the function mid-invocation) and the static verifier
  (which rejects the registration before the function ever runs —
  ``Registry.register_function(..., verify="strict")``).
"""

from __future__ import annotations

import io
import os
import pathlib
import socket
import subprocess
import threading

from ..composition.registry import (
    FunctionBinary,
    PurityVerificationError,
    Registry,
)
from ..errors import SyscallBlocked
from ..functions.purity import PURITY_BLOCKED_OPERATIONS, purity_guard
from ..net.http import HttpRequest, SanitizationError, sanitize_request
from .common import ExperimentResult

__all__ = [
    "run_sec8_tcb",
    "run_sec8_enforcement",
    "run_sec8_static",
    "violation_corpus",
    "TCB_TABLE",
    "ATTACK_SURFACE",
]

# Paper-reported code-base sizes (§8, "Trusted computing base").
TCB_TABLE = [
    {"system": "dandelion", "lines": 12_000, "language": "Rust",
     "notes": "incl. tests; ~2k lines touch isolation/user data; output parser ~100 lines"},
    {"system": "firecracker", "lines": 68_000, "language": "Rust", "notes": ""},
    {"system": "spin/wasmtime", "lines": 65_000, "language": "Rust", "notes": ""},
    {"system": "gvisor", "lines": 38_000, "language": "Go", "notes": "excl. third-party"},
]

# What interface untrusted user code can reach directly.
ATTACK_SURFACE = [
    {"system": "dandelion", "interface": "none (pure compute; syscalls blocked)",
     "defense": "memory isolation + 100-line output parser + HTTP input validation"},
    {"system": "firecracker", "interface": "guest syscalls -> guest kernel",
     "defense": "defense in depth: guest kernel + VMM + host seccomp"},
    {"system": "gvisor", "interface": "syscalls -> Sentry (userspace kernel)",
     "defense": "syscall interception + second kernel"},
    {"system": "wasmtime", "interface": "WASI",
     "defense": "compiler/runtime memory safety + process sandboxing"},
]

_MALICIOUS_REQUESTS = [
    HttpRequest("TRACE", "http://victim.internal/"),
    HttpRequest("GET", "http://victim.internal/", version="HTTP/0.9"),
    HttpRequest("GET", "ftp://victim.internal/"),
    HttpRequest("GET", "http://bad host/"),
    HttpRequest("GET", "http://victim.internal/x", headers={"X": "a\r\nInjected: 1"}),
]


def run_sec8_tcb() -> ExperimentResult:
    result = ExperimentResult(
        name="§8 TCB",
        description="Trusted-computing-base size comparison (paper-reported lines)",
        headers=["system", "lines", "language", "notes"],
    )
    for row in TCB_TABLE:
        result.add_row(**row)
    smallest = min(TCB_TABLE, key=lambda r: r["lines"])
    result.note(f"smallest TCB: {smallest['system']} ({smallest['lines']:,} lines)")
    return result


def run_sec8_enforcement() -> ExperimentResult:
    """Executable checks of the reproduction's security properties."""
    result = ExperimentResult(
        name="§8 enforcement",
        description="Live checks: purity guard coverage and HTTP sanitization",
        headers=["check", "attempts", "blocked"],
    )
    blocked = 0
    with purity_guard():
        for operation_name, holder, attribute in PURITY_BLOCKED_OPERATIONS:
            try:
                getattr(holder, attribute)()
            except SyscallBlocked:
                blocked += 1
            except TypeError:
                # Stub raised before signature mattered? It must not:
                # stubs accept anything.  A TypeError means the real
                # function ran — count as NOT blocked.
                pass
    result.add_row(
        check="syscall-like operations blocked in compute functions",
        attempts=len(PURITY_BLOCKED_OPERATIONS),
        blocked=blocked,
    )
    rejected = 0
    for request in _MALICIOUS_REQUESTS:
        try:
            sanitize_request(request)
        except SanitizationError:
            rejected += 1
    result.add_row(
        check="malicious HTTP requests rejected by sanitizer",
        attempts=len(_MALICIOUS_REQUESTS),
        blocked=rejected,
    )
    if blocked == len(PURITY_BLOCKED_OPERATIONS) and rejected == len(_MALICIOUS_REQUESTS):
        result.note("all enforcement checks passed")
    else:
        result.note("SOME ENFORCEMENT CHECKS FAILED")
    return result


# -- static vs dynamic enforcement ------------------------------------------
#
# One violating compute function per blocked-operation family.  Each is
# written the way a user would actually write it (module-level imports,
# helper-free bodies), so the static verifier sees realistic code.


def _violate_builtin_open(vfs):
    open("/etc/hostname")


def _violate_io_open(vfs):
    io.open("/etc/hostname")


def _violate_os_open(vfs):
    os.open("/etc/hostname", 0)


def _violate_os_system(vfs):
    os.system("true")


def _violate_os_popen(vfs):
    os.popen("true")


def _violate_os_remove(vfs):
    os.remove("/tmp/x")


def _violate_os_rename(vfs):
    os.rename("/tmp/x", "/tmp/y")


def _violate_os_mkdir(vfs):
    os.mkdir("/tmp/x")


def _violate_os_unlink(vfs):
    os.unlink("/tmp/x")


def _violate_os_rmdir(vfs):
    os.rmdir("/tmp/x")


def _violate_os_replace(vfs):
    os.replace("/tmp/x", "/tmp/y")


def _violate_pathlib_open(vfs):
    pathlib.Path("/etc/hostname").open()


def _violate_socket(vfs):
    socket.socket()


def _violate_create_connection(vfs):
    socket.create_connection(("localhost", 80))


def _violate_socketpair(vfs):
    socket.socketpair()


def _violate_subprocess_popen(vfs):
    subprocess.Popen(["true"])


def _violate_subprocess_run(vfs):
    subprocess.run(["true"])


def _violate_thread_start(vfs):
    threading.Thread(target=vfs).start()


def violation_corpus() -> list[tuple[str, FunctionBinary]]:
    """(operation, violating FunctionBinary) pairs covering the dynamic
    guard's blocked-operation surface."""
    violations = [
        ("open", _violate_builtin_open),
        ("io.open", _violate_io_open),
        ("os.open", _violate_os_open),
        ("os.system", _violate_os_system),
        ("os.popen", _violate_os_popen),
        ("os.remove", _violate_os_remove),
        ("os.rename", _violate_os_rename),
        ("os.mkdir", _violate_os_mkdir),
        ("os.unlink", _violate_os_unlink),
        ("os.rmdir", _violate_os_rmdir),
        ("os.replace", _violate_os_replace),
        ("pathlib.Path.open", _violate_pathlib_open),
        ("socket.socket", _violate_socket),
        ("socket.create_connection", _violate_create_connection),
        ("socket.socketpair", _violate_socketpair),
        ("subprocess.Popen", _violate_subprocess_popen),
        ("subprocess.run", _violate_subprocess_run),
        ("threading.Thread.start", _violate_thread_start),
    ]
    return [
        (operation, FunctionBinary(name=f"violates_{index}", entry_point=fn))
        for index, (operation, fn) in enumerate(violations)
    ]


def run_sec8_static() -> ExperimentResult:
    """Static-vs-dynamic catch rates over the violation corpus.

    ``dynamic`` means the purity guard raised :class:`SyscallBlocked`
    when the function ran; ``static`` means
    ``register_function(verify="strict")`` rejected the function before
    it could run at all.
    """
    result = ExperimentResult(
        name="§8 static verification",
        description="Violation corpus: dynamic guard vs registration-time verifier",
        headers=["operation", "dynamic", "static"],
    )
    dynamic_caught = 0
    static_caught = 0
    for operation, binary in violation_corpus():
        dynamic = False
        with purity_guard():
            try:
                binary.entry_point(None)
            except SyscallBlocked:
                dynamic = True
            except Exception:  # noqa: BLE001 - corpus calls with dummy args
                pass
        registry = Registry()
        static = False
        try:
            registry.register_function(binary, verify="strict")
        except PurityVerificationError:
            static = True
        dynamic_caught += dynamic
        static_caught += static
        result.add_row(operation=operation, dynamic=dynamic, static=static)
    total = len(result.rows)
    catch_pct = 100.0 * static_caught / dynamic_caught if dynamic_caught else 0.0
    result.note(
        f"dynamic guard blocked {dynamic_caught}/{total}; static verifier "
        f"rejected {static_caught}/{total} at registration "
        f"({catch_pct:.0f}% of the dynamically-caught corpus)"
    )
    return result
