"""Fig 10 at 100× trace scale — sharded replay of a ≥10k-function trace.

``run_fig10`` replays a 100-function InVitro-style sample; the paper's
elasticity claims are really about full Azure-trace populations.  This
experiment replays the same Dandelion-vs-Firecracker+Knative comparison
at ``scale`` times the sample (``scale=100`` → 10,000 functions at
1,200 rps aggregate) through :mod:`repro.sim.sharded`: a streamed trace
(O(functions) memory), window-batched routing over the merged fleet
snapshot, and one lean event kernel per shard.

The rendered rows and notes are **shard-count invariant**: with a fixed
seed they are byte-identical for every ``shards``/``executor`` choice
(see docs/simulation.md, "Sharded execution"), which is what the CI
trace-scale smoke job asserts.  Everything wall-clock — per-shard event
counts, sync-barrier stall, coordinator wall seconds — lands in
``result.meta`` so scaling losses are diagnosable from the result
record alone without ever touching the deterministic output.

Since the `repro.scenario` refactor the replay itself goes through
:func:`~repro.scenario.engine.run_scenario` on a streamed-trace
:class:`~repro.scenario.spec.ScenarioSpec` (bundled as
``scenario/specs/fig10_full.toml``), one run per platform arm;
``shards``/``executor``/``engine`` stay engine-call knobs because the
KPIs are invariant to them.
"""

from __future__ import annotations

from ..scenario.engine import run_scenario
from ..scenario.spec import FleetSpec, ScenarioSpec, TraceSpec
from ..trace.stream import streamed_trace
from .common import ExperimentResult

__all__ = ["run_fig10_full", "full_trace"]

MiB = 1 << 20

# The 1× reference point is run_fig10's default trace: a 100-function
# sample carrying 12 rps aggregate over a 1200 s window.
BASE_FUNCTIONS = 100
BASE_TOTAL_RPS = 12.0
BASE_DURATION_SECONDS = 1200.0


def full_trace(scale: float = 100.0, seed: int = 42):
    """The scaled population as a :class:`~repro.trace.stream.StreamedTrace`."""
    return streamed_trace(
        function_count=round(BASE_FUNCTIONS * scale),
        duration_seconds=BASE_DURATION_SECONDS,
        total_rps=BASE_TOTAL_RPS * scale,
        seed=seed,
    )


def _fleet_for(scale: float) -> tuple[int, int]:
    """Workers × cores sized to the scaled load (~48 rps per worker).

    Never fewer than 4 workers so a 4-shard run is a real 4-way
    partition even at reduced scales (the CI smoke runs at 10×).
    """
    workers = max(4, round(scale / 4))
    return workers, 64


def _base_spec(
    scale: float,
    workers: int,
    cores_per_worker: int,
    window_seconds: float,
    seed: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        name="fig10_full",
        seed=seed,
        trace=TraceSpec(
            kind="streamed",
            duration_seconds=BASE_DURATION_SECONDS,
            # Historical convention: the streamed trace reuses the run
            # seed directly (no +17 arrival-stream offset).
            seed_offset=0,
            scale=scale,
            functions_base=BASE_FUNCTIONS,
            rps_base=BASE_TOTAL_RPS,
            window_seconds=window_seconds,
        ),
        fleet=FleetSpec(workers=workers, cores=cores_per_worker),
    )


def run_fig10_full(
    scale: float = 100.0,
    shards: int = 4,
    executor: str = "auto",
    engine: str = "lean",
    workers: "int | None" = None,
    cores_per_worker: "int | None" = None,
    window_seconds: float = 0.5,
    seed: int = 42,
) -> ExperimentResult:
    default_workers, default_cores = _fleet_for(scale)
    workers = workers if workers is not None else default_workers
    cores_per_worker = (
        cores_per_worker if cores_per_worker is not None else default_cores
    )
    base = _base_spec(scale, workers, cores_per_worker, window_seconds, seed)
    reports = {}
    function_count = None
    for platform in ("dandelion", "faas"):
        run = run_scenario(
            base.with_overrides({"fleet.platform": platform}),
            shards=shards,
            executor=executor,
            engine=engine,
        )
        reports[platform] = run.report
        function_count = run.meta["function_count"]

    result = ExperimentResult(
        name="Fig 10 (full scale)",
        description=(
            f"Azure trace at {scale:g}x sample scale "
            f"({function_count} functions, {workers}x{cores_per_worker} cores): "
            "Dandelion vs Firecracker+Knative"
        ),
        headers=[
            "platform",
            "invocations",
            "p50_ms",
            "p99_ms",
            "committed_mean_mib",
            "active_mean_mib",
            "cold_fraction",
        ],
    )
    for platform, report in reports.items():
        cold_fraction = (
            1.0
            if platform == "dandelion"  # every request cold-creates by design
            else (report.cold_starts / report.completed if report.completed else 0.0)
        )
        result.add_row(
            platform=platform,
            invocations=report.completed,
            p50_ms=report.latency_percentile(50) * 1e3,
            p99_ms=report.latency_percentile(99) * 1e3,
            committed_mean_mib=report.committed_mean_bytes / MiB,
            active_mean_mib=(
                (report.active_mean_bytes / MiB)
                if report.active_mean_bytes is not None
                else report.committed_mean_bytes / MiB
            ),
            cold_fraction=cold_fraction,
        )

    dandelion = reports["dandelion"]
    faas = reports["faas"]
    savings = 100 * (1 - dandelion.committed_mean_bytes / faas.committed_mean_bytes)
    p99_reduction = 100 * (
        1 - dandelion.latency_percentile(99) / faas.latency_percentile(99)
    )
    result.note(
        f"average committed: dandelion {dandelion.committed_mean_bytes / MiB:.0f} MiB "
        f"vs firecracker {faas.committed_mean_bytes / MiB:.0f} MiB -> "
        f"{savings:.1f}% less (paper: 96% at full trace scale)"
    )
    result.note(
        f"p99 latency: dandelion {dandelion.latency_percentile(99) * 1e3:.0f} ms vs "
        f"firecracker {faas.latency_percentile(99) * 1e3:.0f} ms -> "
        f"{p99_reduction:.1f}% reduction (paper: 46%)"
    )
    result.note(
        f"{dandelion.routed} invocations routed over {dandelion.windows} windows "
        f"of {window_seconds:g}s; KPIs invariant to shard count and executor"
    )

    # Observability (satellite: diagnosable scaling losses): wall-clock
    # and per-shard statistics stay out of the rendered record.
    result.meta = {
        "scale": scale,
        "shards": shards,
        "engine": engine,
        "executor": executor,
        "workers": workers,
        "cores_per_worker": cores_per_worker,
        "window_seconds": window_seconds,
        "seed": seed,
        "platforms": {
            platform: {
                "wall_seconds": round(report.wall_seconds, 3),
                "events": report.events,
                "windows": report.windows,
                "events_per_second": (
                    round(report.events / report.wall_seconds)
                    if report.wall_seconds > 0
                    else None
                ),
                "shard_stats": report.shard_stats,
            }
            for platform, report in reports.items()
        },
    }
    return result
