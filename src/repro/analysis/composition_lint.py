"""Semantic composition linting beyond ``Composition._validate`` (CMP codes).

``_validate`` rejects structurally broken graphs (unknown sets, cycles,
unfed inputs).  This pass flags graphs that are *well-formed but
wasteful or suspicious* — exactly the class of ahead-of-time reasoning
the declarative model enables (§4.1):

- ``CMP000`` the DSL source does not parse (the parse error, relined);
- ``CMP001`` an output set no edge or output binding ever consumes —
  the function's work is computed, copied out, and dropped;
- ``CMP002`` a vertex from which no path reaches any composition
  output — a dead-end subgraph whose results cannot be observed;
- ``CMP003`` fan-out explosion: an ``each``/``key`` edge feeding a
  single-capacity communication vertex, or chained ``each``/``key``
  edges whose instance counts multiply;
- ``CMP004`` set-name shadowing: a nested composition exposes an
  external set name identical to one of the parent's own
  input/output bindings — legal, but a reliable source of
  mis-wired edges;
- ``CMP005`` an edge or output binding reads a set the static purity
  summary proves the producing function never writes (only reported
  when the write summary is complete — see
  :func:`repro.analysis.purity_check.verify_purity`).

Both registered :class:`~repro.composition.graph.Composition` objects
and raw DSL sources are supported; :func:`extract_dsl_blocks` pulls
composition blocks out of arbitrary text (example scripts embed them in
triple-quoted strings).
"""

from __future__ import annotations

import re
from typing import Optional

from ..composition.dsl import parse_composition
from ..composition.graph import Composition, CompositionError, Distribution
from .diagnostics import Diagnostic, ERROR, WARNING
from .purity_check import verify_purity

__all__ = ["lint_composition", "lint_dsl_source", "extract_dsl_blocks"]


def lint_composition(
    composition: Composition,
    registry=None,
    *,
    file: Optional[str] = None,
) -> list[Diagnostic]:
    """Lint one validated composition; optionally use ``registry`` to
    resolve compute functions for the never-written-set check."""
    diagnostics: list[Diagnostic] = []
    _check_unused_outputs(composition, diagnostics, file)
    _check_dead_end_vertices(composition, diagnostics, file)
    _check_fanout(composition, diagnostics, file)
    _check_shadowing(composition, diagnostics, file)
    if registry is not None:
        _check_never_written(composition, registry, diagnostics, file)
    return diagnostics


def lint_dsl_source(
    source: str,
    library: Optional[dict] = None,
    registry=None,
    *,
    file: Optional[str] = None,
    line_offset: int = 0,
) -> tuple[Optional[Composition], list[Diagnostic]]:
    """Parse and lint DSL source; parse failures become CMP000 errors."""
    try:
        composition = parse_composition(source, library=library or {})
    except CompositionError as exc:
        line = getattr(exc, "line", None)
        message = str(exc)
        if line is not None and line_offset:
            # DslError embeds its block-relative line in the message
            # ("line 3: ..."); re-line that prefix against the
            # embedding file too, not just the structured field.
            relined = line + line_offset
            message = re.sub(
                rf"^line {line}:", f"line {relined}:", message, count=1
            )
        return None, [
            Diagnostic(
                "CMP000", ERROR, message,
                file=file,
                line=(line + line_offset) if line is not None else None,
                symbol=None,
            )
        ]
    return composition, lint_composition(composition, registry, file=file)


# A composition block in free text: the grammar has exactly one brace
# level, so a non-greedy brace match is sufficient.
_DSL_BLOCK = re.compile(r"composition\s+\w+\s*\{[^{}]*\}", re.DOTALL)


def extract_dsl_blocks(text: str) -> list[tuple[str, int]]:
    """Composition-language blocks embedded in ``text``.

    Returns ``(source, line_offset)`` pairs, where ``line_offset`` is
    the number of lines preceding the block in ``text`` (so block line
    1 maps to file line ``line_offset + 1``).
    """
    blocks = []
    for match in _DSL_BLOCK.finditer(text):
        offset = text.count("\n", 0, match.start())
        blocks.append((match.group(0), offset))
    return blocks


# -- individual checks ------------------------------------------------------


def _check_unused_outputs(
    composition: Composition, diagnostics: list[Diagnostic], file: Optional[str]
) -> None:
    consumed = {(edge.source, edge.source_set) for edge in composition.edges}
    consumed |= {(b.node, b.node_set) for b in composition.outputs}
    for node in composition.nodes.values():
        for set_name in node.output_sets:
            if (node.name, set_name) not in consumed:
                diagnostics.append(
                    Diagnostic(
                        "CMP001", WARNING,
                        f"output set {node.name}.{set_name} is never consumed",
                        file=file, symbol=composition.name,
                        hint="drop the set from the node interface or wire it "
                             "to a consumer",
                    )
                )


def _check_dead_end_vertices(
    composition: Composition, diagnostics: list[Diagnostic], file: Optional[str]
) -> None:
    # Reverse reachability from output-bound nodes.
    predecessors: dict[str, set[str]] = {name: set() for name in composition.nodes}
    for edge in composition.edges:
        predecessors[edge.target].add(edge.source)
    live = {binding.node for binding in composition.outputs}
    frontier = list(live)
    while frontier:
        node = frontier.pop()
        for pred in predecessors[node]:
            if pred not in live:
                live.add(pred)
                frontier.append(pred)
    for name in composition.topological_order:
        if name not in live:
            diagnostics.append(
                Diagnostic(
                    "CMP002", WARNING,
                    f"vertex {name!r} cannot reach any composition output",
                    file=file, symbol=composition.name,
                    hint="its results are computed and discarded; bind an "
                         "output or remove the subgraph",
                )
            )


def _check_fanout(
    composition: Composition, diagnostics: list[Diagnostic], file: Optional[str]
) -> None:
    fanout_targets = set()
    for edge in composition.edges:
        if edge.distribution is Distribution.ALL:
            continue
        fanout_targets.add(edge.target)
        target = composition.nodes[edge.target]
        if target.kind == "communication":
            diagnostics.append(
                Diagnostic(
                    "CMP003", WARNING,
                    f"{edge.distribution.value!r} edge "
                    f"{edge.source}.{edge.source_set} -> "
                    f"{edge.target}.{edge.target_set} fans out into "
                    "single-capacity communication vertex",
                    file=file, symbol=composition.name,
                    hint="each instance serializes its CPU share on one comm "
                         "engine; consider batching requests upstream",
                )
            )
    for edge in composition.edges:
        if edge.distribution is Distribution.ALL:
            continue
        if edge.source in fanout_targets:
            diagnostics.append(
                Diagnostic(
                    "CMP003", WARNING,
                    f"chained {edge.distribution.value!r} fan-out through "
                    f"{edge.source!r}: instance counts multiply",
                    file=file, symbol=composition.name,
                    hint="instance count is the product of chained each/key "
                         "expansions; verify the input cardinalities bound it",
                )
            )


def _check_shadowing(
    composition: Composition, diagnostics: list[Diagnostic], file: Optional[str]
) -> None:
    own_external = {b.external for b in composition.inputs}
    own_external |= {b.external for b in composition.outputs}
    for node in composition.nodes.values():
        if node.kind != "composition":
            continue
        nested = node.composition
        nested_external = {b.external for b in nested.inputs}
        nested_external |= {b.external for b in nested.outputs}
        for name in sorted(own_external & nested_external):
            diagnostics.append(
                Diagnostic(
                    "CMP004", WARNING,
                    f"nested composition {nested.name!r} (vertex {node.name!r}) "
                    f"exposes set {name!r}, shadowing a set of "
                    f"{composition.name!r}",
                    file=file, symbol=composition.name,
                    hint="rename one of the sets; shadowed names make edge "
                         "declarations ambiguous to readers",
                )
            )


def _check_never_written(
    composition: Composition, registry, diagnostics: list[Diagnostic],
    file: Optional[str],
) -> None:
    for node in composition.compute_nodes():
        if not registry.has_function(node.function):
            continue  # registration-time validation reports this
        report = verify_purity(registry.function(node.function))
        written = report.written_sets
        if written is None or not report.analyzed:
            continue  # summary incomplete: stay silent rather than guess
        consumed_sets = {
            edge.source_set for edge in composition.edges if edge.source == node.name
        }
        consumed_sets |= {
            b.node_set for b in composition.outputs if b.node == node.name
        }
        for set_name in sorted(consumed_sets):
            if set_name in node.output_sets and set_name not in written:
                diagnostics.append(
                    Diagnostic(
                        "CMP005", WARNING,
                        f"edge reads {node.name}.{set_name} but function "
                        f"{node.function!r} provably never writes set "
                        f"{set_name!r}",
                        file=file, symbol=composition.name,
                        hint="downstream vertices will receive an empty set; "
                             "write the set or re-wire the edge",
                    )
                )
