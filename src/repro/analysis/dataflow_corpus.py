"""Seeded violation corpus for the dataflow analyzer.

Eighteen compositions, each deliberately racy or contract-breaking in
one specific way, proving every RACE/CON/COST rule fires (mirroring the
purity pass's 18/18 dynamic-violation table from PR 4).  The corpus is
importable by the tests, the bench harness, and the CI gate:

- :data:`CORPUS` — the entries, each naming the rule it seeds;
- :func:`build_registry` — a registry with every corpus function and
  library (nested) composition registered;
- :func:`analyze_entry` / :func:`analyze_corpus` — run the analyzer
  over one entry / all of them.

The compute functions live at module level so the purity pass can read
their source; they exercise both the raw-vfs and SDK read/write paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..composition.dsl import parse_composition
from ..composition.registry import FunctionBinary, Registry
from ..functions.sdk import read_all_bytes, read_items, write_item
from .dataflow import DataflowReport, analyze_composition

__all__ = [
    "CorpusEntry",
    "CORPUS",
    "build_registry",
    "analyze_entry",
    "analyze_corpus",
]


# -- compute functions -------------------------------------------------------
# Named df_* and kept at module level: verify_purity needs their source.


def df_copy(vfs):
    data = vfs.read_bytes("/in/src/item")
    vfs.write_bytes("/out/dst/item", data)


def df_merge2(vfs):
    a = vfs.read_bytes("/in/a/item")
    b = vfs.read_bytes("/in/b/item")
    vfs.write_bytes("/out/dst/item", a + b)


def df_sneaky_writer(vfs):
    # Declared interface: in(src) out(dst) — the write into "scratch"
    # is outside it, landing in the shared composition namespace.
    data = vfs.read_bytes("/in/src/item")
    vfs.write_bytes("/out/dst/item", data)
    vfs.write_bytes("/out/scratch/log", b"sneak")


def df_sneaky_reader(vfs):
    base = vfs.read_bytes("/in/src/item")
    extra = vfs.read_bytes("/in/scratch/log")
    vfs.write_bytes("/out/dst/item", base + extra)


def df_emit3(vfs):
    vfs.write_bytes("/out/parts/p0", b"a")
    vfs.write_bytes("/out/parts/p1", b"b")
    vfs.write_bytes("/out/parts/p2", b"c")


def df_emit2(vfs):
    vfs.write_bytes("/out/parts/q0", b"a")
    vfs.write_bytes("/out/parts/q1", b"b")


def df_emit_dynamic(vfs):
    data = read_all_bytes(vfs, "src")
    for index in range(len(data)):
        vfs.write_bytes(f"/out/parts/p{index}", b"x")


def df_const_item(vfs):
    # Every fan-out instance of this function writes the same item
    # name, so a merged "dst" collides across instances.
    data = read_all_bytes(vfs, "part")
    vfs.write_bytes("/out/dst/fixed", data)


def df_item_copy(vfs):
    for name, payload in read_items(vfs, "part"):
        vfs.write_bytes(f"/out/dst/{name}", payload)


def df_collect(vfs):
    data = read_all_bytes(vfs, "dst")
    vfs.write_bytes("/out/result/merged", data)


def df_collect2(vfs):
    a = read_all_bytes(vfs, "good_in")
    b = read_all_bytes(vfs, "bad_in")
    vfs.write_bytes("/out/result/merged", a + b)


def df_pair(vfs):
    a = read_all_bytes(vfs, "lhs")
    b = read_all_bytes(vfs, "rhs")
    vfs.write_bytes("/out/dst/item", a + b)


def df_inplace(vfs):
    # Writes its own declared *input* set: the platform already
    # delivered (renamed) a set under that name.
    data = read_all_bytes(vfs, "buf")
    vfs.write_bytes("/out/buf/tmp", data)
    vfs.write_bytes("/out/dst/item", data)


def df_echo_back(vfs):
    for name, payload in read_items(vfs, "msgs"):
        write_item(vfs, "msgs", "copy-" + name, payload)
    vfs.write_bytes("/out/dst/done", b"ok")


def df_ghost_read(vfs):
    base = read_all_bytes(vfs, "src")
    config = vfs.read_bytes("/in/config/main")
    vfs.write_bytes("/out/dst/item", base + config)


def df_ghost_items(vfs):
    for name, payload in read_items(vfs, "sideband"):
        vfs.write_bytes(f"/out/dst/{name}", payload)


def df_ghost_probe(vfs):
    names = vfs.listdir("/in/manifest")
    vfs.write_bytes("/out/dst/count", str(len(names)).encode())


def df_half_writer(vfs):
    # Declared out(real, phantom) at its node — but only "real" is
    # ever written; "phantom" propagates as an always-empty alias.
    data = read_all_bytes(vfs, "src")
    vfs.write_bytes("/out/real/item", data)


def df_slow(vfs):
    data = read_all_bytes(vfs, "src")
    vfs.write_bytes("/out/dst/item", data)


_FUNCTIONS = [
    FunctionBinary("df_copy", df_copy),
    FunctionBinary("df_merge2", df_merge2),
    FunctionBinary("df_sneaky_writer", df_sneaky_writer),
    FunctionBinary("df_sneaky_reader", df_sneaky_reader),
    FunctionBinary("df_emit3", df_emit3),
    FunctionBinary("df_emit2", df_emit2),
    FunctionBinary("df_emit_dynamic", df_emit_dynamic),
    FunctionBinary("df_const_item", df_const_item),
    FunctionBinary("df_item_copy", df_item_copy),
    FunctionBinary("df_collect", df_collect),
    FunctionBinary("df_collect2", df_collect2),
    FunctionBinary("df_pair", df_pair),
    FunctionBinary("df_inplace", df_inplace),
    FunctionBinary("df_echo_back", df_echo_back),
    FunctionBinary("df_ghost_read", df_ghost_read),
    FunctionBinary("df_ghost_items", df_ghost_items),
    FunctionBinary("df_ghost_probe", df_ghost_probe),
    FunctionBinary("df_half_writer", df_half_writer),
    FunctionBinary("df_slow", df_slow, compute_cost=0.1),
]


# Library compositions: nested building blocks the corpus entries
# ``compose ... uses ...`` — registered first, in order.
_LIBRARY_DSL = [
    """
    composition inner_misbound {
        compute work uses df_half_writer in(src) out(real, phantom);
        input x -> work.src;
        output work.real -> good;
        output work.phantom -> bad;
    }
    """,
    """
    composition mid_wrap {
        compose core uses inner_misbound;
        input y -> core.x;
        output core.good -> fine;
        output core.bad -> still_bad;
    }
    """,
]


@dataclass(frozen=True)
class CorpusEntry:
    """One seeded violation: a composition plus the rule it must trip."""

    name: str
    rule: str                     # the seeded code, e.g. "RACE001"
    description: str
    dsl: str
    expected_codes: tuple        # codes that must all fire
    analyze_kwargs: dict = field(default_factory=dict)


CORPUS = [
    CorpusEntry(
        name="race_ww_parallel",
        rule="RACE001",
        description="two parallel nodes both sneak-write set 'scratch'",
        dsl="""
        composition race_ww_parallel {
            compute left uses df_sneaky_writer in(src) out(dst);
            compute right uses df_sneaky_writer in(src) out(dst);
            input a -> left.src;
            input b -> right.src;
            output left.dst -> out_l;
            output right.dst -> out_r;
        }
        """,
        expected_codes=("RACE001",),
    ),
    CorpusEntry(
        name="race_ww_diamond",
        rule="RACE001",
        description="diamond branches sneak-write the same set",
        dsl="""
        composition race_ww_diamond {
            compute seed uses df_copy in(src) out(dst);
            compute up uses df_sneaky_writer in(src) out(dst);
            compute down uses df_sneaky_writer in(src) out(dst);
            compute join uses df_merge2 in(a, b) out(dst);
            input start -> seed.src;
            seed.dst -> up.src;
            seed.dst -> down.src;
            up.dst -> join.a;
            down.dst -> join.b;
            output join.dst -> result;
        }
        """,
        expected_codes=("RACE001",),
    ),
    CorpusEntry(
        name="race_rw_parallel",
        rule="RACE002",
        description="sneak-read of a set only a parallel node writes",
        dsl="""
        composition race_rw_parallel {
            compute writer uses df_sneaky_writer in(src) out(dst);
            compute reader uses df_sneaky_reader in(src) out(dst);
            input a -> writer.src;
            input b -> reader.src;
            output writer.dst -> out_w;
            output reader.dst -> out_r;
        }
        """,
        expected_codes=("RACE002",),
    ),
    CorpusEntry(
        name="race_rw_sibling",
        rule="RACE002",
        description="sibling branches: one sneak-writes, one sneak-reads",
        dsl="""
        composition race_rw_sibling {
            compute seed uses df_copy in(src) out(dst);
            compute spill uses df_sneaky_writer in(src) out(dst);
            compute reader uses df_sneaky_reader in(src) out(dst);
            input start -> seed.src;
            seed.dst -> spill.src;
            seed.dst -> reader.src;
            output spill.dst -> out_a;
            output reader.dst -> out_b;
        }
        """,
        expected_codes=("RACE002",),
    ),
    CorpusEntry(
        name="race_fanout_each",
        rule="RACE003",
        description="'each' instances all write a constant item name",
        dsl="""
        composition race_fanout_each {
            compute gen uses df_emit3 in(src) out(parts);
            compute work uses df_const_item in(part) out(dst);
            compute sink uses df_collect in(dst) out(result);
            input start -> gen.src;
            gen.parts -> work.part [each];
            work.dst -> sink.dst [all];
            output sink.result -> result;
        }
        """,
        expected_codes=("RACE003",),
    ),
    CorpusEntry(
        name="race_fanout_key",
        rule="RACE003",
        description="'key' instances all write a constant item name",
        dsl="""
        composition race_fanout_key {
            compute gen uses df_emit3 in(src) out(parts);
            compute work uses df_const_item in(part) out(dst);
            compute sink uses df_collect in(dst) out(result);
            input start -> gen.src;
            gen.parts -> work.part [key];
            work.dst -> sink.dst [all];
            output sink.result -> result;
        }
        """,
        expected_codes=("RACE003",),
    ),
    CorpusEntry(
        name="race_alias_inplace",
        rule="RACE004",
        description="function writes its own declared input set",
        dsl="""
        composition race_alias_inplace {
            compute work uses df_inplace in(buf) out(dst);
            input data -> work.buf;
            output work.dst -> result;
        }
        """,
        expected_codes=("RACE004",),
    ),
    CorpusEntry(
        name="race_alias_echo",
        rule="RACE004",
        description="SDK write_item back into the declared input set",
        dsl="""
        composition race_alias_echo {
            compute work uses df_echo_back in(msgs) out(dst);
            input inbox -> work.msgs;
            output work.dst -> result;
        }
        """,
        expected_codes=("RACE004",),
    ),
    CorpusEntry(
        name="con_ghost_read",
        rule="CON001",
        description="vfs read of a set nothing produces",
        dsl="""
        composition con_ghost_read {
            compute work uses df_ghost_read in(src) out(dst);
            input data -> work.src;
            output work.dst -> result;
        }
        """,
        expected_codes=("CON001",),
    ),
    CorpusEntry(
        name="con_ghost_items",
        rule="CON001",
        description="SDK read_items of a set nothing produces",
        dsl="""
        composition con_ghost_items {
            compute work uses df_ghost_items in(src) out(dst);
            input data -> work.src;
            output work.dst -> result;
        }
        """,
        expected_codes=("CON001",),
    ),
    CorpusEntry(
        name="con_ghost_probe",
        rule="CON001",
        description="listdir of a set nothing produces",
        dsl="""
        composition con_ghost_probe {
            compute work uses df_ghost_probe in(src) out(dst);
            input data -> work.src;
            output work.dst -> result;
        }
        """,
        expected_codes=("CON001",),
    ),
    CorpusEntry(
        name="con_aliased",
        rule="CON002",
        description="nested output alias hides a never-written set",
        dsl="""
        composition con_aliased {
            compose sub uses inner_misbound;
            compute sink uses df_collect2 in(good_in, bad_in) out(result);
            input x -> sub.x;
            sub.good -> sink.good_in;
            sub.bad -> sink.bad_in;
            output sink.result -> result;
        }
        """,
        expected_codes=("CON002",),
    ),
    CorpusEntry(
        name="con_aliased_deep",
        rule="CON002",
        description="double-nested alias chain to a never-written set",
        dsl="""
        composition con_aliased_deep {
            compose wrap uses mid_wrap;
            compute sink uses df_collect2 in(good_in, bad_in) out(result);
            input z -> wrap.y;
            wrap.fine -> sink.good_in;
            wrap.still_bad -> sink.bad_in;
            output sink.result -> result;
        }
        """,
        expected_codes=("CON002",),
    ),
    CorpusEntry(
        name="con_mixed_dist",
        rule="CON003",
        description="'each' and 'key' edges mixed on one node",
        dsl="""
        composition con_mixed_dist {
            compute genA uses df_emit3 in(src) out(parts);
            compute genB uses df_emit3 in(src) out(parts);
            compute work uses df_pair in(lhs, rhs) out(dst);
            compute sink uses df_collect in(dst) out(result);
            input a -> genA.src;
            input b -> genB.src;
            genA.parts -> work.lhs [each];
            genB.parts -> work.rhs [key];
            work.dst -> sink.dst [all];
            output sink.result -> result;
        }
        """,
        expected_codes=("CON003",),
    ),
    CorpusEntry(
        name="con_mismatched_each",
        rule="CON003",
        description="'each' edges with provably different item counts",
        dsl="""
        composition con_mismatched_each {
            compute genA uses df_emit3 in(src) out(parts);
            compute genB uses df_emit2 in(src) out(parts);
            compute work uses df_pair in(lhs, rhs) out(dst);
            compute sink uses df_collect in(dst) out(result);
            input a -> genA.src;
            input b -> genB.src;
            genA.parts -> work.lhs [each];
            genB.parts -> work.rhs [each];
            work.dst -> sink.dst [all];
            output sink.result -> result;
        }
        """,
        expected_codes=("CON003",),
    ),
    CorpusEntry(
        name="cost_deadline_chain",
        rule="COST001",
        description="50ms deadline over a 300ms critical path",
        dsl="""
        composition cost_deadline_chain {
            deadline 50ms;
            compute s1 uses df_slow in(src) out(dst);
            compute s2 uses df_slow in(src) out(dst);
            compute s3 uses df_slow in(src) out(dst);
            input start -> s1.src;
            s1.dst -> s2.src;
            s2.dst -> s3.src;
            output s3.dst -> result;
        }
        """,
        expected_codes=("COST001",),
    ),
    CorpusEntry(
        name="cost_memory_wide",
        rule="COST002",
        description="3-wide fan-out of 64 MiB contexts vs 1 MiB capacity",
        dsl="""
        composition cost_memory_wide {
            compute gen uses df_emit3 in(src) out(parts);
            compute work uses df_item_copy in(part) out(dst);
            compute sink uses df_collect in(dst) out(result);
            input start -> gen.src;
            gen.parts -> work.part [each];
            work.dst -> sink.dst [all];
            output sink.result -> result;
        }
        """,
        expected_codes=("COST002",),
        analyze_kwargs={"memory_capacity": 1 << 20},
    ),
    CorpusEntry(
        name="cost_unbounded_fanout",
        rule="COST003",
        description="deadline declared over a statically unbounded fan-out",
        dsl="""
        composition cost_unbounded_fanout {
            deadline 1s;
            compute gen uses df_emit_dynamic in(src) out(parts);
            compute work uses df_item_copy in(part) out(dst);
            compute sink uses df_collect in(dst) out(result);
            input start -> gen.src;
            gen.parts -> work.part [each];
            work.dst -> sink.dst [all];
            output sink.result -> result;
        }
        """,
        expected_codes=("COST003",),
    ),
]


def build_registry() -> Registry:
    """Registry holding every corpus function, library, and entry."""
    registry = Registry()
    for binary in _FUNCTIONS:
        registry.register_function(binary)
    for source in _LIBRARY_DSL:
        registry.register_composition(
            parse_composition(source, registry.compositions)
        )
    for entry in CORPUS:
        registry.register_composition(
            parse_composition(entry.dsl, registry.compositions)
        )
    return registry


def analyze_entry(entry: CorpusEntry, registry=None) -> DataflowReport:
    if registry is None:
        registry = build_registry()
    return analyze_composition(
        registry.composition(entry.name), registry, **entry.analyze_kwargs
    )


def analyze_corpus(registry=None) -> dict:
    """Entry name -> DataflowReport for the whole corpus."""
    if registry is None:
        registry = build_registry()
    return {entry.name: analyze_entry(entry, registry) for entry in CORPUS}
