"""Whole-composition dataflow analysis (RACE / CON / COST codes).

The per-function purity pass and the per-node composition linter stop
at vertex boundaries.  This pass is the interprocedural step Dandelion's
programming model makes possible (§4.1): because every function's data
interface is declared and the DAG is explicit, *cross-node* properties
— races, contract mismatches, and a static cost envelope — are
decidable before anything runs.  It consumes the purity verifier's
read/write/item summaries (:class:`~repro.analysis.purity_check.
PurityReport`) plus the composition graph and emits three diagnostic
families:

**RACE** — hazards between vertices the DAG does not order:

- ``RACE001`` write-write: two DAG-unordered nodes both write the same
  set outside their declared interfaces (undeclared writes land in the
  shared composition namespace, so the platform cannot order them);
- ``RACE002`` read-after-write not ordered by edges: a node reads an
  undeclared set that only DAG-unordered nodes produce — which write
  the read observes depends on scheduling;
- ``RACE003`` fan-out collision: an ``each``/``key``-instanced node
  writes a *constant* item name into a consumed output set, so every
  instance emits the same item and the merge must rename to disambiguate
  (downstream readers keyed on the item name silently break);
- ``RACE004`` alias double-write: a node's function writes a set name
  that is also one of its declared input sets — the platform already
  delivered (and renamed) a set under that name, so the context sees
  two writers for one name.

**CON** — producer/consumer contract checks:

- ``CON001`` a function reads a set no vertex on any path produces
  (the read is always empty);
- ``CON002`` a consumed set resolves — through nested-composition
  output bindings, i.e. through ``DataSet.renamed`` aliases — to a
  function that provably never writes it (the aliased flavour of the
  linter's CMP005, which only sees direct edges);
- ``CON003`` item-cardinality mismatch across an ``each`` boundary:
  mixing ``each`` and ``key`` edges on one node (the expander rejects
  it at run time), or two ``each`` edges whose static cardinalities
  provably differ (the expander's zip would raise mid-invocation).

**COST** — a static cost envelope, also exported as
:class:`CompositionCostSummary` for the dispatcher admission path and
``repro.sched`` policies:

- ``COST001`` the composition declares a deadline its static critical
  path cannot meet even with unbounded parallelism;
- ``COST002`` the peak in-flight bytes estimate exceeds the supplied
  memory capacity;
- ``COST003`` a deadline is declared but fan-out cardinality is
  statically unbounded, so width/bytes are lower bounds only.

Every check stays silent rather than guessing whenever a summary is
incomplete (``None``), mirroring CMP005's discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..composition.graph import Composition, Distribution
from .diagnostics import Diagnostic, ERROR, WARNING
from .purity_check import PurityReport, verify_purity

__all__ = [
    "CompositionCostSummary",
    "DataflowReport",
    "analyze_composition",
    "cost_summary",
    "DEFAULT_NODE_SECONDS",
    "COMM_NODE_SECONDS",
    "DEFAULT_SET_BYTES",
]

# Cost-model defaults: per-instance seconds for a compute node with no
# declared compute_cost, for a communication round-trip, and the
# assumed bytes of a set with no size hint.  Deliberately coarse — the
# COST family compares *declared* costs against *declared* deadlines;
# defaults only keep undeclared nodes from zeroing the critical path.
DEFAULT_NODE_SECONDS = 0.001
COMM_NODE_SECONDS = 0.002
DEFAULT_SET_BYTES = 64 * 1024


@dataclass(frozen=True)
class CompositionCostSummary:
    """Static cost envelope of one composition.

    Consumed by ``Dispatcher`` static admission (reject invocations
    whose deadline is statically unreachable before scheduling them)
    and by ``repro.sched`` policies (see
    :mod:`repro.sched.hints`).  All figures are *lower bounds* when
    ``statically_bounded`` is False.
    """

    composition: str
    node_count: int
    edge_count: int
    critical_path_depth: int          # nodes on the longest path
    critical_path_seconds: float      # with unbounded parallelism
    total_compute_seconds: float      # serialized work, all instances
    max_parallel_width: int           # widest schedulable antichain level
    peak_inflight_bytes: int          # widest level's memory contexts
    statically_bounded: bool          # False: some fan-out unknown
    deadline_seconds: Optional[float] = None
    deadline_feasible: Optional[bool] = None   # None: no deadline declared
    functions: tuple = ()


@dataclass
class DataflowReport:
    """Outcome of analyzing one composition."""

    composition: str
    diagnostics: list = field(default_factory=list)
    summary: Optional[CompositionCostSummary] = None

    @property
    def ok(self) -> bool:
        return not any(d.severity == ERROR for d in self.diagnostics)


class _NodeFacts:
    """Per-node slice of the interprocedural state."""

    __slots__ = (
        "node",
        "declared_in",
        "declared_out",
        "report",
        "undeclared_writes",
        "undeclared_reads",
        "alias_writes",
        "fanned_out",
        "multiplicity",
        "seconds",
        "bytes_estimate",
        "level",
    )

    def __init__(self, node):
        self.node = node
        self.declared_in = frozenset(node.input_sets)
        self.declared_out = frozenset(node.output_sets)
        self.report: Optional[PurityReport] = None
        self.undeclared_writes: frozenset = frozenset()
        self.undeclared_reads: frozenset = frozenset()
        self.alias_writes: frozenset = frozenset()
        self.fanned_out = False          # target of an each/key edge
        self.multiplicity: Optional[int] = 1   # None: statically unbounded
        self.seconds = DEFAULT_NODE_SECONDS
        self.bytes_estimate = 0
        self.level = 0


def _function_report(registry, cache: dict, function_name: str) -> Optional[PurityReport]:
    if registry is None or not registry.has_function(function_name):
        return None
    report = cache.get(function_name)
    if report is None:
        report = verify_purity(registry.function(function_name))
        cache[function_name] = report
    return report


def _reachability(composition: Composition) -> dict:
    """node -> frozenset of nodes reachable from it (excluding itself)."""
    successors: dict[str, list[str]] = {name: [] for name in composition.nodes}
    for edge in composition.edges:
        successors[edge.source].append(edge.target)
    reach: dict[str, set] = {}
    for name in reversed(composition.topological_order):
        seen: set = set()
        for succ in successors[name]:
            seen.add(succ)
            seen |= reach[succ]
        reach[name] = seen
    return reach


def _resolve_producer(composition: Composition, node_name: str, set_name: str):
    """Follow nested output bindings to the producing compute function.

    Returns ``(function_name, inner_set_name, crossed_boundary)`` or
    ``None`` when the chain ends at a communication vertex or a broken
    binding.  Each nesting hop is a ``DataSet.renamed`` alias at run
    time — exactly the renames that used to hide never-written findings.
    """
    node = composition.nodes.get(node_name)
    crossed = False
    hops = 0
    while node is not None and node.kind == "composition" and hops < 32:
        nested = node.composition
        binding = next(
            (b for b in nested.outputs if b.external == set_name), None
        )
        if binding is None:
            return None
        node = nested.nodes.get(binding.node)
        set_name = binding.node_set
        crossed = True
        hops += 1
    if node is not None and node.kind == "compute":
        return node.function, set_name, crossed
    return None


def _consumed_sets(composition: Composition) -> list:
    """Deterministic list of ``(node, set)`` pairs something consumes."""
    consumed = {(edge.source, edge.source_set) for edge in composition.edges}
    consumed |= {(b.node, b.node_set) for b in composition.outputs}
    return sorted(consumed)


# -- RACE / CON checks -------------------------------------------------------


def _check_unordered_writes(facts, reach, diagnostics, composition, file):
    names = sorted(facts)
    for i, left in enumerate(names):
        lf = facts[left]
        if not lf.undeclared_writes:
            continue
        for right in names[i + 1:]:
            rf = facts[right]
            if right in reach[left] or left in reach[right]:
                continue  # DAG-ordered: the platform serializes them
            shared = lf.undeclared_writes & rf.undeclared_writes
            for set_name in sorted(shared):
                diagnostics.append(
                    Diagnostic(
                        "RACE001", ERROR,
                        f"unordered nodes {left!r} and {right!r} both write "
                        f"set {set_name!r} outside their declared interfaces",
                        file=file, symbol=composition.name,
                        hint="declare the set in exactly one node's out(...) "
                             "and wire an edge, or rename one of the writes",
                    )
                )


def _check_unordered_reads(facts, reach, diagnostics, composition, file):
    external_inputs = {binding.external for binding in composition.inputs}
    for reader in sorted(facts):
        rf = facts[reader]
        for set_name in sorted(rf.undeclared_reads):
            if set_name in external_inputs:
                continue  # present in the context before any node runs
            # Declared outputs count as producers too: a sneak-read of
            # a set another node legitimately declares is a race (or a
            # hidden-but-ordered dependency), not a missing producer.
            writers = [
                name
                for name in sorted(facts)
                if name != reader
                and (
                    set_name in facts[name].undeclared_writes
                    or set_name in facts[name].declared_out
                )
            ]
            ordered_writers = [
                name for name in writers if reader in reach[name]
            ]
            if ordered_writers:
                continue  # a producer the DAG runs first: hidden but ordered
            if writers:
                diagnostics.append(
                    Diagnostic(
                        "RACE002", ERROR,
                        f"node {reader!r} reads set {set_name!r} which only "
                        f"DAG-unordered node(s) {', '.join(map(repr, writers))} "
                        "produce — the read races the write",
                        file=file, symbol=composition.name,
                        hint="declare the set on both interfaces and add an "
                             "edge so the platform orders producer before "
                             "consumer",
                    )
                )
            else:
                diagnostics.append(
                    Diagnostic(
                        "CON001", ERROR,
                        f"node {reader!r} reads set {set_name!r} but no vertex "
                        "on any path produces it — the read is always empty",
                        file=file, symbol=composition.name,
                        hint="wire a producer, declare the set as an input, "
                             "or drop the read",
                    )
                )


def _check_alias_double_writes(facts, diagnostics, composition, file):
    for name in sorted(facts):
        nf = facts[name]
        for set_name in sorted(nf.alias_writes):
            diagnostics.append(
                Diagnostic(
                    "RACE004", ERROR,
                    f"node {name!r} writes set {set_name!r}, which is also "
                    "one of its declared input sets — the delivered "
                    "(renamed) input and the function's write collide on "
                    "one name",
                    file=file, symbol=composition.name,
                    hint="write to a distinct output set; renames along the "
                         "incoming edge already claimed this name",
                )
            )


def _check_fanout_collisions(facts, diagnostics, composition, file):
    consumed = set(_consumed_sets(composition))
    for name in sorted(facts):
        nf = facts[name]
        if not nf.fanned_out or nf.report is None:
            continue
        items = nf.report.written_items
        if items is None:
            continue
        for set_name in sorted(nf.declared_out):
            if (name, set_name) not in consumed:
                continue
            constant_items = items.get(set_name)
            if not constant_items:
                continue  # dynamic or absent item names: instances differ
            shown = ", ".join(sorted(constant_items))
            diagnostics.append(
                Diagnostic(
                    "RACE003", WARNING,
                    f"fan-out instances of node {name!r} all write constant "
                    f"item name(s) {shown} into set {set_name!r}; the merge "
                    "renames colliding items with an instance prefix",
                    file=file, symbol=composition.name,
                    hint="derive item names from the instance's input so "
                         "downstream readers can address them",
                )
            )


def _check_cardinality(facts, out_card, diagnostics, composition, file):
    by_target: dict[str, list] = {}
    for edge in composition.edges:
        if edge.distribution is not Distribution.ALL:
            by_target.setdefault(edge.target, []).append(edge)
    for target in sorted(by_target):
        edges = by_target[target]
        kinds = {edge.distribution for edge in edges}
        if len(kinds) > 1:
            diagnostics.append(
                Diagnostic(
                    "CON003", ERROR,
                    f"node {target!r} mixes 'each' and 'key' incoming edges; "
                    "the instance expander rejects this at run time",
                    file=file, symbol=composition.name,
                    hint="use one distribution per node, or split the node",
                )
            )
            continue
        if Distribution.EACH not in kinds or len(edges) < 2:
            continue
        cards = []
        for edge in edges:
            card = out_card.get((edge.source, edge.source_set))
            if card is not None:
                cards.append((edge, card))
        for (first_edge, first), (other_edge, other) in zip(cards, cards[1:]):
            if first != other:
                diagnostics.append(
                    Diagnostic(
                        "CON003", ERROR,
                        f"'each' edges into node {target!r} deliver provably "
                        f"different item counts ({first_edge.source}."
                        f"{first_edge.source_set}={first} vs "
                        f"{other_edge.source}.{other_edge.source_set}={other});"
                        " the zip would fail mid-invocation",
                        file=file, symbol=composition.name,
                        hint="'each' edges are zipped by position and must "
                             "deliver identical item counts",
                    )
                )


def _check_aliased_never_written(registry, report_cache, diagnostics,
                                 composition, file):
    if registry is None:
        return
    for node_name, set_name in _consumed_sets(composition):
        resolved = _resolve_producer(composition, node_name, set_name)
        if resolved is None:
            continue
        function_name, inner_set, crossed = resolved
        if not crossed:
            continue  # the direct case is the linter's CMP005
        report = _function_report(registry, report_cache, function_name)
        if report is None or report.written_sets is None or not report.analyzed:
            continue
        if inner_set not in report.written_sets:
            diagnostics.append(
                Diagnostic(
                    "CON002", ERROR,
                    f"consumed set {node_name}.{set_name} resolves through "
                    f"nested-composition aliases to {function_name!r}'s set "
                    f"{inner_set!r}, which the function provably never writes",
                    file=file, symbol=composition.name,
                    hint="the rename chain hides an always-empty set; write "
                         "the inner set or re-bind the nested output",
                )
            )


# -- cost model --------------------------------------------------------------


def _node_seconds(facts: _NodeFacts, registry, size_hints, input_bytes) -> float:
    node = facts.node
    if node.kind == "communication":
        return COMM_NODE_SECONDS
    if node.kind == "composition":
        nested = cost_summary(node.composition, registry, size_hints=size_hints)
        return max(nested.critical_path_seconds, DEFAULT_NODE_SECONDS)
    if registry is not None and registry.has_function(node.function):
        modelled = registry.function(node.function).modelled_compute_seconds(
            input_bytes
        )
        if modelled is not None:
            return max(float(modelled), 0.0)
    return DEFAULT_NODE_SECONDS


def _node_bytes(facts: _NodeFacts, registry) -> int:
    node = facts.node
    if node.kind == "communication":
        return 0
    if node.kind == "composition":
        nested = cost_summary(node.composition, registry)
        return nested.peak_inflight_bytes
    if registry is not None and registry.has_function(node.function):
        return registry.function(node.function).memory_limit
    return 0


def _build_cost(composition, facts, registry, size_hints):
    """Fill multiplicity/level/seconds on ``facts``; return the summary."""
    size_hints = size_hints or {}
    incoming: dict[str, list] = {name: [] for name in composition.nodes}
    for edge in composition.edges:
        incoming[edge.target].append(edge)
    input_names = {
        (b.node, b.node_set): b.external for b in composition.inputs
    }

    out_card: dict[tuple, Optional[int]] = {}
    bounded = True
    finish: dict[str, float] = {}
    critical_depth: dict[str, int] = {}
    total_seconds = 0.0

    for name in composition.topological_order:
        nf = facts[name]
        edges = incoming[name]
        fan_edges = [
            e for e in edges if e.distribution is not Distribution.ALL
        ]
        nf.fanned_out = bool(fan_edges)
        if fan_edges:
            multiplicity = None
            for edge in fan_edges:
                card = out_card.get((edge.source, edge.source_set))
                if card is not None:
                    multiplicity = card
                    break
            nf.multiplicity = multiplicity
            if multiplicity is None:
                bounded = False

        input_bytes = 0
        for edge in edges:
            input_bytes += int(size_hints.get(edge.source_set, DEFAULT_SET_BYTES))
        for (node_name, node_set), external in sorted(input_names.items()):
            if node_name == name:
                input_bytes += int(size_hints.get(external, DEFAULT_SET_BYTES))

        nf.seconds = _node_seconds(nf, registry, size_hints, input_bytes)
        nf.bytes_estimate = _node_bytes(nf, registry)

        preds = {edge.source for edge in edges}
        nf.level = (
            0 if not preds else 1 + max(facts[p].level for p in sorted(preds))
        )
        start = max((finish[p] for p in sorted(preds)), default=0.0)
        finish[name] = start + nf.seconds
        critical_depth[name] = (
            1 if not preds else 1 + max(critical_depth[p] for p in sorted(preds))
        )
        total_seconds += nf.seconds * (nf.multiplicity or 1)

        # Static cardinality of this node's output sets, for CON003 and
        # downstream multiplicities: instances x constant items.
        report = nf.report
        items = report.written_items if report is not None else None
        for set_name in nf.node.output_sets:
            card = None
            if (
                nf.node.kind == "compute"
                and items is not None
                and nf.multiplicity is not None
            ):
                constant = items.get(set_name)
                if constant:
                    card = nf.multiplicity * len(constant)
            out_card[(name, set_name)] = card

    width = 0
    peak_bytes = 0
    by_level: dict[int, list] = {}
    for name in sorted(facts):
        by_level.setdefault(facts[name].level, []).append(name)
    for level in sorted(by_level):
        level_width = sum(facts[n].multiplicity or 1 for n in by_level[level])
        level_bytes = sum(
            facts[n].bytes_estimate * (facts[n].multiplicity or 1)
            for n in by_level[level]
        )
        width = max(width, level_width)
        peak_bytes = max(peak_bytes, level_bytes)

    deadline = composition.deadline_seconds
    critical_seconds = max(finish.values(), default=0.0)
    summary = CompositionCostSummary(
        composition=composition.name,
        node_count=len(composition.nodes),
        edge_count=len(composition.edges),
        critical_path_depth=max(critical_depth.values(), default=0),
        critical_path_seconds=critical_seconds,
        total_compute_seconds=total_seconds,
        max_parallel_width=width,
        peak_inflight_bytes=peak_bytes,
        statically_bounded=bounded,
        deadline_seconds=deadline,
        deadline_feasible=(
            None if deadline is None else critical_seconds <= deadline
        ),
        functions=tuple(sorted(composition.required_functions())),
    )
    return summary, out_card


def _check_cost(summary, diagnostics, composition, file, memory_capacity):
    if summary.deadline_feasible is False:
        diagnostics.append(
            Diagnostic(
                "COST001", ERROR,
                f"declared deadline {summary.deadline_seconds}s is statically "
                f"unreachable: the critical path needs "
                f"{summary.critical_path_seconds:.6g}s even with unbounded "
                "parallelism",
                file=file, symbol=composition.name,
                hint="raise the deadline, cut the chain depth, or lower the "
                     "declared per-stage compute costs",
            )
        )
    if summary.deadline_seconds is not None and not summary.statically_bounded:
        diagnostics.append(
            Diagnostic(
                "COST003", WARNING,
                "composition declares a deadline but its each/key fan-out "
                "cardinality is statically unbounded; the cost envelope is a "
                "lower bound only",
                file=file, symbol=composition.name,
                hint="make producers emit statically-known item names, or "
                     "accept admission on lower bounds",
            )
        )
    if memory_capacity is not None and summary.peak_inflight_bytes > memory_capacity:
        diagnostics.append(
            Diagnostic(
                "COST002", WARNING,
                f"peak in-flight bytes estimate {summary.peak_inflight_bytes} "
                f"exceeds the {memory_capacity}-byte capacity",
                file=file, symbol=composition.name,
                hint="shrink declared memory limits or narrow the widest "
                     "parallel stage",
            )
        )


# -- entry points ------------------------------------------------------------


def analyze_composition(
    composition: Composition,
    registry=None,
    *,
    file: Optional[str] = None,
    size_hints: Optional[dict] = None,
    memory_capacity: Optional[int] = None,
) -> DataflowReport:
    """Run the whole-composition dataflow analysis.

    ``registry`` supplies function binaries for the purity summaries;
    without it only edge-structural checks (CON003 mixing) and the
    default-cost envelope run.  ``size_hints`` maps set names to byte
    estimates for the cost model; ``memory_capacity`` arms COST002.
    """
    report = DataflowReport(composition=composition.name)
    diagnostics = report.diagnostics
    report_cache: dict[str, PurityReport] = {}

    facts: dict[str, _NodeFacts] = {}
    for name in composition.topological_order:
        nf = _NodeFacts(composition.nodes[name])
        if nf.node.kind == "compute":
            nf.report = _function_report(registry, report_cache, nf.node.function)
            if nf.report is not None and nf.report.analyzed:
                writes = nf.report.written_sets
                reads = nf.report.read_sets
                if writes is not None:
                    nf.undeclared_writes = frozenset(
                        writes - nf.declared_out - nf.declared_in
                    )
                    nf.alias_writes = frozenset(writes & nf.declared_in)
                if reads is not None:
                    nf.undeclared_reads = frozenset(
                        reads - nf.declared_in - nf.declared_out
                    )
        facts[name] = nf

    summary, out_card = _build_cost(composition, facts, registry, size_hints)
    report.summary = summary

    reach = _reachability(composition)
    _check_unordered_writes(facts, reach, diagnostics, composition, file)
    _check_unordered_reads(facts, reach, diagnostics, composition, file)
    _check_alias_double_writes(facts, diagnostics, composition, file)
    _check_fanout_collisions(facts, diagnostics, composition, file)
    _check_cardinality(facts, out_card, diagnostics, composition, file)
    _check_aliased_never_written(
        registry, report_cache, diagnostics, composition, file
    )
    _check_cost(summary, diagnostics, composition, file, memory_capacity)
    return report


def cost_summary(
    composition: Composition,
    registry=None,
    *,
    size_hints: Optional[dict] = None,
) -> CompositionCostSummary:
    """Just the static cost envelope (no race/contract diagnostics).

    The dispatcher's admission path and scheduling hints use this —
    it skips the pairwise race sweep, so it stays cheap enough to run
    once per registered composition.
    """
    facts: dict[str, _NodeFacts] = {}
    report_cache: dict[str, PurityReport] = {}
    for name in composition.topological_order:
        nf = _NodeFacts(composition.nodes[name])
        if nf.node.kind == "compute":
            nf.report = _function_report(registry, report_cache, nf.node.function)
        facts[name] = nf
    summary, _out_card = _build_cost(composition, facts, registry, size_hints)
    return summary
