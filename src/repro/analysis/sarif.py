"""SARIF 2.1.0 renderer for lint diagnostics.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI systems ingest for code-scanning annotations.  This
renderer emits the minimal conformant subset: one ``run`` with a
``tool.driver`` carrying the rule table, and one ``result`` per
diagnostic with its ``ruleId``, ``level``, message, location, and the
baseline fingerprint under ``partialFingerprints``.

Kept dependency-free on purpose — the structure is plain dicts and the
conformance surface is pinned by ``tests/analysis/test_sarif.py``.
"""

from __future__ import annotations

import json
from typing import Iterable

from .diagnostics import Diagnostic, ERROR, sort_key

__all__ = ["render_sarif", "RULES", "SARIF_SCHEMA_URI", "SARIF_VERSION"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/dandelion-repro/repro"

# Rule table: every diagnostic code any pass can emit, with a short
# description.  SARIF consumers key annotations off this; a diagnostic
# whose code is missing here still renders (SARIF allows rule-less
# results) but the conformance test keeps this in sync with the passes.
RULES: dict[str, str] = {
    # purity verifier
    "PUR001": "import of a blocked module inside a compute function",
    "PUR002": "attribute reach into a blocked module",
    "PUR003": "call to builtin open() in a compute function",
    "PUR004": "dynamic-execution escape (exec/eval/__import__/compile)",
    "PUR005": "global/nonlocal mutation breaks idempotent retries",
    "PUR006": "generator entry point never executes its body",
    "PUR010": "nondeterminism source not routed through a seeded RNG",
    "PUR090": "source unavailable; bytecode-scan fallback only",
    # composition linter
    "CMP000": "composition source fails to parse or validate",
    "CMP001": "declared output set is never consumed",
    "CMP002": "vertex cannot reach any composition output",
    "CMP003": "each/key fan-out explosion (comm vertex or chained expansion)",
    "CMP004": "nested composition shadows a parent set name",
    "CMP005": "consumed set is provably never written by its producer",
    # determinism self-lint
    "DET000": "source file fails to parse",
    "DET001": "wall-clock call in a hot-path module",
    "DET002": "unseeded RNG use in a hot-path module",
    "DET003": "iteration over a set expression or id()-keyed ordering",
    "DET004": "hot-path class defines __init__ without __slots__",
    "DET005": "environment read makes behavior host-dependent",
    "DET006": "wall-clock function smuggled as a value (uncalled reference)",
    # dataflow analyzer
    "RACE001": "DAG-unordered nodes both write one set outside their interfaces",
    "RACE002": "read of a set only DAG-unordered nodes produce",
    "RACE003": "fan-out instances collide on a constant output item name",
    "RACE004": "function writes its own declared input set (alias double-write)",
    "CON001": "read of a set no vertex on any path produces",
    "CON002": "nested-composition alias resolves to a never-written set",
    "CON003": "item-cardinality mismatch across an each/key boundary",
    "COST001": "declared deadline statically unreachable on the critical path",
    "COST002": "peak in-flight bytes estimate exceeds memory capacity",
    "COST003": "deadline declared but fan-out statically unbounded",
}


def _result(diagnostic: Diagnostic) -> dict:
    level = "error" if diagnostic.severity == ERROR else "warning"
    message = diagnostic.message
    if diagnostic.hint:
        message = f"{message} (hint: {diagnostic.hint})"
    result = {
        "ruleId": diagnostic.code,
        "level": level,
        "message": {"text": message},
        "partialFingerprints": {"reproLintFingerprint/v1": diagnostic.fingerprint},
    }
    if diagnostic.file:
        physical: dict = {
            "artifactLocation": {"uri": diagnostic.file.replace("\\", "/")}
        }
        if diagnostic.line is not None:
            physical["region"] = {"startLine": int(diagnostic.line)}
        result["locations"] = [{"physicalLocation": physical}]
    if diagnostic.symbol:
        result["properties"] = {"symbol": diagnostic.symbol}
    return result


def render_sarif(diagnostics: Iterable[Diagnostic]) -> str:
    """Render diagnostics as a SARIF 2.1.0 log (JSON text)."""
    ordered = sorted(diagnostics, key=sort_key)
    used_codes = sorted({d.code for d in ordered} | set(RULES))
    rules = [
        {
            "id": code,
            "shortDescription": {
                "text": RULES.get(code, "undocumented diagnostic code")
            },
        }
        for code in used_codes
    ]
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": [_result(d) for d in ordered],
            }
        ],
    }
    return json.dumps(log, indent=2)
