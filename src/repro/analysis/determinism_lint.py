"""Determinism self-lint over the reproduction's own source (DET codes).

The repo's north-star invariant since PR 1 is byte-identical experiment
output under ``PYTHONHASHSEED=0``.  Until now that invariant was
protected only by expensive re-run comparisons; this pass guards it
statically by scanning ``src/repro`` for the constructs that have
historically broken it:

- ``DET001`` wall-clock calls (``time.time``/``perf_counter``/
  ``monotonic``/``sleep``, ``datetime.now`` …) — simulation code must
  read virtual time from the Environment.  The bench harness and the
  CLI legitimately measure wall time; those findings are grandfathered
  in the checked-in baseline, not exempted by code;
- ``DET002`` unseeded ``random`` module usage — module-level RNG state
  is shared and seed-order dependent; draw from ``random.Random(seed)``;
- ``DET003`` iteration over a set expression (set literal, set
  comprehension, ``set()``/``frozenset()`` call) or ``id()``-keyed
  sorting — both orderings vary across interpreter runs and leak
  straight into event ordering;
- ``DET004`` a class defining ``__init__`` in a hot-path module
  without ``__slots__`` — PRs 1–2 converted these modules; new classes
  must not regress the conversion;
- ``DET005`` environment reads (``os.environ``/``os.getenv``) — config
  smuggled through the host environment makes runs machine-dependent
  in a way no seed controls;
- ``DET006`` a wall-clock function referenced *without being called*
  (``timer = time.perf_counter``, a ``clock=time.monotonic`` default)
  — smuggling the clock as a value dodges DET001's call-site check
  while importing exactly the same nondeterminism.

Findings carry the enclosing function/class as the symbol, so the
baseline survives unrelated line churn.
"""

from __future__ import annotations

import ast
import os
from typing import Optional

from .diagnostics import Diagnostic, WARNING, ERROR

__all__ = ["lint_self", "lint_source", "iter_self_sources", "HOT_PATH_MODULES"]

# Wall-clock entry points, per module root.
_WALLCLOCK_ATTRS = {
    "time": {
        "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
        "monotonic_ns", "process_time", "process_time_ns", "sleep",
    },
    "datetime": {"now", "utcnow", "today"},
}

# Modules whose classes went through the __slots__ conversion in PRs
# 1–2; new instance-bearing classes here must keep the discipline.
# The repro.sched policy/snapshot layer was born under it: snapshots
# are built and policies consulted on every routed invocation.
HOT_PATH_MODULES = (
    "sim/core.py",
    "sim/cpu.py",
    "sim/resources.py",
    "engines/task.py",
    "dispatcher/dispatcher.py",
    "dispatcher/memory.py",
    "data/context.py",
    "data/items.py",
    "data/lazy.py",
    "sched/snapshots.py",
    "sched/routing.py",
    "engines/throttle.py",
    "cluster/health.py",
    "sched/sandbox.py",
    "sched/scaling.py",
    "sched/cores.py",
    "scenario/spec.py",
    "scenario/engine.py",
    "scenario/kpis.py",
    "scenario/sweep.py",
)

_EXEMPT_BASE_HINTS = ("Error", "Exception", "Warning", "Enum", "Protocol", "ABC")


class _SelfLintPass(ast.NodeVisitor):
    def __init__(self, file: str, *, hot_path: bool):
        self.file = file
        self.hot_path = hot_path
        self.diagnostics: list[Diagnostic] = []
        self.scope: list[str] = []
        # Names bound to the time/datetime/random/os modules in this file.
        self.module_aliases: dict[str, str] = {}
        # Wall-clock/random/environ functions imported by bare name.
        self.bare_wallclock: set[str] = set()
        self.bare_random: set[str] = set()
        self.bare_environ: set[str] = set()
        # Node ids of expressions appearing as the callee of a Call:
        # lets the reference checks distinguish `f()` (DET001's job)
        # from `x = f` (DET006's).
        self._called: set[int] = set()

    # -- helpers ----------------------------------------------------------

    def _symbol(self) -> Optional[str]:
        return ".".join(self.scope) if self.scope else "<module>"

    def _diag(self, code: str, severity: str, message: str, node: ast.AST,
              hint: Optional[str] = None) -> None:
        self.diagnostics.append(
            Diagnostic(
                code=code, severity=severity, message=message,
                file=self.file, line=getattr(node, "lineno", None),
                symbol=self._symbol(), hint=hint,
            )
        )

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("time", "datetime", "random", "os"):
                self.module_aliases[alias.asname or root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _WALLCLOCK_ATTRS:
            for alias in node.names:
                if alias.name in _WALLCLOCK_ATTRS[root]:
                    self.bare_wallclock.add(alias.asname or alias.name)
        if root == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self.bare_random.add(alias.asname or alias.name)
        if root == "os":
            for alias in node.names:
                if alias.name in ("environ", "getenv"):
                    self.bare_environ.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- scopes -----------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.hot_path:
            self._check_slots(node)
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    # -- checks -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        self._called.add(id(func))
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            root = self.module_aliases.get(func.value.id)
            if root in _WALLCLOCK_ATTRS and func.attr in _WALLCLOCK_ATTRS[root]:
                self._diag(
                    "DET001", ERROR,
                    f"wall-clock call {root}.{func.attr}() in simulation code",
                    node,
                    hint="read virtual time from the Environment; wall clocks "
                         "belong only in the bench harness (baseline them)",
                )
            elif root == "random":
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        self._diag(
                            "DET002", ERROR,
                            "random.Random() constructed without a seed",
                            node,
                            hint="pass an explicit seed so runs are reproducible",
                        )
                else:
                    self._diag(
                        "DET002", ERROR,
                        f"module-level random.{func.attr}() uses shared unseeded "
                        "RNG state",
                        node,
                        hint="draw from a random.Random(seed) instance instead",
                    )
        elif isinstance(func, ast.Name):
            if func.id in self.bare_wallclock:
                self._diag(
                    "DET001", ERROR,
                    f"wall-clock call {func.id}() in simulation code",
                    node,
                )
            elif func.id in self.bare_random:
                self._diag(
                    "DET002", ERROR,
                    f"module-level random function {func.id}() uses shared "
                    "unseeded RNG state",
                    node,
                )
        self._check_id_ordering(node)
        self.generic_visit(node)

    def _check_id_ordering(self, node: ast.Call) -> None:
        func = node.func
        is_sort = (
            (isinstance(func, ast.Name) and func.id == "sorted")
            or (isinstance(func, ast.Attribute) and func.attr == "sort")
        )
        if not is_sort:
            return
        for keyword in node.keywords:
            if (
                keyword.arg == "key"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "id"
            ):
                self._diag(
                    "DET003", ERROR,
                    "id()-keyed sort: object addresses vary across runs",
                    node,
                    hint="sort by a stable field (name, sequence number)",
                )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name):
            root = self.module_aliases.get(node.value.id)
            if root == "os" and node.attr in ("environ", "getenv"):
                self._diag(
                    "DET005", ERROR,
                    f"environment read os.{node.attr}: behavior becomes "
                    "host-dependent",
                    node,
                    hint="thread configuration through explicit parameters "
                         "or CLI flags; no seed controls the environment",
                )
            elif (
                root in _WALLCLOCK_ATTRS
                and node.attr in _WALLCLOCK_ATTRS[root]
                and id(node) not in self._called
            ):
                self._diag(
                    "DET006", ERROR,
                    f"wall-clock function {root}.{node.attr} referenced "
                    "without a call: the clock is smuggled as a value",
                    node,
                    hint="pass a seeded/virtual clock explicitly; aliasing "
                         "the wall clock dodges the DET001 call-site check",
                )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if node.id in self.bare_environ:
                self._diag(
                    "DET005", ERROR,
                    f"environment read via {node.id}: behavior becomes "
                    "host-dependent",
                    node,
                    hint="thread configuration through explicit parameters "
                         "or CLI flags; no seed controls the environment",
                )
            elif node.id in self.bare_wallclock and id(node) not in self._called:
                self._diag(
                    "DET006", ERROR,
                    f"wall-clock function {node.id} referenced without a "
                    "call: the clock is smuggled as a value",
                    node,
                )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def _check_set_iteration(self, iter_node: ast.AST) -> None:
        unsorted_set = isinstance(iter_node, (ast.Set, ast.SetComp)) or (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        )
        if unsorted_set:
            self._diag(
                "DET003", ERROR,
                "iteration over a set expression: element order depends on "
                "PYTHONHASHSEED",
                iter_node,
                hint="wrap in sorted(...) before iterating when order can "
                     "reach event scheduling or output",
            )

    def _check_slots(self, node: ast.ClassDef) -> None:
        has_init = any(
            isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            for stmt in node.body
        )
        if not has_init:
            return
        for decorator in node.decorator_list:
            text = ast.dump(decorator)
            if "dataclass" in text:
                return
        for base in node.bases:
            rendered = ast.dump(base)
            if any(hint in rendered for hint in _EXEMPT_BASE_HINTS):
                return
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return
        self._diag(
            "DET004", WARNING,
            f"hot-path class {node.name!r} defines __init__ without __slots__",
            node,
            hint="PRs 1-2 converted this module; declare __slots__ to keep "
                 "per-instance dict allocation off the hot path",
        )


def lint_source(source: str, file: str, *, hot_path: bool = False) -> list[Diagnostic]:
    """Lint one Python source string (exposed for tests)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                "DET000", ERROR, f"syntax error: {exc.msg}",
                file=file, line=exc.lineno, symbol="<module>",
            )
        ]
    visitor = _SelfLintPass(file, hot_path=hot_path)
    visitor.visit(tree)
    return visitor.diagnostics


def iter_self_sources(root: Optional[str] = None):
    """Yield ``(reported_path, source, hot_path)`` per package file.

    File paths are package-relative (``src/repro/...``) so baselines —
    and the incremental cache keyed off them — are stable across
    checkouts and working directories.
    """
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, root).replace(os.sep, "/")
            reported = f"src/repro/{relative}"
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            yield reported, source, relative in HOT_PATH_MODULES


def lint_self(root: Optional[str] = None) -> list[Diagnostic]:
    """Lint every Python file under ``src/repro`` (or ``root``)."""
    diagnostics: list[Diagnostic] = []
    for reported, source, hot_path in iter_self_sources(root):
        diagnostics.extend(lint_source(source, reported, hot_path=hot_path))
    return diagnostics
