"""Shared diagnostics core for the static-analysis passes.

Every pass — the purity verifier, the composition linter, the
determinism self-lint — reports findings as :class:`Diagnostic`
records: a stable code (``PUR``/``CMP``/``DET`` + number), a severity,
a location (file, line, enclosing symbol), a message, and an optional
fix hint.  Renderers produce the two CLI output formats, and
:class:`Baseline` implements suppression of grandfathered findings.

Baselines are keyed by *fingerprint* — ``code::file::symbol`` with a
count — rather than line numbers, so unrelated edits to a file do not
invalidate them.  A finding is "new" when its fingerprint is absent
from the baseline, or appears more times than the baseline allows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "Diagnostic",
    "Baseline",
    "ERROR",
    "WARNING",
    "render_text",
    "render_json",
]

# Severities, in increasing order of, well, severity.
WARNING = "warning"
ERROR = "error"
_SEVERITY_ORDER = {WARNING: 0, ERROR: 1}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    code: str                       # e.g. "PUR001"
    severity: str                   # "error" | "warning"
    message: str
    file: Optional[str] = None      # repo-relative path when known
    line: Optional[int] = None      # 1-based line within file
    symbol: Optional[str] = None    # enclosing function/composition/class
    hint: Optional[str] = None      # how to fix or silence it

    def __post_init__(self):
        if self.severity not in _SEVERITY_ORDER:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by baseline suppression."""
        return f"{self.code}::{self.file or '<none>'}::{self.symbol or '<none>'}"

    def location(self) -> str:
        parts = []
        if self.file:
            parts.append(self.file)
        if self.line is not None:
            parts.append(str(self.line))
        where = ":".join(parts) if parts else "<unknown>"
        if self.symbol:
            where += f" ({self.symbol})"
        return where

    def to_dict(self) -> dict:
        """Stable-key mapping (cache entries, JSON report rows)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "symbol": self.symbol,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Diagnostic":
        return cls(
            code=str(payload["code"]),
            severity=str(payload["severity"]),
            message=str(payload["message"]),
            file=payload.get("file"),
            line=payload.get("line"),
            symbol=payload.get("symbol"),
            hint=payload.get("hint"),
        )


def sort_key(diagnostic: Diagnostic):
    """Deterministic report order: file, line, code — errors first on ties."""
    return (
        diagnostic.file or "",
        diagnostic.line or 0,
        -_SEVERITY_ORDER[diagnostic.severity],
        diagnostic.code,
        diagnostic.message,
    )


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    ordered = sorted(diagnostics, key=sort_key)
    lines = []
    for diag in ordered:
        lines.append(f"{diag.location()}: {diag.severity} {diag.code}: {diag.message}")
        if diag.hint:
            lines.append(f"    hint: {diag.hint}")
    errors = sum(1 for d in ordered if d.severity == ERROR)
    warnings = len(ordered) - errors
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    ordered = sorted(diagnostics, key=sort_key)
    payload = {
        "schema": "repro-lint/v1",
        "errors": sum(1 for d in ordered if d.severity == ERROR),
        "warnings": sum(1 for d in ordered if d.severity == WARNING),
        "diagnostics": [
            dict(d.to_dict(), fingerprint=d.fingerprint) for d in ordered
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


@dataclass
class Baseline:
    """Grandfathered findings, loaded from / written to a JSON file.

    The file maps fingerprints to allowed occurrence counts::

        {
          "schema": "repro-lint-baseline/v1",
          "suppressions": {"DET001::src/repro/__main__.py::_run_one": 2}
        }

    Suppression is per-fingerprint with a budget: if a file/symbol pair
    grows *more* findings of the same code than the baseline records,
    the extras surface as new.
    """

    suppressions: dict[str, int] = field(default_factory=dict)

    SCHEMA = "repro-lint-baseline/v1"

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("schema") != cls.SCHEMA:
            raise ValueError(f"{path}: not a {cls.SCHEMA} baseline file")
        suppressions = payload.get("suppressions", {})
        if not isinstance(suppressions, dict):
            raise ValueError(f"{path}: suppressions must be an object")
        return cls({str(k): int(v) for k, v in suppressions.items()})

    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        suppressions: dict[str, int] = {}
        for diag in diagnostics:
            suppressions[diag.fingerprint] = suppressions.get(diag.fingerprint, 0) + 1
        return cls(suppressions)

    def write(self, path: str) -> None:
        payload = {
            "schema": self.SCHEMA,
            "suppressions": dict(sorted(self.suppressions.items())),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    def filter(
        self, diagnostics: Iterable[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """Split findings into (new, suppressed).

        Findings sharing a fingerprint consume the baseline budget in
        report order, so the split is deterministic.
        """
        budget = dict(self.suppressions)
        new: list[Diagnostic] = []
        suppressed: list[Diagnostic] = []
        for diag in sorted(diagnostics, key=sort_key):
            remaining = budget.get(diag.fingerprint, 0)
            if remaining > 0:
                budget[diag.fingerprint] = remaining - 1
                suppressed.append(diag)
            else:
                new.append(diag)
        return new, suppressed

    def stale_fingerprints(
        self,
        diagnostics: Iterable[Diagnostic],
        *,
        code_prefixes: Optional[tuple[str, ...]] = None,
    ) -> list[str]:
        """Baseline entries matching *no* current finding at all.

        A stale entry is dead weight that silently re-admits a finding
        the moment someone reintroduces it, so strict mode treats
        staleness as a failure (see the runner).  ``code_prefixes``
        restricts the sweep to fingerprints whose code belongs to the
        passes that actually ran — a scoped ``lint --self`` must not
        declare the purity pass's suppressions stale.
        """
        observed = {diag.fingerprint for diag in diagnostics}
        stale = []
        for fingerprint in sorted(self.suppressions):
            if code_prefixes is not None:
                code = fingerprint.split("::", 1)[0]
                if not code.startswith(code_prefixes):
                    continue
            if fingerprint not in observed:
                stale.append(fingerprint)
        return stale
