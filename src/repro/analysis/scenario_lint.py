"""SCN — static validation of scenario spec files.

The `repro.scenario` harness turns "add a scenario" into a TOML file,
which moves a class of mistakes out of Python and into data: a typo'd
routing policy, a backend that doesn't exist, a deadline the workload
statically cannot meet.  This pass catches them before a spec burns
simulation time (or worse, silently runs a default), the same way the
PUR/CMP passes guard functions and compositions:

====== ======== =====================================================
code   severity meaning
====== ======== =====================================================
SCN001 error    spec fails to parse or validate (TOML syntax, unknown
                key, out-of-range value)
SCN002 error    unknown routing policy (`repro.sched.ROUTING_POLICIES`)
SCN003 error    unknown core policy (`repro.sched.CORE_POLICIES`)
SCN004 error    unknown autoscaler (`repro.sched.SCALING_POLICIES`)
SCN005 error    unknown backend or machine profile
SCN006 warning  no explicit ``seed`` — the run is still deterministic,
                but the spec doesn't *say* which stream it pins
SCN007 error    infeasible deadline: ``faults.deadline_seconds`` is
                below the workload's static critical path (the PR 9
                cost model, :func:`repro.analysis.dataflow.cost_summary`)
====== ======== =====================================================

The pass runs over every bundled spec by default plus any ``*.toml``
paths given on the lint command line; it is wired into ``python -m
repro lint`` as the ``scenarios`` pass (``--scenarios`` /
``--only scenarios``).
"""

from __future__ import annotations

from .diagnostics import Diagnostic, ERROR, WARNING

__all__ = ["lint_scenario_text", "lint_scenario_path", "iter_bundled_specs"]


def iter_bundled_specs():
    """``(reported_path, text)`` for every bundled scenario spec."""
    import os

    from ..scenario.spec import bundled_specs

    for name, path in bundled_specs().items():
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        reported = "/".join(
            ["src", "repro", "scenario", "specs", os.path.basename(path)]
        )
        yield reported, text


def lint_scenario_path(path: str) -> list:
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    import os

    return lint_scenario_text(text, path.replace(os.sep, "/"))


def lint_scenario_text(text: str, file: str) -> list:
    """Lint one spec file's text; returns :class:`Diagnostic` records."""
    from ..scenario.spec import SpecError, parse_toml, scenario_from_dict

    try:
        payload = parse_toml(text)
    except SpecError as exc:
        return [Diagnostic(
            code="SCN001", severity=ERROR, message=str(exc), file=file,
            symbol="<spec>",
            hint="fix the TOML syntax; see docs/scenarios.md for the schema",
        )]
    diagnostics = []
    if isinstance(payload, dict) and "seed" not in payload:
        diagnostics.append(Diagnostic(
            code="SCN006", severity=WARNING,
            message="spec does not pin an explicit seed "
                    "(defaults to 0; determinism holds but is implicit)",
            file=file, symbol="<spec>",
            hint="add `seed = <int>` at the top level",
        ))
    try:
        spec = scenario_from_dict(payload)
    except SpecError as exc:
        diagnostics.append(Diagnostic(
            code="SCN001", severity=ERROR, message=str(exc), file=file,
            symbol="<spec>",
            hint="see docs/scenarios.md for the spec schema",
        ))
        return diagnostics
    diagnostics.extend(_name_diagnostics(spec, file))
    deadline_diagnostic = _deadline_diagnostic(spec, file)
    if deadline_diagnostic is not None:
        diagnostics.append(deadline_diagnostic)
    return diagnostics


def _name_diagnostics(spec, file: str) -> list:
    from ..scenario.spec import validate_names

    hints = {
        "SCN002": "pick a policy from repro.sched.ROUTING_POLICIES",
        "SCN003": "pick a policy from repro.sched.CORE_POLICIES",
        "SCN004": "pick a policy from repro.sched.SCALING_POLICIES",
        "SCN005": "pick a backend/machine from repro.backends",
    }
    return [
        Diagnostic(
            code=code, severity=ERROR, message=message, file=file,
            symbol=spec.name, hint=hints.get(code),
        )
        for code, message in validate_names(spec)
    ]


def _deadline_diagnostic(spec, file: str):
    """SCN007 when the deadline is below the static critical path."""
    if spec.faults.deadline_seconds is None or spec.trace.kind != "synthetic":
        return None
    from ..composition.dsl import parse_composition
    from ..composition.registry import Registry
    from ..scenario.engine import build_workload
    from .dataflow import cost_summary

    registry = Registry()
    worst_path_seconds = 0.0
    # Apps share one workload shape today, but cost each app's
    # composition anyway: the bound must keep holding if per-app
    # shapes diverge.
    for binary, dsl in build_workload(spec):
        registry.register_function(binary)
        composition = parse_composition(dsl, library=registry.compositions)
        summary = cost_summary(composition, registry)
        worst_path_seconds = max(worst_path_seconds, summary.critical_path_seconds)
    if spec.faults.deadline_seconds < worst_path_seconds:
        return Diagnostic(
            code="SCN007", severity=ERROR,
            message=(
                f"faults.deadline_seconds = {spec.faults.deadline_seconds:g} "
                f"is below the workload's static critical path "
                f"({worst_path_seconds:g}s): every invocation times out"
            ),
            file=file, symbol=spec.name,
            hint="raise the deadline above the critical path, or shrink "
                 "workload.compute_seconds",
        )
    return None
