"""Static purity verification of compute callables (PUR codes).

The dynamic guard (:mod:`repro.functions.purity`) terminates a compute
function the moment it touches a blocked operation — *after* the
invocation has been admitted, scheduled, and charged a memory context.
This pass proves the same contract at registration time by walking the
callable's AST:

- ``PUR001`` import of a blocked module inside the function;
- ``PUR002`` attribute reach into a blocked module (``os.system``,
  ``socket.socket``, ``threading.Thread`` …) via a module-level import;
- ``PUR003`` call to the builtin ``open``;
- ``PUR004`` dynamic-execution escape (``exec``/``eval``/``__import__``/
  ``compile``);
- ``PUR005`` ``global``/``nonlocal`` mutation (breaks idempotent
  retries, §6.1);
- ``PUR006`` generator entry point (a ``yield`` would make the harness
  return without running the body — compute functions run to
  completion);
- ``PUR010`` nondeterminism source (``time``/``random``/``datetime``/
  ``secrets``/``uuid``) not routed through a seeded RNG — warning
  severity, because it breaks reproducibility rather than isolation;
- ``PUR090`` source unavailable (C callable, interactively defined) —
  the pass falls back to a bytecode-name scan and reports what it can.

Calls into *same-module* helper functions are followed transitively
(bounded depth, cycle-safe), so the common "entry point delegates to a
private helper" shape is covered.  Cross-module calls into the trusted
SDK (:mod:`repro.functions.sdk`) are modelled precisely enough to build
the *write summary*: the set of output-set names the function provably
writes, consumed by the composition linter's never-written-set check.
"""

from __future__ import annotations

import ast
import inspect
import os
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Optional

from .diagnostics import Diagnostic, ERROR, WARNING

__all__ = [
    "verify_purity",
    "PurityReport",
    "PurityWarning",
    "BLOCKED_MODULES",
    "NONDETERMINISM_MODULES",
]


class PurityWarning(UserWarning):
    """Emitted when ``verify="warn"`` registration finds violations."""


# Modules whose mere reachability from a compute function means the
# function can escape the pure-compute contract.  ``pathlib`` is here
# for its I/O surface (``Path.open``/``read_text``/``unlink``), which
# the dynamic guard also stubs.
BLOCKED_MODULES = frozenset(
    {
        "os",
        "io",
        "socket",
        "subprocess",
        "threading",
        "multiprocessing",
        "shutil",
        "ctypes",
        "signal",
        "pathlib",
    }
)

# Sources of nondeterminism: allowed only through a seeded RNG (the
# simulation's ``random.Random(seed)`` discipline).
NONDETERMINISM_MODULES = frozenset({"time", "random", "datetime", "secrets", "uuid"})

_DYNAMIC_EXEC_BUILTINS = frozenset({"exec", "eval", "__import__", "compile"})

# SDK helpers that write outputs; second positional argument is the set.
_SDK_WRITERS = frozenset({"write_item"})
# SDK helpers that read an input set; second positional argument is the set.
_SDK_READERS = frozenset({"read_items", "read_all_bytes"})
# SDK helpers known not to write (safe to hand the vfs to).
_SDK_SAFE = frozenset({"read_items", "read_all_bytes", "parse_http_response_item",
                       "parse_http_request_item", "format_http_request"})
_VFS_WRITE_METHODS = frozenset({"write_bytes", "write_text"})
_VFS_READ_METHODS = frozenset({"read_bytes", "read_text", "listdir", "exists"})

_MAX_DEPTH = 8


@dataclass
class PurityReport:
    """Outcome of statically verifying one compute callable."""

    name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    # Output-set names the function provably writes; ``None`` when the
    # analysis saw a write it could not resolve (dynamic path, vfs
    # escaping into un-analyzed code), i.e. the summary is not trusted.
    written_sets: Optional[frozenset[str]] = frozenset()
    # Input-set names the function provably reads (vfs reads under
    # ``/in/<set>/...``, ``listdir``, and the SDK read helpers); the
    # same ``None``-on-doubt discipline as ``written_sets``.
    read_sets: Optional[frozenset[str]] = frozenset()
    # Per written set: the constant item names written into it, or
    # ``None`` when any item name in that set is dynamic.  The whole
    # mapping is ``None`` when the write summary itself is untrusted.
    written_items: Optional[dict] = field(default_factory=dict)
    analyzed: bool = True

    @property
    def ok(self) -> bool:
        return not any(d.severity == ERROR for d in self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    def distrust_summaries(self) -> None:
        """Discard every dataflow summary (never guess, §4.1)."""
        self.written_sets = None
        self.read_sets = None
        self.written_items = None

    def record_write(self, set_name: str, item_name: Optional[str]) -> None:
        """Note a resolved write of ``set_name`` (item may be dynamic)."""
        if self.written_sets is not None:
            self.written_sets = frozenset(self.written_sets | {set_name})
        if self.written_items is None:
            return
        if item_name is None:
            self.written_items[set_name] = None
        elif self.written_items.get(set_name, frozenset()) is not None:
            self.written_items[set_name] = frozenset(
                self.written_items.get(set_name) or frozenset()
            ) | {item_name}

    def record_read(self, set_name: str) -> None:
        if self.read_sets is not None:
            self.read_sets = frozenset(self.read_sets | {set_name})


def _relative_file(func) -> Optional[str]:
    try:
        path = inspect.getsourcefile(func)
    except TypeError:
        return None
    if path is None:
        # Sourced functions carry a pseudo-filename like "<name>".
        code = getattr(func, "__code__", None)
        return getattr(code, "co_filename", None)
    # Normalize repo files to a checkout-independent form so baseline
    # fingerprints survive moves of the working directory.
    marker = os.sep + os.path.join("src", "repro") + os.sep
    index = path.find(marker)
    if index >= 0:
        return path[index + 1:].replace(os.sep, "/")
    return path


def _resolve(name: str, func) -> object:
    """What a bare name refers to at call time (globals, then builtins)."""
    func_globals = getattr(func, "__globals__", {})
    if name in func_globals:
        return func_globals[name]
    builtins_ns = func_globals.get("__builtins__", {})
    if isinstance(builtins_ns, dict):
        return builtins_ns.get(name)
    return getattr(builtins_ns, name, None)


class _FunctionPass(ast.NodeVisitor):
    """One AST walk over one function definition."""

    def __init__(self, report: PurityReport, func, node: ast.AST, *,
                 file: Optional[str], symbol: str, is_entry: bool):
        self.report = report
        self.func = func
        self.node = node
        self.file = file
        self.symbol = symbol
        self.is_entry = is_entry
        # Names bound locally (params, assignments, local imports):
        # these shadow module globals for resolution purposes.
        self.local_names: set[str] = set()
        code = getattr(func, "__code__", None)
        if code is not None:
            self.local_names.update(code.co_varnames)
        self.vfs_param: Optional[str] = None
        args = getattr(node, "args", None)
        if args is not None and args.args:
            self.vfs_param = args.args[0].arg
        # Same-module callees to follow transitively.
        self.callees: list[Callable] = []

    # -- helpers ----------------------------------------------------------

    def _diag(self, code: str, severity: str, message: str, node: ast.AST,
              hint: Optional[str] = None) -> None:
        self.report.diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                file=self.file,
                line=getattr(node, "lineno", None),
                symbol=self.symbol,
                hint=hint,
            )
        )

    def _module_for(self, name: str) -> Optional[str]:
        """Module name a bare identifier resolves to, if it is a module."""
        if name in self.local_names:
            return None
        value = _resolve(name, self.func)
        if inspect.ismodule(value):
            return value.__name__.split(".")[0]
        return None

    # -- visitors ---------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            bound = alias.asname or root
            self.local_names.add(bound)
            if root in BLOCKED_MODULES:
                self._diag(
                    "PUR001", ERROR,
                    f"import of blocked module {alias.name!r} in compute function",
                    node,
                    hint="compute functions cannot reach the OS; use the virtual "
                         "filesystem and communication functions",
                )
            elif root in NONDETERMINISM_MODULES:
                self._diag(
                    "PUR010", WARNING,
                    f"import of nondeterminism source {alias.name!r}",
                    node,
                    hint="draw randomness from a seeded random.Random and model "
                         "time in simulation, not wall clocks",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        for alias in node.names:
            self.local_names.add(alias.asname or alias.name)
        if root in BLOCKED_MODULES:
            self._diag(
                "PUR001", ERROR,
                f"import from blocked module {node.module!r} in compute function",
                node,
            )
        elif root in NONDETERMINISM_MODULES:
            self._diag(
                "PUR010", WARNING,
                f"import from nondeterminism source {node.module!r}",
                node,
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name):
            module = self._module_for(node.value.id)
            if module in BLOCKED_MODULES:
                self._diag(
                    "PUR002", ERROR,
                    f"compute function reaches blocked operation "
                    f"{module}.{node.attr}",
                    node,
                    hint="the dynamic guard would terminate this at run time; "
                         "route data through the vfs instead",
                )
            elif module in NONDETERMINISM_MODULES:
                if not (module == "random" and node.attr == "Random"):
                    self._diag(
                        "PUR010", WARNING,
                        f"nondeterminism source {module}.{node.attr} not routed "
                        "through a seeded RNG",
                        node,
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func_node = node.func
        if isinstance(func_node, ast.Name):
            name = func_node.id
            if name not in self.local_names:
                if name == "open":
                    self._diag(
                        "PUR003", ERROR,
                        "call to builtin open() in compute function",
                        node,
                        hint="read inputs via vfs.read_bytes('/in/<set>/<item>')",
                    )
                elif name in _DYNAMIC_EXEC_BUILTINS and callable(_resolve(name, self.func)):
                    self._diag(
                        "PUR004", ERROR,
                        f"dynamic execution via {name}() defeats static verification",
                        node,
                    )
            if name in self.local_names:
                # A locally-bound callable is opaque; if the vfs flows
                # into it the write summary can no longer be trusted.
                self._maybe_escape_via_args(node)
                self.generic_visit(node)
                return
            target = _resolve(name, self.func)
            if inspect.isfunction(target):
                if target.__module__ == self.func.__module__:
                    self.callees.append(target)
                elif getattr(target, "__name__", "") in _SDK_WRITERS:
                    self._record_sdk_write(node)
                elif getattr(target, "__name__", "") in _SDK_READERS:
                    self._record_sdk_read(node)
                elif getattr(target, "__name__", "") not in _SDK_SAFE:
                    self._maybe_escape_via_args(node)
            elif target is not None and not inspect.isclass(target) and callable(target):
                # Includes builtins: getattr(vfs, ...)/map(f, vfs) can
                # leak the handle into unanalyzed code.
                self._maybe_escape_via_args(node)
        elif isinstance(func_node, ast.Attribute):
            self._record_method_call(node, func_node)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._diag(
            "PUR005", ERROR,
            f"global mutation of {', '.join(node.names)} breaks idempotent retries",
            node,
            hint="compute functions must be pure: outputs only through the vfs",
        )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._diag(
            "PUR005", ERROR,
            f"nonlocal mutation of {', '.join(node.names)} breaks idempotent retries",
            node,
        )

    def visit_Yield(self, node: ast.Yield) -> None:
        self._flag_generator(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._flag_generator(node)

    def _flag_generator(self, node: ast.AST) -> None:
        # Only the entry point's own body matters: a generator entry
        # point never runs (the harness calls it once and discards the
        # suspended generator), which silently produces no outputs.
        if self.is_entry:
            self._diag(
                "PUR006", ERROR,
                "entry point is a generator: the body would never execute "
                "(compute functions run to completion)",
                node,
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.node:
            self.local_names.add(node.name)
            return  # nested defs are analyzed only if called (conservative)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Lambdas share the enclosing scope; walk their bodies.
        self.generic_visit(node)

    # -- write-summary extraction ----------------------------------------

    def _record_method_call(self, node: ast.Call, func_node: ast.Attribute) -> None:
        method = func_node.attr
        if method in _VFS_WRITE_METHODS:
            path = node.args[0] if node.args else None
            set_name, item_name = _set_item_from_path(path, "out")
            if set_name is not None:
                self.report.record_write(set_name, item_name)
            else:
                # Dynamic path: neither the write nor the item summary
                # can be trusted any longer.
                self.report.written_sets = None
                self.report.written_items = None
        elif method in _VFS_READ_METHODS:
            path = node.args[0] if node.args else None
            set_name, _item = _set_item_from_path(path, "in")
            if set_name is not None:
                self.report.record_read(set_name)
            elif _set_item_from_path(path, "out")[0] is None:
                # Not a resolvable /in or /out path: the read summary
                # is no longer complete (reads of /out are harmless).
                self.report.read_sets = None
        else:
            self._maybe_escape_via_args(node)

    def _record_sdk_write(self, node: ast.Call) -> None:
        set_arg = node.args[1] if len(node.args) > 1 else None
        item_arg = node.args[2] if len(node.args) > 2 else None
        if isinstance(set_arg, ast.Constant) and isinstance(set_arg.value, str):
            if isinstance(item_arg, ast.Constant) and isinstance(item_arg.value, str):
                self.report.record_write(set_arg.value, item_arg.value)
            else:
                self.report.record_write(set_arg.value, None)
        else:
            self.report.written_sets = None
            self.report.written_items = None

    def _record_sdk_read(self, node: ast.Call) -> None:
        set_arg = node.args[1] if len(node.args) > 1 else None
        if isinstance(set_arg, ast.Constant) and isinstance(set_arg.value, str):
            self.report.record_read(set_arg.value)
        else:
            self.report.read_sets = None

    def _maybe_escape_via_args(self, node: ast.Call) -> None:
        # The vfs handle flowing into code we do not analyze means the
        # dataflow summaries can no longer be trusted (purity
        # diagnostics stay valid — the callee is either same-module,
        # and followed, or trusted platform code).
        if self.vfs_param is None:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name) and arg.id == self.vfs_param:
                self.report.distrust_summaries()
                return


def _set_item_from_path(path_node, tree: str) -> tuple[Optional[str], Optional[str]]:
    """Resolve ``/<tree>/<set>/<item>`` from a constant-enough path node.

    Returns ``(set_name, item_name)``; ``item_name`` is ``None`` when
    the item segment is dynamic or absent, ``(None, None)`` when even
    the set segment cannot be resolved.
    """
    rendered = None
    if isinstance(path_node, ast.Constant) and isinstance(path_node.value, str):
        rendered = path_node.value
    elif isinstance(path_node, ast.JoinedStr):
        # f"/out/{set}/..." with a literal set segment is resolvable.
        rendered = ""
        for piece in path_node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                rendered += piece.value
            else:
                rendered += "\x00"
    if rendered is None:
        return None, None
    parts = rendered.split("/")
    if len(parts) < 3 or parts[0] != "" or parts[1] != tree or "\x00" in parts[2]:
        return None, None
    item = None
    if len(parts) >= 4 and parts[3] and "\x00" not in parts[3]:
        item = parts[3]
    return parts[2], item


def _out_set_from_path(path_node) -> Optional[str]:
    """Back-compat shim: the output-set segment of a write path."""
    return _set_item_from_path(path_node, "out")[0]


def _function_ast(func) -> Optional[ast.AST]:
    stashed = getattr(func, "__dandelion_source__", None)
    if stashed is not None:
        # Source-registered function (python_function_from_source): the
        # whole submitted module is stashed; pick the matching def.
        try:
            tree = ast.parse(stashed)
        except SyntaxError:
            return None
        for node in tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == func.__name__
            ):
                return node
        return None
    try:
        source = textwrap.dedent(inspect.getsource(func))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    # ``getsource`` of a decorated function returns the decorated def;
    # the first function definition in the parse is the one we want.
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Re-anchor parse-local line numbers to the source file
            # (the dedented snippet starts at the decorator line).
            ast.increment_lineno(node, _first_line(func) - 1)
            return node
    return None


def _first_line(func) -> int:
    try:
        return inspect.getsourcelines(func)[1]
    except (OSError, TypeError):
        return 1


def _bytecode_fallback(report: PurityReport, func, file: Optional[str]) -> None:
    """No source: scan the code object's names for blocked reaches."""
    code = getattr(func, "__code__", None)
    if code is None:
        report.analyzed = False
        report.distrust_summaries()
        report.diagnostics.append(
            Diagnostic(
                "PUR090", WARNING,
                f"cannot analyze {report.name!r}: no Python source or bytecode",
                file=file, symbol=report.name,
                hint="register from source (python_function_from_source) for "
                     "static verification",
            )
        )
        return
    report.distrust_summaries()  # cannot prove dataflow without an AST
    for name in code.co_names:
        resolved = _resolve(name, func)
        if inspect.ismodule(resolved):
            root = resolved.__name__.split(".")[0]
            if root in BLOCKED_MODULES:
                report.diagnostics.append(
                    Diagnostic(
                        "PUR002", ERROR,
                        f"compute function references blocked module {root!r} "
                        "(bytecode scan)",
                        file=file, symbol=report.name,
                    )
                )
        elif name == "open" and "open" not in code.co_varnames:
            report.diagnostics.append(
                Diagnostic(
                    "PUR003", ERROR,
                    "compute function references builtin open() (bytecode scan)",
                    file=file, symbol=report.name,
                )
            )


def verify_purity(target) -> PurityReport:
    """Statically verify a compute callable or FunctionBinary.

    Returns a :class:`PurityReport`; ``report.ok`` is False when any
    error-severity finding exists.  Same-module helpers called by the
    entry point are followed transitively.
    """
    entry = getattr(target, "entry_point", target)
    name = getattr(target, "name", None) or getattr(entry, "__name__", "<callable>")
    entry = inspect.unwrap(entry)
    report = PurityReport(name=name)
    file = _relative_file(entry)

    node = _function_ast(entry)
    if node is None:
        _bytecode_fallback(report, entry, file)
        return report

    seen: set[object] = set()
    queue: list[tuple[Callable, ast.AST, int, bool]] = [(entry, node, 0, True)]
    seen.add(entry)
    while queue:
        func, func_node, depth, is_entry = queue.pop(0)
        symbol = name if is_entry else f"{name} -> {func.__name__}"
        visitor = _FunctionPass(
            report, func, func_node,
            file=_relative_file(func), symbol=symbol, is_entry=is_entry,
        )
        visitor.visit(func_node)
        if depth >= _MAX_DEPTH:
            if visitor.callees:
                report.distrust_summaries()  # unexplored calls may touch sets
            continue
        for callee in visitor.callees:
            callee = inspect.unwrap(callee)
            if callee in seen:
                continue
            seen.add(callee)
            callee_node = _function_ast(callee)
            if callee_node is None:
                report.distrust_summaries()
                continue
            queue.append((callee, callee_node, depth + 1, False))
    return report
