"""Incremental analysis cache keyed by content fingerprints.

Re-linting an unchanged repo should be near-instant: the passes are
pure functions of their inputs (file text, function source, canonical
composition DSL), so their diagnostics can be replayed from a cache
keyed by a sha256 fingerprint of those inputs.  Each pass salts its
fingerprints with a *pass version* — bumping the version constant when
a pass's rules change invalidates exactly that pass's entries.

The cache file is JSON (``.repro_lint_cache.json`` by default,
gitignored); a corrupt, missing, or wrong-schema file degrades to an
empty cache rather than failing the lint.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from .diagnostics import Diagnostic

__all__ = ["AnalysisCache", "fingerprint_text", "DEFAULT_CACHE_PATH"]

DEFAULT_CACHE_PATH = ".repro_lint_cache.json"

_SCHEMA = "repro-lint-cache/v1"

# Bump these when a pass's rules change: stale cached diagnostics from
# an older rule set must not be replayed.
PASS_VERSIONS = {
    "self": "det-v2",        # DET000-006
    "functions": "pur-v2",   # PUR codes + read/write/item summaries
    "compositions": "cmp-v2",  # CMP codes + relined CMP000
    "dataflow": "flow-v1",   # RACE/CON/COST
}


def fingerprint_text(*parts: str) -> str:
    """sha256 over the concatenated parts (null-separated)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()


class AnalysisCache:
    """Fingerprint-keyed replay store for pass diagnostics.

    Entries map ``"<pass>::<key>"`` to ``{"fingerprint", "diagnostics"}``.
    :meth:`get` returns the replayed diagnostics only when the stored
    fingerprint matches the current one; :meth:`put` overwrites the
    entry.  ``hits``/``misses`` feed the bench harness.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if path is not None and os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return  # unreadable/corrupt: start empty
        if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = {
                str(key): value
                for key, value in entries.items()
                if isinstance(value, dict)
            }

    @staticmethod
    def _slot(pass_name: str, key: str) -> str:
        return f"{pass_name}::{key}"

    @staticmethod
    def pass_fingerprint(pass_name: str, *parts: str) -> str:
        """Content fingerprint salted with the pass's rule version."""
        return fingerprint_text(PASS_VERSIONS.get(pass_name, pass_name), *parts)

    def get(
        self, pass_name: str, key: str, fingerprint: str
    ) -> Optional[list[Diagnostic]]:
        entry = self._entries.get(self._slot(pass_name, key))
        if entry is None or entry.get("fingerprint") != fingerprint:
            self.misses += 1
            return None
        rows = entry.get("diagnostics")
        if not isinstance(rows, list):
            self.misses += 1
            return None
        try:
            diagnostics = [Diagnostic.from_dict(row) for row in rows]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return diagnostics

    def put(
        self,
        pass_name: str,
        key: str,
        fingerprint: str,
        diagnostics: list[Diagnostic],
    ) -> None:
        self._entries[self._slot(pass_name, key)] = {
            "fingerprint": fingerprint,
            "diagnostics": [d.to_dict() for d in diagnostics],
        }
        self._dirty = True

    def save(self, path: Optional[str] = None) -> None:
        """Write the cache file (atomically via rename)."""
        target = path or self.path
        if target is None:
            return
        payload = {
            "schema": _SCHEMA,
            "entries": dict(sorted(self._entries.items())),
        }
        tmp = f"{target}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=False)
            handle.write("\n")
        os.replace(tmp, target)
        self._dirty = False

    def __len__(self) -> int:
        return len(self._entries)
