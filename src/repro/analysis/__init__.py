"""Static analysis over compute functions, compositions, and the repo.

Dandelion's leverage comes from properties the platform can verify
*before* code runs: compute functions issue no syscalls (§4.1), and
compositions are declarative DAGs the dispatcher can reason about ahead
of execution.  The dynamic purity guard
(:mod:`repro.functions.purity`) catches violations mid-invocation;
this package proves (a useful subset of) the same contract at
registration time, plus two companions:

- :mod:`repro.analysis.purity_check` — AST analysis of registered
  compute callables, following same-module helpers transitively, that
  rejects blocked-surface reaches (``os``/``socket``/``subprocess``/
  ``threading``), nondeterminism sources, global mutation, and
  generator entry points before the function ever runs;
- :mod:`repro.analysis.composition_lint` — semantic checks beyond
  ``Composition._validate``: unused outputs, dead-end vertices,
  fan-out explosion, set-name shadowing, and declared-but-never-written
  sets proven by the purity pass's write summary;
- :mod:`repro.analysis.determinism_lint` — a self-lint over
  ``src/repro`` guarding the repo's byte-identical-output invariant
  (no wall clocks, no unseeded RNG, no set-ordered iteration, no
  missing ``__slots__`` on hot-path classes).

All passes emit :class:`~repro.analysis.diagnostics.Diagnostic`
records; grandfathered findings live in a checked-in baseline file
(see :class:`~repro.analysis.diagnostics.Baseline`).  The CLI surface
is ``python -m repro lint`` and the registration hook is
``Registry.register_function(binary, verify="warn"|"strict")``.
"""

from .diagnostics import (
    Baseline,
    Diagnostic,
    render_json,
    render_text,
)
from .composition_lint import (
    extract_dsl_blocks,
    lint_composition,
    lint_dsl_source,
)
from .determinism_lint import lint_self
from .purity_check import (
    PurityReport,
    verify_purity,
)

__all__ = [
    "Baseline",
    "Diagnostic",
    "render_json",
    "render_text",
    "extract_dsl_blocks",
    "lint_composition",
    "lint_dsl_source",
    "lint_self",
    "PurityReport",
    "verify_purity",
]
