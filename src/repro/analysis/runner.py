"""The ``python -m repro lint`` driver.

Collects diagnostics across the three passes, applies the checked-in
baseline, renders text or JSON, and computes the exit code:

- default mode fails (exit 1) on any *new* error-severity finding;
- ``--strict`` fails on any new finding at all (CI runs this);
- ``--write-baseline`` regenerates the suppression file from the
  current findings (the only sanctioned way to grandfather a finding —
  codes are never skipped wholesale).

The function/composition corpus is the built-in demo registry: the
three paper applications (log processing, image compression, Text2SQL)
registered on a throwaway worker, plus any composition blocks embedded
in files passed on the command line (``examples/*.py`` in CI).
"""

from __future__ import annotations

import os
from typing import Optional

from .composition_lint import extract_dsl_blocks, lint_composition, lint_dsl_source
from .determinism_lint import lint_self
from .diagnostics import Baseline, Diagnostic, ERROR, render_json, render_text
from .purity_check import verify_purity

__all__ = ["run_lint", "collect_diagnostics", "demo_registry", "DEFAULT_BASELINE_PATH"]

DEFAULT_BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "self_lint_baseline.json"
)


def demo_registry():
    """Registry holding the built-in demo apps' functions/compositions."""
    from ..apps.compress import register_compression_app
    from ..apps.logproc import register_logproc_app
    from ..apps.text2sql import register_text2sql_app
    from ..worker import WorkerConfig, WorkerNode

    worker = WorkerNode(WorkerConfig(total_cores=2, control_plane_enabled=False))
    register_logproc_app(worker)
    register_compression_app(worker)
    register_text2sql_app(worker)
    return worker.registry


def collect_diagnostics(
    *,
    lint_self_pass: bool = True,
    lint_functions: bool = True,
    lint_compositions: bool = True,
    paths: Optional[list[str]] = None,
    registry=None,
) -> list[Diagnostic]:
    """Run the selected passes and pool their findings."""
    diagnostics: list[Diagnostic] = []
    if lint_self_pass:
        diagnostics.extend(lint_self())
    if lint_functions or lint_compositions:
        if registry is None:
            registry = demo_registry()
    if lint_functions:
        for name in registry.function_names:
            diagnostics.extend(verify_purity(registry.function(name)).diagnostics)
    if lint_compositions:
        for name in registry.composition_names:
            diagnostics.extend(
                lint_composition(registry.composition(name), registry)
            )
        for path in paths or []:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            for source, offset in extract_dsl_blocks(text):
                _composition, found = lint_dsl_source(
                    source,
                    library=registry.compositions,
                    registry=registry,
                    file=path.replace(os.sep, "/"),
                    line_offset=offset,
                )
                diagnostics.extend(found)
    return diagnostics


def run_lint(
    *,
    lint_self_pass: bool,
    lint_functions: bool,
    lint_compositions: bool,
    paths: Optional[list[str]] = None,
    output_format: str = "text",
    strict: bool = False,
    baseline_path: Optional[str] = None,
    write_baseline: bool = False,
) -> tuple[int, str]:
    """Execute the lint command; returns ``(exit_code, report_text)``."""
    diagnostics = collect_diagnostics(
        lint_self_pass=lint_self_pass,
        lint_functions=lint_functions,
        lint_compositions=lint_compositions,
        paths=paths,
    )
    path = baseline_path or DEFAULT_BASELINE_PATH
    if write_baseline:
        Baseline.from_diagnostics(diagnostics).write(path)
        return 0, f"baseline with {len(diagnostics)} finding(s) written to {path}"
    if os.path.exists(path):
        baseline = Baseline.load(path)
    else:
        baseline = Baseline()
    new, suppressed = baseline.filter(diagnostics)
    if output_format == "json":
        report = render_json(new)
    else:
        report = render_text(new)
        if suppressed:
            report += f"\n{len(suppressed)} finding(s) suppressed by baseline"
    has_new_error = any(d.severity == ERROR for d in new)
    failed = bool(new) if strict else has_new_error
    return (1 if failed else 0), report
