"""The ``python -m repro lint`` driver.

Collects diagnostics across the five passes (determinism self-lint,
function purity, composition lint, whole-composition dataflow,
scenario-spec validation), applies the checked-in baseline, renders
text/JSON/SARIF, and computes the exit code:

- default mode fails (exit 1) on any *new* error-severity finding;
- ``--strict`` fails on any new finding at all, and additionally on
  *stale* baseline entries for the passes that ran — a suppression
  matching nothing is dead weight that silently re-admits the finding
  when someone reintroduces it (CI runs strict);
- ``--write-baseline`` regenerates the suppression file from the
  current findings (the only sanctioned way to grandfather a finding —
  codes are never skipped wholesale).  Entries belonging to passes
  that did *not* run are preserved, so a scoped ``lint --self
  --write-baseline`` cannot drop the purity pass's suppressions.

Re-lints are incremental: each pass's diagnostics replay from
:class:`~repro.analysis.cache.AnalysisCache` keyed by content
fingerprints (file text for the self-lint, the defining module's
source for functions, canonical DSL plus function sources for
compositions/dataflow), so an unchanged repo re-lints near-instantly.

The function/composition corpus is the built-in demo registry: the
three paper applications (log processing, image compression, Text2SQL)
registered on a throwaway worker, plus any composition blocks embedded
in files passed on the command line (``examples/*.py`` in CI).
"""

from __future__ import annotations

import inspect
import os
from typing import Optional

from .cache import AnalysisCache
from .composition_lint import extract_dsl_blocks, lint_composition, lint_dsl_source
from .dataflow import analyze_composition
from .determinism_lint import iter_self_sources, lint_source
from .diagnostics import Baseline, Diagnostic, ERROR, render_json, render_text
from .purity_check import verify_purity
from .sarif import render_sarif

__all__ = [
    "run_lint",
    "collect_diagnostics",
    "demo_registry",
    "DEFAULT_BASELINE_PATH",
    "PASS_CODE_PREFIXES",
]

DEFAULT_BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "self_lint_baseline.json"
)

# Which diagnostic codes each pass owns — scopes baseline staleness and
# --write-baseline pruning to the passes that actually ran.
PASS_CODE_PREFIXES = {
    "self": ("DET",),
    "functions": ("PUR",),
    "compositions": ("CMP",),
    "dataflow": ("RACE", "CON", "COST"),
    "scenarios": ("SCN",),
}


def demo_registry():
    """Registry holding the built-in demo apps' functions/compositions."""
    from ..apps.compress import register_compression_app
    from ..apps.logproc import register_logproc_app
    from ..apps.text2sql import register_text2sql_app
    from ..worker import WorkerConfig, WorkerNode

    worker = WorkerNode(WorkerConfig(total_cores=2, control_plane_enabled=False))
    register_logproc_app(worker)
    register_compression_app(worker)
    register_text2sql_app(worker)
    return worker.registry


# -- fingerprint helpers ------------------------------------------------------


def _function_fingerprint(registry, name: str, module_texts: dict) -> Optional[str]:
    """Content fingerprint of a function binary, or None (uncacheable).

    Hashes the *whole defining module* rather than just the entry
    point: the purity pass follows same-module helpers transitively,
    so an edit to a helper must invalidate the entry.
    """
    binary = registry.function(name)
    entry = inspect.unwrap(getattr(binary, "entry_point", binary))
    stashed = getattr(entry, "__dandelion_source__", None)
    if stashed is not None:
        return AnalysisCache.pass_fingerprint("functions", name, stashed)
    try:
        path = inspect.getsourcefile(entry)
    except TypeError:
        return None
    if path is None or path not in module_texts and not os.path.exists(path):
        return None
    text = module_texts.get(path)
    if text is None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        module_texts[path] = text
    qualname = getattr(entry, "__qualname__", name)
    return AnalysisCache.pass_fingerprint("functions", name, qualname, text)


def _composition_fingerprint(
    pass_name: str, registry, composition, module_texts: dict
) -> Optional[str]:
    """Canonical-DSL + function-source fingerprint, or None."""
    from ..composition.printer import composition_to_dsl

    parts = []
    stack = [composition]
    seen = set()
    while stack:
        current = stack.pop()
        if current.name in seen:
            continue
        seen.add(current.name)
        parts.append(composition_to_dsl(current))
        for node in current.nodes.values():
            if node.kind == "composition":
                stack.append(node.composition)
    for function_name in sorted(composition.required_functions()):
        if not registry.has_function(function_name):
            parts.append(f"<missing:{function_name}>")
            continue
        fp = _function_fingerprint(registry, function_name, module_texts)
        if fp is None:
            return None
        parts.append(fp)
    return AnalysisCache.pass_fingerprint(pass_name, composition.name, *sorted(parts))


def _cached_pass(cache, pass_name, key, fingerprint, compute):
    """Replay a pass result from cache, or compute and store it."""
    if cache is not None and fingerprint is not None:
        cached = cache.get(pass_name, key, fingerprint)
        if cached is not None:
            return cached
    found = compute()
    if cache is not None and fingerprint is not None:
        cache.put(pass_name, key, fingerprint, found)
    return found


# -- collection ---------------------------------------------------------------


def collect_diagnostics(
    *,
    lint_self_pass: bool = True,
    lint_functions: bool = True,
    lint_compositions: bool = True,
    lint_dataflow: bool = False,
    lint_scenarios: bool = False,
    paths: Optional[list[str]] = None,
    registry=None,
    cache: Optional[AnalysisCache] = None,
) -> list[Diagnostic]:
    """Run the selected passes and pool their findings."""
    diagnostics: list[Diagnostic] = []
    module_texts: dict[str, str] = {}
    if lint_self_pass:
        for reported, source, hot_path in iter_self_sources():
            fingerprint = AnalysisCache.pass_fingerprint(
                "self", reported, "hot" if hot_path else "cold", source
            )
            diagnostics.extend(
                _cached_pass(
                    cache, "self", reported, fingerprint,
                    lambda s=source, r=reported, h=hot_path: lint_source(
                        s, r, hot_path=h
                    ),
                )
            )
    if lint_functions or lint_compositions or lint_dataflow:
        if registry is None:
            registry = demo_registry()
    if lint_functions:
        for name in registry.function_names:
            fingerprint = _function_fingerprint(registry, name, module_texts)
            diagnostics.extend(
                _cached_pass(
                    cache, "functions", name, fingerprint,
                    lambda n=name: verify_purity(registry.function(n)).diagnostics,
                )
            )
    if lint_compositions:
        for name in registry.composition_names:
            composition = registry.composition(name)
            fingerprint = _composition_fingerprint(
                "compositions", registry, composition, module_texts
            )
            diagnostics.extend(
                _cached_pass(
                    cache, "compositions", name, fingerprint,
                    lambda c=composition: lint_composition(c, registry),
                )
            )
    if lint_dataflow:
        for name in registry.composition_names:
            composition = registry.composition(name)
            fingerprint = _composition_fingerprint(
                "dataflow", registry, composition, module_texts
            )
            diagnostics.extend(
                _cached_pass(
                    cache, "dataflow", name, fingerprint,
                    lambda c=composition: analyze_composition(
                        c, registry
                    ).diagnostics,
                )
            )
    if (lint_compositions or lint_dataflow) and paths:
        diagnostics.extend(
            _lint_paths(
                [p for p in paths if not p.endswith(".toml")],
                registry, cache, module_texts,
                compositions=lint_compositions, dataflow=lint_dataflow,
            )
        )
    if lint_scenarios:
        diagnostics.extend(_lint_scenarios(paths, cache))
    return diagnostics


def _lint_scenarios(paths, cache) -> list:
    """SCN pass: bundled scenario specs plus any ``*.toml`` paths."""
    from .scenario_lint import iter_bundled_specs, lint_scenario_text

    sources = list(iter_bundled_specs())
    for path in paths or ():
        if not path.endswith(".toml"):
            continue
        with open(path, "r", encoding="utf-8") as handle:
            sources.append((path.replace(os.sep, "/"), handle.read()))
    diagnostics: list[Diagnostic] = []
    for reported, text in sources:
        fingerprint = AnalysisCache.pass_fingerprint("scenarios", reported, text)
        diagnostics.extend(
            _cached_pass(
                cache, "scenarios", reported, fingerprint,
                lambda t=text, r=reported: lint_scenario_text(t, r),
            )
        )
    return diagnostics


def _lint_paths(paths, registry, cache, module_texts, *, compositions, dataflow):
    """Lint composition blocks embedded in free-text files."""
    diagnostics: list[Diagnostic] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        reported = path.replace(os.sep, "/")
        for source, offset in extract_dsl_blocks(text):
            key = f"{reported}::{offset}"
            composition = None
            if compositions:

                def _run_block(s=source, o=offset, r=reported):
                    _comp, found = lint_dsl_source(
                        s, library=registry.compositions, registry=registry,
                        file=r, line_offset=o,
                    )
                    return found

                # Block diagnostics also depend on registry function
                # sources (CMP005); fold the registry fingerprint in.
                registry_salt = _registry_salt(registry, module_texts)
                fingerprint = None
                if registry_salt is not None:
                    fingerprint = AnalysisCache.pass_fingerprint(
                        "compositions", key, source, registry_salt
                    )
                diagnostics.extend(
                    _cached_pass(cache, "compositions", key, fingerprint, _run_block)
                )
            if dataflow:
                from ..composition.dsl import parse_composition
                from ..composition.graph import CompositionError

                try:
                    composition = parse_composition(
                        source, library=registry.compositions
                    )
                except CompositionError:
                    continue  # the compositions pass reports CMP000
                registry_salt = _registry_salt(registry, module_texts)
                fingerprint = None
                if registry_salt is not None:
                    fingerprint = AnalysisCache.pass_fingerprint(
                        "dataflow", key, source, registry_salt
                    )
                diagnostics.extend(
                    _cached_pass(
                        cache, "dataflow", key, fingerprint,
                        lambda c=composition, r=reported: analyze_composition(
                            c, registry, file=r
                        ).diagnostics,
                    )
                )
    return diagnostics


def _registry_salt(registry, module_texts) -> Optional[str]:
    """One fingerprint over every registered function's source."""
    parts = []
    for name in registry.function_names:
        fp = _function_fingerprint(registry, name, module_texts)
        if fp is None:
            return None
        parts.append(fp)
    return AnalysisCache.pass_fingerprint("registry", *parts)


# -- driver -------------------------------------------------------------------


def _ran_prefixes(
    lint_self_pass, lint_functions, lint_compositions, lint_dataflow,
    lint_scenarios=False,
) -> tuple:
    prefixes: list[str] = []
    if lint_self_pass:
        prefixes += PASS_CODE_PREFIXES["self"]
    if lint_functions:
        prefixes += PASS_CODE_PREFIXES["functions"]
    if lint_compositions:
        prefixes += PASS_CODE_PREFIXES["compositions"]
    if lint_dataflow:
        prefixes += PASS_CODE_PREFIXES["dataflow"]
    if lint_scenarios:
        prefixes += PASS_CODE_PREFIXES["scenarios"]
    return tuple(prefixes)


def run_lint(
    *,
    lint_self_pass: bool,
    lint_functions: bool,
    lint_compositions: bool,
    lint_dataflow: bool = False,
    lint_scenarios: bool = False,
    paths: Optional[list[str]] = None,
    output_format: str = "text",
    strict: bool = False,
    baseline_path: Optional[str] = None,
    write_baseline: bool = False,
    cache_path: Optional[str] = None,
) -> tuple[int, str]:
    """Execute the lint command; returns ``(exit_code, report_text)``."""
    cache = AnalysisCache(cache_path) if cache_path else None
    diagnostics = collect_diagnostics(
        lint_self_pass=lint_self_pass,
        lint_functions=lint_functions,
        lint_compositions=lint_compositions,
        lint_dataflow=lint_dataflow,
        lint_scenarios=lint_scenarios,
        paths=paths,
        cache=cache,
    )
    if cache is not None:
        cache.save()
    prefixes = _ran_prefixes(
        lint_self_pass, lint_functions, lint_compositions, lint_dataflow,
        lint_scenarios,
    )
    path = baseline_path or DEFAULT_BASELINE_PATH
    if write_baseline:
        merged = Baseline.from_diagnostics(diagnostics)
        if os.path.exists(path):
            # Preserve suppressions owned by passes that did not run;
            # stale entries for the passes that *did* run are pruned
            # simply by not carrying them over.
            previous = Baseline.load(path)
            for fingerprint, budget in previous.suppressions.items():
                code = fingerprint.split("::", 1)[0]
                if not code.startswith(prefixes):
                    merged.suppressions[fingerprint] = budget
        merged.write(path)
        return 0, (
            f"baseline with {len(merged.suppressions)} fingerprint(s) "
            f"written to {path}"
        )
    if os.path.exists(path):
        baseline = Baseline.load(path)
    else:
        baseline = Baseline()
    new, suppressed = baseline.filter(diagnostics)
    stale = (
        baseline.stale_fingerprints(diagnostics, code_prefixes=prefixes)
        if strict
        else []
    )
    if output_format == "json":
        report = render_json(new)
    elif output_format == "sarif":
        report = render_sarif(new)
    else:
        report = render_text(new)
        if suppressed:
            report += f"\n{len(suppressed)} finding(s) suppressed by baseline"
        if stale:
            listing = "\n".join(f"    {fingerprint}" for fingerprint in stale)
            report += (
                f"\n{len(stale)} stale baseline fingerprint(s) match no "
                f"current finding (strict mode fails; re-run with "
                f"--write-baseline to prune):\n{listing}"
            )
    has_new_error = any(d.severity == ERROR for d in new)
    failed = (bool(new) or bool(stale)) if strict else has_new_error
    return (1 if failed else 0), report
