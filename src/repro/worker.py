"""The Dandelion worker node — Fig 4 wired together.

A :class:`WorkerNode` assembles the full per-node system: HTTP
frontend, dispatcher, compute and communication engine groups sharing
the machine's cores, the PI-controller control plane, the memory
tracker, and the simulated network the communication engines talk to.

Typical use::

    from repro import WorkerNode, WorkerConfig

    worker = WorkerNode(WorkerConfig(total_cores=16, backend="kvm"))
    worker.frontend.register_function(my_binary)
    worker.frontend.register_composition(dsl_source)
    process = worker.frontend.invoke("my_composition", {"data": b"..."})
    result = worker.env.run(until=process)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .backends.base import IsolationBackend, create_backend
from .composition.registry import Registry
from .controlplane.allocator import CONTROL_EPOCH_SECONDS, CoreAllocator
from .controlplane.pi_controller import PiConfig
from .dispatcher.dispatcher import Dispatcher
from .dispatcher.memory import MemoryTracker
from .engines.comm_engine import CommunicationEngine
from .engines.compute_engine import ComputeEngine
from .engines.group import EngineGroup
from .engines.throttle import EngineThrottle
from .frontend.http_frontend import Frontend
from .net.network import LatencyModel, SimulatedNetwork
from .sim.core import Environment
from .sim.distributions import Rng

__all__ = ["WorkerNode", "WorkerConfig"]


@dataclass
class WorkerConfig:
    """Configuration of one worker node."""

    total_cores: int = 16
    backend: str = "kvm"
    machine: str = "linux"
    # Initial split of cores between compute and communication engines;
    # the control plane rebalances at runtime when enabled.
    initial_comm_cores: int = 1
    control_plane_enabled: bool = True
    control_epoch_seconds: float = CONTROL_EPOCH_SECONDS
    pi_config: PiConfig = field(default_factory=PiConfig)
    cache_mode: str = "warm"
    data_passing: str = "copy"
    cold_load_fraction: float = 0.0
    max_retries: int = 2
    default_timeout: Optional[float] = None
    transient_failure_rate: float = 0.0
    comm_failure_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.total_cores < 2:
            raise ValueError("a worker needs at least 2 cores (compute + comm)")
        if not 1 <= self.initial_comm_cores < self.total_cores:
            raise ValueError("initial_comm_cores must leave at least one compute core")


class WorkerNode:
    """One Dandelion worker: engines + dispatcher + frontend + control plane."""

    def __init__(
        self,
        config: WorkerConfig = WorkerConfig(),
        env: Optional[Environment] = None,
        network: Optional[SimulatedNetwork] = None,
        registry: Optional[Registry] = None,
    ):
        self.config = config
        self.env = env or Environment()
        self.network = network or SimulatedNetwork(self.env, LatencyModel())
        self.registry = registry or Registry()
        self.backend: IsolationBackend = create_backend(config.backend, config.machine)
        self._rng = Rng(config.seed)

        # One throttle shared by every engine on this node: the gray-
        # failure (limplock) knob.  Healthy nodes sit at 1.0, which is
        # an exact multiplicative no-op on every service time.
        self.throttle = EngineThrottle()
        failure_rng = self._rng.fork(1) if config.transient_failure_rate > 0 else None
        self.compute_group = EngineGroup(
            self.env,
            kind="compute",
            engine_factory=lambda queue, name: ComputeEngine(
                self.env,
                queue,
                self.backend,
                name=name,
                failure_rng=failure_rng,
                transient_failure_rate=config.transient_failure_rate,
                throttle=self.throttle,
            ),
            initial_count=config.total_cores - config.initial_comm_cores,
        )
        self.comm_group = EngineGroup(
            self.env,
            kind="communication",
            engine_factory=lambda queue, name: CommunicationEngine(
                self.env,
                queue,
                self.network,
                name=name,
                failure_rng=self._rng.fork(3) if config.comm_failure_rate > 0 else None,
                transient_failure_rate=config.comm_failure_rate,
                throttle=self.throttle,
            ),
            initial_count=config.initial_comm_cores,
        )
        self.memory = MemoryTracker(self.env)
        self.dispatcher = Dispatcher(
            self.env,
            self.registry,
            self.compute_group,
            self.comm_group,
            memory=self.memory,
            cache_mode=config.cache_mode,
            data_passing=config.data_passing,
            cache_rng=self._rng.fork(2),
            cold_load_fraction=config.cold_load_fraction,
            max_retries=config.max_retries,
            default_timeout=config.default_timeout,
            retry_rng=self._rng.fork(4),
        )
        self.frontend = Frontend(self.env, self.registry, self.dispatcher)
        self.allocator = CoreAllocator(
            self.env,
            self.compute_group,
            self.comm_group,
            epoch_seconds=config.control_epoch_seconds,
            config=config.pi_config,
            enabled=config.control_plane_enabled,
        )

    # -- convenience -------------------------------------------------------

    def set_limp(self, multiplier: float) -> None:
        """Degrade (or restore) this node's engine throughput.

        ``multiplier`` >= 1.0 stretches every compute service time and
        network exchange by that factor — the "limplock" fault model:
        the node stays up and keeps answering, just slower.  1.0
        restores nominal speed.
        """
        self.throttle.set(multiplier)

    @property
    def limp_multiplier(self) -> float:
        return self.throttle.multiplier

    @property
    def total_engine_cores(self) -> int:
        return self.compute_group.engine_count + self.comm_group.engine_count

    def run(self, until=None):
        """Drive the shared environment (delegates to env.run)."""
        return self.env.run(until=until)

    def invoke_and_run(self, composition_name: str, inputs: dict):
        """Invoke a composition and run the simulation until it finishes."""
        process = self.frontend.invoke(composition_name, inputs)
        return self.env.run(until=process)

    def stats(self) -> dict:
        """Headline telemetry for experiments."""
        return {
            "now": self.env.now,
            "compute_cores": self.compute_group.engine_count,
            "comm_cores": self.comm_group.engine_count,
            "compute_tasks": self.compute_group.tasks_executed,
            "comm_tasks": self.comm_group.tasks_executed,
            "invocations_completed": self.dispatcher.invocations_completed,
            "invocations_failed": self.dispatcher.invocations_failed,
            "retries_performed": self.dispatcher.retries_performed,
            "deadline_expirations": self.dispatcher.deadline_expirations,
            "committed_bytes": self.memory.current_bytes,
            "peak_committed_bytes": self.memory.peak_bytes,
        }
