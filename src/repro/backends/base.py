"""Isolation backends for compute engines (§6.2).

The prototype implements four memory-isolation mechanisms — KVM
lightweight VMs, Linux processes under ptrace, CHERI capabilities, and
rWasm (Wasm transpiled to safe Rust) — "to demonstrate that Dandelion's
design is not tied to a particular mechanism".

In the reproduction a backend couples two things:

* **Function**: the user callable really runs (under the purity guard)
  and real output bytes are produced, identically across backends — as
  in the prototype, the backend choice affects isolation cost, not
  semantics.
* **Timing**: the per-stage virtual-time cost of the invocation, from
  the calibrated :class:`~repro.backends.costs.BackendSpec`.

``default_compute_seconds`` provides the execution-time model used when
a registered binary does not declare one: a fixed instruction-overhead
term plus a byte-proportional term.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..composition.registry import FunctionBinary
from ..data.items import DataSet, total_size
from ..errors import FunctionTimeout
from ..functions.compute import ComputeResult, run_compute_function
from .costs import BACKEND_SPECS, BackendSpec

__all__ = ["IsolationBackend", "SandboxExecution", "default_compute_seconds", "create_backend", "BACKEND_NAMES"]

BACKEND_NAMES = ("cheri", "rwasm", "process", "kvm")

# Default execution-time model for binaries with no declared cost:
# a small fixed cost plus a per-byte term (~1 GB/s of touched data).
_DEFAULT_FIXED_SECONDS = 20e-6
_DEFAULT_SECONDS_PER_BYTE = 1e-9


def default_compute_seconds(input_bytes: int) -> float:
    """Modelled native execution time when no explicit cost is given."""
    return _DEFAULT_FIXED_SECONDS + input_bytes * _DEFAULT_SECONDS_PER_BYTE


@dataclass(frozen=True)
class SandboxExecution:
    """The outcome of running one compute function in a sandbox."""

    result: ComputeResult
    breakdown: dict[str, float]  # stage name -> seconds

    @property
    def total_seconds(self) -> float:
        return sum(self.breakdown.values())

    @property
    def outputs(self) -> list[DataSet]:
        return self.result.outputs


class IsolationBackend:
    """One memory-isolation mechanism with its calibrated cost model."""

    def __init__(self, spec: BackendSpec):
        self.spec = spec
        self.name = spec.name
        # The stage breakdown is a pure function of its arguments and is
        # consumed read-only, so identical invocations (fixed-size hot
        # functions under load) share one memoized dict.
        self._breakdown_cache: dict[tuple, dict[str, float]] = {}

    def execute(
        self,
        binary: FunctionBinary,
        input_sets: list[DataSet],
        output_set_names: list[str],
        cached: bool = False,
        timeout: "float | None" = None,
        remap_input: bool = False,
    ) -> SandboxExecution:
        """Run the function and model its sandboxed execution time.

        ``cached`` selects the in-memory binary cache over loading from
        disk (§7.4 cached vs uncached).  ``timeout`` enforces the
        user-specified execution cap: if the modelled compute time
        exceeds it, the function is preempted (footnote 2 of §5).
        ``remap_input`` selects zero-copy input transfer (§6.1).
        """
        input_bytes = total_size(input_sets)
        compute_seconds = binary.modelled_compute_seconds(input_bytes)
        if compute_seconds is None:
            compute_seconds = default_compute_seconds(input_bytes)
        if timeout is not None and compute_seconds * self.spec.compute_slowdown > timeout:
            raise FunctionTimeout(
                f"{binary.name}: modelled execution of "
                f"{compute_seconds * self.spec.compute_slowdown:.6f}s exceeds "
                f"the {timeout:.6f}s timeout"
            )
        result = run_compute_function(
            binary, input_sets, output_set_names, input_bytes=input_bytes
        )
        key = (
            binary.binary_size,
            result.input_bytes,
            result.output_bytes,
            compute_seconds,
            cached,
            remap_input,
        )
        breakdown = self._breakdown_cache.get(key)
        if breakdown is None:
            breakdown = self.spec.breakdown(
                binary_size=binary.binary_size,
                input_bytes=result.input_bytes,
                output_bytes=result.output_bytes,
                compute_seconds=compute_seconds,
                cached=cached,
                remap_input=remap_input,
            )
            if len(self._breakdown_cache) < 1024:
                self._breakdown_cache[key] = breakdown
        return SandboxExecution(result=result, breakdown=breakdown)

    def creation_seconds(self, binary: FunctionBinary, cached: bool = False) -> float:
        """Sandbox-creation cost alone (marshal + load + other)."""
        return (
            self.spec.stages.marshal
            + self.spec.load_seconds(binary.binary_size, cached)
            + self.spec.stages.other
        )

    def __repr__(self) -> str:
        return f"IsolationBackend({self.name!r})"


def create_backend(name: str, machine: str = "linux") -> IsolationBackend:
    """Factory: backend by name ('cheri', 'rwasm', 'process', 'kvm').

    ``machine`` selects the calibration profile: ``morello`` (Table 1)
    or ``linux`` (§7.2 Linux-5.15 totals).
    """
    machine_specs = BACKEND_SPECS.get(machine)
    if machine_specs is None:
        raise ValueError(f"unknown machine profile {machine!r}; expected one of {sorted(BACKEND_SPECS)}")
    spec = machine_specs.get(name)
    if spec is None:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
    return IsolationBackend(spec)
