"""Isolation backends (KVM / process / CHERI / rWasm) and cost models."""

from .base import (
    BACKEND_NAMES,
    IsolationBackend,
    SandboxExecution,
    create_backend,
    default_compute_seconds,
)
from .costs import (
    BACKEND_SPECS,
    BackendSpec,
    MICROSECOND,
    REFERENCE_BINARY_SIZE,
    REFERENCE_PAYLOAD_SIZE,
    StageCosts,
)

__all__ = [
    "BACKEND_NAMES",
    "IsolationBackend",
    "SandboxExecution",
    "create_backend",
    "default_compute_seconds",
    "BACKEND_SPECS",
    "BackendSpec",
    "MICROSECOND",
    "REFERENCE_BINARY_SIZE",
    "REFERENCE_PAYLOAD_SIZE",
    "StageCosts",
]
