"""Calibrated sandbox cost models for the four isolation backends.

The timing constants come straight from the paper:

* Table 1 gives the unloaded per-stage latency breakdown (in µs) for a
  1×1 int64 matmul on the Arm Morello board, for each backend:
  marshal, load-from-disk, transfer-input, execute, get/send-output,
  and "other".  Totals: CHERI 89, rWasm 241, process 486, KVM 889 µs.
* §7.2 adds the totals on a default Linux 5.15 kernel (x86 server):
  rWasm 109, process 539, KVM 218 µs.  (CHERI requires Morello
  hardware; on the x86 profiles we keep it for completeness at its
  Morello costs.)

Each stage is modelled as the paper's reference value plus a
bandwidth-proportional term for sizes beyond the reference, so the
Table 1 scenario reproduces the published numbers exactly while larger
binaries/payloads scale physically.

The rWasm backend additionally carries a *compute slowdown* factor for
the transpiled code ("its rWasm backend suffers from slower matrix
multiplication code due to transpilation", §7.3).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "StageCosts",
    "BackendSpec",
    "BACKEND_SPECS",
    "MICROSECOND",
    "REFERENCE_BINARY_SIZE",
    "REFERENCE_PAYLOAD_SIZE",
    "DISK_BYTES_PER_SECOND",
    "MEMORY_BYTES_PER_SECOND",
]

MICROSECOND = 1e-6

# The Table 1 scenario: a tiny statically linked matmul binary and a
# 1x1 int64 matrix in/out.
REFERENCE_BINARY_SIZE = 64 * 1024
REFERENCE_PAYLOAD_SIZE = 16

# Bandwidths used for the size-proportional terms.
DISK_BYTES_PER_SECOND = 2e9     # NVMe-class sequential read
MEMORY_BYTES_PER_SECOND = 10e9  # single-core memcpy


@dataclass(frozen=True)
class StageCosts:
    """Per-invocation sandbox stage costs, in seconds, at reference sizes."""

    marshal: float
    load_from_disk: float
    transfer_input: float
    execute_overhead: float
    get_send_output: float
    other: float

    @property
    def total(self) -> float:
        return (
            self.marshal
            + self.load_from_disk
            + self.transfer_input
            + self.execute_overhead
            + self.get_send_output
            + self.other
        )

    def scaled(self, factor: float) -> "StageCosts":
        """Uniformly scale all stages (used to derive kernel profiles)."""
        return StageCosts(
            marshal=self.marshal * factor,
            load_from_disk=self.load_from_disk * factor,
            transfer_input=self.transfer_input * factor,
            execute_overhead=self.execute_overhead * factor,
            get_send_output=self.get_send_output * factor,
            other=self.other * factor,
        )


def _micro(marshal, load, transfer, execute, output, other) -> StageCosts:
    return StageCosts(
        marshal=marshal * MICROSECOND,
        load_from_disk=load * MICROSECOND,
        transfer_input=transfer * MICROSECOND,
        execute_overhead=execute * MICROSECOND,
        get_send_output=output * MICROSECOND,
        other=other * MICROSECOND,
    )


# Table 1 (Morello, CHERI-compatible kernel).
_MORELLO_STAGES = {
    "cheri": _micro(12, 29, 2, 5, 9, 32),
    "rwasm": _micro(15, 147, 2, 20, 12, 45),
    "process": _micro(12, 54, 6, 371, 9, 34),
    "kvm": _micro(30, 194, 2, 536, 25, 102),
}

# §7.2: totals on a default Linux 5.15 kernel.  We keep each backend's
# Morello stage *proportions* and scale to the published Linux totals.
_LINUX_TOTALS_MICRO = {"rwasm": 109.0, "process": 539.0, "kvm": 218.0}

_LINUX_STAGES = {
    name: _MORELLO_STAGES[name].scaled(
        (_LINUX_TOTALS_MICRO[name] * MICROSECOND) / _MORELLO_STAGES[name].total
    )
    for name in _LINUX_TOTALS_MICRO
}
# CHERI needs Morello hardware; when asked for on a Linux x86 profile we
# reuse the Morello numbers (documented substitute, not a paper claim).
_LINUX_STAGES["cheri"] = _MORELLO_STAGES["cheri"]


@dataclass(frozen=True)
class BackendSpec:
    """Everything the simulator needs to model one isolation backend."""

    name: str
    stages: StageCosts
    compute_slowdown: float = 1.0
    # Fraction of the load stage that remains when the binary is served
    # from the in-memory cache rather than disk (§7.4 cached variant).
    cached_load_fraction: float = 0.15

    def load_seconds(self, binary_size: int, cached: bool) -> float:
        extra = max(0, binary_size - REFERENCE_BINARY_SIZE)
        if cached:
            return (
                self.stages.load_from_disk * self.cached_load_fraction
                + extra / MEMORY_BYTES_PER_SECOND
            )
        return self.stages.load_from_disk + extra / DISK_BYTES_PER_SECOND

    def transfer_input_seconds(self, input_bytes: int) -> float:
        extra = max(0, input_bytes - REFERENCE_PAYLOAD_SIZE)
        return self.stages.transfer_input + extra / MEMORY_BYTES_PER_SECOND

    def output_seconds(self, output_bytes: int) -> float:
        extra = max(0, output_bytes - REFERENCE_PAYLOAD_SIZE)
        return self.stages.get_send_output + extra / MEMORY_BYTES_PER_SECOND

    def breakdown(
        self,
        binary_size: int,
        input_bytes: int,
        output_bytes: int,
        compute_seconds: float,
        cached: bool = False,
        remap_input: bool = False,
    ) -> dict[str, float]:
        """Per-stage seconds for one invocation (Table 1 row shape).

        ``remap_input`` models the §6.1 zero-copy variant: inputs are
        made visible by remapping pages rather than copying bytes, so
        only the fixed page-table cost remains.
        """
        if remap_input:
            transfer = self.stages.transfer_input
        else:
            transfer = self.transfer_input_seconds(input_bytes)
        return {
            "marshal": self.stages.marshal,
            "load": self.load_seconds(binary_size, cached),
            "transfer_input": transfer,
            "execute": self.stages.execute_overhead
            + compute_seconds * self.compute_slowdown,
            "output": self.output_seconds(output_bytes),
            "other": self.stages.other,
        }


# rWasm's transpiled code runs slower than native; Fig 6 shows its
# matmul throughput well under the KVM backend's.  2.4x matches the
# published Wasm-vs-native literature the paper cites (Jangda et al.).
_RWASM_SLOWDOWN = 2.4

BACKEND_SPECS: dict[str, dict[str, BackendSpec]] = {
    "morello": {
        name: BackendSpec(
            name=name,
            stages=stages,
            compute_slowdown=_RWASM_SLOWDOWN if name == "rwasm" else 1.0,
        )
        for name, stages in _MORELLO_STAGES.items()
    },
    "linux": {
        name: BackendSpec(
            name=name,
            stages=stages,
            compute_slowdown=_RWASM_SLOWDOWN if name == "rwasm" else 1.0,
        )
        for name, stages in _LINUX_STAGES.items()
    },
}
