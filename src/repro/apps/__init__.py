"""Applications: log processing (Fig 3), image compression, Text2SQL."""

from .compress import (
    QOI_TO_PNG_SECONDS,
    generate_test_image,
    make_compress_binary,
    qoi_to_png,
    register_compression_app,
)
from .logproc import (
    DEFAULT_TOKEN,
    LOGPROC_DSL,
    register_logproc_app,
    setup_log_services,
)
from .png import PngError, png_decode, png_encode
from .qoi import QoiError, qoi_decode, qoi_encode
from .text2sql import (
    PAPER_STEP_SECONDS,
    extract_sql,
    register_text2sql_app,
    sample_movie_database,
    setup_text2sql_services,
)

__all__ = [
    "QOI_TO_PNG_SECONDS",
    "generate_test_image",
    "make_compress_binary",
    "qoi_to_png",
    "register_compression_app",
    "DEFAULT_TOKEN",
    "LOGPROC_DSL",
    "register_logproc_app",
    "setup_log_services",
    "PngError",
    "png_decode",
    "png_encode",
    "QoiError",
    "qoi_decode",
    "qoi_encode",
    "PAPER_STEP_SECONDS",
    "extract_sql",
    "register_text2sql_app",
    "sample_movie_database",
    "setup_text2sql_services",
]
