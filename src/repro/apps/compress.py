"""The image-compression application (Fig 8's compute-intensive app).

A single Dandelion compute function that reads a QOI image from its
input set, decodes it, and writes a PNG to its output set — real bytes
in, real bytes out, exercising the QOI decoder and PNG encoder.

``generate_test_image`` synthesises an image whose QOI encoding lands
near the paper's 18 kB, and ``QOI_TO_PNG_SECONDS`` is the modelled
native execution time (the paper measures ~18 ms end-to-end latency for
this app on Dandelion, of which the conversion dominates).
"""

from __future__ import annotations

import math

from ..functions.sdk import compute_function, read_items, write_item
from ..sim.distributions import Rng
from .png import png_encode
from .qoi import qoi_decode, qoi_encode

__all__ = [
    "qoi_to_png",
    "make_compress_binary",
    "generate_test_image",
    "QOI_TO_PNG_SECONDS",
    "register_compression_app",
]

# Native conversion time for the ~18 kB QOI image on the default server
# (decode + zlib deflate). Calibrated so the app's end-to-end Dandelion
# latency lands near the paper's reported 18.23 ms average.
QOI_TO_PNG_SECONDS = 17.0e-3


def generate_test_image(width: int = 76, height: int = 76, seed: int = 0) -> bytes:
    """A synthetic RGBA image whose QOI encoding is ~18 kB.

    Smooth gradients plus speckle: enough structure for QOI's diff/run
    ops to engage, enough noise that the file is not trivially small.
    """
    rng = Rng(seed)
    pixels = bytearray()
    for y in range(height):
        for x in range(width):
            r = int(127 + 120 * math.sin(x / 9.0))
            g = int(127 + 120 * math.cos(y / 7.0))
            b = (x * 2 + y) % 256
            if rng.bernoulli(0.08):
                r = rng.randint(0, 255)
                g = rng.randint(0, 255)
            pixels += bytes((r % 256, g % 256, b, 255))
    return qoi_encode(bytes(pixels), width, height, channels=4)


def qoi_to_png(qoi_bytes: bytes) -> bytes:
    """The conversion itself: QOI in, PNG out."""
    pixels, width, height, channels = qoi_decode(qoi_bytes)
    return png_encode(pixels, width, height, channels)


def make_compress_binary(name: str = "qoi_to_png", compute_cost: float = QOI_TO_PNG_SECONDS):
    """Build the compute-function binary for the compression app."""

    @compute_function(name=name, compute_cost=compute_cost, binary_size=512 * 1024)
    def convert(vfs):
        for item in read_items(vfs, "image"):
            write_item(vfs, "png", f"{item.ident}.png", qoi_to_png(item.data))

    return convert


COMPRESS_DSL = """
composition image_compress {
    compute convert uses qoi_to_png in(image) out(png);
    input image -> convert.image;
    output convert.png -> png;
}
"""


def register_compression_app(worker) -> str:
    """Register the app on a worker; returns the composition name."""
    worker.frontend.register_function(make_compress_binary())
    worker.frontend.register_composition(COMPRESS_DSL)
    return "image_compress"
