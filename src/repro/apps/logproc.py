"""Distributed log processing — the Fig 3 example application.

The composition has three user compute functions and two uses of the
HTTP communication function:

1. ``access`` turns the client's access token into an authorization
   request;
2. the HTTP function POSTs it to the auth service, which returns the
   log-shard endpoints the token may read;
3. ``fanout`` formats one GET per endpoint;
4. the HTTP function fetches all shards in parallel (``each`` edge);
5. ``render`` aggregates the shard contents into a single HTML-ish
   report returned to the client.

``setup_log_services`` provisions the simulated auth service and log
shards; ``register_logproc_app`` registers functions and composition on
a worker.  ``LOGPROC_SECONDS_*`` are the modelled compute costs
(the app is I/O-intensive: compute is a small slice of its ~28 ms
end-to-end latency in the paper's Fig 8).
"""

from __future__ import annotations

import json

from ..functions.sdk import (
    compute_function,
    format_http_request,
    parse_http_response_item,
    read_items,
    write_item,
)
from ..net.services import AuthService, LogShardService
from ..worker import WorkerNode

__all__ = [
    "setup_log_services",
    "register_logproc_app",
    "LOGPROC_DSL",
    "DEFAULT_TOKEN",
]

DEFAULT_TOKEN = "token-alpha"

_ACCESS_SECONDS = 150e-6
_FANOUT_SECONDS = 100e-6
_RENDER_SECONDS = 800e-6


def setup_log_services(
    worker: WorkerNode,
    shard_count: int = 4,
    lines_per_shard: int = 50,
    token: str = DEFAULT_TOKEN,
    auth_host: str = "auth.internal",
    shard_latency_seconds: float = 1e-3,
) -> list[str]:
    """Provision auth + shard services; returns the shard endpoints."""
    endpoints = []
    for index in range(shard_count):
        host = f"logs{index}.internal"
        lines = [
            f"{index:02d}:{line:04d} level={'ERROR' if line % 17 == 0 else 'INFO'} "
            f"svc=frontend msg=request_completed latency_ms={(line * 7) % 250}"
            for line in range(lines_per_shard)
        ]
        worker.network.register(
            LogShardService(host, lines, base_latency_seconds=shard_latency_seconds)
        )
        endpoints.append(f"http://{host}/logs")
    auth = AuthService(host=auth_host)
    auth.grant(token, endpoints)
    worker.network.register(auth)
    return endpoints


def _access_binary(auth_host: str):
    @compute_function(name="logproc_access", compute_cost=_ACCESS_SECONDS)
    def access(vfs):
        token = vfs.read_text("/in/token/token").strip()
        write_item(
            vfs, "request", "auth",
            format_http_request(
                "POST", f"http://{auth_host}/authorize", body=token.encode()
            ),
        )

    return access


@compute_function(name="logproc_fanout", compute_cost=_FANOUT_SECONDS)
def fanout(vfs):
    response = parse_http_response_item(read_items(vfs, "endpoints")[0].data)
    if response["status"] != 200:
        raise PermissionError(f"authorization failed: {response}")
    endpoints = json.loads(response["body"])
    for index, endpoint in enumerate(endpoints):
        write_item(
            vfs, "requests", f"shard{index}",
            format_http_request("GET", endpoint),
        )


@compute_function(name="logproc_render", compute_cost=_RENDER_SECONDS)
def render(vfs):
    sections = []
    total_lines = 0
    error_lines = 0
    for item in sorted(read_items(vfs, "pages"), key=lambda i: i.ident):
        response = parse_http_response_item(item.data)
        body = response["body"].decode("utf-8", errors="replace")
        lines = body.splitlines()
        total_lines += len(lines)
        errors = [line for line in lines if "level=ERROR" in line]
        error_lines += len(errors)
        sections.append(
            f"<section id='{item.ident}'><h2>{item.ident}</h2>"
            f"<p>{len(lines)} lines, {len(errors)} errors</p></section>"
        )
    html = (
        "<html><body><h1>Log report</h1>"
        f"<p>total_lines={total_lines} errors={error_lines}</p>"
        + "".join(sections)
        + "</body></html>"
    )
    write_item(vfs, "html", "report", html.encode())


LOGPROC_DSL = """
composition logproc {
    compute access uses logproc_access in(token) out(request);
    comm auth;
    compute fan uses logproc_fanout in(endpoints) out(requests);
    comm fetch;
    compute render uses logproc_render in(pages) out(html);

    input token -> access.token;
    access.request -> auth.request [all];
    auth.response -> fan.endpoints [all];
    fan.requests -> fetch.request [each];
    fetch.response -> render.pages [all];
    output render.html -> report;
}
"""


def register_logproc_app(worker: WorkerNode, auth_host: str = "auth.internal") -> str:
    """Register the Fig 3 composition on a worker; returns its name."""
    worker.frontend.register_function(_access_binary(auth_host))
    worker.frontend.register_function(fanout)
    worker.frontend.register_function(render)
    worker.frontend.register_composition(LOGPROC_DSL)
    return "logproc"
