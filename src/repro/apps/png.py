"""Minimal PNG encoder/decoder (RGB/RGBA, 8-bit, filter 0).

Just enough of the PNG specification for the image-compression
application: the encoder produces standards-conformant files (signature,
IHDR, zlib-compressed IDAT with per-scanline filter byte 0, IEND, CRCs)
and the decoder reads back exactly what the encoder produces, which the
tests use for roundtripping.
"""

from __future__ import annotations

import struct
import zlib

__all__ = ["png_encode", "png_decode", "PngError"]

_SIGNATURE = b"\x89PNG\r\n\x1a\n"


class PngError(ValueError):
    """Malformed PNG data or invalid encode arguments."""


def _chunk(kind: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + kind
        + payload
        + struct.pack(">I", zlib.crc32(kind + payload) & 0xFFFFFFFF)
    )


def png_encode(pixels: bytes, width: int, height: int, channels: int = 4, compress_level: int = 6) -> bytes:
    """Encode raw row-major RGB/RGBA pixels into a PNG file."""
    if channels not in (3, 4):
        raise PngError("channels must be 3 (RGB) or 4 (RGBA)")
    if width <= 0 or height <= 0:
        raise PngError("image dimensions must be positive")
    if len(pixels) != width * height * channels:
        raise PngError(
            f"expected {width * height * channels} pixel bytes, got {len(pixels)}"
        )
    color_type = 6 if channels == 4 else 2
    header = struct.pack(">IIBBBBB", width, height, 8, color_type, 0, 0, 0)
    stride = width * channels
    raw = bytearray()
    for row in range(height):
        raw.append(0)  # filter type 0 (None)
        raw += pixels[row * stride : (row + 1) * stride]
    compressed = zlib.compress(bytes(raw), compress_level)
    return (
        _SIGNATURE
        + _chunk(b"IHDR", header)
        + _chunk(b"IDAT", compressed)
        + _chunk(b"IEND", b"")
    )


def png_decode(data: bytes) -> tuple[bytes, int, int, int]:
    """Decode a PNG produced by :func:`png_encode`.

    Supports 8-bit RGB/RGBA with filter type 0 on every scanline —
    sufficient for roundtrip verification.  Returns (pixels, width,
    height, channels).
    """
    if not data.startswith(_SIGNATURE):
        raise PngError("bad signature: not a PNG file")
    position = len(_SIGNATURE)
    width = height = channels = None
    idat = bytearray()
    while position < len(data):
        if position + 8 > len(data):
            raise PngError("truncated chunk header")
        (length,) = struct.unpack(">I", data[position : position + 4])
        kind = data[position + 4 : position + 8]
        payload = data[position + 8 : position + 8 + length]
        if len(payload) != length:
            raise PngError("truncated chunk payload")
        crc_bytes = data[position + 8 + length : position + 12 + length]
        if len(crc_bytes) != 4:
            raise PngError("truncated chunk CRC")
        (crc,) = struct.unpack(">I", crc_bytes)
        if crc != (zlib.crc32(kind + payload) & 0xFFFFFFFF):
            raise PngError(f"CRC mismatch in {kind!r} chunk")
        position += 12 + length
        if kind == b"IHDR":
            width, height, depth, color_type, _c, _f, interlace = struct.unpack(
                ">IIBBBBB", payload
            )
            if depth != 8:
                raise PngError(f"unsupported bit depth {depth}")
            if color_type == 6:
                channels = 4
            elif color_type == 2:
                channels = 3
            else:
                raise PngError(f"unsupported color type {color_type}")
            if interlace != 0:
                raise PngError("interlaced PNGs are not supported")
        elif kind == b"IDAT":
            idat += payload
        elif kind == b"IEND":
            break
    if width is None or channels is None:
        raise PngError("missing IHDR chunk")
    try:
        raw = zlib.decompress(bytes(idat))
    except zlib.error as exc:
        raise PngError(f"corrupt IDAT stream: {exc}") from exc
    stride = width * channels
    if len(raw) != height * (stride + 1):
        raise PngError("decompressed size does not match dimensions")
    pixels = bytearray()
    for row in range(height):
        offset = row * (stride + 1)
        if raw[offset] != 0:
            raise PngError(f"unsupported filter type {raw[offset]} on row {row}")
        pixels += raw[offset + 1 : offset + 1 + stride]
    return bytes(pixels), width, height, channels
