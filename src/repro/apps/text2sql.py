"""Text2SQL agentic AI workflow (§7.7).

The paper ports a Text2SQL workflow from the TAG benchmark suite: five
steps over ~2 s, with the LLM call dominating (61%):

1. parse the input prompt (221 ms, compute),
2. request an LLM with the prompt via HTTP (1238 ms, communication),
3. extract the SQL query from the LLM's response (207 ms, compute),
4. issue the SQL query via HTTP to a SQLite database (136 ms,
   communication),
5. format the database response (213 ms, compute).

The compute steps are Dandelion Python compute functions; the LLM and
database are reached through communication functions.  Here the LLM is
the deterministic mock in :class:`~repro.net.services.LlmService` and
the database is the mini SQL engine behind
:class:`~repro.net.services.SqlDatabaseService` — the pipeline runs for
real end to end.
"""

from __future__ import annotations

import json
import re

from ..functions.sdk import (
    compute_function,
    format_http_request,
    parse_http_response_item,
    read_items,
    write_item,
)
from ..net.services import LlmService, SqlDatabaseService
from ..query.columnar import Table
from ..query.sql import SqlDatabase
from ..worker import WorkerNode

__all__ = [
    "PAPER_STEP_SECONDS",
    "setup_text2sql_services",
    "register_text2sql_app",
    "sample_movie_database",
    "extract_sql",
]

# The paper's measured per-step latencies (seconds).
PAPER_STEP_SECONDS = {
    "parse_prompt": 0.221,
    "llm_request": 1.238,
    "extract_sql": 0.207,
    "db_query": 0.136,
    "format_response": 0.213,
}

_SQL_BLOCK = re.compile(r"```sql\s*(.+?)\s*```", re.DOTALL | re.IGNORECASE)


def extract_sql(completion: str) -> str:
    """Pull the SQL statement out of an LLM completion."""
    match = _SQL_BLOCK.search(completion)
    if match:
        return match.group(1).strip()
    for line in completion.splitlines():
        if line.strip().lower().startswith("select"):
            return line.strip()
    raise ValueError("no SQL found in LLM completion")


def sample_movie_database() -> SqlDatabase:
    """The toy database the example workflow queries."""
    db = SqlDatabase()
    db.add_table(Table("movies", {
        "title": [
            "The Arrival", "Night Train", "Paper Cranes", "Silent Harbor",
            "Golden Hour", "The Last Ledger", "Cloud Atlas 2", "Morning Tide",
        ],
        "rating": [8.4, 6.9, 7.8, 8.9, 7.2, 9.1, 6.5, 8.0],
        "year": [2016, 2009, 2018, 2021, 2014, 2022, 2011, 2019],
    }))
    return db


def setup_text2sql_services(
    worker: WorkerNode,
    database: "SqlDatabase | None" = None,
    llm_latency_seconds: float = PAPER_STEP_SECONDS["llm_request"],
) -> SqlDatabase:
    """Provision the mock LLM and SQL database services."""
    database = database or sample_movie_database()
    worker.network.register(LlmService(latency_seconds=llm_latency_seconds))
    worker.network.register(SqlDatabaseService(executor=database.execute_rows))
    return database


@compute_function(name="t2s_parse", compute_cost=PAPER_STEP_SECONDS["parse_prompt"])
def parse_prompt(vfs):
    prompt = vfs.read_text("/in/prompt/prompt").strip()
    if not prompt:
        raise ValueError("empty prompt")
    payload = json.dumps({
        "prompt": prompt,
        "system": "You translate questions to SQL over the given schema.",
        "schema": "movies(title TEXT, rating REAL, year INTEGER)",
    })
    write_item(
        vfs, "llm_request", "r",
        format_http_request("POST", "http://llm.internal/v1/generate", body=payload.encode()),
    )


@compute_function(name="t2s_extract", compute_cost=PAPER_STEP_SECONDS["extract_sql"])
def extract(vfs):
    response = parse_http_response_item(read_items(vfs, "llm_response")[0].data)
    if response["status"] != 200:
        raise RuntimeError(f"LLM call failed: {response}")
    completion = json.loads(response["body"])["completion"]
    sql = extract_sql(completion)
    write_item(
        vfs, "db_request", "q",
        format_http_request("POST", "http://db.internal/query", body=sql.encode()),
    )


@compute_function(name="t2s_format", compute_cost=PAPER_STEP_SECONDS["format_response"])
def format_response(vfs):
    response = parse_http_response_item(read_items(vfs, "db_response")[0].data)
    if response["status"] != 200:
        raise RuntimeError(f"database query failed: {response}")
    rows = json.loads(response["body"])
    if not rows:
        text = "No results."
    else:
        columns = list(rows[0])
        lines = [" | ".join(columns)]
        lines += [" | ".join(str(row[c]) for c in columns) for row in rows]
        text = "\n".join(lines)
    write_item(vfs, "answer", "text", text.encode())


TEXT2SQL_DSL = """
composition text2sql {
    compute parse uses t2s_parse in(prompt) out(llm_request);
    comm llm;
    compute extract uses t2s_extract in(llm_response) out(db_request);
    comm db;
    compute format uses t2s_format in(db_response) out(answer);

    input prompt -> parse.prompt;
    parse.llm_request -> llm.request [all];
    llm.response -> extract.llm_response [all];
    extract.db_request -> db.request [all];
    db.response -> format.db_response [all];
    output format.answer -> answer;
}
"""


def register_text2sql_app(worker: WorkerNode) -> str:
    """Register the workflow on a worker; returns the composition name."""
    for binary in (parse_prompt, extract, format_response):
        worker.frontend.register_function(binary)
    worker.frontend.register_composition(TEXT2SQL_DSL)
    return "text2sql"
