"""QOI ("Quite OK Image") codec, implemented from the specification.

The Fig 8 compute-intensive application "transforms an 18kB QOI image
to PNG".  This module implements the QOI format [99] in pure Python —
encoder and decoder — so the image-compression compute function does
real work on real bytes.

Format summary (qoiformat.org): 14-byte header, then a byte stream of
ops over RGBA pixels — RGB/RGBA literals, a 64-entry running index
keyed by a pixel hash, small channel diffs, luma diffs, and run-length
ops — terminated by seven 0x00 bytes and one 0x01.
"""

from __future__ import annotations

import struct

__all__ = ["qoi_encode", "qoi_decode", "QoiError"]

_MAGIC = b"qoif"
_END_MARKER = b"\x00" * 7 + b"\x01"

_OP_INDEX = 0x00
_OP_DIFF = 0x40
_OP_LUMA = 0x80
_OP_RUN = 0xC0
_OP_RGB = 0xFE
_OP_RGBA = 0xFF
_MASK_2 = 0xC0


class QoiError(ValueError):
    """Malformed QOI data or invalid encode arguments."""


def _hash(r: int, g: int, b: int, a: int) -> int:
    return (r * 3 + g * 5 + b * 7 + a * 11) % 64


def qoi_encode(pixels: bytes, width: int, height: int, channels: int = 4) -> bytes:
    """Encode raw pixels (row-major RGB or RGBA) into QOI bytes."""
    if channels not in (3, 4):
        raise QoiError("channels must be 3 or 4")
    if width <= 0 or height <= 0:
        raise QoiError("image dimensions must be positive")
    expected = width * height * channels
    if len(pixels) != expected:
        raise QoiError(f"expected {expected} pixel bytes, got {len(pixels)}")

    out = bytearray()
    out += _MAGIC
    out += struct.pack(">IIBB", width, height, channels, 0)

    index = [(0, 0, 0, 0)] * 64
    previous = (0, 0, 0, 255)
    run = 0
    position = 0
    total_pixels = width * height
    for _ in range(total_pixels):
        if channels == 4:
            pixel = (
                pixels[position], pixels[position + 1],
                pixels[position + 2], pixels[position + 3],
            )
        else:
            pixel = (pixels[position], pixels[position + 1], pixels[position + 2], 255)
        position += channels

        if pixel == previous:
            run += 1
            if run == 62:
                out.append(_OP_RUN | (run - 1))
                run = 0
            continue
        if run:
            out.append(_OP_RUN | (run - 1))
            run = 0

        r, g, b, a = pixel
        slot = _hash(r, g, b, a)
        if index[slot] == pixel:
            out.append(_OP_INDEX | slot)
        else:
            index[slot] = pixel
            pr, pg, pb, pa = previous
            if a == pa:
                dr = (r - pr + 128) % 256 - 128
                dg = (g - pg + 128) % 256 - 128
                db = (b - pb + 128) % 256 - 128
                dr_dg = dr - dg
                db_dg = db - dg
                if -2 <= dr <= 1 and -2 <= dg <= 1 and -2 <= db <= 1:
                    out.append(_OP_DIFF | ((dr + 2) << 4) | ((dg + 2) << 2) | (db + 2))
                elif -32 <= dg <= 31 and -8 <= dr_dg <= 7 and -8 <= db_dg <= 7:
                    out.append(_OP_LUMA | (dg + 32))
                    out.append(((dr_dg + 8) << 4) | (db_dg + 8))
                else:
                    out.append(_OP_RGB)
                    out += bytes((r, g, b))
            else:
                out.append(_OP_RGBA)
                out += bytes((r, g, b, a))
        previous = pixel

    if run:
        out.append(_OP_RUN | (run - 1))
    out += _END_MARKER
    return bytes(out)


def qoi_decode(data: bytes) -> tuple[bytes, int, int, int]:
    """Decode QOI bytes; returns (pixels, width, height, channels).

    Pixels are returned with the header's channel count (RGB or RGBA),
    row-major.
    """
    if len(data) < 14 + len(_END_MARKER):
        raise QoiError("data too short for a QOI image")
    if data[:4] != _MAGIC:
        raise QoiError("bad magic: not a QOI image")
    width, height, channels, colorspace = struct.unpack(">IIBB", data[4:14])
    if channels not in (3, 4):
        raise QoiError(f"invalid channel count {channels}")
    if colorspace not in (0, 1):
        raise QoiError(f"invalid colorspace {colorspace}")
    if width == 0 or height == 0 or width * height > 400_000_000:
        raise QoiError("invalid image dimensions")

    total_pixels = width * height
    out = bytearray(total_pixels * channels)
    index = [(0, 0, 0, 0)] * 64
    pixel = (0, 0, 0, 255)
    position = 14
    end = len(data) - len(_END_MARKER)
    written = 0

    def emit(count: int = 1):
        nonlocal written
        r, g, b, a = pixel
        for _ in range(count):
            offset = written * channels
            if written >= total_pixels:
                raise QoiError("pixel data overruns declared dimensions")
            out[offset] = r
            out[offset + 1] = g
            out[offset + 2] = b
            if channels == 4:
                out[offset + 3] = a
            written += 1

    while written < total_pixels:
        if position >= end:
            raise QoiError("truncated QOI stream")
        byte = data[position]
        position += 1
        if byte == _OP_RGB:
            if position + 3 > end:
                raise QoiError("truncated RGB op")
            pixel = (data[position], data[position + 1], data[position + 2], pixel[3])
            position += 3
            index[_hash(*pixel)] = pixel
            emit()
        elif byte == _OP_RGBA:
            if position + 4 > end:
                raise QoiError("truncated RGBA op")
            pixel = (
                data[position], data[position + 1],
                data[position + 2], data[position + 3],
            )
            position += 4
            index[_hash(*pixel)] = pixel
            emit()
        else:
            op = byte & _MASK_2
            if op == _OP_INDEX:
                pixel = index[byte & 0x3F]
                emit()
            elif op == _OP_DIFF:
                dr = ((byte >> 4) & 0x03) - 2
                dg = ((byte >> 2) & 0x03) - 2
                db = (byte & 0x03) - 2
                r, g, b, a = pixel
                pixel = ((r + dr) % 256, (g + dg) % 256, (b + db) % 256, a)
                index[_hash(*pixel)] = pixel
                emit()
            elif op == _OP_LUMA:
                if position >= end:
                    raise QoiError("truncated LUMA op")
                dg = (byte & 0x3F) - 32
                second = data[position]
                position += 1
                dr = dg + ((second >> 4) & 0x0F) - 8
                db = dg + (second & 0x0F) - 8
                r, g, b, a = pixel
                pixel = ((r + dr) % 256, (g + dg) % 256, (b + db) % 256, a)
                index[_hash(*pixel)] = pixel
                emit()
            else:  # run
                emit((byte & 0x3F) + 1)

    if data[end:] != _END_MARKER:
        raise QoiError("missing end marker")
    return bytes(out), width, height, channels
