"""Dandelion reproduction — an elastic cloud platform for DAGs of pure
compute and communication functions (SOSP 2025), rebuilt in Python on a
discrete-event simulation substrate.

Quickstart::

    from repro import WorkerNode, WorkerConfig, compute_function

    @compute_function()
    def shout(vfs):
        vfs.write_text("/out/result/text", vfs.read_text("/in/text/text").upper())

    worker = WorkerNode(WorkerConfig(total_cores=4))
    worker.frontend.register_function(shout)
    worker.frontend.register_composition('''
        composition hello {
            compute s uses shout in(text) out(result);
            input text -> s.text;
            output s.result -> result;
        }
    ''')
    result = worker.invoke_and_run("hello", {"text": b"dandelion"})
    print(result.output("result").item("text").text())  # DANDELION

The package layout mirrors the system described in DESIGN.md:

- :mod:`repro.sim` — discrete-event simulation kernel;
- :mod:`repro.data` — data items/sets, memory contexts, virtual FS;
- :mod:`repro.composition` — DAG model, composition DSL, registry;
- :mod:`repro.functions` — compute-function harness + purity guard;
- :mod:`repro.backends` — KVM/process/CHERI/rWasm isolation cost models;
- :mod:`repro.engines` / :mod:`repro.dispatcher` /
  :mod:`repro.controlplane` / :mod:`repro.frontend` — the worker node;
- :mod:`repro.net` — simulated network, HTTP sanitization, services;
- :mod:`repro.baselines` — Firecracker/gVisor/Wasmtime/Hyperlight/D-hybrid;
- :mod:`repro.trace` — Azure-like traces, sampler, replay;
- :mod:`repro.query` — columnar engine, SSB, mini-SQL, Athena model;
- :mod:`repro.apps` — log processing, QOI→PNG, Text2SQL;
- :mod:`repro.experiments` — one harness per paper table/figure.
"""

from .composition import (
    Composition,
    CompositionError,
    DslError,
    FunctionBinary,
    Registry,
    parse_composition,
)
from .data import DataItem, DataSet, MemoryContext, VirtualFileSystem
from .dispatcher import InvocationResult
from .errors import (
    DandelionError,
    FunctionFailure,
    FunctionTimeout,
    InvocationError,
    MemoryLimitExceeded,
    SyscallBlocked,
)
from .functions import compute_function, format_http_request, parse_http_response_item
from .worker import WorkerConfig, WorkerNode

__version__ = "1.0.0"

__all__ = [
    "Composition",
    "CompositionError",
    "DslError",
    "FunctionBinary",
    "Registry",
    "parse_composition",
    "DataItem",
    "DataSet",
    "MemoryContext",
    "VirtualFileSystem",
    "InvocationResult",
    "DandelionError",
    "FunctionFailure",
    "FunctionTimeout",
    "InvocationError",
    "MemoryLimitExceeded",
    "SyscallBlocked",
    "compute_function",
    "format_http_request",
    "parse_http_response_item",
    "WorkerConfig",
    "WorkerNode",
    "__version__",
]
