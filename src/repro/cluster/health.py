"""Latency-based worker health scoring — the gray-failure detector.

Fail-stop detection (the healthy-index ring) only catches workers that
*die*.  A limplock worker stays nominally healthy while serving every
request several times slower, so the cluster manager also keeps a
latency-based health score per worker: an exponentially weighted moving
average (EWMA) of recent per-worker completion latency, compared
against the mean of its *peers'* EWMAs (excluding the worker itself —
a fleet-wide average would be diluted by the very samples that should
trigger detection).  A worker whose score drifts more than
``quarantine_factor`` above its peers is **quarantined** — routing
prefers other workers — and released again (with hysteresis, at
``release_factor``) once its completions recover.

Everything is maintained incrementally, O(1) per completion, the same
way the healthy-index ring is: no fleet rescans, no sorting, no
per-decision work.  A worker's quarantine flag is (re-)evaluated only
when one of *its* completions arrives; the spill-back in
:class:`~repro.sched.routing.GrayFailureAware` guarantees a quarantined
worker keeps receiving a trickle of traffic, so recovery is always
observed.

The tracker is deliberately free of randomness and wall clocks: scores
are a pure fold over the (deterministic, seeded) completion stream, so
detection — like everything else in the simulation — replays
identically from a seed.
"""

from __future__ import annotations

__all__ = ["LatencyHealthTracker"]

_NAN = float("nan")


class LatencyHealthTracker:
    """Incremental per-worker completion-latency EWMA with quarantine.

    ``observe(index, latency)`` folds one completion in and returns
    ``True`` when the worker's quarantine flag flipped (the manager
    then refreshes its preferred-index ring — the only non-O(1) step,
    and it only runs on flips, which are rare by construction thanks to
    the ``release_factor < quarantine_factor`` hysteresis band).
    """

    __slots__ = (
        "alpha",
        "quarantine_factor",
        "release_factor",
        "min_samples",
        "_scores",
        "_counts",
        "_scores_sum",
        "_active",
        "_quarantined",
        "quarantine_entries",
        "quarantine_exits",
    )

    def __init__(
        self,
        alpha: float = 0.2,
        quarantine_factor: float = 2.0,
        release_factor: float = 1.4,
        min_samples: int = 8,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha {alpha} must be in (0, 1]")
        if quarantine_factor <= 1.0:
            raise ValueError("quarantine_factor must be > 1.0")
        if not 1.0 <= release_factor <= quarantine_factor:
            raise ValueError(
                "release_factor must be in [1.0, quarantine_factor] (hysteresis)"
            )
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.alpha = alpha
        self.quarantine_factor = quarantine_factor
        self.release_factor = release_factor
        self.min_samples = min_samples
        self._scores: dict[int, float] = {}
        self._counts: dict[int, int] = {}
        # Running sum of per-worker EWMAs plus the number of workers
        # with at least one sample: the peer baseline for worker i is
        # (sum - score_i) / (active - 1), maintained in O(1).
        self._scores_sum = 0.0
        self._active = 0
        self._quarantined: dict[int, bool] = {}
        self.quarantine_entries = 0
        self.quarantine_exits = 0

    # -- incremental updates (O(1) per completion) -------------------------

    def observe(self, index: int, latency: float) -> bool:
        """Fold one completion latency in; True iff the flag flipped."""
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        alpha = self.alpha
        count = self._counts.get(index, 0)
        if count == 0:
            self._scores[index] = latency
            self._scores_sum += latency
            self._active += 1
        else:
            old = self._scores[index]
            new = old + alpha * (latency - old)
            self._scores[index] = new
            self._scores_sum += new - old
        self._counts[index] = count + 1
        return self._reevaluate(index)

    def _peer_baseline(self, index: int) -> float:
        """Mean of every *other* worker's EWMA (0 when alone)."""
        if self._active <= 1:
            return 0.0
        return (self._scores_sum - self._scores[index]) / (self._active - 1)

    def _reevaluate(self, index: int) -> bool:
        """Refresh one worker's quarantine flag; True iff it flipped."""
        quarantined = self._quarantined.get(index, False)
        baseline = self._peer_baseline(index)
        if self._counts.get(index, 0) < self.min_samples or baseline <= 0:
            verdict = False
        else:
            ratio = self._scores[index] / baseline
            if quarantined:
                verdict = ratio > self.release_factor
            else:
                verdict = ratio > self.quarantine_factor
        if verdict == quarantined:
            return False
        self._quarantined[index] = verdict
        if verdict:
            self.quarantine_entries += 1
        else:
            self.quarantine_exits += 1
        return True

    def reset(self, index: int) -> bool:
        """Forget one worker's history (fail-stop/restore: fresh node).

        Returns ``True`` when the reset released a quarantine flag.
        """
        score = self._scores.pop(index, None)
        if score is not None:
            self._scores_sum -= score
            self._active -= 1
        self._counts.pop(index, None)
        if self._quarantined.pop(index, False):
            self.quarantine_exits += 1
            return True
        return False

    # -- read side (snapshot contract: O(1), no copies) --------------------

    def score(self, index: int) -> float:
        """Current latency EWMA for the worker (NaN before any sample)."""
        return self._scores.get(index, _NAN)

    def sample_count(self, index: int) -> int:
        return self._counts.get(index, 0)

    @property
    def fleet_score(self) -> float:
        """Mean of all per-worker EWMAs (NaN before any sample)."""
        return self._scores_sum / self._active if self._active else _NAN

    def is_quarantined(self, index: int) -> bool:
        return self._quarantined.get(index, False)

    @property
    def scores(self) -> dict:
        """Live index -> EWMA mapping (read-only by contract)."""
        return self._scores

    @property
    def quarantined(self) -> dict:
        """Live index -> flag mapping (read-only by contract)."""
        return self._quarantined

    def quarantined_count(self) -> int:
        return sum(1 for flag in self._quarantined.values() if flag)

    def __repr__(self) -> str:
        return (
            f"LatencyHealthTracker(alpha={self.alpha}, "
            f"quarantined={self.quarantined_count()})"
        )
