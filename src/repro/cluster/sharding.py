"""Worker-fleet partitioning for the sharded simulator.

A :class:`ShardPlan` assigns every worker of the fleet to exactly one
shard (round-robin, so shard loads stay balanced under the skewed
routing the trace produces) and provides the two merge directions the
cluster-manager boundary needs:

* :meth:`merge` — per-shard, local-worker-ordered value lists back into
  one global-worker-ordered list.  Every cross-shard aggregate (the
  outstanding counts behind the routing :class:`~repro.sched.snapshots.ClusterSnapshot`,
  the per-worker memory integrals of the final report) flows through
  this, which is what makes merged results independent of the shard
  count: values are combined in global worker order no matter how the
  workers were grouped.
* :meth:`workers_of` / :meth:`shard_of` — the routing side, used to
  address a window batch to the shard owning the chosen worker.
"""

from __future__ import annotations

import struct

__all__ = ["INVOCATION", "ShardPlan"]

#: Wire layout of one routed invocation crossing the shard boundary:
#: ``(delivery_time f8, worker u4, fn_index u4, duration f8, arrival f8)``,
#: little-endian, no padding.  Lives here (not in the window codec) so
#: the dispatcher can emit wire-ready bytes while routing without a
#: circular import into ``repro.sim.sharded``.
INVOCATION = struct.Struct("<dIIdd")


class ShardPlan:
    """Static round-robin assignment of ``worker_count`` workers to shards."""

    __slots__ = ("worker_count", "shard_count", "_workers_of", "_local_index")

    def __init__(self, worker_count: int, shard_count: int):
        if worker_count < 1:
            raise ValueError("worker_count must be >= 1")
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        # Never spread fewer workers over more shards: empty shards
        # would idle at every barrier for nothing.
        self.shard_count = min(shard_count, worker_count)
        self.worker_count = worker_count
        workers_of: list[list[int]] = [[] for _ in range(self.shard_count)]
        local_index = [0] * worker_count
        for worker in range(worker_count):
            shard = worker % self.shard_count
            local_index[worker] = len(workers_of[shard])
            workers_of[shard].append(worker)
        self._workers_of = tuple(tuple(w) for w in workers_of)
        self._local_index = local_index

    def shard_of(self, worker: int) -> int:
        return worker % self.shard_count

    def local_index(self, worker: int) -> int:
        """Position of ``worker`` within its shard's local worker list."""
        return self._local_index[worker]

    def workers_of(self, shard: int) -> tuple:
        """Global worker indices owned by ``shard``, ascending."""
        return self._workers_of[shard]

    def merge(self, per_shard: "list[list]") -> list:
        """Merge per-shard local-worker-ordered lists into global order.

        ``per_shard[s][i]`` is the value for ``workers_of(s)[i]``; the
        result is indexed by global worker index.  The merge is pure
        reindexing — no arithmetic — so any value type goes through
        unchanged and the result is identical for every shard count.
        """
        if len(per_shard) != self.shard_count:
            raise ValueError(
                f"expected {self.shard_count} shard lists, got {len(per_shard)}"
            )
        merged: list = [None] * self.worker_count
        for shard, values in enumerate(per_shard):
            workers = self._workers_of[shard]
            if len(values) != len(workers):
                raise ValueError(
                    f"shard {shard} reported {len(values)} values for "
                    f"{len(workers)} workers"
                )
            for worker, value in zip(workers, values):
                merged[worker] = value
        return merged

    def __repr__(self) -> str:
        return f"ShardPlan({self.worker_count} workers over {self.shard_count} shards)"
