"""Seeded worker-level fault injection (§6.1 fault tolerance).

:class:`WorkerFaultInjector` drives fail-stop crash/restore cycles on a
:class:`~repro.cluster.manager.ClusterManager`: each worker lives for an
exponentially distributed time-to-failure (MTTF), fail-stops, stays
down for an exponentially distributed time-to-repair (MTTR), and is
then restored as a fresh node with registrations replayed.  Every draw
comes from a per-worker :class:`~repro.sim.distributions.Rng` stream
forked from one seed, so a fault schedule is reproducible and
independent of how worker lifecycles interleave.
"""

from __future__ import annotations

from ..sim.distributions import Rng

__all__ = ["WorkerFaultInjector"]


class WorkerFaultInjector:
    """Drives seeded MTTF/MTTR fail-stop cycles on a cluster's workers."""

    def __init__(
        self,
        cluster,
        mttf_seconds: float,
        mttr_seconds: float,
        seed: int = 0,
        spare_last_healthy: bool = True,
    ):
        if mttf_seconds <= 0 or mttr_seconds <= 0:
            raise ValueError("MTTF and MTTR must be positive")
        self.cluster = cluster
        self.mttf_seconds = mttf_seconds
        self.mttr_seconds = mttr_seconds
        # A total fleet outage usually means the experiment measures the
        # injector, not the platform; by default the injector refuses to
        # take down the last healthy worker (skips that cycle).
        self.spare_last_healthy = spare_last_healthy
        self.crashes_injected = 0
        self.restores_performed = 0
        self.crashes_skipped = 0
        rng = Rng(seed)
        self._processes = [
            cluster.env.process(self._worker_life(index, rng.fork(index + 1)))
            for index in range(cluster.worker_count)
        ]

    def _worker_life(self, index: int, rng: Rng):
        env = self.cluster.env
        while True:
            yield env.timeout(rng.exponential(self.mttf_seconds))
            if not self.cluster.is_healthy(index):
                # Someone else (a test, another injector) already failed
                # this worker; wait out the cycle and try again.
                continue
            if self.spare_last_healthy and self.cluster.healthy_worker_count <= 1:
                self.crashes_skipped += 1
                continue
            self.cluster.fail_worker(index)
            self.crashes_injected += 1
            yield env.timeout(rng.exponential(self.mttr_seconds))
            self.cluster.restore_worker(index)
            self.restores_performed += 1
