"""Seeded worker-level fault injection (§6.1 fault tolerance).

:class:`WorkerFaultInjector` drives two fault domains on a
:class:`~repro.cluster.manager.ClusterManager`:

* **Fail-stop crash/restore cycles** — each worker lives for an
  exponentially distributed time-to-failure (MTTF), fail-stops, stays
  down for an exponentially distributed time-to-repair (MTTR), and is
  then restored as a fresh node with registrations replayed.
* **Limp (gray-failure) cycles** — optionally, workers periodically
  degrade to ``1/limp_severity`` of nominal engine throughput for a
  while and then recover, without ever leaving the healthy ring.  This
  is the limplock regime fail-stop detection cannot see; it exercises
  the latency-based health scoring and hedging defenses
  (docs/fault_tolerance.md).

Every draw comes from a per-worker :class:`~repro.sim.distributions.Rng`
stream forked from one seed, so a fault schedule is reproducible and
independent of how worker lifecycles interleave.  Limp streams use a
disjoint fork salt range, so enabling limp cycles leaves the crash
schedule of an existing experiment untouched.
"""

from __future__ import annotations

from ..sim.distributions import Rng

__all__ = ["WorkerFaultInjector"]

# Fork-salt offset for limp streams: crash streams use salts 1..N, limp
# streams 1001..1000+N, so the two schedules never share a stream.
_LIMP_SALT_OFFSET = 1000


class WorkerFaultInjector:
    """Drives seeded MTTF/MTTR fail-stop (and optional limp) cycles."""

    def __init__(
        self,
        cluster,
        mttf_seconds: float,
        mttr_seconds: float,
        seed: int = 0,
        spare_last_healthy: bool = True,
        limp_mttf_seconds: float = 0.0,
        limp_duration_seconds: float = 0.0,
        limp_severity: float = 1.0,
    ):
        if mttf_seconds <= 0 or mttr_seconds <= 0:
            raise ValueError("MTTF and MTTR must be positive")
        limp_enabled = limp_mttf_seconds > 0
        if limp_enabled and limp_duration_seconds <= 0:
            raise ValueError("limp cycles need a positive limp_duration_seconds")
        if limp_severity < 1.0:
            raise ValueError("limp_severity must be >= 1.0")
        self.cluster = cluster
        self.mttf_seconds = mttf_seconds
        self.mttr_seconds = mttr_seconds
        # A total fleet outage usually means the experiment measures the
        # injector, not the platform; by default the injector refuses to
        # take down the last healthy worker (skips that cycle).
        self.spare_last_healthy = spare_last_healthy
        self.limp_mttf_seconds = limp_mttf_seconds
        self.limp_duration_seconds = limp_duration_seconds
        self.limp_severity = limp_severity
        self.crashes_injected = 0
        self.restores_performed = 0
        self.crashes_skipped = 0
        self.restores_skipped = 0
        self.limps_injected = 0
        self.limps_cleared = 0
        self.limps_skipped = 0
        rng = Rng(seed)
        self._processes = [
            cluster.env.process(self._worker_life(index, rng.fork(index + 1)))
            for index in range(cluster.worker_count)
        ]
        if limp_enabled and limp_severity > 1.0:
            self._processes.extend(
                cluster.env.process(
                    self._limp_life(index, rng.fork(_LIMP_SALT_OFFSET + index))
                )
                for index in range(cluster.worker_count)
            )

    def _worker_life(self, index: int, rng: Rng):
        env = self.cluster.env
        while True:
            yield env.timeout(rng.exponential(self.mttf_seconds))
            if not self.cluster.is_healthy(index):
                # Someone else (a test, another injector) already failed
                # this worker; wait out the cycle and try again.
                continue
            if self.spare_last_healthy and self.cluster.healthy_worker_count <= 1:
                self.crashes_skipped += 1
                continue
            self.cluster.fail_worker(index)
            self.crashes_injected += 1
            yield env.timeout(rng.exponential(self.mttr_seconds))
            if self.cluster.is_healthy(index):
                # An external actor (a test, a second injector, an
                # operator script) restored the worker — and possibly
                # re-failed and re-restored it — during our MTTR sleep.
                # Restoring again would raise on a healthy worker, so
                # skip this cycle's restore and keep the lifecycle loop
                # alive instead of crashing the injector process.
                self.restores_skipped += 1
                continue
            self.cluster.restore_worker(index)
            self.restores_performed += 1

    def _limp_life(self, index: int, rng: Rng):
        """Degrade/recover cycles: the worker stays up, just slower."""
        env = self.cluster.env
        cluster = self.cluster
        while True:
            yield env.timeout(rng.exponential(self.limp_mttf_seconds))
            if not cluster.is_healthy(index):
                # Crashed workers can't limp; fail-stop has priority.
                self.limps_skipped += 1
                continue
            if cluster.limp_factor(index) > 1.0:
                # Already limping (an external actor beat us to it).
                self.limps_skipped += 1
                continue
            cluster.limp_worker(index, self.limp_severity)
            self.limps_injected += 1
            yield env.timeout(rng.exponential(self.limp_duration_seconds))
            # The worker may have crashed (and been restored as a fresh,
            # non-limping node) while degraded; only clear a limp that
            # is still in force.
            if cluster.is_healthy(index) and cluster.limp_factor(index) > 1.0:
                cluster.clear_limp(index)
                self.limps_cleared += 1
